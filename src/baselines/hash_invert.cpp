#include "src/baselines/hash_invert.h"

#include <algorithm>

#include "src/sampling/reservoir.h"

namespace bloomsample {

Result<uint64_t> HashInvert::Sample(const BloomFilter& query, Rng* rng,
                                    OpCounters* counters) const {
  const HashFamily& family = query.family();
  if (!family.IsInvertible()) {
    return Status::Unsupported("HashInvert needs an invertible hash family");
  }
  const std::vector<size_t> set_bits = query.bits().SetBits();
  if (set_bits.empty()) {
    return Status::NotFound("query Bloom filter is empty");
  }

  // Pick a random set bit, invert it under every hash function, prune the
  // candidate union with membership queries, then sample uniformly from the
  // survivors via a reservoir (no extra space beyond the candidate list).
  const size_t s = set_bits[rng->Below(set_bits.size())];
  std::vector<uint64_t> candidates;
  for (size_t i = 0; i < family.k(); ++i) {
    CountInversion(counters);
    const Status st = family.Preimages(i, s, namespace_size_, &candidates);
    if (!st.ok()) return st;
  }
  // Deduplicate: the same key can hit bit s under two different functions,
  // and it must be offered to the reservoir once.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  ReservoirSampler reservoir(rng);
  for (uint64_t x : candidates) {
    CountMembership(counters);
    if (query.Contains(x)) reservoir.Offer(x);
  }
  const auto sample = reservoir.sample();
  if (!sample.has_value()) {
    // Possible: bit s was set by inserted keys, but every preimage inside
    // the namespace fails the full k-bit membership test.
    return Status::NotFound("no namespace element survived pruning");
  }
  return *sample;
}

Result<std::vector<uint64_t>> HashInvert::Reconstruct(
    const BloomFilter& query, ReconstructMode mode,
    OpCounters* counters) const {
  const HashFamily& family = query.family();
  if (!family.IsInvertible()) {
    return Status::Unsupported("HashInvert needs an invertible hash family");
  }
  if (mode == ReconstructMode::kAuto) {
    mode = query.FillFraction() <= 0.5 ? ReconstructMode::kSetBits
                                       : ReconstructMode::kUnsetBits;
  }

  if (mode == ReconstructMode::kSetBits) {
    // Invert every set bit under every hash function; a key can only be a
    // positive if it appears among these preimages (its h_0 bit is set).
    // Keep the membership-positives.
    std::vector<uint64_t> candidates;
    const std::vector<size_t> set_bits = query.bits().SetBits();
    for (size_t s : set_bits) {
      for (size_t i = 0; i < family.k(); ++i) {
        CountInversion(counters);
        const Status st = family.Preimages(i, s, namespace_size_, &candidates);
        if (!st.ok()) return st;
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    std::vector<uint64_t> out;
    for (uint64_t x : candidates) {
      CountMembership(counters);
      if (query.Contains(x)) out.push_back(x);
    }
    return out;
  }

  // Unset-bit (dense) mode: any key with a preimage on an unset bit is a
  // certain negative. Collect all such keys and complement.
  std::vector<bool> excluded(namespace_size_, false);
  const std::vector<size_t> unset_bits = query.bits().UnsetBits();
  std::vector<uint64_t> preimages;
  for (size_t s : unset_bits) {
    for (size_t i = 0; i < family.k(); ++i) {
      CountInversion(counters);
      preimages.clear();
      const Status st = family.Preimages(i, s, namespace_size_, &preimages);
      if (!st.ok()) return st;
      for (uint64_t x : preimages) excluded[x] = true;
    }
  }
  std::vector<uint64_t> out;
  for (uint64_t x = 0; x < namespace_size_; ++x) {
    if (!excluded[x]) out.push_back(x);
  }
  return out;
}

}  // namespace bloomsample
