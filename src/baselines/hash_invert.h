// HashInvert baseline (Section 4) — requires a weakly invertible family.
//
// Sampling: pick a random SET bit s of the query filter, invert it under
// each of the k hash functions into candidate sets P_1(s)..P_k(s), prune
// each candidate with a membership query, and return a uniform draw from
// the union of survivors. No uniformity guarantee (elements covered by
// popular bits are over-represented) — the paper states this explicitly.
//
// Reconstruction: run the inversion over *all* set bits and keep the
// positives. Dense-filter trick: when more than half the bits are set it is
// cheaper to invert the UNSET bits — any key hashing to an unset bit is
// certainly absent — and emit the complement. Both paths return exactly
// S ∪ S(B). Mode is selectable or automatic on fill fraction.
#ifndef BLOOMSAMPLE_BASELINES_HASH_INVERT_H_
#define BLOOMSAMPLE_BASELINES_HASH_INVERT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace bloomsample {

class HashInvert {
 public:
  enum class ReconstructMode {
    kAuto,       ///< set bits when fill ≤ 1/2, unset bits otherwise
    kSetBits,    ///< invert set bits, keep membership-positives
    kUnsetBits,  ///< invert unset bits, return namespace complement
  };

  explicit HashInvert(uint64_t namespace_size)
      : namespace_size_(namespace_size) {}

  /// Samples from S ∪ S(B). Fails with Unsupported when the query's hash
  /// family is not invertible. Returns nullopt (inside Result) never —
  /// an empty filter yields NotFound.
  Result<uint64_t> Sample(const BloomFilter& query, Rng* rng,
                          OpCounters* counters = nullptr) const;

  /// Exactly S ∪ S(B), ascending. Unsupported for non-invertible families.
  Result<std::vector<uint64_t>> Reconstruct(
      const BloomFilter& query, ReconstructMode mode = ReconstructMode::kAuto,
      OpCounters* counters = nullptr) const;

  uint64_t namespace_size() const { return namespace_size_; }

 private:
  uint64_t namespace_size_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BASELINES_HASH_INVERT_H_
