// DictionaryAttack baseline (Section 4).
//
// Fires a membership query for every element of the namespace [0, M).
// Sampling keeps a reservoir over the positives (exactly uniform over
// S ∪ S(B)); reconstruction collects them all (exactly S ∪ S(B)).
// Cost: M membership queries — the O(M) wall the paper's tree beats.
//
// Because its output is *exact* by construction, the test suite uses
// DictionaryAttack::Reconstruct as ground truth for every other method.
#ifndef BLOOMSAMPLE_BASELINES_DICTIONARY_ATTACK_H_
#define BLOOMSAMPLE_BASELINES_DICTIONARY_ATTACK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"

namespace bloomsample {

class DictionaryAttack {
 public:
  /// namespace_size is M: queries cover [0, M).
  explicit DictionaryAttack(uint64_t namespace_size)
      : namespace_size_(namespace_size) {}

  /// Uniform sample from S ∪ S(B), or nullopt when the filter answers
  /// negative for the whole namespace (empty filter).
  std::optional<uint64_t> Sample(const BloomFilter& query, Rng* rng,
                                 OpCounters* counters = nullptr) const;

  /// r samples without replacement (fewer if |S ∪ S(B)| < r), in one pass.
  std::vector<uint64_t> SampleMany(const BloomFilter& query, size_t r,
                                   Rng* rng,
                                   OpCounters* counters = nullptr) const;

  /// The full positive set S ∪ S(B), ascending.
  std::vector<uint64_t> Reconstruct(const BloomFilter& query,
                                    OpCounters* counters = nullptr) const;

  uint64_t namespace_size() const { return namespace_size_; }

 private:
  uint64_t namespace_size_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BASELINES_DICTIONARY_ATTACK_H_
