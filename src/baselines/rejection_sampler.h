// Rejection sampling — the baseline the paper does not consider, added
// here because our uniformity analysis (EXPERIMENTS.md, Table 5) shows it
// dominates in exactly the regime where BSTSample's estimates go blind.
//
// Algorithm: draw ids uniformly from the namespace (or from the occupied
// list, when one exists) and return the first that answers the membership
// query positively. The output is EXACTLY uniform over S ∪ S(B) — trivially,
// since every id has identical acceptance probability — and the expected
// cost is M / |S ∪ S(B)| membership queries per sample: ~900 at the
// paper's default cell (M=1e6, n=1000, accuracy 0.9), i.e. comparable to
// BSTSample's cost with a hard uniformity guarantee instead of a
// parameter-dependent approximation, and with zero index memory.
//
// BSTSample still wins when (a) samples must come from specific subranges
// (the tree prunes structurally), or (b) the positive set is so sparse
// that M/|pop| rejections exceed the tree's guided descent AND the
// estimates carry signal. For plain "give me a uniform member" workloads,
// this is the recommended sampler.
#ifndef BLOOMSAMPLE_BASELINES_REJECTION_SAMPLER_H_
#define BLOOMSAMPLE_BASELINES_REJECTION_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"

namespace bloomsample {

class RejectionSampler {
 public:
  /// Samples uniformly from [0, namespace_size).
  explicit RejectionSampler(uint64_t namespace_size)
      : namespace_size_(namespace_size), occupied_(nullptr) {}

  /// Samples uniformly from the occupied list (the pruned-tree setting).
  /// `occupied` must outlive the sampler and be non-empty.
  explicit RejectionSampler(const std::vector<uint64_t>* occupied)
      : namespace_size_(0), occupied_(occupied) {
    BSR_CHECK(occupied != nullptr && !occupied->empty(),
              "RejectionSampler needs a non-empty occupied list");
  }

  /// An exactly-uniform sample from S ∪ S(B) (∩ occupied, if set), or
  /// nullopt if no positive was found within max_attempts draws.
  /// max_attempts = 0 uses 64 · (candidate pool size) — the failure
  /// probability for a single surviving positive is then e^{-64}.
  std::optional<uint64_t> Sample(const BloomFilter& query, Rng* rng,
                                 OpCounters* counters = nullptr,
                                 uint64_t max_attempts = 0) const;

  /// r exactly-uniform samples with replacement.
  std::vector<uint64_t> SampleMany(const BloomFilter& query, size_t r,
                                   Rng* rng,
                                   OpCounters* counters = nullptr) const;

 private:
  uint64_t PoolSize() const {
    return occupied_ != nullptr ? occupied_->size() : namespace_size_;
  }
  uint64_t Draw(Rng* rng) const {
    const uint64_t index = rng->Below(PoolSize());
    return occupied_ != nullptr ? (*occupied_)[index] : index;
  }

  uint64_t namespace_size_;
  const std::vector<uint64_t>* occupied_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BASELINES_REJECTION_SAMPLER_H_
