#include "src/baselines/rejection_sampler.h"

namespace bloomsample {

std::optional<uint64_t> RejectionSampler::Sample(const BloomFilter& query,
                                                 Rng* rng,
                                                 OpCounters* counters,
                                                 uint64_t max_attempts) const {
  if (PoolSize() == 0 || query.IsEmpty()) {
    CountNullSample(counters);
    return std::nullopt;
  }
  if (max_attempts == 0) max_attempts = 64 * PoolSize();
  for (uint64_t attempt = 0; attempt < max_attempts; ++attempt) {
    const uint64_t candidate = Draw(rng);
    CountMembership(counters);
    if (query.Contains(candidate)) return candidate;
  }
  CountNullSample(counters);
  return std::nullopt;
}

std::vector<uint64_t> RejectionSampler::SampleMany(const BloomFilter& query,
                                                   size_t r, Rng* rng,
                                                   OpCounters* counters) const {
  std::vector<uint64_t> out;
  out.reserve(r);
  for (size_t i = 0; i < r; ++i) {
    const auto sample = Sample(query, rng, counters);
    if (!sample.has_value()) break;  // pool exhausted of positives
    out.push_back(*sample);
  }
  return out;
}

}  // namespace bloomsample
