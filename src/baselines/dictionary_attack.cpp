#include "src/baselines/dictionary_attack.h"

#include "src/sampling/reservoir.h"

namespace bloomsample {

std::optional<uint64_t> DictionaryAttack::Sample(const BloomFilter& query,
                                                 Rng* rng,
                                                 OpCounters* counters) const {
  ReservoirSampler reservoir(rng);
  for (uint64_t x = 0; x < namespace_size_; ++x) {
    CountMembership(counters);
    if (query.Contains(x)) reservoir.Offer(x);
  }
  return reservoir.sample();
}

std::vector<uint64_t> DictionaryAttack::SampleMany(const BloomFilter& query,
                                                   size_t r, Rng* rng,
                                                   OpCounters* counters) const {
  MultiReservoirSampler reservoir(r, rng);
  for (uint64_t x = 0; x < namespace_size_; ++x) {
    CountMembership(counters);
    if (query.Contains(x)) reservoir.Offer(x);
  }
  return reservoir.samples();
}

std::vector<uint64_t> DictionaryAttack::Reconstruct(const BloomFilter& query,
                                                    OpCounters* counters) const {
  std::vector<uint64_t> out;
  for (uint64_t x = 0; x < namespace_size_; ++x) {
    CountMembership(counters);
    if (query.Contains(x)) out.push_back(x);
  }
  return out;
}

}  // namespace bloomsample
