// bsrd — the long-lived BloomSampleTree serving daemon, engineered for
// graceful degradation rather than raw throughput.
//
// Architecture: one event-loop thread (epoll on Linux, poll elsewhere)
// owns every socket — accepts, framed reads, framed writes, timeouts —
// and a small worker pool executes query passes. The two sides meet at a
// BOUNDED admission queue and per-connection outboxes:
//
//   clients ──frames──► event loop ──admit──► request queue (bounded)
//                           ▲                     │ workers
//                           │ wake pipe           ▼ execute under
//                           └── outbox append ── AcquireRead / pipeline
//
// Degradation ladder (the whole point):
//   * per-request DEADLINES travel in the frame; an expired request is
//     answered DEADLINE_EXCEEDED at whatever stage catches it — never
//     silently dropped;
//   * ADMISSION CONTROL sheds load: a full queue or a queue-wait over
//     budget answers OVERLOADED with a retry-after hint (the shed leg of
//     util/ingest_queue.h's block/timeout/shed trichotomy) — the daemon
//     degrades to fast refusals instead of collapsing into timeouts;
//   * idle connections and slow-loris partial frames are closed on
//     timeouts; a stalled reader whose outbox exceeds its cap is killed
//     rather than allowed to buffer the server out of memory;
//   * SIGTERM → RequestDrain(): stop accepting, answer queued requests,
//     finish in-flight ones within the drain budget, then close;
//   * SIGHUP → RequestSwap(): IngestPipeline::HotSwapFromDisk — readers
//     mid-pass finish on the old tree, new requests land on the new one;
//   * STATS surfaces lane latches, scrubber state, and queue depths, so
//     a degraded daemon is observable, not silent.
//
// Query execution reuses the PR 4 batched-sampling engine: pending SAMPLE
// requests that share a query filter are coalesced into ONE frontier per
// tree pass (SampleBatchPrepared with per-request RNG streams), so the
// response bytes are bit-identical to each request running alone —
// coalescing is invisible to clients, including across a hot swap.
// QueryContexts are pooled per (tree, filter digest): a warm context
// serves every draw at O(depth) with zero kernel invocations.
#ifndef BLOOMSAMPLE_SERVER_SERVER_H_
#define BLOOMSAMPLE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/ingest_pipeline.h"
#include "src/core/query_context.h"
#include "src/core/scrubber.h"
#include "src/server/protocol.h"
#include "src/util/status.h"

namespace bloomsample {
namespace server {

struct ServerOptions {
  /// "unix:/path/to.sock" or "host:port" ("127.0.0.1:0" picks an
  /// ephemeral port, reported by BsrServer::address()).
  std::string listen = "127.0.0.1:0";
  int backlog = 128;
  size_t workers = 2;

  /// Admission queue bound — beyond it requests are shed immediately
  /// with OVERLOADED (+ retry_after_ms), the knee the serve bench maps.
  size_t queue_capacity = 256;
  /// A request that waited longer than this in the queue is shed on
  /// dequeue: by then the client is better served by a fast OVERLOADED
  /// than by a stale answer.
  std::chrono::milliseconds queue_wait_budget{500};
  /// Retry-after hint carried in OVERLOADED/SHUTTING_DOWN responses.
  uint32_t retry_after_ms = 50;

  /// Connections with no traffic and no requests in flight are closed.
  std::chrono::milliseconds idle_timeout{60000};
  /// Slow-loris guard: max time a PARTIAL frame may dribble in.
  std::chrono::milliseconds read_timeout{5000};
  /// SIGTERM drain: in-flight and queued requests get this long to
  /// finish before the daemon closes anyway.
  std::chrono::milliseconds drain_budget{5000};

  uint32_t max_payload_bytes = 16u << 20;
  /// A reader that stops draining responses is disconnected once its
  /// outbox exceeds this (a slow client must not buffer the server into
  /// the ground).
  size_t max_outbox_bytes = 8u << 20;
  size_t max_connections = 1024;

  /// Max requests a worker drains (and coalesces) per queue pass.
  size_t max_batch = 64;
  /// Pooled QueryContexts (per tree generation × filter digest, LRU).
  size_t context_cache_capacity = 8;

  /// How RequestSwap reloads the snapshot.
  LoadOptions reload = LoadOptions::FromEnv();

  /// Test hook: runs in a worker immediately before each request
  /// executes — a deterministic way to hold requests in the queue so
  /// deadline/overload paths trigger on demand.
  std::function<void()> pre_execute_delay_for_test;
};

/// One consistent read of the server's counters (STATS prints these).
struct ServerStatsSnapshot {
  uint64_t accepted = 0;
  uint64_t active_connections = 0;
  uint64_t frames_in = 0;
  uint64_t responses_out = 0;
  uint64_t shed_queue_full = 0;
  uint64_t shed_queue_wait = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t bad_frames = 0;
  uint64_t idle_closed = 0;
  uint64_t read_timeout_closed = 0;
  uint64_t stalled_closed = 0;
  uint64_t swaps = 0;
  uint64_t sample_batches = 0;    ///< coalesced tree passes executed
  uint64_t sample_requests = 0;   ///< SAMPLE requests inside them
  uint64_t queue_depth = 0;
};

class BsrServer {
 public:
  /// Binds, starts the loop and workers, returns serving. The pipeline
  /// must be a single-tree pipeline (forest serving is a ROADMAP item)
  /// and must outlive the server.
  static Result<std::unique_ptr<BsrServer>> Start(IngestPipeline* pipeline,
                                                  ServerOptions options);

  ~BsrServer();
  BsrServer(const BsrServer&) = delete;
  BsrServer& operator=(const BsrServer&) = delete;

  /// Graceful drain (the SIGTERM path): stop accepting, answer what is
  /// queued or in flight within the drain budget, close everything, stop.
  /// Async-signal-UNSAFE; signal handlers use RequestDrainAsync.
  void RequestDrain();
  /// Hot snapshot swap (the SIGHUP path): schedules
  /// IngestPipeline::HotSwapFromDisk on the admin thread. Serving
  /// continues throughout; in-flight passes finish on the old tree.
  void RequestSwap();

  /// Async-signal-safe flavors: set a flag and poke the wake pipe with
  /// one write(2) — everything else happens on the event loop.
  void RequestDrainAsync();
  void RequestSwapAsync();

  /// Hard stop (the fault harness's kill): close every socket now,
  /// in-flight requests and unflushed responses are dropped.
  void Abort();

  /// Blocks until the loop exits (drain completed or Abort).
  Status Wait();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound address, normalized: "unix:/path" or "127.0.0.1:41573"
  /// (ephemeral port resolved).
  const std::string& address() const { return address_; }

  /// Optional: surfaced through STATS when attached (not owned).
  void set_scrubber(const Scrubber* scrubber) { scrubber_ = scrubber; }

  ServerStatsSnapshot stats() const;

 private:
  struct Conn;
  struct Request;

  /// Pooled QueryContexts: keyed by filter digest, validated against the
  /// current tree handle (a swap naturally invalidates entries). LRU.
  struct PooledContext {
    uint64_t filter_digest = 0;
    std::shared_ptr<const BloomSampleTree> tree;
    std::unique_ptr<BloomFilter> filter;
    std::unique_ptr<QueryContext> ctx;
  };

  explicit BsrServer(IngestPipeline* pipeline, ServerOptions options);

  Status Listen();
  void LoopBody();
  void WorkerBody();
  void AdminBody();

  void AcceptReady();
  void ReadReady(const std::shared_ptr<Conn>& conn);
  void WriteReady(const std::shared_ptr<Conn>& conn);
  /// Parses complete frames out of conn->inbuf; admits/answers/sheds.
  void DrainInbuf(const std::shared_ptr<Conn>& conn);
  void Admit(const std::shared_ptr<Conn>& conn, const DecodedHeader& decoded,
             std::vector<uint8_t> payload);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  void SweepTimeouts();
  void FlushWakes();
  /// Keeps the poller's write interest in sync with the outbox.
  void UpdateWriteInterest(const std::shared_ptr<Conn>& conn);

  /// Thread-safe response enqueue (workers and the loop both use it).
  void SendResponse(const std::shared_ptr<Conn>& conn, Opcode opcode,
                    uint64_t request_id, WireStatus status,
                    uint32_t retry_after_ms, const uint8_t* payload,
                    size_t payload_len);
  void SendError(const std::shared_ptr<Conn>& conn, Opcode opcode,
                 uint64_t request_id, WireStatus status,
                 const std::string& message, uint32_t retry_after_ms = 0);

  void ExecuteBatch(std::vector<std::unique_ptr<Request>> batch);
  void ExecuteSampleGroup(const std::vector<Request*>& group);
  void ExecuteOne(Request* req);
  /// Looks up (or builds) the pooled context for a filter against the
  /// guarded tree generation.
  Result<std::shared_ptr<PooledContext>> GetContext(
      const IngestPipeline::ReadGuard& guard, uint64_t filter_digest,
      const std::vector<uint8_t>& filter_bytes);
  std::string BuildStatsText() const;

  void WakeLoop();

  IngestPipeline* const pipeline_;
  const ServerOptions options_;
  const Scrubber* scrubber_ = nullptr;

  int listen_fd_ = -1;
  /// epoll instance (Linux); -1 under the poll fallback.
  int epoll_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::string address_;
  std::string unix_path_;  ///< unlinked on shutdown when non-empty

  std::thread loop_;
  std::vector<std::thread> workers_;
  /// Drain and swap run here so neither stalls frame parsing.
  std::thread admin_;
  std::mutex admin_mu_;
  std::condition_variable admin_cv_;
  bool admin_stop_ = false;
  bool swap_queued_ = false;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_async_{false};
  std::atomic<bool> swap_async_{false};
  std::atomic<bool> aborted_{false};
  std::chrono::steady_clock::time_point drain_deadline_;

  /// Loop-owned connection table (only the loop thread touches it).
  std::unordered_map<int, std::shared_ptr<Conn>> conns_;

  /// Admission queue. Guarded by queue_mu_ (mutable: STATS reads the
  /// depth through const paths).
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  bool queue_closed_ = false;

  /// Requests admitted but not yet answered (drain waits on zero).
  std::atomic<uint64_t> in_flight_{0};

  /// Conns with responses to flush, handed from workers to the loop.
  std::mutex dirty_mu_;
  std::vector<std::shared_ptr<Conn>> dirty_;

  /// See PooledContext: entries are shared so a worker can keep using a
  /// context the LRU has already evicted.
  std::mutex ctx_mu_;
  std::list<std::shared_ptr<PooledContext>> ctx_pool_;

  mutable std::mutex stats_mu_;
  ServerStatsSnapshot stats_;

  Status terminal_status_;
};

/// Installs SIGTERM → drain and SIGHUP → swap handlers routing to
/// `server` (async-signal-safe: the handlers only set flags and poke the
/// wake pipe). One server at a time; RestoreSignalHandlers undoes it.
void InstallSignalHandlers(BsrServer* server);
void RestoreSignalHandlers();

}  // namespace server
}  // namespace bloomsample

#endif  // BLOOMSAMPLE_SERVER_SERVER_H_
