// BsrClient — the blocking client for the bsrd wire protocol, used by
// `bsr client`, the serve bench, and the fault-injection tests.
//
// Failure policy (the part worth reading): every call carries a connect
// timeout, a request timeout, and a bounded exponential-backoff retry
// budget — but retries are governed by SAFETY, not hope:
//   * IDEMPOTENT ops (PING, SAMPLE, RECONSTRUCT, STATS) retry on
//     OVERLOADED / SHUTTING_DOWN responses and on connect/transport
//     failures — re-executing them cannot change server state.
//   * MUTATIONS (INSERT, REMOVE) retry ONLY on an explicit OVERLOADED /
//     SHUTTING_DOWN response: the server refused the request before
//     executing it, so resending cannot double-apply. A transport
//     failure mid-request is AMBIGUOUS (the mutation may have committed
//     before the connection died) and is returned to the caller, never
//     retried blindly.
// An OVERLOADED response's retry-after hint stretches the backoff floor,
// so a shedding server shapes its own retry traffic.
#ifndef BLOOMSAMPLE_SERVER_CLIENT_H_
#define BLOOMSAMPLE_SERVER_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/server/protocol.h"
#include "src/util/status.h"

namespace bloomsample {
namespace server {

struct ClientOptions {
  std::chrono::milliseconds connect_timeout{1000};
  /// Covers one request/response round trip (send + recv budgets).
  std::chrono::milliseconds request_timeout{5000};
  /// Retry attempts AFTER the first try; 0 disables retries.
  uint32_t max_retries = 3;
  /// First backoff; doubles per retry, stretched to the server's
  /// retry-after hint when one arrives.
  std::chrono::milliseconds backoff_base{10};
  /// Deadline carried in every request frame (0 = none): the server
  /// answers DEADLINE_EXCEEDED instead of serving a stale reply.
  uint32_t deadline_ms = 0;
};

class BsrClient {
 public:
  /// Connects to "unix:/path" or "host:port".
  static Result<std::unique_ptr<BsrClient>> Connect(std::string address,
                                                    ClientOptions options);
  ~BsrClient();
  BsrClient(const BsrClient&) = delete;
  BsrClient& operator=(const BsrClient&) = delete;

  Status Ping();
  /// `filter` is SerializeBloomFilter bytes (the raw filter file).
  Result<std::vector<std::optional<uint64_t>>> Sample(
      const std::vector<uint8_t>& filter, uint32_t count, uint64_t seed);
  Result<std::vector<uint64_t>> Reconstruct(const std::vector<uint8_t>& filter,
                                            bool exact);
  /// Returns the number applied; a partial failure surfaces the server's
  /// applied-count message in the status.
  Status Insert(const std::vector<uint64_t>& ids);
  Status Remove(const std::vector<uint64_t>& ids);
  Result<std::string> Stats();

  /// Retries performed over this client's lifetime (tests assert on it).
  uint64_t retry_count() const { return retries_; }

  void Close();

 private:
  BsrClient(std::string address, ClientOptions options);

  /// One full op with the retry policy applied. `response_payload` gets
  /// the payload of an OK response.
  Status Call(Opcode opcode, const std::vector<uint8_t>& payload,
              std::vector<uint8_t>* response_payload);
  /// One attempt on the current connection (reconnecting if needed).
  Status CallOnce(Opcode opcode, const std::vector<uint8_t>& payload,
                  std::vector<uint8_t>* response_payload,
                  WireStatus* wire_status, uint32_t* retry_after_ms);
  Status EnsureConnected();
  Status SendAll(const uint8_t* data, size_t len);
  Status RecvAll(uint8_t* data, size_t len);

  const std::string address_;
  const ClientOptions options_;
  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  uint64_t retries_ = 0;
};

}  // namespace server
}  // namespace bloomsample

#endif  // BLOOMSAMPLE_SERVER_CLIENT_H_
