#include "src/server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>

namespace bloomsample {
namespace server {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno))
      .WithErrno(errno);
}

/// connect(2) with a timeout: nonblocking connect, poll for writability,
/// then read SO_ERROR for the real verdict.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t len,
                          std::chrono::milliseconds timeout) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (connect(fd, addr, len) != 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect");
    pollfd p{fd, POLLOUT, 0};
    const int n = poll(&p, 1, static_cast<int>(timeout.count()));
    if (n == 0) return Status::ResourceExhausted("connect timed out");
    if (n < 0) return ErrnoStatus("poll");
    int err = 0;
    socklen_t elen = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &elen);
    if (err != 0) {
      errno = err;
      return ErrnoStatus("connect");
    }
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking; timeouts via SO_*TIMEO
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<BsrClient>> BsrClient::Connect(std::string address,
                                                      ClientOptions options) {
  std::unique_ptr<BsrClient> c(
      new BsrClient(std::move(address), std::move(options)));
  const Status st = c->EnsureConnected();
  if (!st.ok()) return st;
  return c;
}

BsrClient::BsrClient(std::string address, ClientOptions options)
    : address_(std::move(address)), options_(std::move(options)) {}

BsrClient::~BsrClient() { Close(); }

void BsrClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status BsrClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  int fd;
  Status st;
  if (address_.rfind("unix:", 0) == 0) {
    const std::string path = address_.substr(5);
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::memcpy(addr.sun_path, path.data(), path.size());
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket");
    st = ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), options_.connect_timeout);
  } else {
    const size_t colon = address_.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "address must be unix:/path or host:port");
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(
        static_cast<uint16_t>(std::atoi(address_.substr(colon + 1).c_str())));
    if (inet_pton(AF_INET, address_.substr(0, colon).c_str(),
                  &addr.sin_addr) != 1) {
      return Status::InvalidArgument("unparseable host in " + address_);
    }
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return ErrnoStatus("socket");
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    st = ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr), options_.connect_timeout);
  }
  if (!st.ok()) {
    close(fd);
    return st;
  }
  timeval tv;
  tv.tv_sec = options_.request_timeout.count() / 1000;
  tv.tv_usec = (options_.request_timeout.count() % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  fd_ = fd;
  return Status::OK();
}

Status BsrClient::SendAll(const uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::ResourceExhausted("send timed out");
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Status BsrClient::RecvAll(uint8_t* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = recv(fd_, data + off, len - off, 0);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Internal("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::ResourceExhausted("request timed out");
    }
    return ErrnoStatus("recv");
  }
  return Status::OK();
}

Status BsrClient::CallOnce(Opcode opcode,
                           const std::vector<uint8_t>& payload,
                           std::vector<uint8_t>* response_payload,
                           WireStatus* wire_status,
                           uint32_t* retry_after_ms) {
  *wire_status = WireStatus::kInternal;
  *retry_after_ms = 0;
  Status st = EnsureConnected();
  if (!st.ok()) return st;

  FrameHeader h;
  h.opcode = opcode;
  h.request_id = next_request_id_++;
  h.budget_ms = options_.deadline_ms;
  h.payload_len = static_cast<uint32_t>(payload.size());
  std::vector<uint8_t> frame;
  EncodeFrame(h, payload.data(), payload.size(), &frame);
  st = SendAll(frame.data(), frame.size());
  if (!st.ok()) {
    Close();  // transport state unknown; next attempt reconnects
    return st;
  }

  uint8_t header_bytes[kFrameHeaderBytes];
  st = RecvAll(header_bytes, sizeof(header_bytes));
  if (!st.ok()) {
    Close();
    return st;
  }
  DecodedHeader decoded;
  st = DecodeHeader(header_bytes, sizeof(header_bytes),
                    /*max_payload=*/256u << 20, &decoded);
  if (!st.ok()) {
    Close();
    return st;
  }
  std::vector<uint8_t> resp(decoded.header.payload_len);
  if (!resp.empty()) {
    st = RecvAll(resp.data(), resp.size());
    if (!st.ok()) {
      Close();
      return st;
    }
  }
  if (FrameDigest(header_bytes, resp.data(), resp.size()) != decoded.digest) {
    Close();
    return Status::Internal("response frame digest mismatch");
  }
  if (decoded.header.request_id != h.request_id) {
    Close();
    return Status::Internal("response for a different request id");
  }
  *wire_status = decoded.header.status;
  *retry_after_ms = decoded.header.budget_ms;
  if (decoded.header.status == WireStatus::kOk) {
    *response_payload = std::move(resp);
    return Status::OK();
  }
  return StatusFromWire(decoded.header.status,
                        std::string(resp.begin(), resp.end()));
}

Status BsrClient::Call(Opcode opcode, const std::vector<uint8_t>& payload,
                       std::vector<uint8_t>* response_payload) {
  std::chrono::milliseconds backoff = options_.backoff_base;
  Status last;
  for (uint32_t attempt = 0;; ++attempt) {
    WireStatus ws;
    uint32_t retry_after_ms;
    last = CallOnce(opcode, payload, response_payload, &ws, &retry_after_ms);
    if (last.ok()) return last;
    if (attempt >= options_.max_retries) return last;

    // The retry gate. A definitive refusal (OVERLOADED/SHUTTING_DOWN)
    // means the server did NOT execute the request — safe for any op. A
    // transport failure leaves execution ambiguous — only idempotent ops
    // may re-ask; a mutation must hand the ambiguity to the caller.
    const bool refused = ws == WireStatus::kOverloaded ||
                         ws == WireStatus::kShuttingDown;
    const bool transport = ws == WireStatus::kInternal && !last.ok() &&
                           fd_ < 0;  // CallOnce closed the socket
    if (!refused && !(transport && OpcodeIdempotent(opcode))) return last;

    ++retries_;
    std::chrono::milliseconds wait = backoff;
    if (retry_after_ms > 0) {
      wait = std::max(wait, std::chrono::milliseconds(retry_after_ms));
    }
    std::this_thread::sleep_for(wait);
    backoff *= 2;
  }
}

Status BsrClient::Ping() {
  std::vector<uint8_t> resp;
  return Call(Opcode::kPing, {}, &resp);
}

Result<std::vector<std::optional<uint64_t>>> BsrClient::Sample(
    const std::vector<uint8_t>& filter, uint32_t count, uint64_t seed) {
  SampleRequest req;
  req.count = count;
  req.seed = seed;
  req.filter = filter;
  std::vector<uint8_t> payload, resp;
  EncodeSampleRequest(req, &payload);
  const Status st = Call(Opcode::kSample, payload, &resp);
  if (!st.ok()) return st;
  std::vector<std::optional<uint64_t>> draws;
  const Status dec = DecodeDraws(resp.data(), resp.size(), &draws);
  if (!dec.ok()) return dec;
  return draws;
}

Result<std::vector<uint64_t>> BsrClient::Reconstruct(
    const std::vector<uint8_t>& filter, bool exact) {
  ReconstructRequest req;
  req.exact = exact;
  req.filter = filter;
  std::vector<uint8_t> payload, resp;
  EncodeReconstructRequest(req, &payload);
  const Status st = Call(Opcode::kReconstruct, payload, &resp);
  if (!st.ok()) return st;
  std::vector<uint64_t> ids;
  const Status dec = DecodeIdList(resp.data(), resp.size(), &ids);
  if (!dec.ok()) return dec;
  return ids;
}

Status BsrClient::Insert(const std::vector<uint64_t>& ids) {
  std::vector<uint8_t> payload, resp;
  EncodeIdList(ids, &payload);
  return Call(Opcode::kInsert, payload, &resp);
}

Status BsrClient::Remove(const std::vector<uint64_t>& ids) {
  std::vector<uint8_t> payload, resp;
  EncodeIdList(ids, &payload);
  return Call(Opcode::kRemove, payload, &resp);
}

Result<std::string> BsrClient::Stats() {
  std::vector<uint8_t> resp;
  const Status st = Call(Opcode::kStats, {}, &resp);
  if (!st.ok()) return st;
  return std::string(resp.begin(), resp.end());
}

}  // namespace server
}  // namespace bloomsample
