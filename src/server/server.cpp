#include "src/server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <sstream>

#include "src/bloom/bloom_io.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/util/rng.h"
#include "src/util/xxhash64.h"

#if defined(__linux__)
#include <sys/epoll.h>
#define BSR_SERVER_EPOLL 1
#endif

namespace bloomsample {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-request draw-count cap: bounds the frontier (and the response) a
/// single SAMPLE frame can demand, so a hostile count can't allocate
/// gigabytes. Generous — a million draws is far past any real batch.
constexpr uint32_t kMaxSampleCount = 1u << 20;

Status ErrnoStatus(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno))
      .WithErrno(errno);
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  fcntl(fd, F_SETFD, FD_CLOEXEC);
}

}  // namespace

/// One accepted connection. The event loop owns the read side and the
/// table entry; workers only touch the outbox (under out_mu) and the
/// atomics — a worker never closes an fd, it marks the conn and wakes
/// the loop.
struct BsrServer::Conn {
  int fd = -1;
  std::vector<uint8_t> inbuf;
  Clock::time_point last_activity;
  /// When the current PARTIAL frame started dribbling in (slow-loris
  /// clock); meaningful while mid_frame.
  Clock::time_point frame_start;
  bool mid_frame = false;
  bool want_write = false;        ///< loop-owned: registered for EPOLLOUT
  bool close_after_flush = false; ///< loop-owned: protocol error sent
  std::atomic<bool> closed{false};
  std::atomic<bool> kill_stalled{false};
  std::atomic<int> in_flight{0};

  std::mutex out_mu;
  std::vector<uint8_t> out;
  size_t out_off = 0;

  size_t PendingOut() {
    std::lock_guard<std::mutex> lock(out_mu);
    return out.size() - out_off;
  }
};

/// One admitted request, queued loop → worker.
struct BsrServer::Request {
  std::shared_ptr<Conn> conn;
  FrameHeader header;
  std::vector<uint8_t> payload;
  Clock::time_point arrival;
  bool has_deadline = false;
  Clock::time_point deadline;

  // Decoded per-opcode forms (filled by the worker's first pass).
  SampleRequest sample;
  ReconstructRequest recon;
  std::vector<uint64_t> ids;
  uint64_t filter_digest = 0;
};

Result<std::unique_ptr<BsrServer>> BsrServer::Start(IngestPipeline* pipeline,
                                                    ServerOptions options) {
  if (pipeline == nullptr) {
    return Status::InvalidArgument("bsrd requires an ingest pipeline");
  }
  if (pipeline->lane_count() != 1) {
    return Status::Unsupported(
        "bsrd serves single-tree pipelines; forest serving is a roadmap "
        "item");
  }
  if (options.workers == 0) options.workers = 1;
  std::unique_ptr<BsrServer> s(new BsrServer(pipeline, std::move(options)));
  const Status st = s->Listen();
  if (!st.ok()) return st;
  int pipefd[2];
  if (pipe(pipefd) != 0) return ErrnoStatus("pipe");
  s->wake_read_fd_ = pipefd[0];
  s->wake_write_fd_ = pipefd[1];
  SetNonBlocking(s->wake_read_fd_);
  SetNonBlocking(s->wake_write_fd_);
#if BSR_SERVER_EPOLL
  // Created here, not in the loop thread: every descriptor the daemon
  // will hold exists before Start returns, so callers can take an fd
  // census as a leak baseline.
  s->epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (s->epoll_fd_ < 0) return ErrnoStatus("epoll_create1");
#endif
  s->running_.store(true, std::memory_order_release);
  s->loop_ = std::thread(&BsrServer::LoopBody, s.get());
  for (size_t i = 0; i < s->options_.workers; ++i) {
    s->workers_.emplace_back(&BsrServer::WorkerBody, s.get());
  }
  s->admin_ = std::thread(&BsrServer::AdminBody, s.get());
  return s;
}

BsrServer::BsrServer(IngestPipeline* pipeline, ServerOptions options)
    : pipeline_(pipeline), options_(std::move(options)) {}

BsrServer::~BsrServer() {
  Abort();
  (void)Wait();
  if (wake_read_fd_ >= 0) close(wake_read_fd_);
  if (wake_write_fd_ >= 0) close(wake_write_fd_);
}

Status BsrServer::Listen() {
  const std::string& spec = options_.listen;
  if (spec.rfind("unix:", 0) == 0) {
    unix_path_ = spec.substr(5);
    if (unix_path_.empty()) {
      return Status::InvalidArgument("empty unix socket path");
    }
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (unix_path_.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long");
    }
    std::memcpy(addr.sun_path, unix_path_.data(), unix_path_.size());
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket");
    unlink(unix_path_.c_str());  // stale socket from a dead daemon
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status st = ErrnoStatus("bind " + unix_path_);
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    address_ = spec;
  } else {
    const size_t colon = spec.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument(
          "listen address must be unix:/path or host:port");
    }
    const std::string host = spec.substr(0, colon);
    const int port = std::atoi(spec.substr(colon + 1).c_str());
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      return Status::InvalidArgument("unparseable listen host: " + host);
    }
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return ErrnoStatus("socket");
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const Status st = ErrnoStatus("bind " + spec);
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    sockaddr_in bound;
    socklen_t blen = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    char ip[INET_ADDRSTRLEN];
    inet_ntop(AF_INET, &bound.sin_addr, ip, sizeof(ip));
    address_ = std::string(ip) + ":" + std::to_string(ntohs(bound.sin_port));
  }
  SetNonBlocking(listen_fd_);
  if (listen(listen_fd_, options_.backlog) != 0) {
    const Status st = ErrnoStatus("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  return Status::OK();
}

void BsrServer::WakeLoop() {
  if (wake_write_fd_ < 0) return;
  const char b = 'w';
  // EAGAIN just means the pipe already holds a wake-up; anything else is
  // a shutdown race the loop handles on its own clock.
  (void)write(wake_write_fd_, &b, 1);
}

void BsrServer::RequestDrainAsync() {
  drain_async_.store(true, std::memory_order_release);
  WakeLoop();
}

void BsrServer::RequestSwapAsync() {
  swap_async_.store(true, std::memory_order_release);
  WakeLoop();
}

void BsrServer::RequestDrain() { RequestDrainAsync(); }

void BsrServer::RequestSwap() { RequestSwapAsync(); }

void BsrServer::Abort() {
  aborted_.store(true, std::memory_order_release);
  drain_async_.store(true, std::memory_order_release);
  WakeLoop();
}

Status BsrServer::Wait() {
  if (loop_.joinable()) loop_.join();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    std::lock_guard<std::mutex> lock(admin_mu_);
    admin_stop_ = true;
  }
  admin_cv_.notify_all();
  if (admin_.joinable()) admin_.join();
  return terminal_status_;
}

ServerStatsSnapshot BsrServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

// --- event loop --------------------------------------------------------

namespace {

#if BSR_SERVER_EPOLL
void EpollCtl(int ep, int op, int fd, uint32_t events) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  epoll_ctl(ep, op, fd, &ev);
}
#endif

}  // namespace

void BsrServer::UpdateWriteInterest(const std::shared_ptr<Conn>& conn) {
  const bool want = conn->PendingOut() > 0;
  if (conn->want_write == want) return;
  conn->want_write = want;
#if BSR_SERVER_EPOLL
  EpollCtl(epoll_fd_, EPOLL_CTL_MOD, conn->fd,
           EPOLLIN | (want ? EPOLLOUT : 0u));
#endif
}

void BsrServer::LoopBody() {
#if BSR_SERVER_EPOLL
  EpollCtl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, EPOLLIN);
  EpollCtl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, EPOLLIN);
#endif
  bool listening = true;

  auto close_listen = [&] {
    if (!listening) return;
    listening = false;
#if BSR_SERVER_EPOLL
    EpollCtl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, 0);
#endif
    close(listen_fd_);
    listen_fd_ = -1;
  };

  while (true) {
    if (swap_async_.exchange(false, std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> lock(admin_mu_);
      swap_queued_ = true;
      admin_cv_.notify_all();
    }
    if (drain_async_.exchange(false, std::memory_order_acq_rel) &&
        !draining_.load(std::memory_order_acquire)) {
      draining_.store(true, std::memory_order_release);
      drain_deadline_ = Clock::now() + options_.drain_budget;
      close_listen();
    }
    if (aborted_.load(std::memory_order_acquire)) break;
    if (draining_.load(std::memory_order_acquire)) {
      bool queue_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queue_empty = queue_.empty();
      }
      bool flushed = true;
      for (auto& [fd, conn] : conns_) {
        if (conn->PendingOut() > 0) {
          flushed = false;
          break;
        }
      }
      if ((queue_empty && in_flight_.load(std::memory_order_acquire) == 0 &&
           flushed) ||
          Clock::now() >= drain_deadline_) {
        break;
      }
    }

    // A short tick doubles as the timeout sweep cadence.
    constexpr int kTickMs = 20;
    std::vector<std::pair<int, uint32_t>> ready;  // fd → POLLIN|POLLOUT-ish
#if BSR_SERVER_EPOLL
    epoll_event events[64];
    const int n = epoll_wait(epoll_fd_, events, 64, kTickMs);
    for (int i = 0; i < n; ++i) {
      uint32_t mask = 0;
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) mask |= POLLIN;
      if (events[i].events & EPOLLOUT) mask |= POLLOUT;
      const int efd = events[i].data.fd;
      ready.emplace_back(efd, mask);
    }
#else
    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 2);
    if (listening) fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_read_fd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      fds.push_back({fd, static_cast<short>(POLLIN | (conn->want_write
                                                          ? POLLOUT
                                                          : 0)),
                     0});
    }
    const int n = poll(fds.data(), fds.size(), kTickMs);
    if (n > 0) {
      for (const pollfd& p : fds) {
        if (p.revents != 0) {
          uint32_t mask = 0;
          if (p.revents & (POLLIN | POLLERR | POLLHUP)) mask |= POLLIN;
          if (p.revents & POLLOUT) mask |= POLLOUT;
          ready.emplace_back(p.fd, mask);
        }
      }
    }
#endif

    for (const auto& [fd, mask] : ready) {
      if (fd == wake_read_fd_) {
        char buf[256];
        while (read(wake_read_fd_, buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_ && listening) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Conn> conn = it->second;
      if ((mask & POLLOUT) != 0) WriteReady(conn);
      if ((mask & POLLIN) != 0 && !conn->closed.load()) ReadReady(conn);
      if (!conn->closed.load()) UpdateWriteInterest(conn);
    }

    FlushWakes();
    // Re-evaluate write registration for conns workers just filled.
    for (auto& [fd, conn] : conns_) {
      if (!conn->closed.load()) UpdateWriteInterest(conn);
    }
    SweepTimeouts();
  }

  // Teardown. Workers are stopped via the closed queue (they answer what
  // is already popped; on abort they drop it), then every socket closes.
  close_listen();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_cv_.notify_all();
  std::vector<std::shared_ptr<Conn>> to_close;
  to_close.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) to_close.push_back(conn);
  for (auto& conn : to_close) {
    conn->closed.store(true, std::memory_order_release);
    close(conn->fd);
  }
  conns_.clear();
  if (!unix_path_.empty()) unlink(unix_path_.c_str());
#if BSR_SERVER_EPOLL
  close(epoll_fd_);
  epoll_fd_ = -1;
#endif
  running_.store(false, std::memory_order_release);
}

void BsrServer::AcceptReady() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    if (conns_.size() >= options_.max_connections ||
        draining_.load(std::memory_order_acquire)) {
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->last_activity = Clock::now();
    conns_[fd] = conn;
#if BSR_SERVER_EPOLL
    EpollCtl(epoll_fd_, EPOLL_CTL_ADD, fd, EPOLLIN);
#endif
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    stats_.active_connections = conns_.size();
  }
}

void BsrServer::ReadReady(const std::shared_ptr<Conn>& conn) {
  uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.insert(conn->inbuf.end(), buf, buf + n);
      conn->last_activity = Clock::now();
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      CloseConn(conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  DrainInbuf(conn);
}

void BsrServer::DrainInbuf(const std::shared_ptr<Conn>& conn) {
  size_t pos = 0;
  while (!conn->closed.load() && !conn->close_after_flush &&
         conn->inbuf.size() - pos >= kFrameHeaderBytes) {
    DecodedHeader decoded;
    const Status st =
        DecodeHeader(conn->inbuf.data() + pos, conn->inbuf.size() - pos,
                     options_.max_payload_bytes, &decoded);
    if (!st.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.bad_frames;
      }
      // The stream position cannot be trusted past a malformed header:
      // answer on the recovered request id (it may be garbage — the
      // client correlates or ignores) and hang up after the flush.
      SendError(conn, decoded.header.opcode, decoded.header.request_id,
                WireStatusFromStatus(st), st.message());
      conn->close_after_flush = true;
      break;
    }
    const size_t frame_len = kFrameHeaderBytes + decoded.header.payload_len;
    if (conn->inbuf.size() - pos < frame_len) break;  // partial frame
    const uint8_t* frame = conn->inbuf.data() + pos;
    const uint64_t digest = FrameDigest(frame, frame + kFrameHeaderBytes,
                                        decoded.header.payload_len);
    if (digest != decoded.digest) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.bad_frames;
      }
      SendError(conn, decoded.header.opcode, decoded.header.request_id,
                WireStatus::kInvalidArgument, "frame digest mismatch");
      conn->close_after_flush = true;
      break;
    }
    std::vector<uint8_t> payload(frame + kFrameHeaderBytes,
                                 frame + frame_len);
    pos += frame_len;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_in;
    }
    Admit(conn, decoded, std::move(payload));
  }
  if (pos > 0) {
    conn->inbuf.erase(conn->inbuf.begin(),
                      conn->inbuf.begin() + static_cast<ptrdiff_t>(pos));
  }
  const bool was_mid = conn->mid_frame;
  conn->mid_frame = !conn->inbuf.empty();
  if (conn->mid_frame && !was_mid) conn->frame_start = Clock::now();
}

void BsrServer::Admit(const std::shared_ptr<Conn>& conn,
                      const DecodedHeader& decoded,
                      std::vector<uint8_t> payload) {
  const FrameHeader& h = decoded.header;
  if (!OpcodeKnown(decoded.raw_opcode)) {
    // Unknown opcodes are per-frame errors — framing is intact, the
    // stream survives.
    SendError(conn, Opcode::kPing, h.request_id, WireStatus::kUnsupported,
              "unknown opcode " + std::to_string(decoded.raw_opcode));
    return;
  }
  if (draining_.load(std::memory_order_acquire)) {
    SendError(conn, h.opcode, h.request_id, WireStatus::kShuttingDown,
              "server is draining", options_.retry_after_ms);
    return;
  }
  // Cheap control-plane ops are answered on the loop thread: they must
  // work precisely when the workers are wedged behind a query storm.
  if (h.opcode == Opcode::kPing) {
    SendResponse(conn, h.opcode, h.request_id, WireStatus::kOk, 0, nullptr,
                 0);
    return;
  }
  if (h.opcode == Opcode::kStats) {
    const std::string text = BuildStatsText();
    SendResponse(conn, h.opcode, h.request_id, WireStatus::kOk, 0,
                 reinterpret_cast<const uint8_t*>(text.data()), text.size());
    return;
  }
  auto req = std::make_unique<Request>();
  req->conn = conn;
  req->header = h;
  req->payload = std::move(payload);
  req->arrival = Clock::now();
  if (h.budget_ms > 0) {
    req->has_deadline = true;
    req->deadline = req->arrival + std::chrono::milliseconds(h.budget_ms);
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!queue_closed_ && queue_.size() < options_.queue_capacity) {
      queue_.push_back(std::move(req));
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      queue_cv_.notify_one();
      return;
    }
  }
  // Queue full (or closing): shed NOW with a hint, instead of letting
  // the request age into a timeout — the fast-refusal knee the serve
  // bench maps.
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_queue_full;
  }
  SendError(conn, h.opcode, h.request_id, WireStatus::kOverloaded,
            "admission queue full", options_.retry_after_ms);
}

void BsrServer::WriteReady(const std::shared_ptr<Conn>& conn) {
  std::unique_lock<std::mutex> lock(conn->out_mu);
  while (conn->out_off < conn->out.size()) {
    const ssize_t n =
        send(conn->fd, conn->out.data() + conn->out_off,
             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      conn->last_activity = Clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EPIPE/ECONNRESET: the client vanished mid-response. Routine — drop
    // the conn, keep serving everyone else.
    lock.unlock();
    CloseConn(conn);
    return;
  }
  conn->out.clear();
  conn->out_off = 0;
  const bool close_now = conn->close_after_flush;
  lock.unlock();
  if (close_now) CloseConn(conn);
}

void BsrServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  conns_.erase(conn->fd);
  close(conn->fd);
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.active_connections = conns_.size();
}

void BsrServer::SweepTimeouts() {
  const auto now = Clock::now();
  std::vector<std::shared_ptr<Conn>> victims;
  uint64_t idle = 0, loris = 0;
  for (auto& [fd, conn] : conns_) {
    if (conn->closed.load()) continue;
    if (conn->mid_frame && now - conn->frame_start > options_.read_timeout) {
      ++loris;
      victims.push_back(conn);
      continue;
    }
    if (!conn->mid_frame && conn->in_flight.load() == 0 &&
        conn->PendingOut() == 0 &&
        now - conn->last_activity > options_.idle_timeout) {
      ++idle;
      victims.push_back(conn);
    }
  }
  if (!victims.empty()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.idle_closed += idle;
    stats_.read_timeout_closed += loris;
  }
  for (auto& conn : victims) CloseConn(conn);
}

void BsrServer::FlushWakes() {
  std::vector<std::shared_ptr<Conn>> dirty;
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty.swap(dirty_);
  }
  for (auto& conn : dirty) {
    if (conn->closed.load()) continue;
    if (conn->kill_stalled.load()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.stalled_closed;
      }
      CloseConn(conn);
      continue;
    }
    WriteReady(conn);
  }
}

// --- workers -----------------------------------------------------------

void BsrServer::WorkerBody() {
  while (true) {
    std::vector<std::unique_ptr<Request>> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [&] { return queue_closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      const size_t take = std::min(options_.max_batch, queue_.size());
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (aborted_.load(std::memory_order_acquire)) {
      for (auto& req : batch) {
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        req->conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
      }
      continue;
    }
    ExecuteBatch(std::move(batch));
  }
}

void BsrServer::SendResponse(const std::shared_ptr<Conn>& conn,
                             Opcode opcode, uint64_t request_id,
                             WireStatus status, uint32_t retry_after_ms,
                             const uint8_t* payload, size_t payload_len) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  FrameHeader h;
  h.opcode = opcode;
  h.status = status;
  h.request_id = request_id;
  h.budget_ms = retry_after_ms;
  h.payload_len = static_cast<uint32_t>(payload_len);
  bool stalled = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    EncodeFrame(h, payload, payload_len, &conn->out);
    stalled = conn->out.size() - conn->out_off > options_.max_outbox_bytes;
  }
  if (stalled) conn->kill_stalled.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(dirty_mu_);
    dirty_.push_back(conn);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.responses_out;
  }
  WakeLoop();
}

void BsrServer::SendError(const std::shared_ptr<Conn>& conn, Opcode opcode,
                          uint64_t request_id, WireStatus status,
                          const std::string& message,
                          uint32_t retry_after_ms) {
  SendResponse(conn, opcode, request_id, status, retry_after_ms,
               reinterpret_cast<const uint8_t*>(message.data()),
               message.size());
}

void BsrServer::ExecuteBatch(std::vector<std::unique_ptr<Request>> batch) {
  auto respond_error = [&](Request* req, WireStatus status,
                           const std::string& msg, uint32_t retry = 0) {
    SendError(req->conn, req->header.opcode, req->header.request_id, status,
              msg, retry);
  };
  auto finish = [&](Request* req) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    req->conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  };

  // Pass 1: per-request admission-at-execution — deadline and queue-wait
  // checks, payload decode. Survivors proceed; everyone else is ANSWERED
  // (never silently dropped).
  std::vector<Request*> runnable;
  runnable.reserve(batch.size());
  for (auto& req_ptr : batch) {
    Request* req = req_ptr.get();
    if (options_.pre_execute_delay_for_test) {
      options_.pre_execute_delay_for_test();
    }
    const auto now = Clock::now();
    if (req->has_deadline && now >= req->deadline) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.deadline_exceeded;
      }
      respond_error(req, WireStatus::kDeadlineExceeded,
                    "deadline expired before execution");
      finish(req);
      continue;
    }
    if (now - req->arrival > options_.queue_wait_budget) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.shed_queue_wait;
      }
      respond_error(req, WireStatus::kOverloaded,
                    "queue wait exceeded budget", options_.retry_after_ms);
      finish(req);
      continue;
    }
    Status decode = Status::OK();
    switch (req->header.opcode) {
      case Opcode::kSample:
        decode = DecodeSampleRequest(req->payload.data(),
                                     req->payload.size(), &req->sample);
        if (decode.ok() && req->sample.count > kMaxSampleCount) {
          decode = Status::InvalidArgument(
              "sample count " + std::to_string(req->sample.count) +
              " exceeds the per-request cap of " +
              std::to_string(kMaxSampleCount));
        }
        if (decode.ok()) {
          req->filter_digest = XxHash64::Hash(req->sample.filter.data(),
                                              req->sample.filter.size());
        }
        break;
      case Opcode::kReconstruct:
        decode = DecodeReconstructRequest(req->payload.data(),
                                          req->payload.size(), &req->recon);
        break;
      case Opcode::kInsert:
      case Opcode::kRemove:
        decode =
            DecodeIdList(req->payload.data(), req->payload.size(), &req->ids);
        break;
      default:
        decode = Status::InvalidArgument("opcode not executable");
        break;
    }
    if (!decode.ok()) {
      respond_error(req, WireStatusFromStatus(decode), decode.message());
      finish(req);
      continue;
    }
    runnable.push_back(req);
  }

  // Pass 2: coalesce SAMPLE requests that share a filter into one
  // frontier per tree pass; everything else runs in arrival order.
  std::vector<Request*> samples;
  for (Request* req : runnable) {
    if (req->header.opcode == Opcode::kSample) samples.push_back(req);
  }
  std::vector<bool> grouped(samples.size(), false);
  for (size_t i = 0; i < samples.size(); ++i) {
    if (grouped[i]) continue;
    std::vector<Request*> group;
    for (size_t j = i; j < samples.size(); ++j) {
      if (grouped[j]) continue;
      if (samples[j]->filter_digest == samples[i]->filter_digest &&
          samples[j]->sample.filter == samples[i]->sample.filter) {
        grouped[j] = true;
        group.push_back(samples[j]);
      }
    }
    const size_t group_size = group.size();
    ExecuteSampleGroup(group);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sample_batches;
    stats_.sample_requests += group_size;
  }
  for (Request* req : runnable) {
    if (req->header.opcode != Opcode::kSample) ExecuteOne(req);
  }
  for (Request* req : runnable) finish(req);

  size_t depth;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.queue_depth = depth;
}

Result<std::shared_ptr<BsrServer::PooledContext>> BsrServer::GetContext(
    const IngestPipeline::ReadGuard& guard, uint64_t filter_digest,
    const std::vector<uint8_t>& filter_bytes) {
  const BloomSampleTree* tree = &guard.tree();
  {
    std::lock_guard<std::mutex> lock(ctx_mu_);
    for (auto it = ctx_pool_.begin(); it != ctx_pool_.end();) {
      if ((*it)->tree.get() != tree) {
        // A hot swap retired this entry's tree; drop it so the pool
        // never pins a dead generation.
        it = ctx_pool_.erase(it);
        continue;
      }
      if ((*it)->filter_digest == filter_digest) {
        auto hit = *it;
        ctx_pool_.splice(ctx_pool_.begin(), ctx_pool_, it);
        return hit;
      }
      ++it;
    }
  }
  // Miss: deserialize against THIS tree's family (filter compatibility
  // is pointer identity on the family, so the context binds to exactly
  // the generation the guard pinned).
  std::string bytes(reinterpret_cast<const char*>(filter_bytes.data()),
                    filter_bytes.size());
  std::istringstream in(bytes);
  auto filter = DeserializeBloomFilter(&in, tree->family_ptr());
  if (!filter.ok()) return filter.status();
  auto entry = std::make_shared<PooledContext>();
  entry->filter_digest = filter_digest;
  entry->tree = pipeline_->tree_handle();
  if (entry->tree.get() != tree) {
    // The swap landed between our guard release... it cannot: the guard
    // holds the lane shared lock, so the handle IS the guarded tree.
    return Status::Internal("tree handle changed under a read guard");
  }
  entry->filter =
      std::make_unique<BloomFilter>(std::move(filter).value());
  entry->ctx = std::make_unique<QueryContext>(*tree, *entry->filter);
  {
    std::lock_guard<std::mutex> lock(ctx_mu_);
    ctx_pool_.push_front(entry);
    while (ctx_pool_.size() > options_.context_cache_capacity) {
      ctx_pool_.pop_back();
    }
  }
  return entry;
}

void BsrServer::ExecuteSampleGroup(const std::vector<Request*>& group) {
  // ONE guard for the whole group: every draw in this coalesced frontier
  // reads a single tree generation, so each response is wholly-old or
  // wholly-new across a hot swap — never a blend.
  IngestPipeline::ReadGuard guard = pipeline_->AcquireRead();
  auto ctx = GetContext(guard, group[0]->filter_digest,
                        group[0]->sample.filter);
  if (!ctx.ok()) {
    for (Request* req : group) {
      SendError(req->conn, req->header.opcode, req->header.request_id,
                WireStatusFromStatus(ctx.status()), ctx.status().message());
    }
    return;
  }
  size_t total = 0;
  for (Request* req : group) total += req->sample.count;
  std::vector<BstSampler::PreparedDraw> draws;
  draws.reserve(total);
  size_t base = 0;
  for (Request* req : group) {
    for (uint32_t i = 0; i < req->sample.count; ++i) {
      // Stream i of the request's seed: entry base+i is bit-identical to
      // Sample(ctx, Rng::ForStream(seed, i)) — and therefore to the
      // request running alone through SampleBatch. Coalescing is
      // invisible in the response bytes.
      draws.push_back({static_cast<uint32_t>(base + i),
                       Rng::ForStream(req->sample.seed, i)});
    }
    base += req->sample.count;
  }
  std::vector<std::optional<uint64_t>> out(total);
  BstSampler sampler(&guard.tree());
  sampler.SampleBatchPrepared(ctx.value()->ctx.get(), std::move(draws),
                              nullptr, &out);
  base = 0;
  for (Request* req : group) {
    std::vector<std::optional<uint64_t>> slice(
        out.begin() + static_cast<ptrdiff_t>(base),
        out.begin() + static_cast<ptrdiff_t>(base + req->sample.count));
    base += req->sample.count;
    std::vector<uint8_t> payload;
    EncodeDraws(slice, &payload);
    SendResponse(req->conn, req->header.opcode, req->header.request_id,
                 WireStatus::kOk, 0, payload.data(), payload.size());
  }
}

void BsrServer::ExecuteOne(Request* req) {
  switch (req->header.opcode) {
    case Opcode::kReconstruct: {
      IngestPipeline::ReadGuard guard = pipeline_->AcquireRead();
      const uint64_t digest = XxHash64::Hash(req->recon.filter.data(),
                                             req->recon.filter.size());
      auto ctx = GetContext(guard, digest, req->recon.filter);
      if (!ctx.ok()) {
        SendError(req->conn, req->header.opcode, req->header.request_id,
                  WireStatusFromStatus(ctx.status()),
                  ctx.status().message());
        return;
      }
      BstReconstructor recon(&guard.tree());
      const std::vector<uint64_t> ids = recon.Reconstruct(
          *ctx.value()->ctx, nullptr,
          req->recon.exact ? BstReconstructor::PruningMode::kExact
                           : BstReconstructor::PruningMode::kThresholded);
      std::vector<uint8_t> payload;
      EncodeIdList(ids, &payload);
      SendResponse(req->conn, req->header.opcode, req->header.request_id,
                   WireStatus::kOk, 0, payload.data(), payload.size());
      return;
    }
    case Opcode::kInsert:
    case Opcode::kRemove: {
      const WalOp op = req->header.opcode == Opcode::kInsert
                           ? WalOp::kInsert
                           : WalOp::kRemove;
      uint32_t applied = 0;
      Status first;
      for (uint64_t id : req->ids) {
        WalMutation mut;
        mut.op = op;
        mut.id = id;
        const Status st = pipeline_->Apply(mut);
        if (!st.ok()) {
          first = st;
          break;
        }
        ++applied;
      }
      if (first.ok()) {
        std::vector<uint8_t> payload;
        PutU32(applied, &payload);
        SendResponse(req->conn, req->header.opcode, req->header.request_id,
                     WireStatus::kOk, 0, payload.data(), payload.size());
      } else {
        // Report how far the batch got plus why it stopped; the lane's
        // read-only/quarantine latches surface here as wire statuses.
        SendError(req->conn, req->header.opcode, req->header.request_id,
                  WireStatusFromStatus(first),
                  "applied " + std::to_string(applied) + "/" +
                      std::to_string(req->ids.size()) + ": " +
                      first.message());
      }
      return;
    }
    default:
      SendError(req->conn, req->header.opcode, req->header.request_id,
                WireStatus::kInternal, "unroutable opcode");
      return;
  }
}

std::string BsrServer::BuildStatsText() const {
  std::ostringstream out;
  ServerStatsSnapshot s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = queue_.size();
  }
  out << "server.accepted=" << s.accepted << "\n"
      << "server.active_connections=" << s.active_connections << "\n"
      << "server.frames_in=" << s.frames_in << "\n"
      << "server.responses_out=" << s.responses_out << "\n"
      << "server.queue_depth=" << s.queue_depth << "\n"
      << "server.shed_queue_full=" << s.shed_queue_full << "\n"
      << "server.shed_queue_wait=" << s.shed_queue_wait << "\n"
      << "server.deadline_exceeded=" << s.deadline_exceeded << "\n"
      << "server.bad_frames=" << s.bad_frames << "\n"
      << "server.idle_closed=" << s.idle_closed << "\n"
      << "server.read_timeout_closed=" << s.read_timeout_closed << "\n"
      << "server.stalled_closed=" << s.stalled_closed << "\n"
      << "server.swaps=" << s.swaps << "\n"
      << "server.sample_batches=" << s.sample_batches << "\n"
      << "server.sample_requests=" << s.sample_requests << "\n"
      << "server.draining=" << (draining_.load() ? 1 : 0) << "\n";
  const IngestPipelineStats ps = pipeline_->Stats();
  out << "pipeline.committed_batches=" << ps.committed_batches << "\n"
      << "pipeline.commit_groups=" << ps.commit_groups << "\n"
      << "pipeline.fsyncs=" << ps.fsyncs << "\n"
      << "pipeline.shed=" << ps.shed << "\n";
  for (const LaneStatusInfo& lane : ps.lanes) {
    const std::string p = "lane." + std::to_string(lane.lane) + ".";
    out << p << "read_only=" << (lane.read_only ? 1 : 0) << "\n"
        << p << "quarantined=" << (lane.quarantined ? 1 : 0) << "\n"
        << p << "recover_attempts=" << lane.recover_attempts << "\n"
        << p << "recover_successes=" << lane.recover_successes << "\n"
        << p << "recovery_gave_up=" << (lane.recovery_gave_up ? 1 : 0)
        << "\n";
    if (!lane.latch_message.empty()) {
      out << p << "latch_message=" << lane.latch_message << "\n";
    }
  }
  if (scrubber_ != nullptr) {
    const ScrubStats sc = scrubber_->stats();
    out << "scrub.passes=" << sc.passes << "\n"
        << "scrub.chunks_scanned=" << sc.chunks_scanned << "\n"
        << "scrub.bytes_scanned=" << sc.bytes_scanned << "\n"
        << "scrub.corrupt_chunks=" << sc.corrupt_chunks << "\n"
        << "scrub.repairs=" << sc.repairs << "\n"
        << "scrub.quarantines=" << sc.quarantines << "\n";
  }
  const auto tree = pipeline_->tree_handle();
  if (tree != nullptr) {
    out << "tree.occupied=" << tree->occupied().size() << "\n"
        << "tree.namespace_size=" << tree->config().namespace_size << "\n";
  }
  return out.str();
}

// --- admin thread (drain-independent slow work) ------------------------

void BsrServer::AdminBody() {
  while (true) {
    bool do_swap = false;
    {
      std::unique_lock<std::mutex> lock(admin_mu_);
      admin_cv_.wait(lock, [&] { return admin_stop_ || swap_queued_; });
      if (swap_queued_) {
        swap_queued_ = false;
        do_swap = true;
      } else if (admin_stop_) {
        return;
      }
    }
    if (do_swap) {
      // Runs off the event loop so a slow (heap, large-tree) reload
      // never stalls frame parsing; readers keep serving the old tree
      // until the refcounted install.
      const Status st = pipeline_->HotSwapFromDisk(options_.reload);
      std::lock_guard<std::mutex> lock(stats_mu_);
      if (st.ok()) ++stats_.swaps;
    }
  }
}

// --- signal wiring -----------------------------------------------------

namespace {

std::atomic<BsrServer*> g_signal_server{nullptr};
struct sigaction g_old_sigterm;
struct sigaction g_old_sighup;

extern "C" void BsrHandleSigterm(int) {
  BsrServer* s = g_signal_server.load(std::memory_order_acquire);
  if (s != nullptr) s->RequestDrainAsync();
}

extern "C" void BsrHandleSighup(int) {
  BsrServer* s = g_signal_server.load(std::memory_order_acquire);
  if (s != nullptr) s->RequestSwapAsync();
}

}  // namespace

void InstallSignalHandlers(BsrServer* server) {
  g_signal_server.store(server, std::memory_order_release);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sigemptyset(&sa.sa_mask);
  sa.sa_handler = BsrHandleSigterm;
  sigaction(SIGTERM, &sa, &g_old_sigterm);
  sa.sa_handler = BsrHandleSighup;
  sigaction(SIGHUP, &sa, &g_old_sighup);
}

void RestoreSignalHandlers() {
  g_signal_server.store(nullptr, std::memory_order_release);
  sigaction(SIGTERM, &g_old_sigterm, nullptr);
  sigaction(SIGHUP, &g_old_sighup, nullptr);
}

}  // namespace server
}  // namespace bloomsample
