// The bsrd wire protocol: binary length-prefixed frames over a byte
// stream (TCP or a unix socket), symmetric for requests and responses.
//
//   offset  size  field
//        0     4  magic 'BSRP' (little-endian u32 0x50525342)
//        4     1  version (currently 1)
//        5     1  opcode  (Opcode; echoed in the response)
//        6     1  status  (WireStatus; 0 in requests)
//        7     1  reserved (must be 0)
//        8     8  request id (echoed verbatim in the response)
//       16     4  budget_ms — request: per-request deadline in ms from
//                 arrival (0 = none); response: retry-after hint in ms
//                 (meaningful with kOverloaded/kShuttingDown, else 0)
//       20     4  payload length in bytes
//       24     8  xxhash64 digest over header bytes [0, 24) ‖ payload
//       32     …  payload
//
// The digest makes torn writes, proxy truncation, and desynchronized
// streams fail loudly at the frame boundary instead of as garbage
// parameters. A peer that receives a frame with a bad magic, an
// unsupported version, or a digest mismatch cannot trust the stream
// position any more and MUST close the connection (after answering
// kInvalidArgument when a request id could still be recovered).
//
// Versioning rule: the header layout is frozen; incompatible payload or
// semantics changes bump `version`, and a server answers an unsupported
// version with kUnsupported before closing. Unknown opcodes are
// per-frame errors (kUnsupported) and do NOT poison the stream.
//
// All integers are little-endian (matching the snapshot format, which
// already rejects cross-endian artifacts at open).
#ifndef BLOOMSAMPLE_SERVER_PROTOCOL_H_
#define BLOOMSAMPLE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {
namespace server {

inline constexpr uint32_t kFrameMagic = 0x50525342u;  // "BSRP"
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 32;
/// Bytes of the header covered by the digest (everything before it).
inline constexpr size_t kFrameDigestedBytes = 24;

enum class Opcode : uint8_t {
  kPing = 1,
  kSample = 2,
  kReconstruct = 3,
  kInsert = 4,
  kRemove = 5,
  kStats = 6,
};

const char* OpcodeName(Opcode op);
bool OpcodeKnown(uint8_t raw);
/// True for ops a client may retry blindly: re-executing them cannot
/// change server state (PING, SAMPLE, RECONSTRUCT, STATS).
bool OpcodeIdempotent(Opcode op);

enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDeadlineExceeded = 2,
  kOverloaded = 3,      ///< admission queue full or queue-wait over budget
  kReadOnly = 4,        ///< lane latched read-only (mutations refused)
  kQuarantined = 5,     ///< lane quarantined (mutations refused)
  kUnsupported = 6,     ///< unknown opcode / version / feature
  kInternal = 7,
  kShuttingDown = 8,    ///< drain in progress; reconnect elsewhere/later
};

const char* WireStatusName(WireStatus status);
/// Maps an internal Status onto the wire (kOk → kOk, kReadOnly →
/// kReadOnly, kQuarantined → kQuarantined, kResourceExhausted →
/// kOverloaded, kInvalidArgument/kOutOfRange → kInvalidArgument,
/// kUnsupported → kUnsupported, anything else → kInternal).
WireStatus WireStatusFromStatus(const Status& st);
/// The client-side inverse: a wire error back to a Status whose message
/// is the response's error payload.
Status StatusFromWire(WireStatus status, const std::string& message);

struct FrameHeader {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  WireStatus status = WireStatus::kOk;
  uint64_t request_id = 0;
  /// Request: deadline budget in ms (0 = none). Response: retry-after
  /// hint in ms.
  uint32_t budget_ms = 0;
  uint32_t payload_len = 0;
};

/// Appends one complete frame (header + payload + digest) to `out`.
void EncodeFrame(const FrameHeader& header, const uint8_t* payload,
                 size_t payload_len, std::vector<uint8_t>* out);

/// What DecodeHeader found in the first kFrameHeaderBytes of a stream.
struct DecodedHeader {
  FrameHeader header;
  uint64_t digest = 0;  ///< as carried in the frame; verify against payload
  /// Raw opcode byte (header.opcode is only meaningful when known).
  uint8_t raw_opcode = 0;
};

/// Parses a frame header from `data` (at least kFrameHeaderBytes).
/// kInvalidArgument on bad magic or a non-zero reserved byte,
/// kUnsupported on a version mismatch; an UNKNOWN OPCODE IS NOT an error
/// here (the server answers it per-frame). `max_payload` bounds
/// payload_len (kOutOfRange beyond it — a stream that declares a bogus
/// gigabyte frame must die before buffering it).
Status DecodeHeader(const uint8_t* data, size_t len, uint32_t max_payload,
                    DecodedHeader* out);

/// Digest as EncodeFrame computes it: XXH64 over the first
/// kFrameDigestedBytes of the encoded header, continued over the payload.
uint64_t FrameDigest(const uint8_t* header_bytes, const uint8_t* payload,
                     size_t payload_len);

// --- payload codecs ----------------------------------------------------
//
// Request payloads:
//   SAMPLE       u32 count | u64 seed | serialized BloomFilter (rest)
//   RECONSTRUCT  u32 exact (0/1)      | serialized BloomFilter (rest)
//   INSERT/REMOVE u32 n | n × u64 id
//   PING/STATS   empty
// Response payloads:
//   SAMPLE       u32 count | count × u64 draw (kNullDraw = the draw's
//                every path died on false overlaps)
//   RECONSTRUCT  u32 n | n × u64 id (ascending)
//   INSERT/REMOVE u32 applied
//   STATS        UTF-8 "key=value\n" lines
//   errors       UTF-8 message
inline constexpr uint64_t kNullDraw = ~0ull;

struct SampleRequest {
  uint32_t count = 0;
  uint64_t seed = 0;
  std::vector<uint8_t> filter;  ///< SerializeBloomFilter bytes
};

struct ReconstructRequest {
  bool exact = false;
  std::vector<uint8_t> filter;
};

void EncodeSampleRequest(const SampleRequest& req, std::vector<uint8_t>* out);
Status DecodeSampleRequest(const uint8_t* data, size_t len,
                           SampleRequest* out);

void EncodeReconstructRequest(const ReconstructRequest& req,
                              std::vector<uint8_t>* out);
Status DecodeReconstructRequest(const uint8_t* data, size_t len,
                                ReconstructRequest* out);

void EncodeIdList(const std::vector<uint64_t>& ids, std::vector<uint8_t>* out);
Status DecodeIdList(const uint8_t* data, size_t len,
                    std::vector<uint64_t>* out);

void EncodeDraws(const std::vector<std::optional<uint64_t>>& draws,
                 std::vector<uint8_t>* out);
Status DecodeDraws(const uint8_t* data, size_t len,
                   std::vector<std::optional<uint64_t>>* out);

// --- little-endian scalar helpers (shared with the client) -------------

inline void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  uint8_t b[4];
  std::memcpy(b, &v, 4);
  out->insert(out->end(), b, b + 4);
}

inline void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  uint8_t b[8];
  std::memcpy(b, &v, 8);
  out->insert(out->end(), b, b + 8);
}

inline uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace server
}  // namespace bloomsample

#endif  // BLOOMSAMPLE_SERVER_PROTOCOL_H_
