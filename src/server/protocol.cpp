#include "src/server/protocol.h"

#include "src/util/xxhash64.h"

namespace bloomsample {
namespace server {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing:
      return "PING";
    case Opcode::kSample:
      return "SAMPLE";
    case Opcode::kReconstruct:
      return "RECONSTRUCT";
    case Opcode::kInsert:
      return "INSERT";
    case Opcode::kRemove:
      return "REMOVE";
    case Opcode::kStats:
      return "STATS";
  }
  return "UNKNOWN";
}

bool OpcodeKnown(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kPing) &&
         raw <= static_cast<uint8_t>(Opcode::kStats);
}

bool OpcodeIdempotent(Opcode op) {
  switch (op) {
    case Opcode::kPing:
    case Opcode::kSample:
    case Opcode::kReconstruct:
    case Opcode::kStats:
      return true;
    case Opcode::kInsert:
    case Opcode::kRemove:
      return false;
  }
  return false;
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case WireStatus::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireStatus::kOverloaded:
      return "OVERLOADED";
    case WireStatus::kReadOnly:
      return "READ_ONLY";
    case WireStatus::kQuarantined:
      return "QUARANTINED";
    case WireStatus::kUnsupported:
      return "UNSUPPORTED";
    case WireStatus::kInternal:
      return "INTERNAL";
    case WireStatus::kShuttingDown:
      return "SHUTTING_DOWN";
  }
  return "UNKNOWN";
}

WireStatus WireStatusFromStatus(const Status& st) {
  switch (st.code()) {
    case Status::Code::kOk:
      return WireStatus::kOk;
    case Status::Code::kReadOnly:
      return WireStatus::kReadOnly;
    case Status::Code::kQuarantined:
      return WireStatus::kQuarantined;
    case Status::Code::kResourceExhausted:
      return WireStatus::kOverloaded;
    case Status::Code::kInvalidArgument:
    case Status::Code::kOutOfRange:
      return WireStatus::kInvalidArgument;
    case Status::Code::kUnsupported:
      return WireStatus::kUnsupported;
    default:
      return WireStatus::kInternal;
  }
}

Status StatusFromWire(WireStatus status, const std::string& message) {
  switch (status) {
    case WireStatus::kOk:
      return Status::OK();
    case WireStatus::kInvalidArgument:
      return Status::InvalidArgument(message);
    case WireStatus::kDeadlineExceeded:
      return Status::ResourceExhausted("deadline exceeded: " + message);
    case WireStatus::kOverloaded:
      return Status::ResourceExhausted("server overloaded: " + message);
    case WireStatus::kReadOnly:
      return Status::ReadOnly(message);
    case WireStatus::kQuarantined:
      return Status::Quarantined(message);
    case WireStatus::kUnsupported:
      return Status::Unsupported(message);
    case WireStatus::kShuttingDown:
      return Status::ResourceExhausted("server shutting down: " + message);
    case WireStatus::kInternal:
      break;
  }
  return Status::Internal(message);
}

uint64_t FrameDigest(const uint8_t* header_bytes, const uint8_t* payload,
                     size_t payload_len) {
  XxHash64 h;
  h.Update(header_bytes, kFrameDigestedBytes);
  if (payload_len > 0) h.Update(payload, payload_len);
  return h.Digest();
}

void EncodeFrame(const FrameHeader& header, const uint8_t* payload,
                 size_t payload_len, std::vector<uint8_t>* out) {
  BSR_CHECK(payload_len == header.payload_len,
            "frame payload length mismatch");
  const size_t base = out->size();
  out->reserve(base + kFrameHeaderBytes + payload_len);
  PutU32(kFrameMagic, out);
  out->push_back(header.version);
  out->push_back(static_cast<uint8_t>(header.opcode));
  out->push_back(static_cast<uint8_t>(header.status));
  out->push_back(0);  // reserved
  PutU64(header.request_id, out);
  PutU32(header.budget_ms, out);
  PutU32(header.payload_len, out);
  const uint64_t digest =
      FrameDigest(out->data() + base, payload, payload_len);
  PutU64(digest, out);
  if (payload_len > 0) out->insert(out->end(), payload, payload + payload_len);
}

Status DecodeHeader(const uint8_t* data, size_t len, uint32_t max_payload,
                    DecodedHeader* out) {
  if (len < kFrameHeaderBytes) {
    return Status::InvalidArgument("short frame header");
  }
  if (GetU32(data) != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  out->header.version = data[4];
  out->raw_opcode = data[5];
  if (OpcodeKnown(out->raw_opcode)) {
    out->header.opcode = static_cast<Opcode>(out->raw_opcode);
  }
  out->header.status = static_cast<WireStatus>(data[6]);
  if (data[7] != 0) {
    return Status::InvalidArgument("non-zero reserved byte in frame header");
  }
  out->header.request_id = GetU64(data + 8);
  out->header.budget_ms = GetU32(data + 16);
  out->header.payload_len = GetU32(data + 20);
  out->digest = GetU64(data + 24);
  if (out->header.version != kProtocolVersion) {
    return Status::Unsupported("unsupported protocol version");
  }
  if (out->header.payload_len > max_payload) {
    return Status::OutOfRange("frame payload exceeds the size limit");
  }
  return Status::OK();
}

void EncodeSampleRequest(const SampleRequest& req,
                         std::vector<uint8_t>* out) {
  PutU32(req.count, out);
  PutU64(req.seed, out);
  out->insert(out->end(), req.filter.begin(), req.filter.end());
}

Status DecodeSampleRequest(const uint8_t* data, size_t len,
                           SampleRequest* out) {
  if (len < 12) return Status::InvalidArgument("short SAMPLE payload");
  out->count = GetU32(data);
  out->seed = GetU64(data + 4);
  out->filter.assign(data + 12, data + len);
  return Status::OK();
}

void EncodeReconstructRequest(const ReconstructRequest& req,
                              std::vector<uint8_t>* out) {
  PutU32(req.exact ? 1 : 0, out);
  out->insert(out->end(), req.filter.begin(), req.filter.end());
}

Status DecodeReconstructRequest(const uint8_t* data, size_t len,
                                ReconstructRequest* out) {
  if (len < 4) return Status::InvalidArgument("short RECONSTRUCT payload");
  out->exact = GetU32(data) != 0;
  out->filter.assign(data + 4, data + len);
  return Status::OK();
}

void EncodeIdList(const std::vector<uint64_t>& ids,
                  std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(ids.size()), out);
  for (uint64_t id : ids) PutU64(id, out);
}

Status DecodeIdList(const uint8_t* data, size_t len,
                    std::vector<uint64_t>* out) {
  if (len < 4) return Status::InvalidArgument("short id-list payload");
  const uint32_t n = GetU32(data);
  if (len != 4 + static_cast<size_t>(n) * 8) {
    return Status::InvalidArgument("id-list length mismatch");
  }
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) out->push_back(GetU64(data + 4 + i * 8));
  return Status::OK();
}

void EncodeDraws(const std::vector<std::optional<uint64_t>>& draws,
                 std::vector<uint8_t>* out) {
  PutU32(static_cast<uint32_t>(draws.size()), out);
  for (const auto& d : draws) PutU64(d.has_value() ? *d : kNullDraw, out);
}

Status DecodeDraws(const uint8_t* data, size_t len,
                   std::vector<std::optional<uint64_t>>* out) {
  if (len < 4) return Status::InvalidArgument("short draw payload");
  const uint32_t n = GetU32(data);
  if (len != 4 + static_cast<size_t>(n) * 8) {
    return Status::InvalidArgument("draw payload length mismatch");
  }
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const uint64_t v = GetU64(data + 4 + i * 8);
    if (v == kNullDraw) {
      out->push_back(std::nullopt);
    } else {
      out->push_back(v);
    }
  }
  return Status::OK();
}

}  // namespace server
}  // namespace bloomsample
