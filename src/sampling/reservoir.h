// Reservoir sampling (Vitter, Algorithm R) — the uniformity workhorse.
//
// DictionaryAttack feeds every positive-answering namespace element through
// a reservoir of size 1 (Section 4); leaf scans in BSTSample use the same
// mechanism to pick uniformly among the leaf's positives without
// materializing them. A k-slot variant supports multi-sampling.
#ifndef BLOOMSAMPLE_SAMPLING_RESERVOIR_H_
#define BLOOMSAMPLE_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/rng.h"

namespace bloomsample {

/// Keeps one uniformly chosen item from a stream of unknown length.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(Rng* rng) : rng_(rng) {
    BSR_CHECK(rng != nullptr, "ReservoirSampler needs an Rng");
  }

  /// Offers the next stream item; it replaces the current sample with
  /// probability 1/(count so far).
  void Offer(uint64_t item) {
    ++count_;
    if (rng_->Below(count_) == 0) sample_ = item;
  }

  /// Items offered so far.
  uint64_t count() const { return count_; }

  /// The sample, or nullopt if the stream was empty.
  std::optional<uint64_t> sample() const {
    if (count_ == 0) return std::nullopt;
    return sample_;
  }

  void Reset() {
    count_ = 0;
    sample_ = 0;
  }

 private:
  Rng* rng_;
  uint64_t count_ = 0;
  uint64_t sample_ = 0;
};

/// Keeps r uniformly chosen items (without replacement) from a stream.
class MultiReservoirSampler {
 public:
  MultiReservoirSampler(size_t r, Rng* rng) : r_(r), rng_(rng) {
    BSR_CHECK(rng != nullptr, "MultiReservoirSampler needs an Rng");
    reservoir_.reserve(r);
  }

  void Offer(uint64_t item) {
    ++count_;
    if (reservoir_.size() < r_) {
      reservoir_.push_back(item);
      return;
    }
    const uint64_t j = rng_->Below(count_);
    if (j < r_) reservoir_[j] = item;
  }

  uint64_t count() const { return count_; }

  /// The current reservoir; fewer than r items iff the stream was shorter
  /// than r.
  const std::vector<uint64_t>& samples() const { return reservoir_; }

 private:
  size_t r_;
  Rng* rng_;
  uint64_t count_ = 0;
  std::vector<uint64_t> reservoir_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_SAMPLING_RESERVOIR_H_
