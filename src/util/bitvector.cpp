#include "src/util/bitvector.h"

#include <algorithm>

namespace bloomsample {

void BitVector::Reset() { std::fill(words_.begin(), words_.end(), 0); }

size_t BitVector::Popcount() const {
  size_t count = 0;
  for (uint64_t w : words_) count += static_cast<size_t>(__builtin_popcountll(w));
  return count;
}

bool BitVector::None() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

void BitVector::AndWith(const BitVector& other) {
  BSR_CHECK(size_ == other.size_, "BitVector::AndWith size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::OrWith(const BitVector& other) {
  BSR_CHECK(size_ == other.size_, "BitVector::OrWith size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

size_t BitVector::AndPopcount(const BitVector& other) const {
  BSR_CHECK(size_ == other.size_, "BitVector::AndPopcount size mismatch");
  size_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
  }
  return count;
}

bool BitVector::AndIsZero(const BitVector& other) const {
  BSR_CHECK(size_ == other.size_, "BitVector::AndIsZero size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return false;
  }
  return true;
}

BitVector::SparseView BitVector::ToSparseView() const {
  BSR_CHECK(words_.size() <= UINT32_MAX, "vector too wide for a SparseView");
  SparseView view;
  view.bit_size = size_;
  for (size_t w = 0; w < words_.size(); ++w) {
    const uint64_t word = words_[w];
    if (word == 0) continue;
    view.word_index.push_back(static_cast<uint32_t>(w));
    view.word_value.push_back(word);
    view.set_bits += static_cast<size_t>(__builtin_popcountll(word));
  }
  return view;
}

size_t BitVector::AndPopcountSparse(const SparseView& view) const {
  BSR_CHECK(size_ == view.bit_size, "BitVector::AndPopcountSparse size mismatch");
  size_t count = 0;
  for (size_t i = 0; i < view.word_index.size(); ++i) {
    count += static_cast<size_t>(
        __builtin_popcountll(words_[view.word_index[i]] & view.word_value[i]));
  }
  return count;
}

bool BitVector::AndAllZeroSparse(const SparseView& view) const {
  BSR_CHECK(size_ == view.bit_size, "BitVector::AndAllZeroSparse size mismatch");
  for (size_t i = 0; i < view.word_index.size(); ++i) {
    if ((words_[view.word_index[i]] & view.word_value[i]) != 0) return false;
  }
  return true;
}

bool BitVector::IsSubsetOf(const BitVector& other) const {
  BSR_CHECK(size_ == other.size_, "BitVector::IsSubsetOf size mismatch");
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

std::vector<size_t> BitVector::SetBits() const {
  std::vector<size_t> out;
  out.reserve(Popcount());
  ForEachSetBit([&out](size_t i) { out.push_back(i); });
  return out;
}

std::vector<size_t> BitVector::UnsetBits() const {
  std::vector<size_t> out;
  out.reserve(size_ - Popcount());
  for (size_t i = 0; i < size_; ++i) {
    if (!Get(i)) out.push_back(i);
  }
  return out;
}

BitVector And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.AndWith(b);
  return out;
}

BitVector Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.OrWith(b);
  return out;
}

}  // namespace bloomsample
