#include "src/util/bitvector.h"

#include <algorithm>

#include "src/util/simd.h"

namespace bloomsample {

BitVector& BitVector::operator=(const BitVector& other) {
  if (this == &other) return *this;
  if (span_backed() && size_ == other.size_) {
    // Write through the span so the arena binding survives assignment; the
    // source satisfies the trailing-zero invariant, so the copy does too.
    std::copy(other.data_, other.data_ + word_count_, data_);
    return *this;
  }
  size_ = other.size_;
  word_count_ = other.word_count_;
  storage_.assign(other.data_, other.data_ + other.word_count_);
  data_ = storage_.data();
  return *this;
}

BitVector& BitVector::operator=(BitVector&& other) noexcept {
  if (this == &other) return *this;
  size_ = other.size_;
  word_count_ = other.word_count_;
  data_ = other.data_;
  storage_ = std::move(other.storage_);
  if (!storage_.empty()) data_ = storage_.data();
  other.size_ = 0;
  other.word_count_ = 0;
  other.data_ = nullptr;
  other.storage_.clear();
  return *this;
}

void BitVector::Reset() { std::fill(data_, data_ + word_count_, 0); }

size_t BitVector::Popcount() const {
  return static_cast<size_t>(simd::Popcount(data_, word_count_));
}

bool BitVector::None() const {
  // (v & v) == 0 ⇔ v == 0, so the AND-emptiness kernel doubles as the
  // all-zero test.
  return simd::AndAllZero(data_, data_, word_count_);
}

void BitVector::AndWith(const BitVector& other) {
  BSR_CHECK(size_ == other.size_, "BitVector::AndWith size mismatch");
  simd::AndInto(data_, other.data_, word_count_);
}

void BitVector::OrWith(const BitVector& other) {
  BSR_CHECK(size_ == other.size_, "BitVector::OrWith size mismatch");
  simd::OrInto(data_, other.data_, word_count_);
}

size_t BitVector::AndPopcount(const BitVector& other) const {
  BSR_CHECK(size_ == other.size_, "BitVector::AndPopcount size mismatch");
  return static_cast<size_t>(simd::AndPopcount(data_, other.data_, word_count_));
}

bool BitVector::AndIsZero(const BitVector& other) const {
  BSR_CHECK(size_ == other.size_, "BitVector::AndIsZero size mismatch");
  return simd::AndAllZero(data_, other.data_, word_count_);
}

BitVector::SparseView BitVector::ToSparseView() const {
  // INT32_MAX, not UINT32_MAX: the AVX-512 sparse kernels gather through
  // sign-extended 32-bit indices, so word indices must stay below 2^31
  // (that is still a 16 GiB filter — far beyond any practical m).
  BSR_CHECK(word_count_ <= INT32_MAX, "vector too wide for a SparseView");
  SparseView view;
  view.bit_size = size_;
  for (size_t w = 0; w < word_count_; ++w) {
    const uint64_t word = data_[w];
    if (word == 0) continue;
    view.word_index.push_back(static_cast<uint32_t>(w));
    view.word_value.push_back(word);
    view.set_bits += static_cast<size_t>(__builtin_popcountll(word));
  }
  return view;
}

size_t BitVector::AndPopcountSparse(const SparseView& view) const {
  BSR_CHECK(size_ == view.bit_size, "BitVector::AndPopcountSparse size mismatch");
  return static_cast<size_t>(
      simd::AndPopcountSparse(data_, view.word_index.data(),
                              view.word_value.data(), view.word_index.size()));
}

bool BitVector::AndAllZeroSparse(const SparseView& view) const {
  BSR_CHECK(size_ == view.bit_size, "BitVector::AndAllZeroSparse size mismatch");
  return simd::AndAllZeroSparse(data_, view.word_index.data(),
                                view.word_value.data(), view.word_index.size());
}

bool BitVector::IsSubsetOf(const BitVector& other) const {
  BSR_CHECK(size_ == other.size_, "BitVector::IsSubsetOf size mismatch");
  for (size_t i = 0; i < word_count_; ++i) {
    if ((data_[i] & ~other.data_[i]) != 0) return false;
  }
  return true;
}

std::vector<size_t> BitVector::SetBits() const {
  std::vector<size_t> out;
  out.reserve(Popcount());
  ForEachSetBit([&out](size_t i) { out.push_back(i); });
  return out;
}

std::vector<size_t> BitVector::UnsetBits() const {
  std::vector<size_t> out;
  out.reserve(size_ - Popcount());
  for (size_t i = 0; i < size_; ++i) {
    if (!Get(i)) out.push_back(i);
  }
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ &&
         std::equal(data_, data_ + word_count_, other.data_);
}

BitVector And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.AndWith(b);
  return out;
}

BitVector Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.OrWith(b);
  return out;
}

}  // namespace bloomsample
