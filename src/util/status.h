// Lightweight Status / Result error types in the style of RocksDB's Status.
//
// Library code never throws across the public API boundary; fallible
// operations return Status (or Result<T> when they also produce a value).
// Internal invariant violations use BSR_CHECK, which aborts with a message:
// they indicate a bug in this library, not a user error.
#ifndef BLOOMSAMPLE_UTIL_STATUS_H_
#define BLOOMSAMPLE_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace bloomsample {

/// Outcome of a fallible operation.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kOutOfRange,
    kUnsupported,
    kInternal,
    /// A bounded resource (ingest queue, retry budget) is full; the caller
    /// may back off and retry. The backpressure signal of the ingest
    /// pipeline's kTimeout / kShed policies.
    kResourceExhausted,
    /// The writer latched read-only after an unrecoverable I/O failure
    /// (failed WAL append/fsync that repair could not fix). Reads keep
    /// working; every later mutation fails fast with this code until the
    /// artifact is reopened.
    kReadOnly,
    /// The artifact failed an integrity check that could not be repaired
    /// (corrupt slab chunk with repair disabled or failed, snapshot file
    /// shrunk under an mmap'ed reader). Unlike kReadOnly, READS fail fast
    /// too: serving bytes that failed their checksum is worse than serving
    /// nothing. Forest siblings keep serving; bsr_cli maps this to exit 7.
    kQuarantined,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(Code::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(Code::kReadOnly, std::move(msg));
  }
  static Status Quarantined(std::string msg) {
    return Status(Code::kQuarantined, std::move(msg));
  }

  /// Attaches the errno a failed syscall produced. Classification code
  /// (the lane-recovery supervisor) branches on the NUMBER, not on
  /// strerror text, so fault injection can emit exact errno values.
  Status WithErrno(int err) && {
    sys_errno_ = err;
    return std::move(*this);
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }
  /// The originating errno, or 0 when the failure was not a syscall (or
  /// the call site predates errno capture).
  int sys_errno() const { return sys_errno_; }

  /// Human-readable rendering, e.g. "InvalidArgument: m must be positive".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kOutOfRange: name = "OutOfRange"; break;
      case Code::kUnsupported: name = "Unsupported"; break;
      case Code::kInternal: name = "Internal"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
      case Code::kReadOnly: name = "ReadOnly"; break;
      case Code::kQuarantined: name = "Quarantined"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
  int sys_errno_ = 0;
};

/// A value or an error. Minimal StatusOr analogue.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(runtime/explicit)
    if (std::get<Status>(v_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(v_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(v_);
  }
  // Returns by VALUE on rvalues (moving out of the variant). Returning
  // T&& here would dangle in the common `for (x : Func().value())`
  // pattern: range-for binds a reference to the xvalue but the Result
  // temporary is destroyed before the loop body runs (lifetime extension
  // only applies to prvalues).
  T value() && {
    CheckOk();
    return std::get<T>(std::move(v_));
  }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(v_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> v_;
};

}  // namespace bloomsample

/// Abort with a message when an internal invariant is violated.
#define BSR_CHECK(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "BSR_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, msg);                                          \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // BLOOMSAMPLE_UTIL_STATUS_H_
