// Bounded MPSC queue + reusable batch buffers — the producer side of the
// concurrent ingest pipeline (core/ingest_pipeline.h).
//
// Producers push single items from any thread; one consumer (the shard's
// writer thread) drains them in batches. The queue is BOUNDED: when
// producers outrun the writer (an fsync-limited consumer is easy to
// outrun), the BackpressurePolicy decides how they degrade —
//
//   * kBlock   — the producer sleeps until space frees up. Ingest becomes
//                lossless flow control: end-to-end throughput equals the
//                writer's, memory stays bounded.
//   * kTimeout — the producer waits up to `timeout`; if the queue is still
//                full it gets Status::kResourceExhausted and keeps its
//                item. Callers with their own retry/shed logic use this.
//   * kShed    — the producer fails immediately with kResourceExhausted.
//                Load shedding for latency-sensitive front ends.
//
// Either way the process never OOMs on a slow disk — the queue is the only
// buffering between producers and the WAL.
//
// Close() wakes everyone: producers get kUnavailable-style errors
// (kReadOnly from the pipeline's latch path), the consumer drains what is
// left and then sees `closed`. The idiom (bounded ring + condvars + batch
// drain) follows the producer/consumer pipelines of k-mer counters cited
// in ROADMAP.md; the BatchPool below is their reusable-buffer-pool trick:
// drained batches travel to the writer in pooled vectors, so steady-state
// ingest does zero allocations per batch.
#ifndef BLOOMSAMPLE_UTIL_INGEST_QUEUE_H_
#define BLOOMSAMPLE_UTIL_INGEST_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

enum class BackpressurePolicy : uint32_t {
  kBlock = 0,
  kTimeout = 1,
  kShed = 2,
};

/// "block" / "timeout" / "shed".
inline const char* BackpressurePolicyName(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kTimeout:
      return "timeout";
    case BackpressurePolicy::kShed:
      return "shed";
  }
  return "unknown";
}

/// A pool of reusable std::vector<T> batch buffers. Acquire hands out an
/// empty vector (recycled capacity when available), Release returns it.
/// Thread-safe; the pool never shrinks below what was released into it, so
/// a steady-state pipeline cycles the same few allocations forever.
template <typename T>
class BatchPool {
 public:
  std::vector<T> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return {};
    std::vector<T> batch = std::move(free_.back());
    free_.pop_back();
    batch.clear();  // keeps capacity
    return batch;
  }

  void Release(std::vector<T> batch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(batch));
  }

  size_t free_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::vector<T>> free_;
};

template <typename T>
class IngestQueue {
 public:
  struct Options {
    size_t capacity = 4096;
    BackpressurePolicy policy = BackpressurePolicy::kBlock;
    /// For kTimeout: how long a producer waits before giving up.
    std::chrono::milliseconds timeout{10};
  };

  explicit IngestQueue(Options options) : options_(std::move(options)) {
    BSR_CHECK(options_.capacity > 0, "ingest queue capacity must be > 0");
  }

  /// Producer side. Applies the backpressure policy when full; after
  /// Close() every push fails with kReadOnly (the pipeline closes queues
  /// exactly when it latches or shuts down, so producers see the same
  /// status either way).
  Status Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!WaitForSpace(lock)) {
      if (closed_) {
        return Status::ReadOnly("ingest queue is closed");
      }
      ++shed_;
      return Status::ResourceExhausted(
          options_.policy == BackpressurePolicy::kShed
              ? "ingest queue full (shed)"
              : "ingest queue full (timed out waiting for space)");
    }
    items_.push_back(std::move(item));
    lock.unlock();
    consumer_cv_.notify_one();
    return Status::OK();
  }

  /// Consumer side: blocks until at least one item or the queue is closed,
  /// then moves up to `max_batch` items into *out (appended; pass a pooled
  /// empty vector). Returns false when the queue is closed AND drained —
  /// the writer thread's exit condition.
  bool PopBatch(size_t max_batch, std::vector<T>* out) {
    std::unique_lock<std::mutex> lock(mu_);
    consumer_cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;  // closed and drained
    const size_t take = items_.size() < max_batch ? items_.size() : max_batch;
    for (size_t i = 0; i < take; ++i) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    // All blocked producers race for the freed slots; notify_all because
    // a batch frees many.
    producer_cv_.notify_all();
    return true;
  }

  /// Wakes every waiter; subsequent Push fails, PopBatch drains then
  /// returns false. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    producer_cv_.notify_all();
    consumer_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Pushes rejected by backpressure (kTimeout expiries + kShed refusals).
  uint64_t shed_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shed_;
  }

  const Options& options() const { return options_; }

 private:
  /// True when a slot is available; false on policy give-up or close.
  bool WaitForSpace(std::unique_lock<std::mutex>& lock) {
    if (closed_) return false;
    if (items_.size() < options_.capacity) return true;
    switch (options_.policy) {
      case BackpressurePolicy::kShed:
        return false;
      case BackpressurePolicy::kTimeout:
        producer_cv_.wait_for(lock, options_.timeout, [&] {
          return closed_ || items_.size() < options_.capacity;
        });
        return !closed_ && items_.size() < options_.capacity;
      case BackpressurePolicy::kBlock:
        producer_cv_.wait(lock, [&] {
          return closed_ || items_.size() < options_.capacity;
        });
        return !closed_;
    }
    return false;
  }

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable producer_cv_;
  std::condition_variable consumer_cv_;
  std::deque<T> items_;
  bool closed_ = false;
  uint64_t shed_ = 0;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_INGEST_QUEUE_H_
