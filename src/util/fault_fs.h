// Deterministic fault injection for the durability subsystem.
//
// FaultInjectingFileSystem wraps the real FileSystem (operations land on
// real files, so the untouched READ path — ifstream parsing, mmap — keeps
// working against whatever state a simulated failure leaves behind) and
// adds four kinds of deterministic misbehavior, keyed off a counter of
// mutating operations (NewWritableFile / Append / Sync / Rename /
// Truncate / SyncDirOf / RemoveFile, in call order):
//
//   * FailAtOp(n)        — operation n returns an injected error (ENOSPC
//                          flavored on request); later operations succeed.
//                          Exercises the clean unwind paths: a failed save
//                          must leave the old artifact intact.
//   * ShortWriteAtOp(n)  — operation n (an Append) writes only a prefix
//                          and then errors: the torn-tail case.
//   * FailSyncsAt(n, c)  — file-Sync failure injection (EIO flavored): the
//                          nth and following c Syncs — counted among file
//                          Syncs only — fail; later Syncs succeed again.
//                          Models the fsyncgate bug class: after a failed
//                          fsync the kernel may have DROPPED the dirty
//                          pages, so a writer that simply re-fsyncs the
//                          same descriptor and trusts the success is
//                          silently missing data. The fault FS enforces
//                          the pessimistic reading — bytes covered only by
//                          a failed sync are never marked durable — so any
//                          writer that survives this mode is fsyncgate-
//                          clean by construction.
//   * CrashAtOp(n)       — when the counter reaches n the "machine dies":
//                          every byte not fenced by Sync is dropped, every
//                          rename/remove not fenced by SyncDirOf rolls
//                          back, and all further operations fail. The test
//                          then "reboots" by reopening the real files.
//
// Durability model (what survives a crash):
//   * a file's content as of its last successful Sync() — and only the
//     bytes appended BEFORE that Sync was entered: a concurrent append
//     racing the fsync gets no durability credit until the next fence
//     (the guaranteed-minimum reading of POSIX fsync);
//   * renames/removes executed before the last successful SyncDirOf()
//     (content carried over from the source's synced state);
//   * files that existed before the fault FS first touched them (seeded
//     as durable on first touch).
// Everything else — appended-but-unsynced bytes, truncations, renames
// after the last directory sync — reverts.
//
// Thread-safe: one internal mutex serializes every operation (including
// the wrapped real-filesystem call), so concurrent writers — the group-
// commit ingest pipeline under test — observe a sequentially consistent
// operation order and the kill-point counter stays meaningful. The real
// PosixFileSystem stays lock-free; serialization is a property of the
// test double only.
#ifndef BLOOMSAMPLE_UTIL_FAULT_FS_H_
#define BLOOMSAMPLE_UTIL_FAULT_FS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/util/file_system.h"
#include "src/util/status.h"

namespace bloomsample {

class FaultInjectingFileSystem : public FileSystem {
 public:
  /// FailSyncsAt count for "every sync from n on fails".
  static constexpr uint64_t kForever = ~0ull;

  /// Wraps FileSystem::Default(); all paths are real files (use a temp
  /// directory).
  FaultInjectingFileSystem();

  // --- fault plan -----------------------------------------------------

  /// Operation `n` (1-based) returns an error; 0 disarms. `enospc` flavors
  /// the message like a full disk.
  void FailAtOp(uint64_t n, bool enospc = false);

  /// Operation `n` — which must land on an Append to matter — writes only
  /// the first `keep_bytes` bytes, then errors.
  void ShortWriteAtOp(uint64_t n, size_t keep_bytes = 3);

  /// File-Sync failure injection (see the file comment): the `n`th file
  /// Sync (1-based, counted among file Syncs only) and the `count - 1`
  /// following ones fail with an EIO-flavored error (errno EIO); later
  /// Syncs succeed. 0 disarms. Bytes whose only covering fsync failed stay
  /// non-durable. `enospc` flavors the failures as a full disk instead
  /// (errno ENOSPC) — the transient-latch case lane recovery must heal.
  void FailSyncsAt(uint64_t n, uint64_t count = 1, bool enospc = false);

  // --- read-path fault plan -------------------------------------------
  //
  // Read operations (NewRandomAccessFile opens and every pread through
  // one) run on a SEPARATE, atomic counter: the scrubber bumps it from
  // its own thread while writers hold mu_, so the read plan must not
  // take the write-path lock. Read faults are independent of the crash
  // state — reads land on real files regardless.

  /// Read operations `n`..`n + count - 1` (1-based) fail with an
  /// EIO-flavored error (errno EIO); 0 disarms.
  void FailReadsAt(uint64_t n, uint64_t count = 1);

  /// Read operation `n` — which must land on a pread to matter — returns
  /// only the first `keep_bytes` bytes with an OK status, exactly what a
  /// pread past a shrunk file's EOF looks like. 0 disarms.
  void ShortReadAtOp(uint64_t n, size_t keep_bytes = 0);

  /// Read operations seen so far.
  uint64_t read_op_count() const;

  /// Overrides FreeSpace() to report `bytes` (the disk-watermark knob for
  /// ENOSPC recovery tests). kForever restores delegation to the real FS.
  void SetFreeSpace(uint64_t bytes);

  /// Simulated power loss when the counter reaches `n`: unsynced state is
  /// dropped and every operation from `n` on fails with "simulated crash".
  void CrashAtOp(uint64_t n);

  /// Disarms every fault and clears the crashed flag (the "reboot").
  /// Durable state and the operation counter are left alone.
  void ClearFaults();

  /// Explicit crash now (equivalent to CrashAtOp at the current counter).
  void SimulateCrash();

  void ResetOpCount();
  /// Mutating operations seen so far — run a sequence once fault-free to
  /// learn its length, then enumerate every kill point 1..op_count().
  uint64_t op_count() const;
  /// File Syncs seen so far (the FailSyncsAt counter).
  uint64_t sync_count() const;
  bool crashed() const;

  // --- FileSystem -----------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDirOf(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override;
  Result<uint64_t> FreeSpace(const std::string& path) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomAccessFile;

  /// Counts one mutating operation and returns the injected error for it,
  /// if any. `*short_write` (optional) reports that this operation should
  /// tear instead of failing outright. `is_file_sync` additionally runs
  /// the op through the sync-failure window. Caller holds mu_.
  Status CountOpLocked(const char* what, bool* short_write = nullptr,
                       bool is_file_sync = false);

  /// First-touch seeding: a path the fault FS has never mutated is assumed
  /// durable with its current on-disk content. Caller holds mu_.
  void TrackPathLocked(const std::string& path);

  /// Records the first `limit_bytes` of `path`'s current real content as
  /// its crash-surviving state (the bytes the successful fsync is
  /// guaranteed to cover). Caller holds mu_.
  void MarkContentDurableLocked(const std::string& path, uint64_t limit_bytes);

  void SimulateCrashLocked();
  void DropUnsyncedStateLocked();

  /// Counts one read operation on the lock-free counter and returns the
  /// injected error for it, if any. `*short_read_keep` (optional) reports
  /// that this read should come up short at `keep` bytes.
  Status CountReadOp(const std::string& path, bool* short_read = nullptr,
                     size_t* short_read_keep = nullptr);

  FileSystem* real_;
  mutable std::mutex mu_;
  uint64_t op_count_ = 0;
  uint64_t fail_at_ = 0;
  bool fail_enospc_ = false;
  uint64_t short_write_at_ = 0;
  size_t short_write_keep_ = 3;
  uint64_t sync_op_count_ = 0;
  uint64_t sync_fail_at_ = 0;
  uint64_t sync_fail_count_ = 0;
  bool sync_fail_enospc_ = false;
  uint64_t crash_at_ = 0;
  bool crashed_ = false;

  // Read plan: atomics, never guarded by mu_ (see the read-path comment).
  std::atomic<uint64_t> read_op_count_{0};
  std::atomic<uint64_t> read_fail_at_{0};
  std::atomic<uint64_t> read_fail_count_{0};
  std::atomic<uint64_t> short_read_at_{0};
  std::atomic<size_t> short_read_keep_{0};
  std::atomic<uint64_t> free_space_override_{~0ull};

  /// Paths mutated since construction (or the last crash).
  std::set<std::string> touched_;
  /// path → content that survives a crash. Absent = the path dies.
  std::map<std::string, std::string> durable_;
  /// Renames/removes since the last SyncDirOf, oldest first. `to` empty =
  /// remove.
  struct PendingNameOp {
    std::string from;
    std::string to;
  };
  std::vector<PendingNameOp> pending_name_ops_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_FAULT_FS_H_
