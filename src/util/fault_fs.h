// Deterministic fault injection for the durability subsystem.
//
// FaultInjectingFileSystem wraps the real FileSystem (operations land on
// real files, so the untouched READ path — ifstream parsing, mmap — keeps
// working against whatever state a simulated failure leaves behind) and
// adds three kinds of deterministic misbehavior, keyed off a counter of
// mutating operations (NewWritableFile / Append / Sync / Rename /
// Truncate / SyncDirOf / RemoveFile, in call order):
//
//   * FailAtOp(n)        — operation n returns an injected error (ENOSPC
//                          flavored on request); later operations succeed.
//                          Exercises the clean unwind paths: a failed save
//                          must leave the old artifact intact.
//   * ShortWriteAtOp(n)  — operation n (an Append) writes only a prefix
//                          and then errors: the torn-tail case.
//   * CrashAtOp(n)       — when the counter reaches n the "machine dies":
//                          every byte not fenced by Sync is dropped, every
//                          rename/remove not fenced by SyncDirOf rolls
//                          back, and all further operations fail. The test
//                          then "reboots" by reopening the real files.
//
// Durability model (what survives a crash):
//   * a file's content as of its last successful Sync();
//   * renames/removes executed before the last successful SyncDirOf()
//     (content carried over from the source's synced state);
//   * files that existed before the fault FS first touched them (seeded
//     as durable on first touch).
// Everything else — appended-but-unsynced bytes, truncations, renames
// after the last directory sync — reverts.
//
// Single-threaded by design: the crash matrix drives one deterministic
// operation sequence at a time.
#ifndef BLOOMSAMPLE_UTIL_FAULT_FS_H_
#define BLOOMSAMPLE_UTIL_FAULT_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/util/file_system.h"
#include "src/util/status.h"

namespace bloomsample {

class FaultInjectingFileSystem : public FileSystem {
 public:
  /// Wraps FileSystem::Default(); all paths are real files (use a temp
  /// directory).
  FaultInjectingFileSystem();

  // --- fault plan -----------------------------------------------------

  /// Operation `n` (1-based) returns an error; 0 disarms. `enospc` flavors
  /// the message like a full disk.
  void FailAtOp(uint64_t n, bool enospc = false);

  /// Operation `n` — which must land on an Append to matter — writes only
  /// the first `keep_bytes` bytes, then errors.
  void ShortWriteAtOp(uint64_t n, size_t keep_bytes = 3);

  /// Simulated power loss when the counter reaches `n`: unsynced state is
  /// dropped and every operation from `n` on fails with "simulated crash".
  void CrashAtOp(uint64_t n);

  /// Disarms every fault and clears the crashed flag (the "reboot").
  /// Durable state and the operation counter are left alone.
  void ClearFaults();

  /// Explicit crash now (equivalent to CrashAtOp at the current counter).
  void SimulateCrash();

  void ResetOpCount() { op_count_ = 0; }
  /// Mutating operations seen so far — run a sequence once fault-free to
  /// learn its length, then enumerate every kill point 1..op_count().
  uint64_t op_count() const { return op_count_; }
  bool crashed() const { return crashed_; }

  // --- FileSystem -----------------------------------------------------

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDirOf(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;

 private:
  friend class FaultWritableFile;

  /// Counts one mutating operation and returns the injected error for it,
  /// if any. `*short_write` (optional) reports that this operation should
  /// tear instead of failing outright.
  Status CountOp(const char* what, bool* short_write = nullptr);

  /// First-touch seeding: a path the fault FS has never mutated is assumed
  /// durable with its current on-disk content.
  void TrackPath(const std::string& path);

  /// Records `path`'s current real content as its crash-surviving state.
  void MarkContentDurable(const std::string& path);

  void DropUnsyncedState();

  FileSystem* real_;
  uint64_t op_count_ = 0;
  uint64_t fail_at_ = 0;
  bool fail_enospc_ = false;
  uint64_t short_write_at_ = 0;
  size_t short_write_keep_ = 3;
  uint64_t crash_at_ = 0;
  bool crashed_ = false;

  /// Paths mutated since construction (or the last crash).
  std::set<std::string> touched_;
  /// path → content that survives a crash. Absent = the path dies.
  std::map<std::string, std::string> durable_;
  /// Renames/removes since the last SyncDirOf, oldest first. `to` empty =
  /// remove.
  struct PendingNameOp {
    std::string from;
    std::string to;
  };
  std::vector<PendingNameOp> pending_name_ops_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_FAULT_FS_H_
