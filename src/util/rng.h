// Deterministic, seedable random number generation.
//
// All stochastic components in this library (samplers, workload generators,
// benchmarks) take an explicit Rng so experiments are reproducible from a
// single seed. The generator is xoshiro256**, seeded via SplitMix64, which is
// the standard recommendation for initializing xoshiro state.
#ifndef BLOOMSAMPLE_UTIL_RNG_H_
#define BLOOMSAMPLE_UTIL_RNG_H_

#include <cstdint>

#include "src/util/status.h"

namespace bloomsample {

/// SplitMix64 step: used for seeding and as a cheap standalone mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Not cryptographic; excellent statistical quality and
/// very fast, which matters because sampling experiments draw millions of
/// variates.
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : s_) word = SplitMix64(sm);
    // xoshiro must not start at the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  /// Uniform on [0, 2^64).
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform on [0, bound). bound must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    BSR_CHECK(bound > 0, "Rng::Below bound must be positive");
    unsigned __int128 mul =
        static_cast<unsigned __int128>(Next()) * bound;
    auto low = static_cast<uint64_t>(mul);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        mul = static_cast<unsigned __int128>(Next()) * bound;
        low = static_cast<uint64_t>(mul);
      }
    }
    return static_cast<uint64_t>(mul >> 64);
  }

  /// Uniform on [lo, hi) — half-open, hi > lo.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    BSR_CHECK(hi > lo, "Rng::Range requires hi > lo");
    return lo + Below(hi - lo);
  }

  /// Uniform double on [0, 1) with 53 random bits.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Derives an independent child generator; useful for giving each
  /// benchmark repetition its own stream.
  Rng Fork() { return Rng(Next()); }

  /// Counter-based stream derivation: the generator for (seed, stream) is a
  /// pure function of its two arguments, so stream `i` is the same Rng no
  /// matter how many other streams exist or which thread asks for it. This
  /// is what makes batched multi-draw sampling bit-identical to the serial
  /// draw loop for every batch size and thread count: draw i always runs on
  /// ForStream(seed, i). Seed and counter each pass through their own
  /// SplitMix64 before combining, so nearby counters land on decorrelated
  /// xoshiro seeds.
  static Rng ForStream(uint64_t seed, uint64_t stream) {
    uint64_t a = seed;
    uint64_t b = stream ^ 0x6a09e667f3bcc908ULL;  // streams 0,1,... != seeds
    return Rng(SplitMix64(a) ^ SplitMix64(b));
  }

  // std::uniform_random_bit_generator interface, so Rng works with <random>
  // and std::shuffle.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_RNG_H_
