#include "src/util/file_system.h"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define BSR_HAVE_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>
#else
#define BSR_HAVE_POSIX_IO 0
#include <cstdio>
#include <fstream>
#endif

namespace bloomsample {

namespace {

std::string ParentDirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string ErrnoMessage(const char* op, const std::string& path) {
  return std::string(op) + " '" + path + "' failed: " + std::strerror(errno);
}

/// Internal status carrying both the strerror text and the numeric errno
/// (recovery classification branches on the number, never the text).
Status ErrnoInternal(const char* op, const std::string& path) {
  const int err = errno;
  return Status::Internal(ErrnoMessage(op, path)).WithErrno(err);
}

#if BSR_HAVE_POSIX_IO

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override { (void)Close(); }

  Status Append(const void* data, size_t len) override {
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const ssize_t n = ::write(fd_, p, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoInternal("write", path_);
      }
      p += n;
      len -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return ErrnoInternal("fsync", path_);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return ErrnoInternal("close", path_);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t len, void* scratch,
              size_t* bytes_read) override {
    char* p = static_cast<char*>(scratch);
    size_t got = 0;
    while (got < len) {
      const ssize_t n = ::pread(fd_, p + got, len - got,
                                static_cast<off_t>(offset + got));
      if (n < 0) {
        if (errno == EINTR) continue;
        *bytes_read = got;
        return ErrnoInternal("pread", path_);
      }
      if (n == 0) break;  // EOF — short read, not an error
      got += static_cast<size_t>(n);
    }
    *bytes_read = got;
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    const int flags = O_WRONLY | O_CREAT |
                      (mode == WriteMode::kTruncate ? O_TRUNC : O_APPEND);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      return Status::NotFound(ErrnoMessage("open", path));
    }
    return std::unique_ptr<WritableFile>(
        new PosixWritableFile(fd, path));
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoInternal("rename", from);
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoInternal("truncate", path);
    }
    return Status::OK();
  }

  Status SyncDirOf(const std::string& path) override {
    const std::string dir = ParentDirOf(path);
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::Internal(ErrnoMessage("open dir", dir));
    }
    // Some filesystems refuse fsync on directories (EINVAL); treat that as
    // best-effort success, matching what mainstream storage engines do.
    const int rc = ::fsync(fd);
    const int saved_errno = errno;
    ::close(fd);
    if (rc != 0 && saved_errno != EINVAL) {
      errno = saved_errno;
      return Status::Internal(ErrnoMessage("fsync dir", dir));
    }
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::Internal(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return Status::NotFound(ErrnoMessage("stat", path));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::NotFound(ErrnoMessage("open", path));
    }
    return std::unique_ptr<RandomAccessFile>(
        new PosixRandomAccessFile(fd, path));
  }

  Result<uint64_t> FreeSpace(const std::string& path) override {
    struct statvfs vfs;
    // The path itself may have been unlinked (quarantined artifact); the
    // parent directory lives on the same filesystem.
    if (::statvfs(path.c_str(), &vfs) != 0 &&
        ::statvfs(ParentDirOf(path).c_str(), &vfs) != 0) {
      return ErrnoInternal("statvfs", path);
    }
    return static_cast<uint64_t>(vfs.f_bavail) *
           static_cast<uint64_t>(vfs.f_frsize);
  }
};

#else  // !BSR_HAVE_POSIX_IO — portable fallback without durability fences.

class StreamWritableFile : public WritableFile {
 public:
  StreamWritableFile(std::ofstream out, std::string path)
      : out_(std::move(out)), path_(std::move(path)) {}

  Status Append(const void* data, size_t len) override {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
    return out_.good() ? Status::OK()
                       : Status::Internal("write '" + path_ + "' failed");
  }
  Status Sync() override {
    out_.flush();  // no fsync available; flush is the best this port has
    return out_.good() ? Status::OK()
                       : Status::Internal("flush '" + path_ + "' failed");
  }
  Status Close() override {
    if (out_.is_open()) out_.close();
    return Status::OK();
  }

 private:
  std::ofstream out_;
  std::string path_;
};

class PortableFileSystem : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    std::ofstream out(path, std::ios::binary |
                                (mode == WriteMode::kTruncate
                                     ? std::ios::trunc
                                     : std::ios::app));
    if (!out.is_open()) {
      return Status::NotFound("cannot open '" + path + "' for writing");
    }
    return std::unique_ptr<WritableFile>(
        new StreamWritableFile(std::move(out), path));
  }
  Status Rename(const std::string& from, const std::string& to) override {
    std::remove(to.c_str());
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal("rename '" + from + "' failed");
    }
    return Status::OK();
  }
  Status Truncate(const std::string& path, uint64_t size) override {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return Status::NotFound("truncate: no '" + path + "'");
    std::string bytes(static_cast<size_t>(size), '\0');
    in.read(&bytes[0], static_cast<std::streamsize>(size));
    if (static_cast<uint64_t>(in.gcount()) != size) {
      return Status::OutOfRange("truncate beyond end of '" + path + "'");
    }
    in.close();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return out.good() ? Status::OK()
                      : Status::Internal("truncate rewrite failed");
  }
  Status SyncDirOf(const std::string&) override { return Status::OK(); }
  Status RemoveFile(const std::string& path) override {
    std::remove(path.c_str());
    return Status::OK();
  }
  bool FileExists(const std::string& path) override {
    std::ifstream in(path);
    return in.is_open();
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in.is_open()) return Status::NotFound("stat: no '" + path + "'");
    return static_cast<uint64_t>(in.tellg());
  }
  Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) override {
    class StreamRandomAccessFile : public RandomAccessFile {
     public:
      explicit StreamRandomAccessFile(std::string path)
          : path_(std::move(path)) {}
      Status Read(uint64_t offset, size_t len, void* scratch,
                  size_t* bytes_read) override {
        // Reopens per call: ifstream seek state is not thread-safe and
        // RandomAccessFile promises concurrent reads.
        std::ifstream in(path_, std::ios::binary);
        *bytes_read = 0;
        if (!in.is_open()) {
          return Status::Internal("open '" + path_ + "' for read failed");
        }
        in.seekg(static_cast<std::streamoff>(offset));
        in.read(static_cast<char*>(scratch),
                static_cast<std::streamsize>(len));
        *bytes_read = static_cast<size_t>(in.gcount());
        return Status::OK();
      }

     private:
      std::string path_;
    };
    std::ifstream probe(path, std::ios::binary);
    if (!probe.is_open()) {
      return Status::NotFound("cannot open '" + path + "' for reading");
    }
    return std::unique_ptr<RandomAccessFile>(
        new StreamRandomAccessFile(path));
  }
  Result<uint64_t> FreeSpace(const std::string&) override {
    return static_cast<uint64_t>(UINT64_MAX);  // unknowable on this port
  }
};

#endif  // BSR_HAVE_POSIX_IO

}  // namespace

FileSystem* FileSystem::Default() {
#if BSR_HAVE_POSIX_IO
  static PosixFileSystem* fs = new PosixFileSystem();
#else
  static PortableFileSystem* fs = new PortableFileSystem();
#endif
  return fs;
}

bool WritableFileStreamBuf::RawWrite(const void* data, size_t len) {
  if (bad_) return false;
  const Status st = file_->Append(data, len);
  if (!st.ok()) {
    bad_ = true;
    error_ = st;
    return false;
  }
  return true;
}

bool WritableFileStreamBuf::FlushBuffered() {
  const size_t buffered = static_cast<size_t>(pptr() - pbase());
  if (buffered > 0) {
    if (!RawWrite(pbase(), buffered)) return false;
    setp(buffer_, buffer_ + sizeof(buffer_));
  }
  return !bad_;
}

int WritableFileStreamBuf::overflow(int ch) {
  if (!FlushBuffered()) return traits_type::eof();
  if (ch != traits_type::eof()) {
    *pptr() = static_cast<char>(ch);
    pbump(1);
  }
  return ch == traits_type::eof() ? 0 : ch;
}

std::streamsize WritableFileStreamBuf::xsputn(const char* data,
                                              std::streamsize len) {
  // Large writes bypass the buffer; small ones coalesce in it.
  if (len >= static_cast<std::streamsize>(sizeof(buffer_))) {
    if (!FlushBuffered()) return 0;
    return RawWrite(data, static_cast<size_t>(len)) ? len : 0;
  }
  if (epptr() - pptr() < len && !FlushBuffered()) return 0;
  std::memcpy(pptr(), data, static_cast<size_t>(len));
  pbump(static_cast<int>(len));
  return len;
}

}  // namespace bloomsample
