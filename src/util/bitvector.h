// Fixed-size bit vector with the word-level operations Bloom filters need:
// bitwise AND/OR against another vector, popcount, and set-bit iteration.
//
// Bits are stored little-endian within 64-bit words; bit i lives in word
// i / 64 at position i % 64. Trailing bits of the last word beyond size()
// are kept zero as an invariant so popcount and equality are O(words)
// without masking.
//
// Word storage comes in two flavors behind one type:
//   * owned   — the vector holds its own heap block (the default and the
//     historical behavior);
//   * span    — the words live in external storage (a BloomSampleTree's
//     FilterArena block) that must outlive the vector; see SpanOf().
// Every operation is storage-agnostic and the two flavors are bit- and
// behavior-identical; only ownership and copy/move mechanics differ:
//   * copy-construction always produces an owned deep copy;
//   * copy-assignment into a same-size span writes through the span (the
//     arena binding is preserved), otherwise the target becomes owned;
//   * moves transfer the span pointer (arena blocks are address-stable),
//     leaving the source empty.
// Word-level kernels (popcount, AND/OR, sparse walks) dispatch through
// src/util/simd.h, which picks the widest implementation the CPU supports.
#ifndef BLOOMSAMPLE_UTIL_BITVECTOR_H_
#define BLOOMSAMPLE_UTIL_BITVECTOR_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

class BitVector {
 public:
  BitVector() = default;

  /// Creates an owned vector of `size` bits, all zero.
  explicit BitVector(size_t size)
      : size_(size),
        word_count_((size + 63) / 64),
        storage_((size + 63) / 64, 0) {
    data_ = storage_.data();
  }

  /// Creates a span vector of `size` bits over `words`, which must hold at
  /// least (size+63)/64 words, outlive the vector, and already satisfy the
  /// trailing-bit-zero invariant (arena blocks are handed out zeroed).
  static BitVector SpanOf(uint64_t* words, size_t size) {
    BSR_CHECK(words != nullptr || size == 0, "BitVector::SpanOf null words");
    BitVector v;
    v.size_ = size;
    v.word_count_ = (size + 63) / 64;
    v.data_ = words;
    assert((size % 64 == 0 || v.word_count_ == 0 ||
            (words[v.word_count_ - 1] >> (size % 64)) == 0) &&
           "BitVector::SpanOf block violates the trailing-bit invariant");
    return v;
  }

  /// SpanOf without the trailing-bit-invariant debug assert, for spans over
  /// storage the process does not control — an mmap'ed snapshot slab whose
  /// bytes are untrusted input, where a stray trailing bit must surface as
  /// (at worst) divergent query results, never an abort. Intersections
  /// against query filters are unaffected either way (the query's own
  /// trailing words are zero, so the AND masks stray bits); Popcount and
  /// equality on such a span do see them.
  static BitVector SpanOfUnchecked(uint64_t* words, size_t size) {
    BSR_CHECK(words != nullptr || size == 0,
              "BitVector::SpanOfUnchecked null words");
    BitVector v;
    v.size_ = size;
    v.word_count_ = (size + 63) / 64;
    v.data_ = words;
    return v;
  }

  BitVector(const BitVector& other)
      : size_(other.size_),
        word_count_(other.word_count_),
        storage_(other.data_, other.data_ + other.word_count_) {
    data_ = storage_.data();
  }

  BitVector(BitVector&& other) noexcept
      : size_(other.size_),
        word_count_(other.word_count_),
        data_(other.data_),
        storage_(std::move(other.storage_)) {
    if (!storage_.empty()) data_ = storage_.data();
    other.size_ = 0;
    other.word_count_ = 0;
    other.data_ = nullptr;
    other.storage_.clear();
  }

  BitVector& operator=(const BitVector& other);
  BitVector& operator=(BitVector&& other) noexcept;

  size_t size() const { return size_; }
  size_t word_count() const { return word_count_; }

  /// True when the words live in external (arena) storage.
  bool span_backed() const { return data_ != nullptr && storage_.empty(); }

  bool Get(size_t i) const {
    BSR_CHECK(i < size_, "BitVector::Get out of range");
    return (data_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void Set(size_t i) {
    BSR_CHECK(i < size_, "BitVector::Set out of range");
    data_[i >> 6] |= (1ULL << (i & 63));
  }

  void Clear(size_t i) {
    BSR_CHECK(i < size_, "BitVector::Clear out of range");
    data_[i >> 6] &= ~(1ULL << (i & 63));
  }

  // Unchecked fast paths for hot loops whose indices are range-checked (or
  // guaranteed by construction, e.g. hash outputs in [0, m)) up front. The
  // checked Get/Set above remain the public default; Debug builds still
  // assert here so the bounds contract stays exercised under -DNDEBUG-less
  // CI runs.
  bool GetUnchecked(size_t i) const {
    assert(i < size_ && "BitVector::GetUnchecked out of range");
    return (data_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void SetUnchecked(size_t i) {
    assert(i < size_ && "BitVector::SetUnchecked out of range");
    data_[i >> 6] |= (1ULL << (i & 63));
  }

  /// ORs `mask` into word `word_idx` in one store — the register-built
  /// word-mask idiom batched inserters use. Bits beyond size() must not be
  /// set in `mask` (would break the trailing-zero invariant).
  void SetWordMask(size_t word_idx, uint64_t mask) {
    assert(word_idx < word_count_ && "BitVector::SetWordMask out of range");
    assert((word_idx + 1 < word_count_ || size_ % 64 == 0 ||
            (mask >> (size_ % 64)) == 0) &&
           "BitVector::SetWordMask mask exceeds size");
    data_[word_idx] |= mask;
  }

  /// Sets all bits to zero.
  void Reset();

  /// Number of set bits.
  size_t Popcount() const;

  /// True iff no bit is set.
  bool None() const;

  /// this &= other. Sizes must match.
  void AndWith(const BitVector& other);
  /// this |= other. Sizes must match.
  void OrWith(const BitVector& other);

  /// Popcount of (this & other) without materializing the intersection.
  /// Sizes must match.
  size_t AndPopcount(const BitVector& other) const;

  /// True iff (this & other) has no set bit. Sizes must match.
  bool AndIsZero(const BitVector& other) const;

  /// Compressed snapshot of a (typically sparse) vector: the indices and
  /// values of its nonzero words plus the total popcount. Intersection
  /// kernels against a view touch only the view's nonzero words —
  /// O(nnz words) instead of O(size/64) — and are bit-identical to the
  /// dense kernels because all-zero query words contribute nothing to an
  /// AND. A view is a value snapshot: it stays valid (but stale) if the
  /// source vector mutates afterwards.
  struct SparseView {
    size_t bit_size = 0;   ///< size() of the source vector
    size_t set_bits = 0;   ///< total popcount of the source vector
    std::vector<uint32_t> word_index;  ///< ascending indices of nonzero words
    std::vector<uint64_t> word_value;  ///< the corresponding word values
  };

  /// Builds a SparseView of this vector (one O(words) pass).
  SparseView ToSparseView() const;

  /// Popcount of (this & view's source), touching only the view's nonzero
  /// words. Bit-identical to AndPopcount(source). Sizes must match.
  size_t AndPopcountSparse(const SparseView& view) const;

  /// True iff the AND with the view's source has no set bit. Bit-identical
  /// to AndIsZero(source). Sizes must match.
  bool AndAllZeroSparse(const SparseView& view) const;

  /// True iff every set bit of this is also set in other (i.e. this is a
  /// bitwise subset of other). Sizes must match.
  bool IsSubsetOf(const BitVector& other) const;

  /// Indices of all set bits, ascending.
  std::vector<size_t> SetBits() const;
  /// Indices of all unset bits, ascending.
  std::vector<size_t> UnsetBits() const;

  /// Calls fn(i) for every set bit i in ascending order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < word_count_; ++w) {
      uint64_t word = data_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// Memory footprint of the payload in bytes (excludes the object header;
  /// span payloads are counted even though the arena owns them).
  size_t MemoryBytes() const { return word_count_ * sizeof(uint64_t); }

  /// Direct word access for serialization, kernels, and tests.
  const uint64_t* word_data() const { return data_; }

 private:
  size_t size_ = 0;
  size_t word_count_ = 0;
  uint64_t* data_ = nullptr;
  /// Owned-mode backing store; empty in span mode.
  std::vector<uint64_t> storage_;
};

/// Returns a & b (element-wise) as a new owned vector. Sizes must match.
BitVector And(const BitVector& a, const BitVector& b);
/// Returns a | b (element-wise) as a new owned vector. Sizes must match.
BitVector Or(const BitVector& a, const BitVector& b);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_BITVECTOR_H_
