// Small numeric helpers shared across modules: integer logs, modular
// arithmetic for the invertible "simple" hash family, and gcd-based
// coprimality checks.
#ifndef BLOOMSAMPLE_UTIL_MATH_UTIL_H_
#define BLOOMSAMPLE_UTIL_MATH_UTIL_H_

#include <cstdint>

#include "src/util/status.h"

namespace bloomsample {

/// floor(log2(x)) for x >= 1.
inline uint32_t FloorLog2(uint64_t x) {
  return 63u - static_cast<uint32_t>(__builtin_clzll(x));
}

/// ceil(log2(x)) for x >= 1.
inline uint32_t CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

/// True iff x is a power of two (x >= 1).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x.
inline uint64_t NextPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : (1ULL << CeilLog2(x));
}

/// ceil(a / b) for b > 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// (a * b) mod mod without overflow, via 128-bit intermediates.
inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t mod) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % mod);
}

/// (a + b) mod mod; a, b must already be < mod.
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t mod) {
  const uint64_t s = a + b;
  return (s >= mod || s < a) ? s - mod : s;
}

/// Division-free n % d for a fixed divisor d <= 2^32 and any 64-bit n
/// (Lemire's fastmod with a 128-bit magic). Exact: with
/// M = floor(2^128 / d) + 1, the error term is bounded by
/// d * n / 2^128 <= 2^32 * (2^64 - 1) / 2^128 < 1, so
/// Mod(n) == n % d for every n. Hardware 64-bit division costs ~20-40
/// cycles; this is a handful of multiplies — which is what makes the
/// devirtualized hash kernels cheap enough to be memory-bound.
class FastMod {
 public:
  FastMod() : d_(1), magic_(~static_cast<unsigned __int128>(0)) {}

  explicit FastMod(uint64_t d) : d_(d) {
    BSR_CHECK(d != 0, "FastMod divisor must be nonzero");
    BSR_CHECK(d <= (1ULL << 32), "FastMod divisor must be <= 2^32");
    magic_ = ~static_cast<unsigned __int128>(0) / d + 1;
  }

  uint64_t divisor() const { return d_; }

  uint64_t Mod(uint64_t n) const {
    // lowbits = (magic * n) mod 2^128 encodes the fractional part of n/d;
    // multiplying by d and keeping the top 64 bits recovers n % d.
    const unsigned __int128 lowbits = magic_ * n;
    const uint64_t lo = static_cast<uint64_t>(lowbits);
    const uint64_t hi = static_cast<uint64_t>(lowbits >> 64);
    const unsigned __int128 carry =
        (static_cast<unsigned __int128>(lo) * d_) >> 64;
    const unsigned __int128 top = static_cast<unsigned __int128>(hi) * d_ + carry;
    return static_cast<uint64_t>(top >> 64);
  }

 private:
  uint64_t d_;
  unsigned __int128 magic_;
};

uint64_t Gcd(uint64_t a, uint64_t b);

/// Deterministic Miller-Rabin for 64-bit integers (the 12-base certificate
/// set {2, 3, 5, ..., 37} is exact below 3.3e24).
bool IsPrime(uint64_t n);

/// Smallest prime >= n (n <= 2^63 or so; aborts if the search would
/// overflow, which cannot happen for realistic namespace sizes).
uint64_t NextPrimeAtLeast(uint64_t n);

/// Modular inverse of a modulo mod. Requires gcd(a, mod) == 1.
/// Returns 0 if a is not invertible (callers treat that as an error).
uint64_t ModInverse(uint64_t a, uint64_t mod);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_MATH_UTIL_H_
