// Small numeric helpers shared across modules: integer logs, modular
// arithmetic for the invertible "simple" hash family, and gcd-based
// coprimality checks.
#ifndef BLOOMSAMPLE_UTIL_MATH_UTIL_H_
#define BLOOMSAMPLE_UTIL_MATH_UTIL_H_

#include <cstdint>

namespace bloomsample {

/// floor(log2(x)) for x >= 1.
inline uint32_t FloorLog2(uint64_t x) {
  return 63u - static_cast<uint32_t>(__builtin_clzll(x));
}

/// ceil(log2(x)) for x >= 1.
inline uint32_t CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : FloorLog2(x - 1) + 1;
}

/// True iff x is a power of two (x >= 1).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Smallest power of two >= x.
inline uint64_t NextPowerOfTwo(uint64_t x) {
  return x <= 1 ? 1 : (1ULL << CeilLog2(x));
}

/// ceil(a / b) for b > 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// (a * b) mod mod without overflow, via 128-bit intermediates.
inline uint64_t MulMod(uint64_t a, uint64_t b, uint64_t mod) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % mod);
}

/// (a + b) mod mod; a, b must already be < mod.
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t mod) {
  const uint64_t s = a + b;
  return (s >= mod || s < a) ? s - mod : s;
}

uint64_t Gcd(uint64_t a, uint64_t b);

/// Deterministic Miller-Rabin for 64-bit integers (the 12-base certificate
/// set {2, 3, 5, ..., 37} is exact below 3.3e24).
bool IsPrime(uint64_t n);

/// Smallest prime >= n (n <= 2^63 or so; aborts if the search would
/// overflow, which cannot happen for realistic namespace sizes).
uint64_t NextPrimeAtLeast(uint64_t n);

/// Modular inverse of a modulo mod. Requires gcd(a, mod) == 1.
/// Returns 0 if a is not invertible (callers treat that as an error).
uint64_t ModInverse(uint64_t a, uint64_t mod);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_MATH_UTIL_H_
