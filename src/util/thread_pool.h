// A small fixed-size task pool (no work stealing) with a blocking
// ParallelFor helper, used by the BloomSampleTree builders.
//
// Design notes:
//   * ThreadPool(n) provides `n` lanes of parallelism *including the
//     calling thread*: n - 1 background workers are spawned, and
//     ParallelFor has the caller chew on chunks alongside them. n <= 1 (or
//     a range that fits in one chunk) degenerates to a plain serial loop
//     with no synchronization at all, which keeps the `build_threads = 1`
//     path bit-for-bit identical to the historical serial builders.
//   * ParallelFor(lo, hi, grain, fn) splits [lo, hi) into contiguous
//     chunks of `grain` indices and calls fn(chunk_lo, chunk_hi) for each.
//     Chunks are claimed from a shared atomic cursor, so the *assignment*
//     of chunks to threads is nondeterministic but the set of chunks — and
//     therefore any computation whose chunks write disjoint state — is
//     deterministic.
//   * Exceptions thrown by fn are captured; the first one is rethrown on
//     the calling thread after every in-flight chunk has drained. Remaining
//     unclaimed chunks are skipped once a failure is recorded.
#ifndef BLOOMSAMPLE_UTIL_THREAD_POOL_H_
#define BLOOMSAMPLE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bloomsample {

class ThreadPool {
 public:
  /// Total parallelism for ParallelFor, caller included. 0 means
  /// std::thread::hardware_concurrency().
  explicit ThreadPool(size_t threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    threads_ = threads;
    workers_.reserve(threads - 1);
    for (size_t i = 0; i + 1 < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  /// Lanes of parallelism ParallelFor will use (>= 1, caller included).
  size_t thread_count() const { return threads_; }

  /// Runs fn(chunk_lo, chunk_hi) over [lo, hi) split into chunks of at
  /// most `grain` indices (grain 0 is treated as 1). Blocks until every
  /// chunk has run; rethrows the first exception any chunk threw. fn must
  /// be safe to invoke concurrently from multiple threads.
  template <typename Fn>
  void ParallelFor(uint64_t lo, uint64_t hi, uint64_t grain, Fn&& fn) {
    if (hi <= lo) return;
    if (grain == 0) grain = 1;
    const uint64_t count = hi - lo;
    const uint64_t chunks = (count + grain - 1) / grain;
    if (workers_.empty() || chunks == 1) {
      for (uint64_t c = 0; c < chunks; ++c) {
        const uint64_t clo = lo + c * grain;
        const uint64_t chi = clo + grain < hi ? clo + grain : hi;
        fn(clo, chi);
      }
      return;
    }

    auto state = std::make_shared<ForState>();
    state->lo = lo;
    state->hi = hi;
    state->grain = grain;
    state->chunks = chunks;
    // Helpers beyond chunks - 1 would find nothing to claim; don't wake
    // more workers than can possibly get a chunk alongside the caller.
    const size_t helpers =
        workers_.size() < chunks - 1 ? workers_.size() : chunks - 1;
    state->pending_helpers = helpers;

    std::function<void(uint64_t, uint64_t)> body = std::ref(fn);
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 0; i < helpers; ++i) {
        tasks_.emplace_back([state, body] {
          RunChunks(*state, body);
          std::lock_guard<std::mutex> lock(state->mu);
          if (--state->pending_helpers == 0) state->done.notify_one();
        });
      }
    }
    cv_.notify_all();

    RunChunks(*state, body);  // the caller is one of the lanes
    {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done.wait(lock, [&] { return state->pending_helpers == 0; });
    }
    if (state->error) std::rethrow_exception(state->error);
  }

 private:
  struct ForState {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint64_t grain = 1;
    uint64_t chunks = 0;
    std::atomic<uint64_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex mu;
    std::condition_variable done;
    size_t pending_helpers = 0;
  };

  static void RunChunks(ForState& state,
                        const std::function<void(uint64_t, uint64_t)>& fn) {
    for (;;) {
      const uint64_t c = state.next.fetch_add(1, std::memory_order_relaxed);
      if (c >= state.chunks || state.failed.load(std::memory_order_relaxed)) {
        return;
      }
      const uint64_t clo = state.lo + c * state.grain;
      const uint64_t chi =
          clo + state.grain < state.hi ? clo + state.grain : state.hi;
      try {
        fn(clo, chi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (!state.error) state.error = std::current_exception();
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ with a drained queue
        task = std::move(tasks_.front());
        tasks_.pop_front();
      }
      task();
    }
  }

  size_t threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Resolves the 0-means-hardware convention shared by every thread-count
/// knob (TreeConfig::build_threads / query_threads).
inline size_t ResolveThreadCount(uint32_t knob) {
  if (knob != 0) return knob;
  const size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// A lazily-built ThreadPool cache keyed by thread count, shared via
/// shared_ptr so a caller that raced a size change keeps its (still valid)
/// pool alive. Copy/move carry nothing — copies start poolless — which
/// lets the owning object keep default value semantics despite the mutex.
/// Acquire is const because the pool is an execution resource, not logical
/// state: BstSampler::SampleBatch and BstReconstructor::Reconstruct are
/// const, concurrency-safe entry points.
class LazyThreadPool {
 public:
  LazyThreadPool() = default;
  LazyThreadPool(const LazyThreadPool&) noexcept {}
  LazyThreadPool(LazyThreadPool&&) noexcept {}
  LazyThreadPool& operator=(const LazyThreadPool&) noexcept { return *this; }
  LazyThreadPool& operator=(LazyThreadPool&&) noexcept { return *this; }

  /// Returns a pool with `threads` lanes, creating or resizing lazily.
  /// Thread-safe; ThreadPool::ParallelFor is itself safe for concurrent
  /// callers on one pool.
  std::shared_ptr<ThreadPool> Acquire(size_t threads) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (pool_ == nullptr || pool_->thread_count() != threads) {
      pool_ = std::make_shared<ThreadPool>(threads);
    }
    return pool_;
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<ThreadPool> pool_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_THREAD_POOL_H_
