#include "src/util/fault_fs.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace bloomsample {

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

/// Counts Append/Sync through the parent's operation counter and keeps the
/// durable-content map in step with successful Syncs. Namespace scope (not
/// anonymous) so the friend declaration in the header matches.
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingFileSystem* parent,
                    std::unique_ptr<WritableFile> inner, std::string path)
      : parent_(parent), inner_(std::move(inner)), path_(std::move(path)) {}

  Status Append(const void* data, size_t len) override {
    bool short_write = false;
    const Status injected = parent_->CountOp("append", &short_write);
    if (short_write) {
      // The torn-tail case: a prefix lands on disk, then the write dies.
      const size_t keep =
          len < parent_->short_write_keep_ ? len : parent_->short_write_keep_;
      (void)inner_->Append(data, keep);
      return Status::Internal("injected fault: short write on '" + path_ +
                              "'");
    }
    if (!injected.ok()) return injected;
    return inner_->Append(data, len);
  }

  Status Sync() override {
    const Status injected = parent_->CountOp("fsync");
    if (!injected.ok()) return injected;
    const Status st = inner_->Sync();
    if (st.ok()) parent_->MarkContentDurable(path_);
    return st;
  }

  Status Close() override { return inner_->Close(); }

 private:
  FaultInjectingFileSystem* parent_;
  std::unique_ptr<WritableFile> inner_;
  std::string path_;
};

FaultInjectingFileSystem::FaultInjectingFileSystem()
    : real_(FileSystem::Default()) {}

void FaultInjectingFileSystem::FailAtOp(uint64_t n, bool enospc) {
  fail_at_ = n;
  fail_enospc_ = enospc;
}

void FaultInjectingFileSystem::ShortWriteAtOp(uint64_t n, size_t keep_bytes) {
  short_write_at_ = n;
  short_write_keep_ = keep_bytes;
}

void FaultInjectingFileSystem::CrashAtOp(uint64_t n) { crash_at_ = n; }

void FaultInjectingFileSystem::ClearFaults() {
  fail_at_ = 0;
  fail_enospc_ = false;
  short_write_at_ = 0;
  crash_at_ = 0;
  crashed_ = false;
}

void FaultInjectingFileSystem::SimulateCrash() {
  DropUnsyncedState();
  crashed_ = true;
}

Status FaultInjectingFileSystem::CountOp(const char* what, bool* short_write) {
  ++op_count_;
  if (crashed_) {
    return Status::Internal("simulated crash: filesystem is down");
  }
  if (crash_at_ != 0 && op_count_ >= crash_at_) {
    // The machine dies BEFORE operation op_count_ takes effect: state
    // freezes at what the previous operations made durable.
    SimulateCrash();
    return Status::Internal(std::string("simulated crash during ") + what);
  }
  if (op_count_ == short_write_at_) {
    if (short_write != nullptr) {
      *short_write = true;
      return Status::OK();  // the Append tears instead of failing outright
    }
    return Status::Internal(std::string("injected fault during ") + what);
  }
  if (op_count_ == fail_at_) {
    if (fail_enospc_) {
      return Status::Internal(std::string("injected fault during ") + what +
                              ": no space left on device (ENOSPC)");
    }
    return Status::Internal(std::string("injected fault during ") + what);
  }
  return Status::OK();
}

void FaultInjectingFileSystem::TrackPath(const std::string& path) {
  if (!touched_.insert(path).second) return;
  // First touch: whatever is on disk now predates the fault FS and is
  // assumed durable (unless a committed rename already accounted for it).
  if (durable_.find(path) == durable_.end() && real_->FileExists(path)) {
    durable_[path] = ReadWholeFile(path);
  }
}

void FaultInjectingFileSystem::MarkContentDurable(const std::string& path) {
  durable_[path] = ReadWholeFile(path);
}

void FaultInjectingFileSystem::DropUnsyncedState() {
  for (const std::string& path : touched_) {
    const auto it = durable_.find(path);
    if (it != durable_.end()) {
      WriteWholeFile(path, it->second);
    } else {
      std::remove(path.c_str());
    }
  }
  pending_name_ops_.clear();
  touched_.clear();
}

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::NewWritableFile(const std::string& path,
                                          WriteMode mode) {
  const Status injected = CountOp("open");
  if (!injected.ok()) return injected;
  TrackPath(path);
  auto inner = real_->NewWritableFile(path, mode);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<WritableFile>(new FaultWritableFile(
      this, std::move(inner).value(), path));
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  const Status injected = CountOp("rename");
  if (!injected.ok()) return injected;
  TrackPath(from);
  TrackPath(to);
  const Status st = real_->Rename(from, to);
  if (st.ok()) pending_name_ops_.push_back({from, to});
  return st;
}

Status FaultInjectingFileSystem::Truncate(const std::string& path,
                                          uint64_t size) {
  const Status injected = CountOp("truncate");
  if (!injected.ok()) return injected;
  TrackPath(path);
  return real_->Truncate(path, size);
}

Status FaultInjectingFileSystem::SyncDirOf(const std::string& path) {
  const Status injected = CountOp("fsync dir");
  if (!injected.ok()) return injected;
  const Status st = real_->SyncDirOf(path);
  if (!st.ok()) return st;
  // Commit every pending name change (tests run in one directory, so a
  // single directory fence covers them all). A renamed file carries the
  // content its SOURCE had made durable; a rename of a never-synced file
  // leaves the destination non-durable — name without content.
  for (const PendingNameOp& op : pending_name_ops_) {
    const auto it = durable_.find(op.from);
    if (op.to.empty()) {  // remove
      if (it != durable_.end()) durable_.erase(it);
      continue;
    }
    if (it != durable_.end()) {
      durable_[op.to] = std::move(it->second);
      durable_.erase(op.from);
    } else {
      durable_.erase(op.to);
    }
  }
  pending_name_ops_.clear();
  return Status::OK();
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  const Status injected = CountOp("unlink");
  if (!injected.ok()) return injected;
  TrackPath(path);
  const Status st = real_->RemoveFile(path);
  if (st.ok()) pending_name_ops_.push_back({path, std::string()});
  return st;
}

bool FaultInjectingFileSystem::FileExists(const std::string& path) {
  return real_->FileExists(path);
}

Result<uint64_t> FaultInjectingFileSystem::FileSize(const std::string& path) {
  return real_->FileSize(path);
}

}  // namespace bloomsample
