#include "src/util/fault_fs.h"

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace bloomsample {

namespace {

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

/// Counts Append/Sync through the parent's operation counter and keeps the
/// durable-content map in step with successful Syncs. Namespace scope (not
/// anonymous) so the friend declaration in the header matches.
///
/// Tracks the byte count it has appended so a successful Sync marks durable
/// only the bytes present when the Sync entered the filesystem — the
/// guaranteed-minimum reading of fsync (see the header comment).
class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectingFileSystem* parent,
                    std::unique_ptr<WritableFile> inner, std::string path,
                    uint64_t initial_bytes)
      : parent_(parent),
        inner_(std::move(inner)),
        path_(std::move(path)),
        appended_bytes_(initial_bytes) {}

  Status Append(const void* data, size_t len) override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    bool short_write = false;
    const Status injected = parent_->CountOpLocked("append", &short_write);
    if (short_write) {
      // The torn-tail case: a prefix lands on disk, then the write dies.
      const size_t keep =
          len < parent_->short_write_keep_ ? len : parent_->short_write_keep_;
      (void)inner_->Append(data, keep);
      appended_bytes_ += keep;
      return Status::Internal("injected fault: short write on '" + path_ +
                              "'");
    }
    if (!injected.ok()) return injected;
    const Status st = inner_->Append(data, len);
    if (st.ok()) appended_bytes_ += len;
    return st;
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    const uint64_t entry_bytes = appended_bytes_;
    const Status injected =
        parent_->CountOpLocked("fsync", nullptr, /*is_file_sync=*/true);
    if (!injected.ok()) return injected;
    const Status st = inner_->Sync();
    if (st.ok()) parent_->MarkContentDurableLocked(path_, entry_bytes);
    return st;
  }

  Status Close() override {
    std::lock_guard<std::mutex> lock(parent_->mu_);
    return inner_->Close();
  }

 private:
  FaultInjectingFileSystem* parent_;
  std::unique_ptr<WritableFile> inner_;
  std::string path_;
  uint64_t appended_bytes_;
};

/// Routes positional reads through the parent's atomic read-fault plan.
/// Namespace scope (not anonymous) so the friend declaration matches.
class FaultRandomAccessFile : public RandomAccessFile {
 public:
  FaultRandomAccessFile(FaultInjectingFileSystem* parent,
                        std::unique_ptr<RandomAccessFile> inner,
                        std::string path)
      : parent_(parent), inner_(std::move(inner)), path_(std::move(path)) {}

  Status Read(uint64_t offset, size_t len, void* scratch,
              size_t* bytes_read) override {
    bool short_read = false;
    size_t keep = 0;
    const Status injected = parent_->CountReadOp(path_, &short_read, &keep);
    if (!injected.ok()) {
      *bytes_read = 0;
      return injected;
    }
    if (short_read) {
      // Indistinguishable from pread at a shrunk file's EOF: OK status,
      // fewer bytes than asked for.
      const size_t want = len < keep ? len : keep;
      return inner_->Read(offset, want, scratch, bytes_read);
    }
    return inner_->Read(offset, len, scratch, bytes_read);
  }

 private:
  FaultInjectingFileSystem* parent_;
  std::unique_ptr<RandomAccessFile> inner_;
  std::string path_;
};

FaultInjectingFileSystem::FaultInjectingFileSystem()
    : real_(FileSystem::Default()) {}

void FaultInjectingFileSystem::FailAtOp(uint64_t n, bool enospc) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = n;
  fail_enospc_ = enospc;
}

void FaultInjectingFileSystem::ShortWriteAtOp(uint64_t n, size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  short_write_at_ = n;
  short_write_keep_ = keep_bytes;
}

void FaultInjectingFileSystem::FailSyncsAt(uint64_t n, uint64_t count,
                                           bool enospc) {
  std::lock_guard<std::mutex> lock(mu_);
  sync_fail_at_ = n;
  sync_fail_count_ = n == 0 ? 0 : count;
  sync_fail_enospc_ = enospc;
}

void FaultInjectingFileSystem::FailReadsAt(uint64_t n, uint64_t count) {
  read_fail_count_.store(n == 0 ? 0 : count, std::memory_order_relaxed);
  read_fail_at_.store(n, std::memory_order_relaxed);
}

void FaultInjectingFileSystem::ShortReadAtOp(uint64_t n, size_t keep_bytes) {
  short_read_keep_.store(keep_bytes, std::memory_order_relaxed);
  short_read_at_.store(n, std::memory_order_relaxed);
}

uint64_t FaultInjectingFileSystem::read_op_count() const {
  return read_op_count_.load(std::memory_order_relaxed);
}

void FaultInjectingFileSystem::SetFreeSpace(uint64_t bytes) {
  free_space_override_.store(bytes, std::memory_order_relaxed);
}

void FaultInjectingFileSystem::CrashAtOp(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_at_ = n;
}

void FaultInjectingFileSystem::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  fail_at_ = 0;
  fail_enospc_ = false;
  short_write_at_ = 0;
  sync_fail_at_ = 0;
  sync_fail_count_ = 0;
  sync_fail_enospc_ = false;
  crash_at_ = 0;
  crashed_ = false;
  read_fail_at_.store(0, std::memory_order_relaxed);
  read_fail_count_.store(0, std::memory_order_relaxed);
  short_read_at_.store(0, std::memory_order_relaxed);
  free_space_override_.store(~0ull, std::memory_order_relaxed);
}

void FaultInjectingFileSystem::SimulateCrash() {
  std::lock_guard<std::mutex> lock(mu_);
  SimulateCrashLocked();
}

void FaultInjectingFileSystem::SimulateCrashLocked() {
  DropUnsyncedStateLocked();
  crashed_ = true;
}

void FaultInjectingFileSystem::ResetOpCount() {
  std::lock_guard<std::mutex> lock(mu_);
  op_count_ = 0;
  sync_op_count_ = 0;
}

uint64_t FaultInjectingFileSystem::op_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return op_count_;
}

uint64_t FaultInjectingFileSystem::sync_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_op_count_;
}

bool FaultInjectingFileSystem::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Status FaultInjectingFileSystem::CountOpLocked(const char* what,
                                               bool* short_write,
                                               bool is_file_sync) {
  ++op_count_;
  if (is_file_sync) ++sync_op_count_;
  if (crashed_) {
    return Status::Internal("simulated crash: filesystem is down");
  }
  if (crash_at_ != 0 && op_count_ >= crash_at_) {
    // The machine dies BEFORE operation op_count_ takes effect: state
    // freezes at what the previous operations made durable.
    SimulateCrashLocked();
    return Status::Internal(std::string("simulated crash during ") + what);
  }
  if (op_count_ == short_write_at_) {
    if (short_write != nullptr) {
      *short_write = true;
      return Status::OK();  // the Append tears instead of failing outright
    }
    return Status::Internal(std::string("injected fault during ") + what);
  }
  if (op_count_ == fail_at_) {
    if (fail_enospc_) {
      return Status::Internal(std::string("injected fault during ") + what +
                              ": no space left on device (ENOSPC)")
          .WithErrno(ENOSPC);
    }
    return Status::Internal(std::string("injected fault during ") + what);
  }
  if (is_file_sync && sync_fail_at_ != 0 && sync_op_count_ >= sync_fail_at_ &&
      sync_op_count_ - sync_fail_at_ < sync_fail_count_) {
    if (sync_fail_enospc_) {
      return Status::Internal(std::string("injected fault during ") + what +
                              ": no space left on device (ENOSPC)")
          .WithErrno(ENOSPC);
    }
    return Status::Internal(std::string("injected fault during ") + what +
                            ": I/O error (EIO)")
        .WithErrno(EIO);
  }
  return Status::OK();
}

Status FaultInjectingFileSystem::CountReadOp(const std::string& path,
                                             bool* short_read,
                                             size_t* short_read_keep) {
  const uint64_t n = read_op_count_.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t fail_at = read_fail_at_.load(std::memory_order_relaxed);
  if (fail_at != 0 && n >= fail_at &&
      n - fail_at < read_fail_count_.load(std::memory_order_relaxed)) {
    return Status::Internal("injected fault during pread '" + path +
                            "': I/O error (EIO)")
        .WithErrno(EIO);
  }
  if (n == short_read_at_.load(std::memory_order_relaxed) &&
      short_read != nullptr) {
    *short_read = true;
    if (short_read_keep != nullptr) {
      *short_read_keep = short_read_keep_.load(std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

void FaultInjectingFileSystem::TrackPathLocked(const std::string& path) {
  if (!touched_.insert(path).second) return;
  // First touch: whatever is on disk now predates the fault FS and is
  // assumed durable (unless a committed rename already accounted for it).
  if (durable_.find(path) == durable_.end() && real_->FileExists(path)) {
    durable_[path] = ReadWholeFile(path);
  }
}

void FaultInjectingFileSystem::MarkContentDurableLocked(
    const std::string& path, uint64_t limit_bytes) {
  std::string content = ReadWholeFile(path);
  if (content.size() > limit_bytes) content.resize(limit_bytes);
  durable_[path] = std::move(content);
}

void FaultInjectingFileSystem::DropUnsyncedStateLocked() {
  for (const std::string& path : touched_) {
    const auto it = durable_.find(path);
    if (it != durable_.end()) {
      WriteWholeFile(path, it->second);
    } else {
      std::remove(path.c_str());
    }
  }
  pending_name_ops_.clear();
  touched_.clear();
}

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::NewWritableFile(const std::string& path,
                                          WriteMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status injected = CountOpLocked("open");
  if (!injected.ok()) return injected;
  TrackPathLocked(path);
  uint64_t initial_bytes = 0;
  if (mode == WriteMode::kAppend && real_->FileExists(path)) {
    auto size = real_->FileSize(path);
    if (size.ok()) initial_bytes = size.value();
  }
  auto inner = real_->NewWritableFile(path, mode);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<WritableFile>(new FaultWritableFile(
      this, std::move(inner).value(), path, initial_bytes));
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status injected = CountOpLocked("rename");
  if (!injected.ok()) return injected;
  TrackPathLocked(from);
  TrackPathLocked(to);
  const Status st = real_->Rename(from, to);
  if (st.ok()) pending_name_ops_.push_back({from, to});
  return st;
}

Status FaultInjectingFileSystem::Truncate(const std::string& path,
                                          uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status injected = CountOpLocked("truncate");
  if (!injected.ok()) return injected;
  TrackPathLocked(path);
  return real_->Truncate(path, size);
}

Status FaultInjectingFileSystem::SyncDirOf(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status injected = CountOpLocked("fsync dir");
  if (!injected.ok()) return injected;
  const Status st = real_->SyncDirOf(path);
  if (!st.ok()) return st;
  // Commit every pending name change (tests run in one directory, so a
  // single directory fence covers them all). A renamed file carries the
  // content its SOURCE had made durable; a rename of a never-synced file
  // leaves the destination non-durable — name without content.
  for (const PendingNameOp& op : pending_name_ops_) {
    const auto it = durable_.find(op.from);
    if (op.to.empty()) {  // remove
      if (it != durable_.end()) durable_.erase(it);
      continue;
    }
    if (it != durable_.end()) {
      durable_[op.to] = std::move(it->second);
      durable_.erase(op.from);
    } else {
      durable_.erase(op.to);
    }
  }
  pending_name_ops_.clear();
  return Status::OK();
}

Status FaultInjectingFileSystem::RemoveFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const Status injected = CountOpLocked("unlink");
  if (!injected.ok()) return injected;
  TrackPathLocked(path);
  const Status st = real_->RemoveFile(path);
  if (st.ok()) pending_name_ops_.push_back({path, std::string()});
  return st;
}

bool FaultInjectingFileSystem::FileExists(const std::string& path) {
  return real_->FileExists(path);
}

Result<uint64_t> FaultInjectingFileSystem::FileSize(const std::string& path) {
  return real_->FileSize(path);
}

Result<std::unique_ptr<RandomAccessFile>>
FaultInjectingFileSystem::NewRandomAccessFile(const std::string& path) {
  // Opening for read is itself a counted read operation (so a kill plan
  // can fail the open, not just the preads behind it). No mu_: the read
  // plan is atomic and reads never touch durable-state bookkeeping.
  const Status injected = CountReadOp(path);
  if (!injected.ok()) return injected;
  auto inner = real_->NewRandomAccessFile(path);
  if (!inner.ok()) return inner.status();
  return std::unique_ptr<RandomAccessFile>(
      new FaultRandomAccessFile(this, std::move(inner).value(), path));
}

Result<uint64_t> FaultInjectingFileSystem::FreeSpace(const std::string& path) {
  const uint64_t forced = free_space_override_.load(std::memory_order_relaxed);
  if (forced != ~0ull) return forced;
  return real_->FreeSpace(path);
}

}  // namespace bloomsample
