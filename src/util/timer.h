// Wall-clock timing helper for benchmarks and cost calibration.
#ifndef BLOOMSAMPLE_UTIL_TIMER_H_
#define BLOOMSAMPLE_UTIL_TIMER_H_

#include <chrono>

namespace bloomsample {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_TIMER_H_
