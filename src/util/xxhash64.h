// XXH64 (the 64-bit xxHash), implemented from the public algorithm
// specification. Used for the snapshot v2 per-region integrity checksums:
// fast enough to hash a multi-GB filter slab at memory speed, and with a
// streaming flavor so the writer can checksum the slab while emitting it
// block by block instead of materializing a second copy.
//
// Both ends of the snapshot format use this one implementation, so the
// contract that matters is self-consistency; the output nevertheless
// matches the reference xxHash vectors (see xxhash_test.cpp), which keeps
// the files inspectable with standard tooling.
#ifndef BLOOMSAMPLE_UTIL_XXHASH64_H_
#define BLOOMSAMPLE_UTIL_XXHASH64_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace bloomsample {

class XxHash64 {
 public:
  explicit XxHash64(uint64_t seed = 0) { Reset(seed); }

  void Reset(uint64_t seed = 0) {
    seed_ = seed;
    v1_ = seed + kPrime1 + kPrime2;
    v2_ = seed + kPrime2;
    v3_ = seed;
    v4_ = seed - kPrime1;
    total_len_ = 0;
    buffered_ = 0;
  }

  /// Feeds `len` bytes. Equivalent byte streams yield equal digests no
  /// matter how they are split across Update calls.
  void Update(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    total_len_ += len;

    if (buffered_ + len < sizeof(buffer_)) {
      std::memcpy(buffer_ + buffered_, p, len);
      buffered_ += len;
      return;
    }
    if (buffered_ > 0) {
      const size_t fill = sizeof(buffer_) - buffered_;
      std::memcpy(buffer_ + buffered_, p, fill);
      ProcessStripe(buffer_);
      p += fill;
      len -= fill;
      buffered_ = 0;
    }
    while (len >= sizeof(buffer_)) {
      ProcessStripe(p);
      p += sizeof(buffer_);
      len -= sizeof(buffer_);
    }
    std::memcpy(buffer_, p, len);
    buffered_ = len;
  }

  /// Digest of everything fed since Reset. Does not consume the state:
  /// more Updates may follow and Digest may be called again.
  uint64_t Digest() const {
    uint64_t h;
    if (total_len_ >= sizeof(buffer_)) {
      h = RotL(v1_, 1) + RotL(v2_, 7) + RotL(v3_, 12) + RotL(v4_, 18);
      h = MergeRound(h, v1_);
      h = MergeRound(h, v2_);
      h = MergeRound(h, v3_);
      h = MergeRound(h, v4_);
    } else {
      h = seed_ + kPrime5;
    }
    h += total_len_;

    const uint8_t* p = buffer_;
    size_t len = buffered_;
    while (len >= 8) {
      h ^= Round(0, Read64(p));
      h = RotL(h, 27) * kPrime1 + kPrime4;
      p += 8;
      len -= 8;
    }
    if (len >= 4) {
      h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
      h = RotL(h, 23) * kPrime2 + kPrime3;
      p += 4;
      len -= 4;
    }
    while (len > 0) {
      h ^= static_cast<uint64_t>(*p) * kPrime5;
      h = RotL(h, 11) * kPrime1;
      ++p;
      --len;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
  }

  /// One-shot convenience.
  static uint64_t Hash(const void* data, size_t len, uint64_t seed = 0) {
    XxHash64 hasher(seed);
    hasher.Update(data, len);
    return hasher.Digest();
  }

 private:
  static constexpr uint64_t kPrime1 = 11400714785074694791ULL;
  static constexpr uint64_t kPrime2 = 14029467366897019727ULL;
  static constexpr uint64_t kPrime3 = 1609587929392839161ULL;
  static constexpr uint64_t kPrime4 = 9650029242287828579ULL;
  static constexpr uint64_t kPrime5 = 2870177450012600261ULL;

  static uint64_t RotL(uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  }
  static uint64_t Read64(const uint8_t* p) {
    uint64_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;  // metadata and slab are native little-endian on every
               // supported snapshot host (the format rejects cross-endian)
  }
  static uint32_t Read32(const uint8_t* p) {
    uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
  }
  static uint64_t Round(uint64_t acc, uint64_t input) {
    acc += input * kPrime2;
    acc = RotL(acc, 31);
    return acc * kPrime1;
  }
  static uint64_t MergeRound(uint64_t h, uint64_t v) {
    h ^= Round(0, v);
    return h * kPrime1 + kPrime4;
  }

  void ProcessStripe(const uint8_t* p) {
    v1_ = Round(v1_, Read64(p));
    v2_ = Round(v2_, Read64(p + 8));
    v3_ = Round(v3_, Read64(p + 16));
    v4_ = Round(v4_, Read64(p + 24));
  }

  uint64_t seed_ = 0;
  uint64_t v1_, v2_, v3_, v4_;
  uint64_t total_len_ = 0;
  uint8_t buffer_[32];
  size_t buffered_ = 0;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_XXHASH64_H_
