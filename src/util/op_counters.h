// Operation accounting.
//
// The paper's primary efficiency metric (Figs 3, 4, 8, 9, 10) is the number
// of Bloom-filter membership queries and Bloom-filter intersections an
// algorithm performs, not wall-clock time. Every sampler/reconstructor in
// this library accepts an optional OpCounters* and increments it at each
// logical operation, so benchmarks can report exactly what the paper plots.
#ifndef BLOOMSAMPLE_UTIL_OP_COUNTERS_H_
#define BLOOMSAMPLE_UTIL_OP_COUNTERS_H_

#include <cstdint>

namespace bloomsample {

struct OpCounters {
  /// Membership queries issued against any Bloom filter.
  uint64_t membership_queries = 0;
  /// Bloom filter intersections (bitwise AND + cardinality estimate).
  uint64_t intersections = 0;
  /// Tree nodes visited (BST algorithms only).
  uint64_t nodes_visited = 0;
  /// Hash-bit inversions performed (HashInvert only).
  uint64_t inversions = 0;
  /// Top-level sampling requests that produced no sample (every descent
  /// path died on false-positive overlaps, or the filter was empty).
  uint64_t null_samples = 0;
  /// Backtracking events during BSTSample descent.
  uint64_t backtracks = 0;

  void Reset() { *this = OpCounters{}; }

  OpCounters& operator+=(const OpCounters& o) {
    membership_queries += o.membership_queries;
    intersections += o.intersections;
    nodes_visited += o.nodes_visited;
    inversions += o.inversions;
    null_samples += o.null_samples;
    backtracks += o.backtracks;
    return *this;
  }
};

/// Increment helpers that tolerate a null counter pointer, so hot paths can
/// stay branch-light at call sites.
inline void CountMembership(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->membership_queries += n;
}
inline void CountIntersection(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->intersections += n;
}
inline void CountNodeVisit(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->nodes_visited += n;
}
inline void CountInversion(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->inversions += n;
}
inline void CountNullSample(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->null_samples += n;
}
inline void CountBacktrack(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->backtracks += n;
}

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_OP_COUNTERS_H_
