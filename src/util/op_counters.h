// Operation accounting.
//
// The paper's primary efficiency metric (Figs 3, 4, 8, 9, 10) is the number
// of Bloom-filter membership queries and Bloom-filter intersections an
// algorithm performs, not wall-clock time. Every sampler/reconstructor in
// this library accepts an optional OpCounters* and increments it at each
// logical operation, so benchmarks can report exactly what the paper plots.
#ifndef BLOOMSAMPLE_UTIL_OP_COUNTERS_H_
#define BLOOMSAMPLE_UTIL_OP_COUNTERS_H_

#include <cstdint>

namespace bloomsample {

struct OpCounters {
  /// Membership queries issued against any Bloom filter.
  uint64_t membership_queries = 0;
  /// Bloom filter intersections (bitwise AND + cardinality estimate).
  /// Always the sum of the dense and sparse kernel counters below.
  uint64_t intersections = 0;
  /// Intersections computed with the dense O(m/64)-word kernel.
  uint64_t dense_intersections = 0;
  /// Intersections computed with the sparse O(nnz-words) view kernel.
  uint64_t sparse_intersections = 0;
  /// Filter-payload bytes the intersection kernels read: 16 bytes per word
  /// position each intersection touches (8 from each operand) — the full
  /// word count for the dense kernel, nnz words for the sparse one. The
  /// memory-traffic complement of the intersection counts: layout and
  /// kernel wins show up here even when the op counts are unchanged.
  uint64_t intersection_bytes = 0;
  /// Per-(node, query) intersection estimates served from a QueryContext's
  /// EstimateCache without running a kernel. hits + misses is the logical
  /// intersection count the paper would charge; `intersections` (and the
  /// kernel split above) counts only the misses — the kernels that actually
  /// executed.
  uint64_t estimate_cache_hits = 0;
  /// First touches of a (node, query) pair: the kernel ran and the result
  /// was recorded for reuse. Equals the kernel intersections performed
  /// through a caching context.
  uint64_t estimate_cache_misses = 0;
  /// Tree nodes visited (BST algorithms only).
  uint64_t nodes_visited = 0;
  /// Hash-bit inversions performed (HashInvert only).
  uint64_t inversions = 0;
  /// Top-level sampling requests that produced no sample (every descent
  /// path died on false-positive overlaps, or the filter was empty).
  uint64_t null_samples = 0;
  /// Backtracking events during BSTSample descent.
  uint64_t backtracks = 0;

  void Reset() { *this = OpCounters{}; }

  OpCounters& operator+=(const OpCounters& o) {
    membership_queries += o.membership_queries;
    intersections += o.intersections;
    dense_intersections += o.dense_intersections;
    sparse_intersections += o.sparse_intersections;
    intersection_bytes += o.intersection_bytes;
    estimate_cache_hits += o.estimate_cache_hits;
    estimate_cache_misses += o.estimate_cache_misses;
    nodes_visited += o.nodes_visited;
    inversions += o.inversions;
    null_samples += o.null_samples;
    backtracks += o.backtracks;
    return *this;
  }
};

/// Increment helpers that tolerate a null counter pointer, so hot paths can
/// stay branch-light at call sites.
inline void CountMembership(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->membership_queries += n;
}
/// Kernel-agnostic intersections (callers that don't know which kernel ran,
/// e.g. ops on plain BloomFilter pairs) count as dense: that is the kernel
/// BloomFilter::AndPopcount(const BloomFilter&) actually executes.
inline void CountIntersection(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) {
    c->intersections += n;
    c->dense_intersections += n;
  }
}
/// Attributes `n` intersections to the dense or sparse kernel counter (and
/// the total), for call sites that dispatch through a query view.
/// `words_touched` is the word positions one intersection reads (a view's
/// words_touched()); it feeds the bytes-touched gauge at 16 bytes per
/// position (one word from each operand).
inline void CountIntersectionKernel(OpCounters* c, bool sparse,
                                    uint64_t n = 1,
                                    uint64_t words_touched = 0) {
  if (c != nullptr) {
    c->intersections += n;
    (sparse ? c->sparse_intersections : c->dense_intersections) += n;
    c->intersection_bytes += 16 * n * words_touched;
  }
}
inline void CountEstimateCacheHit(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->estimate_cache_hits += n;
}
inline void CountEstimateCacheMiss(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->estimate_cache_misses += n;
}
inline void CountNodeVisit(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->nodes_visited += n;
}
inline void CountInversion(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->inversions += n;
}
inline void CountNullSample(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->null_samples += n;
}
inline void CountBacktrack(OpCounters* c, uint64_t n = 1) {
  if (c != nullptr) c->backtracks += n;
}

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_OP_COUNTERS_H_
