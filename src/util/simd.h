// Runtime-dispatched word-level bit kernels.
//
// Every hot loop in the library — AND-popcount (the t∧ of the Papapetrou
// estimator), intersection emptiness, union, and bulk popcount — funnels
// through the entry points below. Each entry point is a function pointer
// resolved once at startup to the widest implementation this CPU supports:
//
//   tier      requires                      AND-popcount inner loop
//   scalar    nothing                       64-bit words, __builtin_popcountll
//   avx2      AVX2                          16 words/iter, PSHUFB LUT +
//                                           Harley-Seal carry-save adders
//   avx512    AVX-512F + VPOPCNTDQ          8 words/iter, VPOPCNTQ
//
// All tiers are bit-exact: they compute identical results on identical
// inputs (popcounts and boolean tests have no rounding), so sampling draws
// and reconstruction output do not depend on the dispatch. The tier can be
// pinned with the BSR_SIMD environment variable ("scalar", "avx2",
// "avx512"; read once at startup) or programmatically with ForceLevel()
// (tests, benchmarks). Requests beyond what the CPU supports clamp down to
// the widest supported tier at or below the request.
//
// The sparse kernels walk a compressed word list (index + value pairs, the
// BitVector::SparseView layout) against a dense word array; the AVX-512
// tier gathers 8 scattered words per instruction, which supplies the
// memory-level parallelism the strided access pattern needs (measured
// faster than software prefetch, whose address-generation overhead costs
// more than it hides once the filter is cache-resident).
#ifndef BLOOMSAMPLE_UTIL_SIMD_H_
#define BLOOMSAMPLE_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace bloomsample {
namespace simd {

/// Dispatch tiers, widest last. Numeric order is capability order.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// The tier the entry points currently dispatch to.
Level ActiveLevel();

/// True when this CPU can run `level`'s implementations.
bool LevelSupported(Level level);

/// Pins dispatch to `level`, clamped to the widest supported tier at or
/// below it; returns the tier actually activated. Not thread-safe against
/// concurrent kernel calls — pin before spawning query threads.
Level ForceLevel(Level level);

/// "scalar" / "avx2" / "avx512".
const char* LevelName(Level level);

// ---------------------------------------------------------------------------
// Dispatched entry points. `n` counts 64-bit words. All pointers may alias.
// ---------------------------------------------------------------------------

/// popcount(a & b) over n words.
uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n);

/// True iff (a & b) is all-zero over n words.
bool AndAllZero(const uint64_t* a, const uint64_t* b, size_t n);

/// popcount(a) over n words.
uint64_t Popcount(const uint64_t* a, size_t n);

/// dst |= src over n words.
void OrInto(uint64_t* dst, const uint64_t* src, size_t n);

/// dst &= src over n words.
void AndInto(uint64_t* dst, const uint64_t* src, size_t n);

/// popcount(words[idx[i]] & val[i]) summed over i < nnz. idx entries must
/// be in range for `words` and below 2^31 (the vector tiers gather through
/// sign-extended 32-bit indices).
uint64_t AndPopcountSparse(const uint64_t* words, const uint32_t* idx,
                           const uint64_t* val, size_t nnz);

/// True iff words[idx[i]] & val[i] == 0 for every i < nnz.
bool AndAllZeroSparse(const uint64_t* words, const uint32_t* idx,
                      const uint64_t* val, size_t nnz);

// ---------------------------------------------------------------------------
// Scalar reference implementations, always available regardless of the
// active tier — the ground truth the randomized kernel tests and the
// micro_kernels bench compare against.
// ---------------------------------------------------------------------------
namespace scalar {
uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n);
bool AndAllZero(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t Popcount(const uint64_t* a, size_t n);
void OrInto(uint64_t* dst, const uint64_t* src, size_t n);
void AndInto(uint64_t* dst, const uint64_t* src, size_t n);
uint64_t AndPopcountSparse(const uint64_t* words, const uint32_t* idx,
                           const uint64_t* val, size_t nnz);
bool AndAllZeroSparse(const uint64_t* words, const uint32_t* idx,
                      const uint64_t* val, size_t nnz);
}  // namespace scalar

}  // namespace simd
}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_SIMD_H_
