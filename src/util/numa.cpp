#include "src/util/numa.h"

#if defined(__linux__)
#define BSR_HAVE_AFFINITY 1
#include <pthread.h>
#include <sched.h>
#else
#define BSR_HAVE_AFFINITY 0
#endif

namespace bloomsample {

#if BSR_HAVE_AFFINITY

struct ScopedThreadAffinity::Impl {
  cpu_set_t previous;
};

ScopedThreadAffinity::ScopedThreadAffinity(size_t slot, size_t slots) {
  if (slots <= 1 || slot >= slots) return;

  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (pthread_getaffinity_np(pthread_self(), sizeof(allowed), &allowed) != 0) {
    return;
  }
  // Collect the CPUs this thread may run on (respecting any container or
  // taskset confinement) and carve them into `slots` contiguous bands.
  // Contiguous CPU ids overwhelmingly share a NUMA node on Linux's default
  // enumeration, so band b is the closest portable stand-in for "node
  // b % nodes" without a libnuma dependency.
  int cpus[CPU_SETSIZE];
  size_t n = 0;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &allowed)) cpus[n++] = cpu;
  }
  if (n < slots) return;  // fewer CPUs than bands: pinning just serializes

  const size_t begin = slot * n / slots;
  const size_t end = (slot + 1) * n / slots;
  cpu_set_t band;
  CPU_ZERO(&band);
  for (size_t i = begin; i < end; ++i) CPU_SET(cpus[i], &band);

  if (pthread_setaffinity_np(pthread_self(), sizeof(band), &band) != 0) {
    return;
  }
  impl_ = std::make_unique<Impl>();
  impl_->previous = allowed;
}

ScopedThreadAffinity::~ScopedThreadAffinity() {
  if (impl_ != nullptr) {
    pthread_setaffinity_np(pthread_self(), sizeof(impl_->previous),
                           &impl_->previous);
  }
}

bool ScopedThreadAffinity::Supported() { return true; }

#else  // !BSR_HAVE_AFFINITY

struct ScopedThreadAffinity::Impl {};

ScopedThreadAffinity::ScopedThreadAffinity(size_t, size_t) {}
ScopedThreadAffinity::~ScopedThreadAffinity() = default;
bool ScopedThreadAffinity::Supported() { return false; }

#endif  // BSR_HAVE_AFFINITY

}  // namespace bloomsample
