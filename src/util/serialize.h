// Minimal binary (de)serialization over std::iostream.
//
// Fixed little-endian encoding so artifacts are portable across machines;
// readers validate eagerly and surface Status instead of throwing. Used
// by bloom_io.h / tree_io.h to persist Bloom filters and BloomSampleTrees
// (the tree is built once and reused forever — reloading beats rebuilding
// for any namespace that takes seconds to index).
#ifndef BLOOMSAMPLE_UTIL_SERIALIZE_H_
#define BLOOMSAMPLE_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {
    BSR_CHECK(out != nullptr, "BinaryWriter needs a stream");
  }

  void WriteU32(uint32_t value) {
    uint8_t buf[4];
    for (int i = 0; i < 4; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
    out_->write(reinterpret_cast<const char*>(buf), 4);
  }

  void WriteU64(uint64_t value) {
    uint8_t buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(value >> (8 * i));
    out_->write(reinterpret_cast<const char*>(buf), 8);
  }

  void WriteI64(int64_t value) { WriteU64(static_cast<uint64_t>(value)); }

  void WriteDouble(double value) {
    uint64_t bits;
    std::memcpy(&bits, &value, 8);
    WriteU64(bits);
  }

  void WriteU64Vector(const std::vector<uint64_t>& values) {
    WriteU64Array(values.data(), values.size());
  }

  /// Same wire format as WriteU64Vector for word payloads that live in
  /// arena-backed spans rather than vectors.
  void WriteU64Array(const uint64_t* values, size_t count) {
    WriteU64(count);
    for (size_t i = 0; i < count; ++i) WriteU64(values[i]);
  }

  void WriteTag(const char tag[4]) { out_->write(tag, 4); }

  bool ok() const { return out_->good(); }

 private:
  std::ostream* out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {
    BSR_CHECK(in != nullptr, "BinaryReader needs a stream");
  }

  Result<uint32_t> ReadU32() {
    uint8_t buf[4];
    in_->read(reinterpret_cast<char*>(buf), 4);
    if (!in_->good()) return Status::OutOfRange("truncated stream (u32)");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(buf[i]) << (8 * i);
    return value;
  }

  Result<uint64_t> ReadU64() {
    uint8_t buf[8];
    in_->read(reinterpret_cast<char*>(buf), 8);
    if (!in_->good()) return Status::OutOfRange("truncated stream (u64)");
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(buf[i]) << (8 * i);
    return value;
  }

  Result<int64_t> ReadI64() {
    Result<uint64_t> value = ReadU64();
    if (!value.ok()) return value.status();
    return static_cast<int64_t>(value.value());
  }

  Result<double> ReadDouble() {
    Result<uint64_t> bits = ReadU64();
    if (!bits.ok()) return bits.status();
    double value;
    const uint64_t raw = bits.value();
    std::memcpy(&value, &raw, 8);
    return value;
  }

  Result<std::vector<uint64_t>> ReadU64Vector(uint64_t max_size) {
    Result<uint64_t> size = ReadU64();
    if (!size.ok()) return size.status();
    if (size.value() > max_size) {
      return Status::OutOfRange("vector size exceeds sanity bound");
    }
    std::vector<uint64_t> values;
    values.reserve(static_cast<size_t>(size.value()));
    for (uint64_t i = 0; i < size.value(); ++i) {
      Result<uint64_t> v = ReadU64();
      if (!v.ok()) return v.status();
      values.push_back(v.value());
    }
    return values;
  }

  Status ExpectTag(const char tag[4]) {
    char buf[4];
    in_->read(buf, 4);
    if (!in_->good()) return Status::OutOfRange("truncated stream (tag)");
    if (std::memcmp(buf, tag, 4) != 0) {
      return Status::InvalidArgument(std::string("bad magic tag; expected '") +
                                     std::string(tag, 4) + "'");
    }
    return Status::OK();
  }

 private:
  std::istream* in_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_SERIALIZE_H_
