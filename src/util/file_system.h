// Pluggable file-system abstraction for the durability subsystem.
//
// Every mutating file operation the persistence layer performs — snapshot
// saves, WAL appends, compaction renames — goes through this interface
// instead of raw ofstream/rename calls, for one reason: crash-safety
// claims are only worth anything if they are testable. The production
// implementation (PosixFileSystem, via FileSystem::Default()) is a thin
// veneer over open/write/fsync/rename/ftruncate; the test implementation
// (FaultInjectingFileSystem, util/fault_fs.h) can fail the Nth syscall,
// short-write, report ENOSPC, and — the part no unit test can fake with
// std::ofstream — simulate a crash that drops every byte not yet fsync'ed
// and rolls back every rename not yet fenced by a directory fsync.
//
// The bulk read side (ifstream parsing, mmap) stays on the raw platform
// calls; corrupt-read behavior there is exercised by byte surgery on real
// files (see tests/tree_snapshot_test.cpp, wal_test.cpp). The scrubber's
// positional reads and the mmap-safety probes DO go through the interface
// (NewRandomAccessFile) so the fault FS can inject EIO and short reads on
// the verification path itself.
//
// Durability contract the writers rely on (and the fault FS enforces):
//   * Append data is volatile until Sync() returns OK.
//   * A rename is volatile until SyncDir(parent) returns OK — until then a
//     crash may resurrect the old destination and the old source.
//   * Truncate is volatile until Sync() on the truncated file.
#ifndef BLOOMSAMPLE_UTIL_FILE_SYSTEM_H_
#define BLOOMSAMPLE_UTIL_FILE_SYSTEM_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>

#include "src/util/status.h"

namespace bloomsample {

/// An append-only output file. Not thread-safe; one writer per file.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `len` bytes at the end of the file. A short write (ENOSPC,
  /// injected fault) surfaces as a non-OK Status; the file's tail is then
  /// unspecified garbage and the caller must treat the artifact as dead.
  virtual Status Append(const void* data, size_t len) = 0;

  /// Durability fence: all previously appended bytes survive a crash once
  /// this returns OK (fsync, or the fault FS's simulated equivalent).
  virtual Status Sync() = 0;

  /// Closes the descriptor. Close does NOT imply durability — call Sync
  /// first if the bytes matter. Idempotent; the destructor closes too.
  virtual Status Close() = 0;
};

/// How NewWritableFile positions an existing file.
enum class WriteMode : uint32_t {
  kTruncate = 0,  ///< start from scratch (creates or empties)
  kAppend = 1,    ///< keep existing bytes, append at the end
};

/// A positional reader (pread semantics): stateless offset, safe to call
/// from multiple threads concurrently on one instance. The scrubber and
/// the mmap probe use this instead of mapped memory precisely because a
/// pread of a byte past EOF returns a short count — where touching the
/// same byte through a mapping would raise SIGBUS.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `len` bytes at `offset` into `scratch`; `*bytes_read`
  /// reports how many arrived (short at EOF, zero past it). An I/O error
  /// surfaces as non-OK with sys_errno() set when it came from a syscall.
  virtual Status Read(uint64_t offset, size_t len, void* scratch,
                      size_t* bytes_read) = 0;
};

class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics). The
  /// swap is durable only after SyncDir on the parent directory.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Truncates `path` to `size` bytes (the WAL reset after compaction and
  /// the replay-time amputation of a torn tail).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// fsyncs the directory containing `path` (a FILE path — the helper
  /// resolves the parent), making renames/creates/removes in it durable.
  virtual Status SyncDirOf(const std::string& path) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Size in bytes; NotFound if the file does not exist.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Opens `path` for positional reads (scrub walks, mmap-safety probes).
  virtual Result<std::unique_ptr<RandomAccessFile>> NewRandomAccessFile(
      const std::string& path) = 0;

  /// Free bytes on the filesystem holding `path` (statvfs). The lane
  /// recovery supervisor uses this as the disk watermark that decides
  /// whether an ENOSPC latch is worth re-probing. Ports without statvfs
  /// report UINT64_MAX (never blocks recovery on an unknowable number).
  virtual Result<uint64_t> FreeSpace(const std::string& path) = 0;

  /// The process-wide POSIX-backed instance.
  static FileSystem* Default();
};

/// std::streambuf adapter so the existing stream-based serializers
/// (TreeSerializer::Write/WriteV2, the forest manifest writer) can emit
/// through a WritableFile — and therefore through fault injection —
/// without rewriting them. Write errors latch: once any Append fails,
/// every later write fails and bad() is true (std::ostream will also have
/// badbit set via the returned EOF).
class WritableFileStreamBuf : public std::streambuf {
 public:
  explicit WritableFileStreamBuf(WritableFile* file) : file_(file) {
    setp(buffer_, buffer_ + sizeof(buffer_));
  }
  ~WritableFileStreamBuf() override { FlushBuffered(); }

  /// Pushes buffered bytes to the file. Call before Sync/Close.
  bool FlushBuffered();

  bool bad() const { return bad_; }
  const Status& error() const { return error_; }

 protected:
  int overflow(int ch) override;
  std::streamsize xsputn(const char* data, std::streamsize len) override;
  int sync() override { return FlushBuffered() ? 0 : -1; }

 private:
  bool RawWrite(const void* data, size_t len);

  WritableFile* file_;
  char buffer_[1 << 16];
  bool bad_ = false;
  Status error_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_FILE_SYSTEM_H_
