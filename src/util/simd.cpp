#include "src/util/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define BSR_SIMD_X86 1
#else
#define BSR_SIMD_X86 0
#endif

namespace bloomsample {
namespace simd {

// ---------------------------------------------------------------------------
// Scalar reference tier.
// ---------------------------------------------------------------------------
namespace scalar {

uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

bool AndAllZero(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return false;
  }
  return true;
}

uint64_t Popcount(const uint64_t* a, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i]));
  }
  return count;
}

void OrInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndInto(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

uint64_t AndPopcountSparse(const uint64_t* words, const uint32_t* idx,
                           const uint64_t* val, size_t nnz) {
  uint64_t count = 0;
  for (size_t i = 0; i < nnz; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(words[idx[i]] & val[i]));
  }
  return count;
}

bool AndAllZeroSparse(const uint64_t* words, const uint32_t* idx,
                      const uint64_t* val, size_t nnz) {
  for (size_t i = 0; i < nnz; ++i) {
    if ((words[idx[i]] & val[i]) != 0) return false;
  }
  return true;
}

}  // namespace scalar

#if BSR_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 tier. No vector popcount instruction exists at this width, so the
// popcount kernels combine the PSHUFB nibble-lookup method (Muła) with a
// Harley-Seal carry-save adder over 16-word blocks: three CSAs compress
// four input vectors into ones/twos/fours partial sums, so only one
// nibble-lookup popcount runs per 16 words instead of four.
// ---------------------------------------------------------------------------
namespace avx2 {

__attribute__((target("avx2"))) static inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) static inline uint64_t Reduce256(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

/// Carry-save adder: (h, l) := a + b + c as a two-vector redundant sum.
__attribute__((target("avx2"))) static inline void Csa256(__m256i* h,
                                                          __m256i* l,
                                                          __m256i a, __m256i b,
                                                          __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  *h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  *l = _mm256_xor_si256(u, c);
}

__attribute__((target("avx2"))) uint64_t AndPopcount(const uint64_t* a,
                                                     const uint64_t* b,
                                                     size_t n) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i d0 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i d1 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 4)));
    const __m256i d2 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 8)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 8)));
    const __m256i d3 = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 12)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 12)));
    __m256i t0;
    __m256i t1;
    __m256i fours;
    Csa256(&t0, &ones, ones, d0, d1);
    Csa256(&t1, &ones, ones, d2, d3);
    Csa256(&fours, &twos, twos, t0, t1);
    total = _mm256_add_epi64(total, Popcount256(fours));
  }
  total = _mm256_slli_epi64(total, 2);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(twos), 1));
  total = _mm256_add_epi64(total, Popcount256(ones));
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    total = _mm256_add_epi64(total, Popcount256(_mm256_and_si256(va, vb)));
  }
  uint64_t count = Reduce256(total);
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

__attribute__((target("avx2"))) bool AndAllZero(const uint64_t* a,
                                                const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // VPTEST computes (va & vb) == 0 directly; no materialized AND needed.
    if (!_mm256_testz_si256(va, vb)) return false;
  }
  for (; i < n; ++i) {
    if ((a[i] & b[i]) != 0) return false;
  }
  return true;
}

__attribute__((target("avx2"))) uint64_t Popcount(const uint64_t* a, size_t n) {
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i d0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i d1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 4));
    const __m256i d2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 8));
    const __m256i d3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 12));
    __m256i t0;
    __m256i t1;
    __m256i fours;
    Csa256(&t0, &ones, ones, d0, d1);
    Csa256(&t1, &ones, ones, d2, d3);
    Csa256(&fours, &twos, twos, t0, t1);
    total = _mm256_add_epi64(total, Popcount256(fours));
  }
  total = _mm256_slli_epi64(total, 2);
  total = _mm256_add_epi64(total, _mm256_slli_epi64(Popcount256(twos), 1));
  total = _mm256_add_epi64(total, Popcount256(ones));
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    total = _mm256_add_epi64(total, Popcount256(va));
  }
  uint64_t count = Reduce256(total);
  for (; i < n; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(a[i]));
  }
  return count;
}

__attribute__((target("avx2"))) void OrInto(uint64_t* dst, const uint64_t* src,
                                            size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(vd, vs));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void AndInto(uint64_t* dst, const uint64_t* src,
                                             size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vd = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i vs = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(vd, vs));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

}  // namespace avx2

// ---------------------------------------------------------------------------
// AVX-512 tier: VPOPCNTQ counts all eight lanes in one instruction, and
// masked loads fold the tail into the vector loop.
// ---------------------------------------------------------------------------
#define BSR_AVX512_TARGET "avx512f,avx512vpopcntdq"
namespace avx512 {

__attribute__((target(BSR_AVX512_TARGET))) uint64_t AndPopcount(
    const uint64_t* a, const uint64_t* b, size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

__attribute__((target(BSR_AVX512_TARGET))) bool AndAllZero(const uint64_t* a,
                                                           const uint64_t* b,
                                                           size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return false;
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + i);
    if (_mm512_test_epi64_mask(va, vb) != 0) return false;
  }
  return true;
}

__attribute__((target(BSR_AVX512_TARGET))) uint64_t Popcount(const uint64_t* a,
                                                             size_t n) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_loadu_si512(a + i)));
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(tail, a + i)));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

__attribute__((target(BSR_AVX512_TARGET))) void OrInto(uint64_t* dst,
                                                       const uint64_t* src,
                                                       size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = _mm512_loadu_si512(dst + i);
    const __m512i vs = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_or_si512(vd, vs));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target(BSR_AVX512_TARGET))) void AndInto(uint64_t* dst,
                                                        const uint64_t* src,
                                                        size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vd = _mm512_loadu_si512(dst + i);
    const __m512i vs = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(vd, vs));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target(BSR_AVX512_TARGET))) uint64_t AndPopcountSparse(
    const uint64_t* words, const uint32_t* idx, const uint64_t* val,
    size_t nnz) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= nnz; i += 8) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m512i gathered = _mm512_i32gather_epi64(
        vi, reinterpret_cast<const long long*>(words), 8);
    const __m512i vv = _mm512_loadu_si512(val + i);
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_and_si512(gathered, vv)));
  }
  uint64_t count = static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
  for (; i < nnz; ++i) {
    count += static_cast<uint64_t>(__builtin_popcountll(words[idx[i]] & val[i]));
  }
  return count;
}

__attribute__((target(BSR_AVX512_TARGET))) bool AndAllZeroSparse(
    const uint64_t* words, const uint32_t* idx, const uint64_t* val,
    size_t nnz) {
  size_t i = 0;
  for (; i + 8 <= nnz; i += 8) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m512i gathered = _mm512_i32gather_epi64(
        vi, reinterpret_cast<const long long*>(words), 8);
    const __m512i vv = _mm512_loadu_si512(val + i);
    if (_mm512_test_epi64_mask(gathered, vv) != 0) return false;
  }
  for (; i < nnz; ++i) {
    if ((words[idx[i]] & val[i]) != 0) return false;
  }
  return true;
}

}  // namespace avx512
#undef BSR_AVX512_TARGET

#endif  // BSR_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch table.
// ---------------------------------------------------------------------------
namespace {

struct KernelTable {
  uint64_t (*and_popcount)(const uint64_t*, const uint64_t*, size_t);
  bool (*and_all_zero)(const uint64_t*, const uint64_t*, size_t);
  uint64_t (*popcount)(const uint64_t*, size_t);
  void (*or_into)(uint64_t*, const uint64_t*, size_t);
  void (*and_into)(uint64_t*, const uint64_t*, size_t);
  uint64_t (*and_popcount_sparse)(const uint64_t*, const uint32_t*,
                                  const uint64_t*, size_t);
  bool (*and_all_zero_sparse)(const uint64_t*, const uint32_t*,
                              const uint64_t*, size_t);
};

constexpr KernelTable kScalarTable = {
    scalar::AndPopcount,       scalar::AndAllZero, scalar::Popcount,
    scalar::OrInto,            scalar::AndInto,    scalar::AndPopcountSparse,
    scalar::AndAllZeroSparse};

#if BSR_SIMD_X86
// The AVX2 tier keeps the scalar sparse walks: a 4-wide VPGATHERQQ plus
// the PSHUFB popcount loses to plain scalar loads on every measured
// microarchitecture (see bench/micro_kernels), while the 8-wide AVX-512
// gather + VPOPCNTQ wins. Dispatch exists precisely to pick the fastest
// per-tier kernel, not the widest.
constexpr KernelTable kAvx2Table = {
    avx2::AndPopcount,       avx2::AndAllZero, avx2::Popcount,
    avx2::OrInto,            avx2::AndInto,    scalar::AndPopcountSparse,
    scalar::AndAllZeroSparse};

constexpr KernelTable kAvx512Table = {
    avx512::AndPopcount,       avx512::AndAllZero, avx512::Popcount,
    avx512::OrInto,            avx512::AndInto,    avx512::AndPopcountSparse,
    avx512::AndAllZeroSparse};
#endif

const KernelTable* TableFor(Level level) {
#if BSR_SIMD_X86
  if (level == Level::kAvx512) return &kAvx512Table;
  if (level == Level::kAvx2) return &kAvx2Table;
#endif
  (void)level;
  return &kScalarTable;
}

Level ClampToSupported(Level level) {
  while (level != Level::kScalar && !LevelSupported(level)) {
    level = static_cast<Level>(static_cast<int>(level) - 1);
  }
  return level;
}

Level LevelFromEnv() {
  const char* env = std::getenv("BSR_SIMD");
  if (env == nullptr || env[0] == '\0') return ClampToSupported(Level::kAvx512);
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "avx2") == 0) return ClampToSupported(Level::kAvx2);
  if (std::strcmp(env, "avx512") == 0) return ClampToSupported(Level::kAvx512);
  // Unknown value: fall through to auto-detection rather than aborting —
  // a typo in an env var should not take down a serving process.
  return ClampToSupported(Level::kAvx512);
}

// Resolved once before main() (static init is single-threaded); ForceLevel
// rewrites both in place.
Level g_active_level = LevelFromEnv();
const KernelTable* g_table = TableFor(g_active_level);

}  // namespace

Level ActiveLevel() { return g_active_level; }

bool LevelSupported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
#if BSR_SIMD_X86
    case Level::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Level::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
#else
    case Level::kAvx2:
    case Level::kAvx512:
      return false;
#endif
  }
  return false;
}

Level ForceLevel(Level level) {
  g_active_level = ClampToSupported(level);
  g_table = TableFor(g_active_level);
  return g_active_level;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

uint64_t AndPopcount(const uint64_t* a, const uint64_t* b, size_t n) {
  return g_table->and_popcount(a, b, n);
}

bool AndAllZero(const uint64_t* a, const uint64_t* b, size_t n) {
  return g_table->and_all_zero(a, b, n);
}

uint64_t Popcount(const uint64_t* a, size_t n) {
  return g_table->popcount(a, n);
}

void OrInto(uint64_t* dst, const uint64_t* src, size_t n) {
  g_table->or_into(dst, src, n);
}

void AndInto(uint64_t* dst, const uint64_t* src, size_t n) {
  g_table->and_into(dst, src, n);
}

uint64_t AndPopcountSparse(const uint64_t* words, const uint32_t* idx,
                           const uint64_t* val, size_t nnz) {
  return g_table->and_popcount_sparse(words, idx, val, nnz);
}

bool AndAllZeroSparse(const uint64_t* words, const uint32_t* idx,
                      const uint64_t* val, size_t nnz) {
  return g_table->and_all_zero_sparse(words, idx, val, nnz);
}

}  // namespace simd
}  // namespace bloomsample
