// Best-effort thread placement for NUMA-aware shard work.
//
// The forest builder allocates and fills each shard's FilterArena on the
// thread that builds the shard. With first-touch page placement (the Linux
// default), pinning that thread to one band of CPUs for the duration of
// the build puts the shard's slab pages on the memory node those CPUs
// belong to — and pinning the same band during queries keeps the
// intersections local. On platforms without an affinity API (or when the
// process is already confined to fewer CPUs than bands) this degrades to a
// silent no-op: placement is purely a locality optimization and never
// affects results.
#ifndef BLOOMSAMPLE_UTIL_NUMA_H_
#define BLOOMSAMPLE_UTIL_NUMA_H_

#include <cstddef>
#include <memory>

namespace bloomsample {

/// RAII affinity pin: constructor pins the calling thread to band `slot`
/// of `slots` equal contiguous bands of the CPUs the thread was allowed
/// to run on; destructor restores the previous mask. A no-op (active() ==
/// false) when the platform has no thread-affinity API, slots <= 1, or
/// the band would be empty.
class ScopedThreadAffinity {
 public:
  ScopedThreadAffinity(size_t slot, size_t slots);
  ~ScopedThreadAffinity();

  ScopedThreadAffinity(const ScopedThreadAffinity&) = delete;
  ScopedThreadAffinity& operator=(const ScopedThreadAffinity&) = delete;

  /// True when the pin actually took effect.
  bool active() const { return impl_ != nullptr; }

  /// True when this platform can pin threads at all.
  static bool Supported();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_NUMA_H_
