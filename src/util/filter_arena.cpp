#include "src/util/filter_arena.h"

#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace bloomsample {

namespace {
// Cache-line alignment: SIMD kernels use unaligned loads, but line-aligned
// blocks keep every 64-byte prefetch inside the intended block.
constexpr size_t kArenaAlignment = 64;
}  // namespace

void FilterArena::Configure(size_t words_per_block, size_t expected_blocks) {
  BSR_CHECK(words_per_block > 0, "FilterArena: zero-width blocks");
  BSR_CHECK(chunks_.empty() && allocated_blocks_ == 0,
            "FilterArena: Configure on a non-empty arena");
  words_per_block_ = words_per_block;
  // Pad the stride to whole cache lines so every block starts line-aligned.
  stride_words_ = (words_per_block + 7) / 8 * 8;
  if (expected_blocks > 0) AddChunk(expected_blocks);
}

void FilterArena::Reserve(size_t expected_blocks) {
  BSR_CHECK(words_per_block_ > 0, "FilterArena: Reserve before Configure");
  BSR_CHECK(chunks_.empty(), "FilterArena: Reserve on a non-empty arena");
  if (expected_blocks > 0) AddChunk(expected_blocks);
}

void FilterArena::AddChunk(size_t capacity_blocks) {
  // Guard the size arithmetic: a corrupt node count or filter width must
  // fail loudly here, not wrap to a small allocation that Allocate() then
  // writes past.
  const size_t block_bytes = stride_words_ * sizeof(uint64_t);
  BSR_CHECK(stride_words_ <= SIZE_MAX / sizeof(uint64_t) &&
                (capacity_blocks == 0 || block_bytes <= SIZE_MAX / capacity_blocks),
            "FilterArena: chunk size overflows");
  // Stride is a whole number of lines, so the byte count is already a
  // multiple of the alignment (which aligned_alloc requires).
  const size_t bytes = capacity_blocks * block_bytes;
  uint64_t* words = static_cast<uint64_t*>(std::aligned_alloc(kArenaAlignment, bytes));
  BSR_CHECK(words != nullptr, "FilterArena: allocation failed");
  Chunk chunk;
  chunk.words = {words, [](uint64_t* p) { std::free(p); }};
  chunk.capacity_blocks = capacity_blocks;
  chunks_.push_back(std::move(chunk));
}

uint64_t* FilterArena::Allocate() { return AllocateBlocks(1); }

uint64_t* FilterArena::AllocateBlocks(size_t blocks) {
  BSR_CHECK(words_per_block_ > 0, "FilterArena: Allocate before Configure");
  BSR_CHECK(blocks > 0, "FilterArena: empty block run");
  if (chunks_.empty() ||
      chunks_.back().capacity_blocks - chunks_.back().used_blocks < blocks) {
    // Geometric growth keeps the chunk count logarithmic when dynamic
    // inserts outgrow the builder's exact reservation; a run larger than
    // the growth step gets a chunk of its own.
    const size_t grow = allocated_blocks_ / 2;
    size_t capacity = grow < 16 ? 16 : grow;
    if (capacity < blocks) capacity = blocks;
    AddChunk(capacity);
  }
  Chunk& chunk = chunks_.back();
  uint64_t* run = chunk.words.get() + chunk.used_blocks * stride_words_;
  // Zero the whole stride of every block: padding words stay
  // deterministically zero.
  std::memset(run, 0, blocks * stride_words_ * sizeof(uint64_t));
  chunk.used_blocks += blocks;
  allocated_blocks_ += blocks;
  return run;
}

void FilterArena::AdoptExternal(uint64_t* base, size_t blocks,
                                std::function<void(uint64_t*)> release) {
  BSR_CHECK(words_per_block_ > 0, "FilterArena: AdoptExternal before Configure");
  BSR_CHECK(chunks_.empty() && allocated_blocks_ == 0,
            "FilterArena: AdoptExternal on a non-empty arena");
  BSR_CHECK(base != nullptr || blocks == 0, "FilterArena: null external base");
  Chunk chunk;
  chunk.words = {base, std::move(release)};
  chunk.capacity_blocks = blocks;
  chunk.used_blocks = blocks;  // full: later Allocate calls append chunks
  chunks_.push_back(std::move(chunk));
  allocated_blocks_ = blocks;
}

size_t FilterArena::MemoryBytes() const {
  size_t total = 0;
  for (const Chunk& chunk : chunks_) {
    total += chunk.capacity_blocks * stride_words_ * sizeof(uint64_t);
  }
  return total;
}

}  // namespace bloomsample
