// Contiguous, cache-aligned backing store for the per-node filter payloads
// of a BloomSampleTree.
//
// Every node filter in a tree has the same word count (m/64 rounded up), so
// the tree allocates one arena and carves it into fixed-size blocks, one
// per node in allocation order. Descents then walk blocks that sit densely
// packed in one slab instead of pointer-chasing per-node heap vectors, and
// child blocks are adjacent for the common built-in-order case — the layout
// the SIMD kernels and software prefetch in the samplers are tuned for.
//
// Blocks come from 64-byte-aligned chunks. The builders reserve the exact
// node count up front, so bulk-built trees live in a single chunk; dynamic
// Insert may grow the arena, which appends chunks (geometrically) rather
// than reallocating — block addresses are stable for the arena's lifetime,
// which is what lets BitVector spans point into it safely.
//
// The arena is move-only: moving transfers the chunks without changing any
// block address, so spans into it survive a tree move. It is NOT
// copyable — a copied arena would leave the copy's spans pointing at the
// original.
//
// Two loading-oriented entry points extend the build-time API:
//   * AllocateBlocks — a contiguous run of blocks in one call, so a
//     snapshot loader can read a whole on-disk slab into the arena with a
//     single I/O (the slab's block stride matches block_stride_words()).
//   * AdoptExternal — wraps an externally owned region (an mmap'ed
//     snapshot slab) as the arena's first chunk without copying a byte;
//     the region's release callback runs when the arena dies. Dynamic
//     growth after adoption appends ordinary heap chunks, so a tree loaded
//     zero-copy still supports Insert.
#ifndef BLOOMSAMPLE_UTIL_FILTER_ARENA_H_
#define BLOOMSAMPLE_UTIL_FILTER_ARENA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

class FilterArena {
 public:
  FilterArena() = default;
  FilterArena(FilterArena&&) noexcept = default;
  FilterArena& operator=(FilterArena&&) noexcept = default;
  FilterArena(const FilterArena&) = delete;
  FilterArena& operator=(const FilterArena&) = delete;

  /// Fixes the block width and pre-sizes one chunk for `expected_blocks`
  /// (0 is fine — the first Allocate creates a chunk). Must be called
  /// before Allocate and only while the arena is empty.
  void Configure(size_t words_per_block, size_t expected_blocks);

  /// Pre-sizes one chunk for `expected_blocks` so a bulk build of a known
  /// node count lands in a single contiguous slab. Only valid after
  /// Configure and before the first chunk exists.
  void Reserve(size_t expected_blocks);

  /// Returns a zeroed block of words_per_block() words. The address is
  /// stable for the arena's lifetime (growth appends chunks; it never
  /// moves existing ones).
  uint64_t* Allocate();

  /// Returns the first of `blocks` consecutive zeroed blocks (spaced at
  /// block_stride_words()), growing by one chunk if the current one cannot
  /// hold the whole run — the run itself never straddles chunks. Snapshot
  /// loaders use this to bulk-read an on-disk slab in place.
  uint64_t* AllocateBlocks(size_t blocks);

  /// Adopts `base` — an externally owned region holding `blocks` blocks at
  /// this arena's stride, e.g. an mmap'ed snapshot slab — as the arena's
  /// first chunk, without copying. Only valid after Configure and while no
  /// chunk exists. `release(base)` is called exactly once when the arena is
  /// destroyed (or assigned over). The region's contents are preserved
  /// as-is; unlike Allocate, nothing is zeroed.
  void AdoptExternal(uint64_t* base, size_t blocks,
                     std::function<void(uint64_t*)> release);

  size_t words_per_block() const { return words_per_block_; }
  /// Distance between consecutive blocks in a chunk: words_per_block()
  /// rounded up to a whole number of cache lines (8 words), so every
  /// block — not just the chunk base — starts line-aligned and a
  /// line-granular prefetch never straddles a neighboring block.
  size_t block_stride_words() const { return stride_words_; }
  /// Blocks handed out so far.
  size_t allocated_blocks() const { return allocated_blocks_; }
  /// True when every allocated block lives in one contiguous slab.
  bool contiguous() const { return chunks_.size() <= 1; }
  /// Bytes of backing storage currently reserved (all chunks).
  size_t MemoryBytes() const;

 private:
  // The deleter is type-erased so one Chunk type covers both owned heap
  // chunks (std::free) and adopted external regions (the caller's release,
  // e.g. munmap).
  struct Chunk {
    std::unique_ptr<uint64_t[], std::function<void(uint64_t*)>> words;
    size_t capacity_blocks = 0;
    size_t used_blocks = 0;
  };

  void AddChunk(size_t capacity_blocks);

  size_t words_per_block_ = 0;
  size_t stride_words_ = 0;
  size_t allocated_blocks_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_UTIL_FILTER_ARENA_H_
