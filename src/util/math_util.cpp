#include "src/util/math_util.h"

#include "src/util/status.h"

namespace bloomsample {

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    const uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

namespace {

/// a^e mod m via square-and-multiply.
uint64_t PowMod(uint64_t a, uint64_t e, uint64_t m) {
  uint64_t result = 1 % m;
  a %= m;
  while (e != 0) {
    if (e & 1) result = MulMod(result, a, m);
    a = MulMod(a, a, m);
    e >>= 1;
  }
  return result;
}

}  // namespace

bool IsPrime(uint64_t n) {
  if (n < 2) return false;
  for (uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  // n - 1 = d * 2^r with d odd.
  uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (uint64_t a : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull,
                     23ull, 29ull, 31ull, 37ull}) {
    uint64_t x = PowMod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 1; i < r; ++i) {
      x = MulMod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

uint64_t NextPrimeAtLeast(uint64_t n) {
  if (n <= 2) return 2;
  uint64_t candidate = n | 1;  // first odd >= n
  for (;; candidate += 2) {
    BSR_CHECK(candidate >= n, "NextPrimeAtLeast overflow");
    if (IsPrime(candidate)) return candidate;
  }
}

uint64_t ModInverse(uint64_t a, uint64_t mod) {
  if (mod == 0) return 0;
  a %= mod;
  if (mod == 1) return 0;
  // Extended Euclid on signed 128-bit accumulators; mod fits in 64 bits so
  // the Bezout coefficients fit comfortably in 128.
  __int128 t = 0, new_t = 1;
  __int128 r = static_cast<__int128>(mod), new_r = static_cast<__int128>(a);
  while (new_r != 0) {
    const __int128 q = r / new_r;
    const __int128 tmp_t = t - q * new_t;
    t = new_t;
    new_t = tmp_t;
    const __int128 tmp_r = r - q * new_r;
    r = new_r;
    new_r = tmp_r;
  }
  if (r != 1) return 0;  // not invertible
  if (t < 0) t += static_cast<__int128>(mod);
  return static_cast<uint64_t>(t);
}

}  // namespace bloomsample
