// Low-occupancy namespace construction (Section 8.1).
//
// The paper carves the 2.2-billion-wide Twitter id space into `leaf_count`
// equal ranges (256 in their hypothetical tree) and realizes a namespace
// fraction f by selecting ceil(f · leaf_count) of those ranges, either
// uniformly at random or in a clustered fashion (reusing the same
// pdf-splitting process that clusters query sets, but over leaf indices).
// The occupied namespace M′ is then drawn from the selected ranges.
#ifndef BLOOMSAMPLE_WORKLOAD_NAMESPACE_GEN_H_
#define BLOOMSAMPLE_WORKLOAD_NAMESPACE_GEN_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace bloomsample {

struct IdRange {
  uint64_t lo = 0;  ///< inclusive
  uint64_t hi = 0;  ///< exclusive
  uint64_t Width() const { return hi - lo; }
};

enum class SelectionMode { kUniform, kClustered };

/// Selects ceil(fraction · leaf_count) of the leaf_count equal-width
/// ranges of [0, namespace_size), sorted by lo. fraction in (0, 1];
/// leaf_count <= namespace_size.
Result<std::vector<IdRange>> SelectLeafRanges(uint64_t namespace_size,
                                              uint64_t leaf_count,
                                              double fraction,
                                              SelectionMode mode, Rng* rng);

/// Draws `count` distinct occupied ids spread uniformly over the selected
/// ranges, sorted ascending. Requires count <= total width of the ranges.
Result<std::vector<uint64_t>> DrawOccupiedIds(
    const std::vector<IdRange>& ranges, uint64_t count, Rng* rng);

/// Sum of range widths.
uint64_t TotalWidth(const std::vector<IdRange>& ranges);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_WORKLOAD_NAMESPACE_GEN_H_
