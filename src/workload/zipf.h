// Zipf-distributed sampler over ranks {0, …, n−1}:
// P(rank = r) ∝ 1 / (r + 1)^s.
//
// Used by the synthetic Twitter crawl: hashtag popularity and user
// activity in social streams are the canonical Zipf-like workloads.
// Implementation precomputes the CDF once (O(n)) and samples by binary
// search (O(log n)); n here is at most a few hundred thousand, so the
// table approach beats rejection-inversion in both simplicity and speed.
#ifndef BLOOMSAMPLE_WORKLOAD_ZIPF_H_
#define BLOOMSAMPLE_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace bloomsample {

class ZipfSampler {
 public:
  /// n >= 1 ranks, exponent s >= 0 (s = 0 degenerates to uniform).
  ZipfSampler(uint64_t n, double s);

  /// A rank in [0, n), skewed toward 0.
  uint64_t Sample(Rng* rng) const;

  /// Exact probability of a rank (for tests).
  double Probability(uint64_t rank) const;

  uint64_t n() const { return cdf_.size(); }
  double s() const { return s_; }

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r)
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_WORKLOAD_ZIPF_H_
