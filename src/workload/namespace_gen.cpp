#include "src/workload/namespace_gen.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/util/math_util.h"
#include "src/workload/set_generators.h"

namespace bloomsample {

Result<std::vector<IdRange>> SelectLeafRanges(uint64_t namespace_size,
                                              uint64_t leaf_count,
                                              double fraction,
                                              SelectionMode mode, Rng* rng) {
  if (leaf_count == 0 || leaf_count > namespace_size) {
    return Status::InvalidArgument("leaf_count must be in [1, M]");
  }
  if (!(fraction > 0.0) || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in (0, 1]");
  }
  const uint64_t want = std::min<uint64_t>(
      leaf_count,
      static_cast<uint64_t>(
          std::ceil(fraction * static_cast<double>(leaf_count))));

  // Pick leaf indices with the query-set machinery: uniform subset or the
  // clustered pdf-splitting process over [0, leaf_count).
  Result<std::vector<uint64_t>> picked =
      mode == SelectionMode::kUniform
          ? GenerateUniformSet(leaf_count, want, rng)
          : GenerateClusteredSet(leaf_count, want, rng);
  if (!picked.ok()) return picked.status();

  const uint64_t width = CeilDiv(namespace_size, leaf_count);
  std::vector<IdRange> ranges;
  ranges.reserve(picked.value().size());
  for (uint64_t leaf : picked.value()) {
    IdRange range;
    range.lo = std::min(leaf * width, namespace_size);
    range.hi = std::min(range.lo + width, namespace_size);
    if (range.Width() > 0) ranges.push_back(range);
  }
  return ranges;
}

uint64_t TotalWidth(const std::vector<IdRange>& ranges) {
  uint64_t total = 0;
  for (const IdRange& range : ranges) total += range.Width();
  return total;
}

Result<std::vector<uint64_t>> DrawOccupiedIds(
    const std::vector<IdRange>& ranges, uint64_t count, Rng* rng) {
  const uint64_t total = TotalWidth(ranges);
  if (count > total) {
    return Status::InvalidArgument(
        "cannot draw more ids than the selected ranges contain");
  }
  // Sample positions in the flattened [0, total) space, then translate.
  Result<std::vector<uint64_t>> flat = GenerateUniformSet(total, count, rng);
  if (!flat.ok()) return flat.status();

  std::vector<uint64_t> out;
  out.reserve(count);
  size_t range_index = 0;
  uint64_t consumed = 0;  // flattened width of ranges before range_index
  for (uint64_t position : flat.value()) {  // ascending
    while (position - consumed >= ranges[range_index].Width()) {
      consumed += ranges[range_index].Width();
      ++range_index;
    }
    out.push_back(ranges[range_index].lo + (position - consumed));
  }
  return out;  // ascending because ranges are sorted and positions ascend
}

}  // namespace bloomsample
