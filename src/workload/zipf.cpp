#include "src/workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace bloomsample {

ZipfSampler::ZipfSampler(uint64_t n, double s) : s_(s) {
  BSR_CHECK(n >= 1, "ZipfSampler needs n >= 1");
  BSR_CHECK(s >= 0.0, "ZipfSampler needs s >= 0");
  cdf_.resize(n);
  double cumulative = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    cumulative += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = cumulative;
  }
  const double total = cumulative;
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // close the CDF exactly despite rounding
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint64_t rank) const {
  BSR_CHECK(rank < cdf_.size(), "rank out of range");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace bloomsample
