// Fenwick (binary indexed) tree over doubles, used by the clustered
// query-set generator to sample from an evolving pdf in O(log M) per draw.
#ifndef BLOOMSAMPLE_WORKLOAD_FENWICK_H_
#define BLOOMSAMPLE_WORKLOAD_FENWICK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

class FenwickTree {
 public:
  /// Initializes n slots, each with weight `initial`.
  explicit FenwickTree(size_t n, double initial = 0.0) : tree_(n + 1, 0.0) {
    if (initial != 0.0) {
      // O(n) bulk build: tree_[i] covers (i − lowbit(i), i].
      for (size_t i = 1; i <= n; ++i) {
        tree_[i] = initial * static_cast<double>(i & (~i + 1));
      }
    }
  }

  size_t size() const { return tree_.size() - 1; }

  /// weight[i] += delta.
  void Add(size_t i, double delta) {
    BSR_CHECK(i < size(), "FenwickTree::Add out of range");
    for (size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
      tree_[j] += delta;
    }
  }

  /// Sum of weights[0..i] inclusive.
  double PrefixSum(size_t i) const {
    BSR_CHECK(i < size(), "FenwickTree::PrefixSum out of range");
    double sum = 0.0;
    for (size_t j = i + 1; j > 0; j -= j & (~j + 1)) sum += tree_[j];
    return sum;
  }

  double Total() const { return size() == 0 ? 0.0 : PrefixSum(size() - 1); }

  /// Point query: weight[i].
  double Get(size_t i) const {
    BSR_CHECK(i < size(), "FenwickTree::Get out of range");
    double value = PrefixSum(i);
    if (i > 0) value -= PrefixSum(i - 1);
    return value;
  }

  /// Smallest index i with PrefixSum(i) > target (standard Fenwick
  /// descend). target must satisfy 0 <= target < Total(); if floating-point
  /// drift pushes the walk past the end, the last slot is returned.
  size_t FindPrefix(double target) const {
    size_t pos = 0;
    size_t mask = 1;
    while (mask * 2 <= size()) mask *= 2;
    double remaining = target;
    while (mask > 0) {
      const size_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= remaining) {
        remaining -= tree_[next];
        pos = next;
      }
      mask /= 2;
    }
    return pos < size() ? pos : size() - 1;
  }

  /// Recovers the raw weight array in O(n): each internal node subtracts
  /// its direct children, and every (parent, child) pair is touched once.
  std::vector<double> ExtractValues() const {
    std::vector<double> values(tree_.begin(), tree_.end());  // 1-indexed copy
    const size_t n = size();
    for (size_t i = n; i >= 1; --i) {
      const size_t low = i & (~i + 1);
      for (size_t j = i - 1; j > i - low; j -= j & (~j + 1)) {
        values[i] -= values[j];
      }
    }
    values.erase(values.begin());  // drop the unused slot 0
    return values;
  }

  /// O(n) bulk construction from a raw weight array.
  static FenwickTree FromValues(const std::vector<double>& values) {
    FenwickTree tree(values.size());
    std::vector<double> prefix(values.size() + 1, 0.0);
    for (size_t i = 0; i < values.size(); ++i) {
      prefix[i + 1] = prefix[i] + values[i];
    }
    for (size_t i = 1; i <= values.size(); ++i) {
      const size_t low = i & (~i + 1);
      tree.tree_[i] = prefix[i] - prefix[i - low];
    }
    return tree;
  }

 private:
  std::vector<double> tree_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_WORKLOAD_FENWICK_H_
