#include "src/workload/twitter_synth.h"

#include <algorithm>
#include <unordered_set>

#include "src/workload/zipf.h"

namespace bloomsample {

Result<TwitterCrawl> GenerateTwitterCrawl(const TwitterCrawlConfig& config) {
  if (config.num_users == 0 || config.num_hashtags == 0) {
    return Status::InvalidArgument("crawl needs users and hashtags");
  }
  if (config.num_users > config.namespace_size) {
    return Status::InvalidArgument("more users than ids in the namespace");
  }
  Rng rng(config.seed);

  // 1. Occupied namespace: users live in a clustered subset of the leaf
  //    ranges, mimicking sequential id allocation.
  Result<std::vector<IdRange>> ranges = SelectLeafRanges(
      config.namespace_size, config.leaf_count, config.user_cluster_fraction,
      SelectionMode::kClustered, &rng);
  if (!ranges.ok()) return ranges.status();
  if (TotalWidth(ranges.value()) < config.num_users) {
    return Status::InvalidArgument(
        "user_cluster_fraction too small to hold num_users ids");
  }
  Result<std::vector<uint64_t>> users =
      DrawOccupiedIds(ranges.value(), config.num_users, &rng);
  if (!users.ok()) return users.status();

  TwitterCrawl crawl;
  crawl.config = config;
  crawl.user_ids = std::move(users).value();

  // 2. Tweets: user activity and hashtag popularity are both Zipf.
  ZipfSampler user_activity(config.num_users, config.user_zipf_s);
  ZipfSampler hashtag_popularity(config.num_hashtags, config.hashtag_zipf_s);

  std::vector<std::unordered_set<uint64_t>> tag_user_sets(
      config.num_hashtags);
  for (uint64_t t = 0; t < config.num_tweets; ++t) {
    const uint64_t user_rank = user_activity.Sample(&rng);
    const uint64_t tag = hashtag_popularity.Sample(&rng);
    tag_user_sets[tag].insert(crawl.user_ids[user_rank]);
  }

  // 3. Keep hashtags with enough distinct users (the paper keeps hashtags
  //    with >= 1000 occurrences); sort each set.
  for (auto& user_set : tag_user_sets) {
    if (user_set.size() < config.min_hashtag_users) continue;
    std::vector<uint64_t> sorted(user_set.begin(), user_set.end());
    std::sort(sorted.begin(), sorted.end());
    crawl.hashtag_users.push_back(std::move(sorted));
  }
  if (crawl.hashtag_users.empty()) {
    return Status::Internal(
        "no hashtag reached min_hashtag_users; increase num_tweets");
  }
  return crawl;
}

TwitterCrawl TwitterCrawl::RestrictTo(
    const std::vector<IdRange>& ranges) const {
  const auto inside = [&ranges](uint64_t id) {
    // ranges are sorted by lo; binary search for the candidate range.
    auto it = std::upper_bound(
        ranges.begin(), ranges.end(), id,
        [](uint64_t value, const IdRange& range) { return value < range.lo; });
    if (it == ranges.begin()) return false;
    --it;
    return id >= it->lo && id < it->hi;
  };

  TwitterCrawl restricted;
  restricted.config = config;
  for (uint64_t id : user_ids) {
    if (inside(id)) restricted.user_ids.push_back(id);
  }
  for (const auto& users : hashtag_users) {
    std::vector<uint64_t> kept;
    for (uint64_t id : users) {
      if (inside(id)) kept.push_back(id);
    }
    if (!kept.empty()) restricted.hashtag_users.push_back(std::move(kept));
  }
  return restricted;
}

}  // namespace bloomsample
