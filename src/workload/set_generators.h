// Query-set generators (Section 7.1).
//
// Uniform sets: n distinct ids drawn uniformly from [0, M).
//
// Clustered sets reproduce the paper's pdf-splitting process, modelled on
// web-graph adjacency lists whose ids cluster around a few hubs: start
// from the uniform pdf; after drawing s, find its nearest nonzero
// neighbours x < s < y, zero pdf(s) and split its mass equally between x
// and y. The "aggressive" variant additionally taxes every element p% per
// draw and gives the pooled mass to x and y; the paper uses p = 10%.
// Repeated draws therefore pile probability onto the flanks of previously
// drawn elements, producing contiguous clusters.
//
// Implementation: Fenwick tree over the pdf (O(log M) draw/update), a lazy
// global multiplier for the p% tax (renormalized before it underflows),
// and path-compressed skip maps to find nonzero neighbours across runs of
// exhausted elements in amortized near-constant time.
#ifndef BLOOMSAMPLE_WORKLOAD_SET_GENERATORS_H_
#define BLOOMSAMPLE_WORKLOAD_SET_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"

namespace bloomsample {

/// n distinct ids uniform on [0, M), sorted ascending. Requires n <= M.
Result<std::vector<uint64_t>> GenerateUniformSet(uint64_t namespace_size,
                                                 uint64_t n, Rng* rng);

/// n distinct ids from the clustered process, sorted ascending.
/// `tax` is the paper's p (fraction in [0, 1)); 0 gives the basic split,
/// 0.10 the paper's default. Requires n <= M.
Result<std::vector<uint64_t>> GenerateClusteredSet(uint64_t namespace_size,
                                                   uint64_t n, Rng* rng,
                                                   double tax = 0.10);

/// Mean gap between consecutive (sorted) ids. NOTE: this is ≈ span/n for
/// any set whose clusters spread across the namespace (inter-cluster gaps
/// dominate the sum), so it measures SPAN, not clustering.
double MeanAdjacentGap(const std::vector<uint64_t>& sorted_ids);

/// Median gap between consecutive (sorted) ids — the clustering
/// diagnostic: uniform sets have median gap ≈ 0.69·M/n, clustered sets
/// have median gap ≈ 1 (most neighbours are contiguous).
double MedianAdjacentGap(const std::vector<uint64_t>& sorted_ids);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_WORKLOAD_SET_GENERATORS_H_
