#include "src/workload/set_generators.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/workload/fenwick.h"

namespace bloomsample {

Result<std::vector<uint64_t>> GenerateUniformSet(uint64_t namespace_size,
                                                 uint64_t n, Rng* rng) {
  if (n > namespace_size) {
    return Status::InvalidArgument("cannot draw more ids than the namespace");
  }
  std::vector<uint64_t> out;
  out.reserve(n);
  if (n * 2 >= namespace_size) {
    // Dense request: partial Fisher-Yates over the explicit namespace.
    std::vector<uint64_t> all(namespace_size);
    for (uint64_t i = 0; i < namespace_size; ++i) all[i] = i;
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t j = i + rng->Below(namespace_size - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse request: rejection sampling into a hash set.
    std::unordered_set<uint64_t> seen;
    seen.reserve(static_cast<size_t>(n) * 2);
    while (out.size() < n) {
      const uint64_t x = rng->Below(namespace_size);
      if (seen.insert(x).second) out.push_back(x);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

/// Path-compressed skip pointers over exhausted (zero-pdf) elements.
/// FindRight(i) returns the smallest j >= i that is not exhausted (or M);
/// FindLeft(i) the largest j <= i not exhausted (or -1).
class NeighborFinder {
 public:
  explicit NeighborFinder(uint64_t namespace_size)
      : namespace_size_(namespace_size) {}

  void MarkExhausted(uint64_t i) {
    right_[i] = i + 1;
    left_[i] = static_cast<int64_t>(i) - 1;
  }

  uint64_t FindRight(uint64_t i) {
    // Iterative path compression: follow the chain, then repoint.
    uint64_t cursor = i;
    std::vector<uint64_t> path;
    while (cursor < namespace_size_) {
      const auto it = right_.find(cursor);
      if (it == right_.end()) break;
      path.push_back(cursor);
      cursor = it->second;
    }
    for (uint64_t p : path) right_[p] = cursor;
    return cursor;
  }

  int64_t FindLeft(int64_t i) {
    int64_t cursor = i;
    std::vector<int64_t> path;
    while (cursor >= 0) {
      const auto it = left_.find(static_cast<uint64_t>(cursor));
      if (it == left_.end()) break;
      path.push_back(cursor);
      cursor = it->second;
    }
    for (int64_t p : path) left_[static_cast<uint64_t>(p)] = cursor;
    return cursor;
  }

 private:
  uint64_t namespace_size_;
  std::unordered_map<uint64_t, uint64_t> right_;
  std::unordered_map<uint64_t, int64_t> left_;
};

}  // namespace

Result<std::vector<uint64_t>> GenerateClusteredSet(uint64_t namespace_size,
                                                   uint64_t n, Rng* rng,
                                                   double tax) {
  if (n > namespace_size) {
    return Status::InvalidArgument("cannot draw more ids than the namespace");
  }
  if (tax < 0.0 || tax >= 1.0) {
    return Status::InvalidArgument("tax must be in [0, 1)");
  }
  const size_t size = static_cast<size_t>(namespace_size);

  // Actual pdf weight of slot i is multiplier * fenwick.Get(i). The tax
  // scales every weight by (1 - tax) per draw; we fold that into the
  // multiplier and renormalize before it underflows.
  FenwickTree pdf(size, 1.0);
  double multiplier = 1.0;
  NeighborFinder neighbors(namespace_size);

  std::vector<uint64_t> out;
  out.reserve(n);

  const auto renormalize_if_needed = [&]() {
    if (multiplier > 1e-140 && multiplier < 1e140) return;
    std::vector<double> values = pdf.ExtractValues();
    for (double& w : values) w *= multiplier;
    pdf = FenwickTree::FromValues(values);
    multiplier = 1.0;
  };

  while (out.size() < n) {
    renormalize_if_needed();
    const double total = pdf.Total();
    if (!(total > 0.0)) {
      return Status::Internal("clustered pdf exhausted prematurely");
    }
    const uint64_t s =
        static_cast<uint64_t>(pdf.FindPrefix(rng->NextDouble() * total));
    const double mass_s = pdf.Get(s);
    if (!(mass_s > 0.0)) continue;  // boundary rounding hit a dead slot
    out.push_back(s);

    // Remove s's mass and find the nonzero flanks.
    pdf.Add(s, -mass_s);
    neighbors.MarkExhausted(s);
    const uint64_t right = neighbors.FindRight(s + 1);
    const int64_t left = s == 0 ? -1 : neighbors.FindLeft(
                                           static_cast<int64_t>(s) - 1);

    // Pool: s's own mass plus the p% tax on everything else, all in
    // *base* units (the multiplier change is applied afterwards).
    double pool = mass_s;
    if (tax > 0.0) {
      const double rest = pdf.Total();  // base units, s already removed
      pool += rest * tax;
      // Scaling every remaining weight by (1 - tax) is a multiplier
      // update; base values are untouched, so the pool must be expressed
      // in post-scaling base units.
      multiplier *= (1.0 - tax);
      pool /= (1.0 - tax);
    }

    const bool has_left = left >= 0;
    const bool has_right = right < namespace_size;
    if (has_left && has_right) {
      pdf.Add(static_cast<size_t>(left), pool / 2.0);
      pdf.Add(static_cast<size_t>(right), pool / 2.0);
    } else if (has_left) {
      pdf.Add(static_cast<size_t>(left), pool);
    } else if (has_right) {
      pdf.Add(static_cast<size_t>(right), pool);
    }
    // If neither flank exists every element has been drawn; the loop ends
    // because out.size() == n == namespace_size.
  }

  std::sort(out.begin(), out.end());
  return out;
}

double MedianAdjacentGap(const std::vector<uint64_t>& sorted_ids) {
  if (sorted_ids.size() < 2) return 0.0;
  std::vector<uint64_t> gaps;
  gaps.reserve(sorted_ids.size() - 1);
  for (size_t i = 1; i < sorted_ids.size(); ++i) {
    gaps.push_back(sorted_ids[i] - sorted_ids[i - 1]);
  }
  std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
  return static_cast<double>(gaps[gaps.size() / 2]);
}

double MeanAdjacentGap(const std::vector<uint64_t>& sorted_ids) {
  if (sorted_ids.size() < 2) return 0.0;
  double sum = 0.0;
  for (size_t i = 1; i < sorted_ids.size(); ++i) {
    sum += static_cast<double>(sorted_ids[i] - sorted_ids[i - 1]);
  }
  return sum / static_cast<double>(sorted_ids.size() - 1);
}

}  // namespace bloomsample
