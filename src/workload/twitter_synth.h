// Synthetic stand-in for the paper's 34-day Twitter crawl (Section 8.1).
//
// The real dataset — 144M tweets, 7.2M distinct user ids scattered over a
// ~2.2B id namespace, 24K hashtags with ≥1000 occurrences — is not
// available, so we synthesize a crawl with the same statistical shape
// (DESIGN.md §5):
//   * user ids clustered across leaf ranges of a huge namespace (real
//     Twitter ids are allocated roughly sequentially, so active crawls see
//     dense runs);
//   * hashtag popularity and user activity both Zipf-distributed;
//   * per-hashtag user sets (the query sets) emerge from simulated tweets.
//
// Scale knobs default to laptop-quick values; the benchmarks raise them
// under BSR_BENCH_FULL=1.
#ifndef BLOOMSAMPLE_WORKLOAD_TWITTER_SYNTH_H_
#define BLOOMSAMPLE_WORKLOAD_TWITTER_SYNTH_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/workload/namespace_gen.h"

namespace bloomsample {

struct TwitterCrawlConfig {
  uint64_t namespace_size = 1ULL << 28;  ///< id space (paper: ~2.2e9)
  uint64_t num_users = 200'000;          ///< distinct users (paper: 7.2e6)
  uint64_t num_hashtags = 2'000;         ///< distinct hashtags (paper: 24e3)
  uint64_t num_tweets = 2'000'000;       ///< (user, hashtag) events
  uint64_t leaf_count = 256;             ///< ranges for occupancy (paper: 256)
  double user_cluster_fraction = 0.35;   ///< fraction of leaves users occupy
  double hashtag_zipf_s = 1.05;          ///< popularity skew
  double user_zipf_s = 1.05;             ///< activity skew
  uint64_t min_hashtag_users = 10;       ///< keep hashtags with >= this many
                                         ///< distinct users (paper: >=1000
                                         ///< occurrences at full scale)
  uint64_t seed = 20170313;
};

struct TwitterCrawl {
  TwitterCrawlConfig config;
  /// All distinct user ids, sorted — the occupied namespace M′.
  std::vector<uint64_t> user_ids;
  /// Query sets: per retained hashtag, the sorted distinct user ids that
  /// tweeted it.
  std::vector<std::vector<uint64_t>> hashtag_users;

  /// Restricts the crawl to ids inside `ranges` (the paper's
  /// namespace-fraction experiments ignore out-of-fraction ids):
  /// returns the surviving user ids and per-hashtag sets (hashtags that
  /// lose all users are dropped).
  TwitterCrawl RestrictTo(const std::vector<IdRange>& ranges) const;
};

/// Simulates the crawl. Costs O(num_tweets log·) time.
Result<TwitterCrawl> GenerateTwitterCrawl(const TwitterCrawlConfig& config);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_WORKLOAD_TWITTER_SYNTH_H_
