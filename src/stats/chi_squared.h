// Pearson chi-squared goodness-of-fit test for sample uniformity
// (Section 7.2 / Table 5).
//
// The paper's protocol: draw T = 130·n samples from a set of n elements,
// count occurrences o_i per element, compare against e_i = T/n under the
// null hypothesis of uniform sampling, and report the p-value
// P(Q >= q | H0) with Q ~ χ²(n−1). p-values above the significance level
// (the paper uses 0.08) fail to reject uniformity.
#ifndef BLOOMSAMPLE_STATS_CHI_SQUARED_H_
#define BLOOMSAMPLE_STATS_CHI_SQUARED_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

struct ChiSquaredResult {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;

  bool RejectsUniformity(double significance = 0.08) const {
    return p_value < significance;
  }
};

/// Test observed counts against uniform expectation. `counts` must have
/// one entry per category (zeros allowed); total draws = sum of counts.
/// Requires >= 2 categories and >= 1 draw.
Result<ChiSquaredResult> ChiSquaredUniformTest(
    const std::vector<uint64_t>& counts);

/// Convenience for samplers: tally `samples` against the categories in
/// `population` (every sample must be a member) and run the test.
Result<ChiSquaredResult> ChiSquaredUniformTest(
    const std::vector<uint64_t>& population,
    const std::vector<uint64_t>& samples);

/// General goodness-of-fit flavor: observed counts against an arbitrary
/// (not necessarily uniform) expected distribution — e.g. weighted shard
/// draws against Fenwick weights. `expected` holds absolute expected
/// counts in the same order as `counts` and must sum to (about) the same
/// total. Zero-expectation categories must have zero observations and are
/// excluded from the degrees of freedom (dof = #{e_i > 0} − 1).
Result<ChiSquaredResult> ChiSquaredGoodnessOfFit(
    const std::vector<uint64_t>& counts, const std::vector<double>& expected);

/// The paper's recommended sample count for its 0.08 significance level:
/// T = 130 · n  [Stamatis, Six Sigma and Beyond].
inline uint64_t RecommendedSampleRounds(uint64_t n) { return 130 * n; }

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_STATS_CHI_SQUARED_H_
