#include "src/stats/chi_squared.h"

#include "src/stats/gamma.h"

namespace bloomsample {

Result<ChiSquaredResult> ChiSquaredUniformTest(
    const std::vector<uint64_t>& counts) {
  if (counts.size() < 2) {
    return Status::InvalidArgument("need at least 2 categories");
  }
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return Status::InvalidArgument("need at least one draw");

  const double expected =
      static_cast<double>(total) / static_cast<double>(counts.size());
  double statistic = 0.0;
  for (uint64_t c : counts) {
    const double diff = static_cast<double>(c) - expected;
    statistic += diff * diff / expected;
  }
  ChiSquaredResult result;
  result.statistic = statistic;
  result.dof = static_cast<double>(counts.size() - 1);
  result.p_value = ChiSquaredSurvival(statistic, result.dof);
  return result;
}

Result<ChiSquaredResult> ChiSquaredGoodnessOfFit(
    const std::vector<uint64_t>& counts, const std::vector<double>& expected) {
  if (counts.size() != expected.size()) {
    return Status::InvalidArgument("counts/expected size mismatch");
  }
  if (counts.size() < 2) {
    return Status::InvalidArgument("need at least 2 categories");
  }
  double statistic = 0.0;
  size_t live = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (expected[i] < 0.0) {
      return Status::InvalidArgument("negative expected count");
    }
    if (expected[i] == 0.0) {
      if (counts[i] != 0) {
        return Status::InvalidArgument(
            "observed draws in a zero-expectation category");
      }
      continue;
    }
    ++live;
    const double diff = static_cast<double>(counts[i]) - expected[i];
    statistic += diff * diff / expected[i];
  }
  if (live < 2) {
    return Status::InvalidArgument("need at least 2 live categories");
  }
  ChiSquaredResult result;
  result.statistic = statistic;
  result.dof = static_cast<double>(live - 1);
  result.p_value = ChiSquaredSurvival(statistic, result.dof);
  return result;
}

Result<ChiSquaredResult> ChiSquaredUniformTest(
    const std::vector<uint64_t>& population,
    const std::vector<uint64_t>& samples) {
  if (population.size() < 2) {
    return Status::InvalidArgument("need at least 2 categories");
  }
  std::unordered_map<uint64_t, size_t> index;
  index.reserve(population.size() * 2);
  for (size_t i = 0; i < population.size(); ++i) {
    index.emplace(population[i], i);
  }
  if (index.size() != population.size()) {
    return Status::InvalidArgument("population contains duplicates");
  }
  std::vector<uint64_t> counts(population.size(), 0);
  for (uint64_t sample : samples) {
    const auto it = index.find(sample);
    if (it == index.end()) {
      return Status::InvalidArgument(
          "sample is not a member of the population");
    }
    ++counts[it->second];
  }
  return ChiSquaredUniformTest(counts);
}

}  // namespace bloomsample
