// Regularized incomplete gamma functions P(a, x) and Q(a, x), implemented
// from scratch (series expansion for x < a+1, continued fraction
// otherwise — the classic Numerical-Recipes-style split).
//
// Q((k−1)/2, χ²/2) is the p-value of a chi-squared statistic with k−1
// degrees of freedom, which is how the paper's Table 5 uniformity test is
// evaluated.
#ifndef BLOOMSAMPLE_STATS_GAMMA_H_
#define BLOOMSAMPLE_STATS_GAMMA_H_

namespace bloomsample {

/// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a),
/// for a > 0, x >= 0. Accurate to ~1e-12.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
double RegularizedGammaQ(double a, double x);

/// Survival function of the chi-squared distribution with `dof` degrees of
/// freedom at `statistic`: P(X >= statistic) = Q(dof/2, statistic/2).
double ChiSquaredSurvival(double statistic, double dof);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_STATS_GAMMA_H_
