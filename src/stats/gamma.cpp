#include "src/stats/gamma.h"

#include <cmath>
#include <limits>

#include "src/util/status.h"

namespace bloomsample {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

/// Series representation: P(a, x) = e^{−x} x^a / Γ(a) · Σ x^n / (a)_{n+1}.
/// Converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  double ap = a;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/// Continued fraction (modified Lentz): Q(a, x) for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  BSR_CHECK(a > 0.0, "RegularizedGammaP needs a > 0");
  BSR_CHECK(x >= 0.0, "RegularizedGammaP needs x >= 0");
  if (x == 0.0) return 0.0;
  if (std::isinf(x)) return 1.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  BSR_CHECK(a > 0.0, "RegularizedGammaQ needs a > 0");
  BSR_CHECK(x >= 0.0, "RegularizedGammaQ needs x >= 0");
  if (x == 0.0) return 1.0;
  if (std::isinf(x)) return 0.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double ChiSquaredSurvival(double statistic, double dof) {
  BSR_CHECK(dof > 0.0, "chi-squared needs dof > 0");
  if (statistic <= 0.0) return 1.0;
  return RegularizedGammaQ(dof / 2.0, statistic / 2.0);
}

}  // namespace bloomsample
