// BloomSampleTree persistence.
//
// The tree is the build-once artifact of the whole system (Section 5:
// "constructed only once and repeatedly used"); persisting it turns a
// multi-second rebuild into a file read. Two on-disk formats:
//
//   * v1 — the legacy stream format of SerializeTree/DeserializeTree: a
//     field-by-field little-endian encoding, parsed word-at-a-time on
//     load. Portable, still fully readable (and writable via
//     SerializeTree); cost: a full O(m·n) parse on every open.
//   * v2 — the snapshot format SaveTreeToFile writes by default. The
//     payload is a single 64-byte-aligned arena image — header, node
//     table, id→block index, occupancy, then the raw filter slab at a
//     page-aligned offset, every block at the arena's cache-line stride:
//
//       [header 144B][region checksums 40/48B, when flagged]
//       [chunk digests u64 each, when flagged]
//       [node table 48B/node][id→block u32/node]
//       [occupied u64 each][zero pad to 4 KiB][slab: stride·8 B/block]
//
//     The checksum block (on by default, see SaveOptions::checksums)
//     holds one XXH64 digest per region — header, node table, block
//     index, occupancy, slab — verified at open (slab verification is
//     skipped on lazy mmap opens by design; see SaveOptions). With
//     SaveOptions::chunk_checksums a sixth digest guards a per-64KiB
//     chunk digest table over the slab, placed between the checksum
//     block and the node table — the unit the online scrubber and
//     `bsr verify` walk, and the granularity read-repair localizes to.
//
//     Because the slab *is* the in-memory FilterArena layout, loading can
//     either bulk-read it (heap mode, one I/O) or mmap it (zero-copy
//     mode: every node's BitVector span points straight into a
//     MAP_PRIVATE mapping, so open cost is O(metadata) — milliseconds,
//     independent of m·n — pages fault in on first touch, and trees
//     larger than RAM stay usable). Node popcounts are persisted in the
//     node table, so neither mode touches payload words at open time.
//
// The slab can be written in either node-id order or the descent-aware
// kDescent layout (see NodeLayout in bloom_sample_tree.h); the id→block
// index keys the permutation, so logical ids — and therefore every draw
// and reconstruction — are identical across formats, layouts, and load
// modes.
//
// Metadata is encoded little-endian on every host; the slab is dumped in
// native byte order and guarded by a byte-order mark, so a v2 snapshot is
// portable between same-endian machines and cleanly rejected (use v1)
// across endianness.
#ifndef BLOOMSAMPLE_CORE_TREE_IO_H_
#define BLOOMSAMPLE_CORE_TREE_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "src/core/bloom_sample_tree.h"
#include "src/util/file_system.h"
#include "src/util/status.h"

namespace bloomsample {

/// How SaveTreeToFile lays the file out.
struct SaveOptions {
  /// 2 = flat snapshot (the default), 1 = legacy stream format.
  uint32_t version = 2;
  /// Slab block order (v2 only; v1 is inherently id-ordered).
  NodeLayout layout = NodeLayout::kDescent;
  /// File system the save writes through; nullptr = FileSystem::Default().
  /// Tests pass a FaultInjectingFileSystem here to kill the save at every
  /// kill point and assert the old snapshot always survives.
  FileSystem* fs = nullptr;
  /// Emit per-region XXH64 checksums (v2 only): header, node table,
  /// id→block index, occupancy, and filter slab each get an 8-byte digest
  /// in an extended header, verified at open so bit rot fails loudly
  /// instead of skewing estimates. Flagged in the file, so readers accept
  /// both flavors; `false` reproduces the PR-5 on-disk layout byte for
  /// byte. Verification policy on load: the four metadata regions are
  /// always verified; the slab is verified on heap loads and prewarmed
  /// mmap loads, and intentionally skipped on lazy mmap opens (hashing the
  /// slab would fault in every page and destroy the O(metadata) open).
  bool checksums = true;
  /// Also emit a per-chunk digest table over the filter slab (one XXH64
  /// per 64 KiB chunk, flag-gated like `checksums` and requiring it).
  /// The whole-slab digest detects corruption; the chunk table LOCATES it
  /// — the online scrubber walks chunks incrementally (mmap-safe: it
  /// preads the file, never the mapping) and read-repair targets the one
  /// damaged range. `false` reproduces the PR-8 layout byte for byte.
  bool chunk_checksums = true;
};

/// How LoadTreeFromFile materializes a v2 snapshot's slab.
enum class LoadMode : uint32_t {
  kAuto = 0,  ///< mmap when the platform supports it, else heap
  kHeap = 1,  ///< bulk-read the slab into a freshly allocated arena
  kMmap = 2,  ///< zero-copy: spans point into a MAP_PRIVATE mapping
};

struct LoadOptions {
  LoadMode mode = LoadMode::kAuto;
  /// Prewarm the mapping at open time (MAP_POPULATE where available):
  /// trades the O(ms) lazy open for fault-free first queries.
  bool prewarm = false;
  /// Optional shared hash family to build the loaded tree around instead
  /// of a freshly created instance. Filter compatibility is pointer
  /// identity on the family, so a forest loader passes one family here for
  /// every shard image and a single query filter then serves all of them.
  /// Must match the file's (kind, k, m, seed) — validated; null (the
  /// default) creates a fresh family from the file's config.
  std::shared_ptr<const HashFamily> family;
  /// Replay the sidecar write-ahead log (`<path>.wal`, see core/wal.h)
  /// after the image opens, re-applying logged inserts in order and
  /// amputating any torn/corrupt tail. The recovered tree is identical to
  /// one that never crashed; TreeLoadInfo reports what replay did. Off =
  /// open the image exactly as written (bench/debug use).
  bool replay_wal = true;
  /// File system replay truncates the log through; nullptr = Default().
  FileSystem* fs = nullptr;

  /// Defaults overridden by the environment: BSR_LOAD=heap|mmap|auto picks
  /// the mode (unknown values keep kAuto), BSR_LOAD_PREWARM=1 sets
  /// prewarm. Lets the whole test suite / a deployment flip load paths
  /// without a rebuild.
  static LoadOptions FromEnv();
};

/// What LoadTreeFromFile actually did — for CLI/bench load-time lines.
struct TreeLoadInfo {
  enum class Method : uint32_t { kStreamV1 = 1, kHeapV2 = 2, kMmapV2 = 3 };
  Method method = Method::kStreamV1;
  uint32_t version = 0;
  NodeLayout layout = NodeLayout::kIdOrder;
  /// Bytes of slab mapped zero-copy (0 for heap/stream loads).
  uint64_t mapped_bytes = 0;
  /// Sidecar WAL results (meaningful when LoadOptions::replay_wal is on).
  /// wal_records_replayed counts the CURRENT log (`<path>.wal`) — it seeds
  /// the writer's sequence numbers; records from a rotated-out
  /// `<path>.wal.old` (background compaction in flight at crash time) are
  /// reported separately.
  bool wal_present = false;
  uint64_t wal_records_replayed = 0;
  uint64_t wal_old_records_replayed = 0;
  /// A torn or corrupt log tail was found and cut off — everything before
  /// it replayed fine. The snapshot itself was intact.
  bool wal_recovered_corruption = false;
};

const char* TreeLoadMethodName(TreeLoadInfo::Method method);

/// Chunk-digest geometry of a v2 snapshot — everything the scrubber needs
/// to walk a file incrementally without parsing the payload regions.
struct SnapshotChunkInfo {
  uint64_t file_bytes = 0;
  uint64_t slab_offset = 0;   ///< page-aligned start of the filter slab
  uint64_t slab_bytes = 0;
  uint64_t chunk_bytes = 0;   ///< 64 KiB (last chunk may be shorter)
  bool has_checksums = false;        ///< whole-slab digest present
  bool has_chunk_checksums = false;  ///< per-chunk table present
  uint64_t slab_digest = 0;   ///< whole-slab XXH64 (when has_checksums)
  /// One XXH64 per chunk, in file order; empty when not flagged.
  std::vector<uint64_t> chunk_digests;
};

/// Parses and verifies a v2 snapshot's metadata (header, digests, regions)
/// and returns its chunk geometry. Fails with the same statuses
/// LoadTreeFromFile would (kInvalidArgument on a digest mismatch, etc.) —
/// a cheap O(metadata) pre-flight that never touches the slab. v1 streams
/// fail with kUnsupported (no chunk geometry exists to report).
Result<SnapshotChunkInfo> ReadSnapshotChunkInfo(const std::string& path,
                                                FileSystem* fs = nullptr);

/// Full offline integrity walk — what `bsr verify` runs. Verifies the
/// metadata digests, then preads the slab and checks it chunk-by-chunk
/// (whole-slab digest when the file predates chunk checksums; clean pass
/// when it predates checksums entirely). On a chunk mismatch returns
/// kInvalidArgument and reports the first bad chunk index via
/// `first_bad_chunk` (optional; UINT64_MAX when the failure was not a
/// specific chunk). A quarantine marker next to the file short-circuits
/// to kQuarantined. v1 streams get a clean pass (nothing to verify
/// against).
Status VerifySnapshotFile(const std::string& path, FileSystem* fs = nullptr,
                          uint64_t* first_bad_chunk = nullptr);

/// `<path>.quarantine` — the sidecar marker a failed repair leaves behind.
/// While present, LoadTreeFromFile and VerifySnapshotFile fail fast with
/// kQuarantined instead of serving (or crashing on) a known-bad image;
/// forest siblings keep serving. Remove the marker (ClearQuarantineMarker)
/// after restoring the file to lift the quarantine.
std::string QuarantinePathFor(const std::string& snapshot_path);
bool IsQuarantined(const std::string& snapshot_path,
                   FileSystem* fs = nullptr);
/// Writes the marker durably (content = reason, fsynced, dir-fenced).
Status WriteQuarantineMarker(const std::string& snapshot_path,
                             const std::string& reason,
                             FileSystem* fs = nullptr);
Status ClearQuarantineMarker(const std::string& snapshot_path,
                             FileSystem* fs = nullptr);

/// Writes the tree in the legacy v1 stream format (byte-identical to
/// pre-snapshot releases).
Status SerializeTree(const BloomSampleTree& tree, std::ostream* out);

/// Reads a tree from a stream holding either format (version-dispatched on
/// the magic tag). v2 payloads are materialized on the heap — streams
/// cannot be mmap'ed; use LoadTreeFromFile for the zero-copy path.
Result<BloomSampleTree> DeserializeTree(std::istream* in);

/// Writes a v2 snapshot in the descent layout (see SaveOptions defaults).
/// Durable and atomic: the image lands at `path + ".tmp"`, is fsynced,
/// renamed over `path`, and the rename is fenced with a directory fsync —
/// a crash at any point leaves either the complete old file or the
/// complete new one, never a torn mix. A failed save removes the temp
/// (best effort) and leaves `path` untouched.
Status SaveTreeToFile(const BloomSampleTree& tree, const std::string& path);
Status SaveTreeToFile(const BloomSampleTree& tree, const std::string& path,
                      const SaveOptions& options);

/// Folds the tree's logged inserts into the snapshot: atomically rewrites
/// `path` from the in-memory tree (SaveTreeToFile semantics), then empties
/// the sidecar log — via the tree's attached writer (WalWriter::Reset)
/// when one is attached, else by removing `path + ".wal"`. Ordering makes
/// every crash recoverable: the log only shrinks AFTER the new image is
/// durably in place, and replaying the full old log into the new image is
/// a no-op (Insert is idempotent). Open-after-crash therefore always
/// yields either old image + full log or new image + empty log — the same
/// tree either way.
Status CompactTree(BloomSampleTree* tree, const std::string& path);
Status CompactTree(BloomSampleTree* tree, const std::string& path,
                   const SaveOptions& options);

/// Opens (creating if absent) the sidecar log at WalPathFor(path) and
/// attaches it to the tree, after which Inserts are logged. Call after
/// LoadTreeFromFile — `info`'s replay count seeds the sequence numbers
/// (pass nullptr only for a fresh tree whose log is empty or absent).
Status AttachTreeWal(BloomSampleTree* tree, const std::string& path,
                     const WalOptions& wal_options,
                     const TreeLoadInfo* info = nullptr);

/// Loads either format; mode/prewarm default from LoadOptions::FromEnv().
/// `info` (optional) reports the load method, format version, layout, and
/// mapped bytes.
Result<BloomSampleTree> LoadTreeFromFile(const std::string& path);
Result<BloomSampleTree> LoadTreeFromFile(const std::string& path,
                                         const LoadOptions& options,
                                         TreeLoadInfo* info = nullptr);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_TREE_IO_H_
