// BloomSampleTree persistence.
//
// The tree is the build-once artifact of the whole system (Section 5:
// "constructed only once and repeatedly used"); persisting it turns a
// multi-second rebuild into a file read. The format stores the full
// TreeConfig, the occupied-id list for pruned trees, and every node's
// geometry + bit payload; loading reconstructs the hash family from the
// config so all node filters (and any filters later deserialized against
// the tree) share one family object.
#ifndef BLOOMSAMPLE_CORE_TREE_IO_H_
#define BLOOMSAMPLE_CORE_TREE_IO_H_

#include <istream>
#include <ostream>
#include <string>

#include "src/core/bloom_sample_tree.h"
#include "src/util/status.h"

namespace bloomsample {

/// Writes the tree (config, occupancy, nodes) to `out`.
Status SerializeTree(const BloomSampleTree& tree, std::ostream* out);

/// Reads a tree written by SerializeTree.
Result<BloomSampleTree> DeserializeTree(std::istream* in);

/// Convenience file wrappers.
Status SaveTreeToFile(const BloomSampleTree& tree, const std::string& path);
Result<BloomSampleTree> LoadTreeFromFile(const std::string& path);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_TREE_IO_H_
