// BloomSetStore — the application-facing API.
//
// Models the paper's framework (Section 3.2): a database D̄ of named sets,
// each stored only as a Bloom filter with shared parameters (m, H), plus
// one BloomSampleTree built once over the namespace and reused for every
// query. Construction takes the target sampling accuracy and the typical
// set size and derives every Bloom/tree parameter the way the paper's
// experiments do (Section 5.4).
//
// Typical use (see examples/quickstart.cpp):
//
//   auto store = BloomSetStore::Create(10'000'000, options).value();
//   store.AddSet("community-42", members);
//   uint64_t user = store.Sample("community-42", &rng).value();
//   std::vector<uint64_t> all = store.Reconstruct("community-42").value();
#ifndef BLOOMSAMPLE_CORE_SET_STORE_H_
#define BLOOMSAMPLE_CORE_SET_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/bloom_sample_tree.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace bloomsample {

class BloomSetStore {
 public:
  struct Options {
    /// Desired sampling accuracy (Sec 5.4); drives the Bloom filter size.
    double accuracy = 0.9;
    /// Typical stored-set cardinality used for sizing (the paper's n).
    uint64_t expected_set_size = 1000;
    uint64_t k = 3;
    HashFamilyKind hash_kind = HashFamilyKind::kSimple;
    uint64_t seed = 42;
    /// Section 5.6 empty-intersection threshold; 0 (default) = lossless
    /// pruning only (see TreeConfig::intersection_threshold).
    double intersection_threshold = 0.0;
    /// Use the live machine cost calibration for depth selection instead
    /// of the closed-form model.
    bool measure_costs = false;
  };

  /// Store over the full namespace [0, namespace_size) (complete tree).
  static Result<BloomSetStore> Create(uint64_t namespace_size,
                                      const Options& options);

  /// Store over a sparsely occupied namespace (Pruned-BloomSampleTree).
  /// `occupied` must be sorted and unique; sets may only contain these ids.
  static Result<BloomSetStore> CreateWithOccupied(
      uint64_t namespace_size, std::vector<uint64_t> occupied,
      const Options& options);

  /// Registers (or replaces) a named set.
  Status AddSet(const std::string& name, const std::vector<uint64_t>& elements);

  /// Adds one element to an existing named set's filter.
  Status AddToSet(const std::string& name, uint64_t element);

  /// Marks a new id as occupied (pruned stores only) so future sets may
  /// contain it.
  Status AddOccupied(uint64_t id);

  bool HasSet(const std::string& name) const {
    return sets_.find(name) != sets_.end();
  }
  /// The stored filter, or nullptr when absent.
  const BloomFilter* GetFilter(const std::string& name) const;
  std::vector<std::string> SetNames() const;

  /// Near-uniform sample from the named set (plus its false positives).
  Result<uint64_t> Sample(const std::string& name, Rng* rng,
                          OpCounters* counters = nullptr) const;
  /// r samples without replacement in one pass.
  Result<std::vector<uint64_t>> SampleMany(const std::string& name, size_t r,
                                           Rng* rng,
                                           OpCounters* counters = nullptr) const;
  /// Full reconstruction of the named set (plus its false positives).
  /// Default mode is the paper's fast thresholded traversal; pass
  /// BstReconstructor::PruningMode::kExact for the guaranteed-complete
  /// (but DictionaryAttack-priced) variant.
  Result<std::vector<uint64_t>> Reconstruct(
      const std::string& name, OpCounters* counters = nullptr,
      BstReconstructor::PruningMode mode =
          BstReconstructor::PruningMode::kThresholded) const;

  // --- Set algebra (Section 3.1: union is exact, intersection is an
  // over-approximation with the Eq. 1 false-overlap caveat) ------------

  /// Bitwise-OR composition of the named sets: exactly the filter of
  /// their union. Needs >= 1 name.
  Result<BloomFilter> ComposeUnion(const std::vector<std::string>& names) const;

  /// Bitwise-AND composition: a filter whose positives form a superset of
  /// the true intersection (chance bit overlaps can admit extras beyond
  /// either operand's false positives). Needs >= 1 name.
  Result<BloomFilter> ComposeIntersection(
      const std::vector<std::string>& names) const;

  /// Samples from an ad-hoc (e.g. composed) filter built against this
  /// store's tree.
  Result<uint64_t> SampleFilter(const BloomFilter& query, Rng* rng,
                                OpCounters* counters = nullptr) const;

  /// Reconstructs an ad-hoc (e.g. composed) filter.
  Result<std::vector<uint64_t>> ReconstructFilter(
      const BloomFilter& query, OpCounters* counters = nullptr,
      BstReconstructor::PruningMode mode =
          BstReconstructor::PruningMode::kThresholded) const;

  const BloomSampleTree& tree() const { return *tree_; }
  const TreeConfig& tree_config() const { return tree_->config(); }
  /// Memory of the shared tree in bytes.
  size_t TreeMemoryBytes() const { return tree_->MemoryBytes(); }
  /// Memory of all stored set filters in bytes.
  size_t SetMemoryBytes() const;

 private:
  explicit BloomSetStore(BloomSampleTree tree)
      : tree_(std::make_unique<BloomSampleTree>(std::move(tree))),
        sampler_(tree_.get()),
        reconstructor_(tree_.get()) {}

  static Result<BloomSetStore> CreateImpl(uint64_t namespace_size,
                                          std::vector<uint64_t> occupied,
                                          bool pruned, const Options& options);

  std::unique_ptr<BloomSampleTree> tree_;
  BstSampler sampler_;
  BstReconstructor reconstructor_;
  std::unordered_map<std::string, BloomFilter> sets_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_SET_STORE_H_
