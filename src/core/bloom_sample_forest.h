// Sharded BloomSampleTree forest: one namespace, S independent shards.
//
// The namespace [0, M) is split into S contiguous slices of width
// W = ceil(M / S); shard s owns [s·W, min((s+1)·W, M)) and ShardOf(x) =
// x / W routes a key in one division. Every shard is a full
// BloomSampleTree over the GLOBAL TreeConfig — same (m, k, seed, depth),
// same dyadic node geometry — built pruned over its slice, and every
// shard is built around ONE shared HashFamily instance, so a single query
// Bloom filter (and a single ForestQueryContext) serves all of them.
//
// Why shard: build and reconstruction parallelize across shards with zero
// shared mutable state (each shard owns its own FilterArena slab, filled
// first-touch by a thread pinned to its CPU band — see util/numa.h), and
// the per-shard trees are smaller, so descents touch fewer slab pages.
//
// Sampling stays exact: a draw first picks a shard from a Fenwick tree
// over the per-shard root intersection estimates — the same Papapetrou
// estimate a parent-to-child descent step uses, so the two-stage protocol
// (weighted shard pick, then the ordinary in-shard descent) is precisely
// the descent of a virtual S-ary root whose children are the shard roots.
// Batched draws are pre-partitioned across shards in a single serial
// pass, so each shard tree sees exactly one frontier
// (BstSampler::SampleBatchPrepared); draw i runs on Rng::ForStream(seed,
// i) with the shard pick consuming the stream's first double, making
// forest batches draw-for-draw identical to the serial draw loop for
// every shard count × thread count × SIMD tier × load mode.
//
// Persistence: SaveForestToFile writes a small checksummed 'BSF1'
// manifest at `path` plus one ordinary v2 tree snapshot per shard at
// path + ".shard<s>"; LoadForestFromFile re-creates the shared family
// once and opens every shard image through it (heap or zero-copy mmap,
// per LoadOptions).
#ifndef BLOOMSAMPLE_CORE_BLOOM_SAMPLE_FOREST_H_
#define BLOOMSAMPLE_CORE_BLOOM_SAMPLE_FOREST_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/core/bloom_sample_tree.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/query_context.h"
#include "src/core/tree_io.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"
#include "src/workload/fenwick.h"

namespace bloomsample {

struct ForestConfig {
  /// The GLOBAL tree parameterization, shared verbatim by every shard
  /// (the shard trees differ only in which keys they store). build_threads
  /// is the TOTAL build budget: the forest fans shards across it and gives
  /// each in-flight shard an equal slice.
  TreeConfig tree;
  /// Number of namespace slices. 1 is a degenerate forest whose single
  /// shard is exactly the bare pruned tree.
  uint32_t shards = 1;

  Status Validate() const;
};

class BloomSampleForest {
 public:
  static Result<BloomSampleForest> BuildComplete(const ForestConfig& config);

  /// `occupied` must be sorted, unique, all < namespace_size — the forest
  /// splits it at the shard boundaries in one pass.
  static Result<BloomSampleForest> BuildPruned(const ForestConfig& config,
                                               std::vector<uint64_t> occupied);

  const ForestConfig& config() const { return config_; }
  uint32_t shard_count() const { return config_.shards; }
  /// W = ceil(M / S).
  uint64_t shard_width() const { return shard_width_; }
  uint32_t ShardOf(uint64_t x) const {
    return static_cast<uint32_t>(x / shard_width_);
  }
  uint64_t ShardLo(uint32_t s) const { return s * shard_width_; }
  uint64_t ShardHi(uint32_t s) const {
    const uint64_t hi = (s + 1) * shard_width_;
    return hi < config_.tree.namespace_size ? hi
                                            : config_.tree.namespace_size;
  }
  const BloomSampleTree& shard(uint32_t s) const { return shards_[s]; }
  /// Mutable shard access for ingest paths (WAL attach, compaction).
  BloomSampleTree* mutable_shard(uint32_t s) { return &shards_[s]; }

  /// Dynamically marks `x` as occupied: one division routes it to its
  /// shard, whose tree does the ordinary pruned Insert (logged first when
  /// that shard has a WAL attached — see AttachForestWals). Same caveats
  /// as BloomSampleTree::Insert: quiesce queries; per-query contexts go
  /// stale.
  Status Insert(uint64_t x);

  /// Dynamically removes `x`: one division routes it to its shard, whose
  /// tree does the counting-leaf Remove (kUnsupported unless
  /// EnableCountingLeaves ran — see BloomSampleTree::Remove).
  Status Remove(uint64_t x);

  /// Opt-in delete support on every shard (BloomSampleTree's counting-
  /// bloom leaf backend, built shard by shard).
  Status EnableCountingLeaves();

  const std::shared_ptr<const HashFamily>& family_ptr() const {
    return family_;
  }
  BloomFilter MakeQueryFilter() const { return BloomFilter(family_); }
  BloomFilter MakeQueryFilter(const std::vector<uint64_t>& keys) const;

  /// True when built via BuildPruned (BuildComplete materializes every
  /// shard as a pruned tree over its full slice, so shards are always
  /// physically pruned; this records the logical build mode).
  bool pruned() const { return pruned_; }
  size_t node_count() const;
  size_t MemoryBytes() const;
  uint64_t occupied_count() const;

  /// Query-time knobs, forwarded to every shard (same caveat as the tree
  /// setters: quiesce in-flight queries first).
  void set_intersection_threshold(double threshold);
  void set_query_threads(uint32_t threads);
  void set_min_parallel_work(uint64_t work);

 private:
  friend Result<BloomSampleForest> LoadForestFromFile(
      const std::string& path, const LoadOptions& options,
      struct ForestLoadInfo* info);

  BloomSampleForest(ForestConfig config, uint64_t shard_width,
                    std::shared_ptr<const HashFamily> family, bool pruned,
                    std::vector<BloomSampleTree> shards)
      : config_(config),
        shard_width_(shard_width),
        family_(std::move(family)),
        pruned_(pruned),
        shards_(std::move(shards)) {}

  /// Shared fan-out core of the two builders: shard s gets occupied slice
  /// [splits[s], splits[s+1]) of `occupied`, built in parallel with
  /// per-shard affinity bands.
  static Result<BloomSampleForest> BuildShards(
      const ForestConfig& config, std::vector<uint64_t> occupied,
      const std::vector<size_t>& splits, bool pruned);

  ForestConfig config_;
  uint64_t shard_width_;
  std::shared_ptr<const HashFamily> family_;
  bool pruned_;
  std::vector<BloomSampleTree> shards_;
};

/// Per-query state for forest queries: one (caching) QueryContext per
/// shard — they all view the same query filter through the shared family —
/// plus the lazily-built Fenwick tree over the per-shard root estimates.
/// The query filter must outlive the context. Cache semantics match
/// QueryContext: safe to share across query threads, stale if the query
/// or the forest mutates.
class ForestQueryContext {
 public:
  ForestQueryContext(const BloomSampleForest& forest,
                     const BloomFilter& query);

  const BloomSampleForest& forest() const { return *forest_; }
  QueryContext* shard_ctx(uint32_t s) { return contexts_[s].get(); }
  const QueryContext& shard_ctx(uint32_t s) const { return *contexts_[s]; }
  uint64_t query_bits() const { return contexts_[0]->query_bits(); }

  /// The shard-weight Fenwick tree: slot s holds the root estimate of
  /// shard s — ChildEstimate's exact arithmetic (lossless t∧ < k cut,
  /// Papapetrou correction, optional threshold, 0.5 floor) applied to the
  /// shard root, or 0 for empty shards. Built once per context under
  /// call_once; the t∧ values flow through the shard EstimateCaches, so
  /// the whole table costs at most one intersection kernel per shard per
  /// query, ever (and warms the caches the descents will hit next).
  const FenwickTree& ShardWeights(OpCounters* counters) const;

 private:
  double RootWeight(uint32_t s, OpCounters* counters) const;

  const BloomSampleForest* forest_;
  std::vector<std::unique_ptr<QueryContext>> contexts_;
  mutable std::once_flag weights_once_;
  mutable std::optional<FenwickTree> weights_;
};

/// Cross-shard sampling (see the file comment for the protocol).
class ForestSampler {
 public:
  /// The forest must outlive the sampler.
  explicit ForestSampler(const BloomSampleForest* forest);

  /// One draw: the rng's first double picks the shard by Fenwick weight,
  /// the rest of the stream drives the ordinary in-shard descent. nullopt
  /// when every shard weight is zero or the in-shard descent dies on
  /// false overlaps.
  std::optional<uint64_t> Sample(ForestQueryContext* ctx, Rng* rng,
                                 OpCounters* counters = nullptr) const;

  /// r draws on counter-based streams: entry i equals
  /// Sample(ctx, Rng::ForStream(seed, i)) bit for bit. Draws are bucketed
  /// by shard in one serial pass, then the non-empty shards run their
  /// single frontier each — in parallel across shards when
  /// TreeConfig::query_threads and the min_parallel_work gate allow.
  /// Output and op totals never depend on the thread count.
  std::vector<std::optional<uint64_t>> SampleBatch(
      ForestQueryContext* ctx, size_t r, uint64_t seed,
      OpCounters* counters = nullptr) const;

  const BloomSampleForest& forest() const { return *forest_; }

 private:
  const BloomSampleForest* forest_;
  std::vector<BstSampler> samplers_;
  LazyThreadPool pool_;
};

/// Cross-shard reconstruction: every shard reconstructs independently (in
/// parallel across shards when the knobs allow) and the per-shard outputs
/// — each ascending, over disjoint ascending ranges — concatenate in shard
/// order into one ascending result, identical for every thread count.
class ForestReconstructor {
 public:
  explicit ForestReconstructor(const BloomSampleForest* forest);

  std::vector<uint64_t> Reconstruct(
      const ForestQueryContext& ctx, OpCounters* counters = nullptr,
      BstReconstructor::PruningMode mode =
          BstReconstructor::PruningMode::kThresholded) const;

  const BloomSampleForest& forest() const { return *forest_; }

 private:
  const BloomSampleForest* forest_;
  std::vector<BstReconstructor> recons_;
  LazyThreadPool pool_;
};

/// What LoadForestFromFile did, shard by shard (the CLI's load-summary
/// line reports each shard's mapping mode from this).
struct ForestLoadInfo {
  std::vector<TreeLoadInfo> shards;
};

/// Shard s's snapshot path: `path` + ".shard" + s.
std::string ForestShardPath(const std::string& path, uint32_t s);

/// Writes the 'BSF1' manifest at `path` and one v2 snapshot per shard at
/// ForestShardPath(path, s). `options` applies to every shard image.
Status SaveForestToFile(const BloomSampleForest& forest,
                        const std::string& path);
Status SaveForestToFile(const BloomSampleForest& forest,
                        const std::string& path, const SaveOptions& options);

/// True when the file at `path` starts with the forest manifest tag —
/// the CLI's format sniff.
bool IsForestManifest(const std::string& path);

/// Opens (creating if absent) one sidecar log per shard — at
/// WalPathFor(ForestShardPath(path, s)) — and attaches each to its shard
/// tree. Call after LoadForestFromFile (whose per-shard replay counts,
/// from `info`, seed the sequence numbers; pass nullptr for a freshly
/// built forest with no logs yet). `wal_options` applies to every shard.
Status AttachForestWals(BloomSampleForest* forest, const std::string& path,
                        const WalOptions& wal_options,
                        const ForestLoadInfo* info = nullptr);

/// Forest-wide compaction. Writes the manifest FIRST (durably), then
/// compacts every shard (CompactTree: atomic image swap, then log reset).
/// That order keeps every crash point loadable: a shard whose compaction
/// never ran still replays its full log, reaching exactly the in-memory
/// state the new manifest describes; a compacted shard's image already
/// holds it. (The loader skips its manifest-shape cross-check for shards
/// that replayed records, since replay legitimately grows them.)
Status CompactForest(BloomSampleForest* forest, const std::string& path);
Status CompactForest(BloomSampleForest* forest, const std::string& path,
                     const SaveOptions& options);

Result<BloomSampleForest> LoadForestFromFile(const std::string& path);
Result<BloomSampleForest> LoadForestFromFile(const std::string& path,
                                             const LoadOptions& options,
                                             ForestLoadInfo* info = nullptr);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_BLOOM_SAMPLE_FOREST_H_
