// Concurrent crash-safe ingest: the layer that lets Insert/Remove run
// under live query traffic without giving up PR 7's durability story.
//
// Topology (one LANE per shard; a bare tree is a one-lane pipeline):
//
//   producers ──Push──► IngestQueue (bounded MPSC, backpressure)
//   producers ──Insert/Remove──────────────┐       │ writer thread
//                                          ▼       ▼ drains batches
//                                       GroupCommitWal  (leader–follower,
//                                          │              one fsync per group)
//                                          ▼ after the covering fsync
//                                   tree mutation under the lane's
//                                   shared_mutex (exclusive)  ──► ack
//
// The two ingestion styles share one commit path: synchronous callers
// (Insert/Remove/Apply) and the per-lane writer thread draining the queue
// all funnel into the lane's GroupCommitWal, so concurrent writers form
// fsync groups no matter how their mutations arrived.
//
// Ordering discipline (the crash-matrix invariant): LOG → FSYNC → MUTATE
// → ACK. A mutation touches the in-memory tree only after its WAL record
// is covered per the sync policy, so at every instant the live tree holds
// exactly base ∪ committed mutations — and readers, who take the lane's
// shared lock for the duration of a pass (AcquireRead), observe exactly
// pre- or post-mutation trees, never torn ones. Under kEveryRecord,
// committed ≡ acknowledged ≡ durable; recovery replays exactly what any
// reader could have seen.
//
// Graceful degradation: when the commit layer exhausts its repair budget
// (see GroupCommitWal) the lane LATCHES READ-ONLY — queued and future
// mutations fail with Status::kReadOnly, reads keep serving, and the CLI
// surfaces the state with its own exit code. The latch is sticky until
// the artifact is reopened.
//
// Background compaction (single-tree pipelines): TriggerCompaction folds
// the log into a fresh image on a background thread while readers keep
// serving the old tree —
//
//     ROTATE the log (live .wal → .wal.old, fresh .wal at seq 1)
//   → DRAIN the commit→apply windows: a writer can be acknowledged
//     against the pre-rotation log without having mutated the tree yet;
//     the snapshot must absorb every record frozen into .wal.old in
//     APPLY order, not just log order, or deleting .wal.old would drop
//     an acknowledged durable write
//   → SNAPSHOT occupied under a brief exclusive lock; start the delta
//     side-track (mutations applied during compaction are recorded)
//   → BUILD + SAVE the new image (atomic temp/fsync/rename/dirsync; no
//     lane locks held — ingest and queries proceed)
//   → DELETE .wal.old (its records are all folded into the durable image)
//   → SWAP under the exclusive lock: re-apply the delta to the fresh
//     tree, install it, retire the old one by shared_ptr refcount (a
//     reader's guard keeps its tree — and its mmap, if any — alive).
//
// Every crash point leaves image ∪ logs complete: loaders replay
// .wal.old before .wal (see core/wal.h), and both replays are idempotent.
#ifndef BLOOMSAMPLE_CORE_INGEST_PIPELINE_H_
#define BLOOMSAMPLE_CORE_INGEST_PIPELINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/bloom_sample_forest.h"
#include "src/core/bloom_sample_tree.h"
#include "src/core/group_commit.h"
#include "src/core/tree_io.h"
#include "src/core/wal.h"
#include "src/util/ingest_queue.h"
#include "src/util/status.h"

namespace bloomsample {

/// Policy for the lane recovery supervisor — the background probe loop
/// that distinguishes TRANSIENT latches (EINTR/EAGAIN hiccups, ENOSPC
/// that later frees) from PERMANENT ones (EIO: per fsyncgate, data the
/// kernel already dropped) and un-latches the former without a restart.
struct LaneRecoveryOptions {
  bool enabled = true;
  /// Probe budget PER LATCH EPISODE — but attempts accumulate across
  /// un-latch/re-latch cycles, so a flapping disk converges to sticky
  /// read-only instead of oscillating forever.
  uint64_t max_attempts = 6;
  /// Backoff before a retry after a failed probe; doubles per failure
  /// (shift capped at 10).
  std::chrono::milliseconds backoff_base{2};
  /// Supervisor wake cadence while any lane is latched.
  std::chrono::milliseconds poll_interval{2};
  /// An ENOSPC latch is probed only once FileSystem::FreeSpace reports at
  /// least this much headroom — probing a still-full disk just burns the
  /// budget that a genuinely freed disk would need.
  uint64_t min_free_bytes = 1 << 20;
};

struct IngestPipelineOptions {
  /// Bounded-queue front (per lane): capacity and what a producer
  /// experiences when the queue is full.
  size_t queue_capacity = 4096;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  std::chrono::milliseconds backpressure_timeout{10};
  /// Max mutations a writer thread drains (and commits) per group.
  size_t max_batch = 256;
  /// WAL durability policy; `wal.fs` is also the filesystem compaction
  /// uses for rotation/cleanup.
  WalOptions wal;
  /// Repair/backoff budget before a lane latches read-only.
  GroupCommitOptions commit;
  /// How background compaction writes the new image. Set `save.fs` to
  /// match `wal.fs` when running under a fault-injecting filesystem.
  SaveOptions save;
  /// Lane auto-recovery policy (see LaneRecoveryOptions).
  LaneRecoveryOptions recovery;
};

/// One lane's health, as Stats() reports it — what bsr_cli's
/// `# lane status` diagnostic line prints.
struct LaneStatusInfo {
  uint32_t lane = 0;
  bool read_only = false;
  bool quarantined = false;
  /// The ORIGINAL failure behind the latch ("" when healthy) and its
  /// captured errno (0 when the failure was not a syscall) — the reason,
  /// not just the fact.
  std::string latch_message;
  int latch_errno = 0;
  uint64_t recover_attempts = 0;   ///< probes the supervisor has run
  uint64_t recover_successes = 0;  ///< latches cleared
  bool recovery_gave_up = false;   ///< budget exhausted or permanent cause
};

/// Aggregate counters over every lane (see accessors for meaning).
struct IngestPipelineStats {
  uint64_t committed_batches = 0;  ///< Commit() calls acknowledged OK
  uint64_t commit_groups = 0;      ///< leader rounds (fsync sharing factor)
  uint64_t fsyncs = 0;             ///< successful fsyncs issued
  uint64_t shed = 0;               ///< pushes rejected by backpressure
  std::vector<LaneStatusInfo> lanes;  ///< per-lane health
};

class IngestPipeline {
 public:
  /// Single-tree pipeline (one lane). The pipeline takes shared ownership
  /// of `tree` — compaction swaps the live tree, so access it through
  /// AcquireRead()/tree_handle(), not a stale raw pointer. The tree must
  /// be pruned, must NOT have its own WAL attached (the pipeline owns the
  /// log), and replay must already have happened: pass the loader's
  /// `wal_records_replayed + 1` as `next_wal_seq` (1 for a fresh tree).
  static Result<std::unique_ptr<IngestPipeline>> OpenTree(
      std::shared_ptr<BloomSampleTree> tree, std::string path,
      const IngestPipelineOptions& options, uint64_t next_wal_seq = 1);

  /// Forest pipeline: one lane per shard, mutations routed by ShardOf.
  /// Shards are borrowed — the forest must outlive the pipeline — and
  /// background compaction is unsupported (quiesce via Close(), then
  /// CompactForest). `info` (from LoadForestFromFile) seeds per-shard
  /// sequence numbers; nullptr for a freshly built forest.
  static Result<std::unique_ptr<IngestPipeline>> OpenForest(
      BloomSampleForest* forest, std::string path,
      const IngestPipelineOptions& options,
      const ForestLoadInfo* info = nullptr);

  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  // --- synchronous ingest (group commit across calling threads) --------

  /// Durably logs and applies one mutation; returns after the ack rule of
  /// the sync policy is met (kEveryRecord: the covering fsync returned).
  Status Insert(uint64_t x);
  Status Remove(uint64_t x);
  Status Apply(const WalMutation& mut);

  // --- asynchronous ingest (bounded queue, backpressure) ---------------

  /// Enqueues fire-and-forget; returns the backpressure outcome, not the
  /// commit outcome (watch read_only()/Flush for failures).
  Status Push(const WalMutation& mut);

  /// Enqueues and returns a future resolving to the mutation's commit+
  /// apply status — the per-item acknowledgement, delivered only after
  /// the covering fsync under kEveryRecord.
  std::future<Status> PushWithAck(const WalMutation& mut);

  /// Barrier: waits until everything enqueued before the call is
  /// committed and applied, then fences the logs. Returns the first
  /// failure (e.g. the latch status).
  Status Flush();

  // --- read side -------------------------------------------------------

  /// Holds the lane's shared lock plus a refcount on the live tree: the
  /// writer's mutation window and the compaction swap both exclude it, so
  /// the guarded tree is a fully-applied acknowledged state and can never
  /// be retired (or its mmap unmapped) while the guard lives. Hold for
  /// the duration of one sampling/reconstruction pass.
  class ReadGuard {
   public:
    const BloomSampleTree& tree() const { return *tree_; }
    ReadGuard(ReadGuard&&) = default;
    ReadGuard& operator=(ReadGuard&&) = default;

   private:
    friend class IngestPipeline;
    ReadGuard(std::shared_lock<std::shared_mutex> lock,
              std::shared_ptr<const BloomSampleTree> keepalive,
              const BloomSampleTree* tree)
        : lock_(std::move(lock)),
          keepalive_(std::move(keepalive)),
          tree_(tree) {}

    std::shared_lock<std::shared_mutex> lock_;
    /// Null for borrowed (forest) lanes — the forest owns those shards.
    std::shared_ptr<const BloomSampleTree> keepalive_;
    const BloomSampleTree* tree_;
  };

  ReadGuard AcquireRead(uint32_t lane = 0) const;
  uint32_t lane_count() const { return static_cast<uint32_t>(lanes_.size()); }
  uint32_t LaneOf(uint64_t x) const;

  /// The current live tree of a single-tree pipeline (refcounted: safe to
  /// hold across a compaction swap, but the pipeline may move on — use
  /// AcquireRead for query passes).
  std::shared_ptr<const BloomSampleTree> tree_handle() const;

  /// Enables the counting-bloom delete backend on every lane (exclusive
  /// locks; brief stall of readers and writers).
  Status EnableCountingLeaves();

  // --- degradation surface ---------------------------------------------

  /// True when any lane has latched read-only.
  bool read_only() const;
  /// OK while healthy, else the first lane's latch status.
  Status read_only_status() const;

  IngestPipelineStats Stats() const;

  /// The snapshot path a lane serves (what the scrubber walks).
  const std::string& lane_path(uint32_t lane) const;

  /// Takes a lane out of service after unrepairable corruption: durably
  /// writes the `<path>.quarantine` marker (so the NEXT open fails fast
  /// with kQuarantined) and fails this lane's future mutations with
  /// kQuarantined immediately. Sibling lanes are untouched and keep
  /// serving. Lifted by restoring the file and ClearQuarantineMarker.
  Status Quarantine(uint32_t lane, const std::string& reason);
  bool lane_quarantined(uint32_t lane) const;

  /// Test-only sync point: runs in the synchronous Apply path between
  /// the commit acknowledgement and the tree mutation — inside the
  /// rotation window, so tests can park a writer in exactly the gap a
  /// background compaction must drain. Set before spawning writers.
  void set_apply_pause_for_test(std::function<void()> hook) {
    apply_pause_ = std::move(hook);
  }

  // --- hot snapshot swap (single-tree pipelines) -----------------------

  /// Reloads the lane's snapshot (image + sidecar WAL replay) from disk
  /// and installs the fresh tree through the same refcounted swap
  /// compaction uses: in-flight readers finish their pass on the old tree
  /// (their guards hold the refcount), new readers land on the new one —
  /// never a blend. This is the SIGHUP path: an operator rebuilds or
  /// restores the artifact in place and signals the serving daemon
  /// instead of restarting it.
  ///
  /// Mutations are barriered for the duration (the commit-window drain is
  /// held exclusively) so the on-disk image ∪ log is frozen while it is
  /// re-read; the commit layer's writer is then reopened at the replayed
  /// sequence number — which also clears a read-only latch and the
  /// lane's quarantine flag when the restored artifact loads clean.
  /// kResourceExhausted when a compaction (or another swap) is in flight;
  /// kUnsupported on forest pipelines; on any load failure the old tree
  /// keeps serving untouched.
  Status HotSwapFromDisk(const LoadOptions& load = LoadOptions::FromEnv());

  // --- background compaction (single-tree pipelines) -------------------

  /// Starts a background compaction; kResourceExhausted when one is in
  /// flight, kUnsupported on forest pipelines, kInternal if a previous
  /// compaction left `<path>.wal.old` behind (reopen the artifact to fold
  /// it).
  Status TriggerCompaction();
  /// Joins the background compaction (no-op if none) and returns its
  /// result.
  Status WaitCompaction();

  /// Stops the writer threads (draining their queues), joins compaction,
  /// fences and closes every log. Idempotent; the destructor calls it.
  Status Close();

 private:
  struct Pending {
    WalMutation mut;
    std::shared_ptr<std::promise<Status>> ack;  ///< null = fire-and-forget
    bool fence = false;  ///< Flush barrier marker (mut ignored)
    bool skip = false;   ///< failed validation; already acked
  };

  struct Lane {
    std::string path;
    /// Owned tree (single-tree mode); null when the lane borrows a forest
    /// shard. `tree` is the live raw pointer either way (swapped under an
    /// exclusive tree_mu hold).
    std::shared_ptr<BloomSampleTree> owned;
    BloomSampleTree* tree = nullptr;
    std::unique_ptr<GroupCommitWal> commit;
    std::unique_ptr<IngestQueue<Pending>> queue;
    BatchPool<Pending> pool;
    std::thread writer;
    mutable std::shared_mutex tree_mu;
    /// Writers queued on tree_mu. Back-to-back read passes keep a
    /// reader-preferring shared_mutex permanently read-held and starve
    /// the writer (observed: 200 000× ingest slowdown under two sampler
    /// threads); new readers yield while this is non-zero so a waiting
    /// writer gets its exclusive window promptly.
    mutable std::atomic<uint32_t> writers_waiting{0};
    /// Compaction side-track, both guarded by tree_mu.
    bool compacting = false;
    std::vector<WalMutation> delta;
    /// Rotation barrier: every committer holds this shared across its
    /// whole LOG→FSYNC→MUTATE window; compaction drains it exclusively
    /// between rotating the log and snapshotting occupied(), so no
    /// record frozen into .wal.old can still be waiting to mutate the
    /// tree when the new image is built (see CompactionBody step 2).
    mutable std::shared_mutex window_mu;
    /// Same writer-priority gate as writers_waiting: new windows yield
    /// while a drain waits, so the one-shot drain cannot starve under a
    /// reader-preferring shared_mutex.
    mutable std::atomic<uint32_t> drain_waiting{0};
    /// Set by Quarantine(); mutations fail fast with kQuarantined.
    std::atomic<bool> quarantined{false};
    /// Supervisor bookkeeping, read by Stats() from other threads.
    std::atomic<uint64_t> recover_attempts{0};
    std::atomic<bool> recovery_gave_up{false};
  };

  IngestPipeline(IngestPipelineOptions options, uint64_t namespace_size,
                 uint64_t lane_width);

  static Result<std::unique_ptr<GroupCommitWal>> OpenLaneWal(
      const std::string& snapshot_path, const TreeConfig& config,
      uint64_t next_seq, const IngestPipelineOptions& options);

  /// Pre-commit validation (range, delete-backend presence) — anything
  /// the tree would refuse AFTER logging must be refused BEFORE, or the
  /// log would replay a record the live tree rejected.
  Status Validate(const Lane& lane, const WalMutation& mut) const;
  /// Writer-priority lock acquisition: LockExclusive advertises the
  /// waiting writer via `writers_waiting`; LockShared defers to it.
  static std::unique_lock<std::shared_mutex> LockExclusive(Lane* lane);
  static std::shared_lock<std::shared_mutex> LockShared(const Lane& lane);
  /// Caller holds lane.tree_mu exclusive.
  Status ApplyToTreeLocked(Lane* lane, const WalMutation& mut);
  /// Shared hold over one commit→apply window (see Lane::window_mu).
  static std::shared_lock<std::shared_mutex> LockWindow(const Lane& lane);
  /// Blocks until every window open at call time has closed (its
  /// mutation reached the tree). Caller must hold no lane locks.
  static void DrainWindows(Lane* lane);
  void WriterLoop(Lane* lane);
  Status CompactionBody();
  /// The recovery supervisor (one thread per pipeline): polls latched
  /// lanes, classifies the latch cause by errno (transient EINTR/EAGAIN;
  /// ENOSPC gated on the free-space watermark; anything else permanent),
  /// and drives GroupCommitWal::TryRecover under capped exponential
  /// backoff until it succeeds or the attempt budget is gone.
  void SupervisorLoop();
  static void StartThreads(IngestPipeline* p);

  const IngestPipelineOptions options_;
  const uint64_t namespace_size_;
  /// ShardOf divisor (namespace_size for one lane — everything maps to 0).
  const uint64_t lane_width_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  /// True from a successful TriggerCompaction CAS until the background
  /// thread has published its result — the only admission gate for a new
  /// compaction.
  std::atomic<bool> compaction_running_{false};
  /// Guards compaction_thread_ and compaction_result_: TriggerCompaction,
  /// WaitCompaction, and Close may race, and the background thread writes
  /// the result. Threads are moved out under the mutex and joined with it
  /// released (the thread's epilogue takes it to publish the result).
  mutable std::mutex compaction_mu_;
  std::thread compaction_thread_;
  Status compaction_result_;

  std::atomic<bool> closed_{false};

  /// Recovery supervisor thread + its shutdown signal (cv so Close() can
  /// wake a sleeping supervisor immediately instead of waiting out a poll
  /// interval).
  std::thread supervisor_;
  mutable std::mutex supervisor_mu_;
  std::condition_variable supervisor_cv_;
  bool stop_supervisor_ = false;

  /// See set_apply_pause_for_test.
  std::function<void()> apply_pause_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_INGEST_PIPELINE_H_
