#include "src/core/ingest_pipeline.h"

#include <cerrno>
#include <utility>

namespace bloomsample {

namespace {

FileSystem* FsOrDefault(FileSystem* fs) {
  return fs != nullptr ? fs : FileSystem::Default();
}

}  // namespace

IngestPipeline::IngestPipeline(IngestPipelineOptions options,
                               uint64_t namespace_size, uint64_t lane_width)
    : options_(std::move(options)),
      namespace_size_(namespace_size),
      lane_width_(lane_width) {
  BSR_CHECK(lane_width_ > 0, "ingest pipeline lane width must be > 0");
}

Result<std::unique_ptr<GroupCommitWal>> IngestPipeline::OpenLaneWal(
    const std::string& snapshot_path, const TreeConfig& config,
    uint64_t next_seq, const IngestPipelineOptions& options) {
  auto writer = WalWriter::Open(WalPathFor(snapshot_path),
                                WalConfigFingerprint(config), next_seq,
                                options.wal);
  if (!writer.ok()) return writer.status();
  return std::make_unique<GroupCommitWal>(std::move(writer).value(),
                                          options.commit);
}

Result<std::unique_ptr<IngestPipeline>> IngestPipeline::OpenTree(
    std::shared_ptr<BloomSampleTree> tree, std::string path,
    const IngestPipelineOptions& options, uint64_t next_wal_seq) {
  if (tree == nullptr) {
    return Status::InvalidArgument("ingest pipeline requires a tree");
  }
  if (!tree->pruned()) {
    // Refuse at open, not first-insert: by first-insert the record would
    // already be logged, and replay would fail the next load with it.
    return Status::Unsupported(
        "ingest pipeline requires a pruned tree (complete trees already "
        "store the whole namespace)");
  }
  if (tree->wal() != nullptr) {
    return Status::InvalidArgument(
        "tree already has an attached WAL; the pipeline owns the log — load "
        "the tree without AttachTreeWal and pass the replayed count here");
  }
  const uint64_t ns = tree->config().namespace_size;
  std::unique_ptr<IngestPipeline> p(
      new IngestPipeline(options, ns, /*lane_width=*/ns));
  auto lane = std::make_unique<Lane>();
  lane->path = std::move(path);
  lane->owned = std::move(tree);
  lane->tree = lane->owned.get();
  auto wal = OpenLaneWal(lane->path, lane->tree->config(), next_wal_seq,
                         p->options_);
  if (!wal.ok()) return wal.status();
  lane->commit = std::move(wal).value();
  lane->queue = std::make_unique<IngestQueue<Pending>>(
      typename IngestQueue<Pending>::Options{p->options_.queue_capacity,
                                             p->options_.backpressure,
                                             p->options_.backpressure_timeout});
  p->lanes_.push_back(std::move(lane));
  StartThreads(p.get());
  return p;
}

Result<std::unique_ptr<IngestPipeline>> IngestPipeline::OpenForest(
    BloomSampleForest* forest, std::string path,
    const IngestPipelineOptions& options, const ForestLoadInfo* info) {
  if (forest == nullptr) {
    return Status::InvalidArgument("ingest pipeline requires a forest");
  }
  if (!forest->pruned()) {
    return Status::Unsupported(
        "ingest pipeline requires a pruned forest (complete forests "
        "already store the whole namespace)");
  }
  const uint64_t ns = forest->config().tree.namespace_size;
  std::unique_ptr<IngestPipeline> p(
      new IngestPipeline(options, ns, forest->shard_width()));
  for (uint32_t s = 0; s < forest->shard_count(); ++s) {
    auto lane = std::make_unique<Lane>();
    lane->path = ForestShardPath(path, s);
    lane->tree = forest->mutable_shard(s);
    if (lane->tree->wal() != nullptr) {
      return Status::InvalidArgument(
          "forest shards already have attached WALs; the pipeline owns the "
          "logs — skip AttachForestWals and pass the load info here");
    }
    const uint64_t next_seq =
        info != nullptr && s < info->shards.size()
            ? info->shards[s].wal_records_replayed + 1
            : 1;
    auto wal = OpenLaneWal(lane->path, lane->tree->config(), next_seq,
                           p->options_);
    if (!wal.ok()) return wal.status();
    lane->commit = std::move(wal).value();
    lane->queue = std::make_unique<IngestQueue<Pending>>(
        typename IngestQueue<Pending>::Options{
            p->options_.queue_capacity, p->options_.backpressure,
            p->options_.backpressure_timeout});
    p->lanes_.push_back(std::move(lane));
  }
  StartThreads(p.get());
  return p;
}

void IngestPipeline::StartThreads(IngestPipeline* p) {
  for (auto& l : p->lanes_) {
    l->writer = std::thread(&IngestPipeline::WriterLoop, p, l.get());
  }
  if (p->options_.recovery.enabled) {
    p->supervisor_ = std::thread(&IngestPipeline::SupervisorLoop, p);
  }
}

IngestPipeline::~IngestPipeline() { Close(); }

uint32_t IngestPipeline::LaneOf(uint64_t x) const {
  const uint64_t lane = x / lane_width_;
  const uint64_t last = lanes_.size() - 1;
  return static_cast<uint32_t>(lane < last ? lane : last);
}

std::unique_lock<std::shared_mutex> IngestPipeline::LockExclusive(Lane* lane) {
  lane->writers_waiting.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> lock(lane->tree_mu);
  lane->writers_waiting.fetch_sub(1, std::memory_order_relaxed);
  return lock;
}

std::shared_lock<std::shared_mutex> IngestPipeline::LockShared(
    const Lane& lane) {
  // The counter is non-zero only while a writer WAITS for the mutex, so
  // this spin is brief: once the writer gets in, readers park on the
  // mutex itself.
  while (lane.writers_waiting.load(std::memory_order_relaxed) > 0) {
    std::this_thread::yield();
  }
  return std::shared_lock<std::shared_mutex>(lane.tree_mu);
}

std::shared_lock<std::shared_mutex> IngestPipeline::LockWindow(
    const Lane& lane) {
  // Mirror of LockShared's writer-priority gate: a drain happens once
  // per compaction and must not starve behind a stream of new windows.
  while (lane.drain_waiting.load(std::memory_order_relaxed) > 0) {
    std::this_thread::yield();
  }
  return std::shared_lock<std::shared_mutex>(lane.window_mu);
}

void IngestPipeline::DrainWindows(Lane* lane) {
  lane->drain_waiting.fetch_add(1, std::memory_order_relaxed);
  { std::unique_lock<std::shared_mutex> drain(lane->window_mu); }
  lane->drain_waiting.fetch_sub(1, std::memory_order_relaxed);
}

Status IngestPipeline::Validate(const Lane& lane,
                                const WalMutation& mut) const {
  // Refusals must precede logging: a record the live tree would reject
  // must never reach the log, or replay would apply what ingest refused.
  if (lane.quarantined.load(std::memory_order_relaxed)) {
    return Status::Quarantined(
        "lane is quarantined after unrepairable snapshot corruption");
  }
  if (mut.id >= namespace_size_) {
    return Status::OutOfRange("mutation id outside the namespace");
  }
  if (mut.op == WalOp::kRemove) {
    std::shared_lock<std::shared_mutex> lock = LockShared(lane);
    if (!lane.tree->counting_leaves()) {
      return Status::Unsupported(
          "remove requires the counting-bloom leaf backend: call "
          "EnableCountingLeaves() first");
    }
  }
  return Status::OK();
}

Status IngestPipeline::ApplyToTreeLocked(Lane* lane, const WalMutation& mut) {
  const Status st = mut.op == WalOp::kRemove ? lane->tree->Remove(mut.id)
                                             : lane->tree->Insert(mut.id);
  if (st.ok() && lane->compacting) lane->delta.push_back(mut);
  return st;
}

Status IngestPipeline::Insert(uint64_t x) {
  WalMutation mut;
  mut.op = WalOp::kInsert;
  mut.id = x;
  return Apply(mut);
}

Status IngestPipeline::Remove(uint64_t x) {
  WalMutation mut;
  mut.op = WalOp::kRemove;
  mut.id = x;
  return Apply(mut);
}

Status IngestPipeline::Apply(const WalMutation& mut) {
  Lane& lane = *lanes_[LaneOf(mut.id)];
  const Status pre = Validate(lane, mut);
  if (!pre.ok()) return pre;
  // Log and fence first (concurrent callers form one fsync group), mutate
  // second: an acknowledged mutation is durable before it is visible.
  // Concurrent sync-path mutations of the SAME id have no defined order
  // (the apply order may differ from the log order); per-id streams that
  // need ordering should go through one thread or the queue path, whose
  // single writer applies in log order.
  //
  // The window hold spans the whole LOG→FSYNC→MUTATE sequence so
  // compaction's post-rotation drain waits out any acknowledgement
  // against the pre-rotation log whose mutation has not reached the
  // tree yet (see CompactionBody step 2).
  std::shared_lock<std::shared_mutex> window = LockWindow(lane);
  const Status st = lane.commit->CommitOne(mut.op, mut.id);
  if (!st.ok()) return st;
  if (apply_pause_) apply_pause_();
  std::unique_lock<std::shared_mutex> lock = LockExclusive(&lane);
  return ApplyToTreeLocked(&lane, mut);
}

Status IngestPipeline::Push(const WalMutation& mut) {
  Lane& lane = *lanes_[LaneOf(mut.id)];
  if (lane.quarantined.load(std::memory_order_relaxed)) {
    return Status::Quarantined(
        "lane is quarantined after unrepairable snapshot corruption");
  }
  if (lane.commit->read_only()) return lane.commit->read_only_status();
  Pending p;
  p.mut = mut;
  return lane.queue->Push(std::move(p));
}

std::future<Status> IngestPipeline::PushWithAck(const WalMutation& mut) {
  Lane& lane = *lanes_[LaneOf(mut.id)];
  Pending p;
  p.mut = mut;
  p.ack = std::make_shared<std::promise<Status>>();
  std::future<Status> fut = p.ack->get_future();
  auto ack = p.ack;  // Push moves `p`
  Status st = lane.commit->read_only() ? lane.commit->read_only_status()
                                       : lane.queue->Push(std::move(p));
  if (!st.ok()) ack->set_value(st);
  return fut;
}

Status IngestPipeline::Flush() {
  Status first;
  for (auto& lane : lanes_) {
    Pending marker;
    marker.fence = true;
    marker.ack = std::make_shared<std::promise<Status>>();
    std::future<Status> fut = marker.ack->get_future();
    // The barrier must land even when backpressure is shedding: retry
    // until a slot frees up, giving up only when the lane closes.
    Status pushed;
    while (true) {
      pushed = lane->queue->Push(std::move(marker));
      if (pushed.ok() || pushed.code() != Status::Code::kResourceExhausted) {
        break;
      }
      marker = Pending();
      marker.fence = true;
      marker.ack = std::make_shared<std::promise<Status>>();
      fut = marker.ack->get_future();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const Status res = pushed.ok() ? fut.get() : pushed;
    if (first.ok() && !res.ok()) first = res;
  }
  return first;
}

IngestPipeline::ReadGuard IngestPipeline::AcquireRead(uint32_t lane) const {
  BSR_CHECK(lane < lanes_.size(), "lane index out of range");
  const Lane& l = *lanes_[lane];
  std::shared_lock<std::shared_mutex> lock = LockShared(l);
  return ReadGuard(std::move(lock), l.owned, l.tree);
}

std::shared_ptr<const BloomSampleTree> IngestPipeline::tree_handle() const {
  const Lane& lane = *lanes_[0];
  std::shared_lock<std::shared_mutex> lock = LockShared(lane);
  return lane.owned;
}

Status IngestPipeline::EnableCountingLeaves() {
  for (auto& lane : lanes_) {
    std::unique_lock<std::shared_mutex> lock = LockExclusive(lane.get());
    const Status st = lane->tree->EnableCountingLeaves();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

bool IngestPipeline::read_only() const {
  for (const auto& lane : lanes_) {
    if (lane->commit->read_only()) return true;
  }
  return false;
}

Status IngestPipeline::read_only_status() const {
  for (const auto& lane : lanes_) {
    Status st = lane->commit->read_only_status();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

IngestPipelineStats IngestPipeline::Stats() const {
  IngestPipelineStats stats;
  for (uint32_t i = 0; i < lanes_.size(); ++i) {
    const Lane& lane = *lanes_[i];
    stats.committed_batches += lane.commit->commit_count();
    stats.commit_groups += lane.commit->group_count();
    stats.fsyncs += lane.commit->fsync_count();
    stats.shed += lane.queue->shed_count();
    LaneStatusInfo info;
    info.lane = i;
    info.read_only = lane.commit->read_only();
    info.quarantined = lane.quarantined.load(std::memory_order_relaxed);
    const Status cause = lane.commit->latch_cause();
    info.latch_message = cause.message();
    info.latch_errno = cause.sys_errno();
    info.recover_attempts =
        lane.recover_attempts.load(std::memory_order_relaxed);
    info.recover_successes = lane.commit->recover_count();
    info.recovery_gave_up =
        lane.recovery_gave_up.load(std::memory_order_relaxed);
    stats.lanes.push_back(std::move(info));
  }
  return stats;
}

const std::string& IngestPipeline::lane_path(uint32_t lane) const {
  BSR_CHECK(lane < lanes_.size(), "lane index out of range");
  return lanes_[lane]->path;
}

Status IngestPipeline::Quarantine(uint32_t lane, const std::string& reason) {
  BSR_CHECK(lane < lanes_.size(), "lane index out of range");
  Lane& l = *lanes_[lane];
  // Marker first: only once the NEXT open is guaranteed to fail fast is
  // the in-memory fail-fast turned on. The reverse order could lose the
  // quarantine to a crash and reopen a known-bad image cleanly.
  const Status st = WriteQuarantineMarker(
      l.path, reason, FsOrDefault(options_.wal.fs));
  if (!st.ok()) return st;
  l.quarantined.store(true, std::memory_order_relaxed);
  return Status::OK();
}

bool IngestPipeline::lane_quarantined(uint32_t lane) const {
  BSR_CHECK(lane < lanes_.size(), "lane index out of range");
  return lanes_[lane]->quarantined.load(std::memory_order_relaxed);
}

void IngestPipeline::SupervisorLoop() {
  struct LaneRecoveryState {
    uint64_t attempts = 0;  ///< cumulative — flapping converges to sticky
    uint32_t backoff_shift = 0;
    std::chrono::steady_clock::time_point next_probe{};
  };
  const LaneRecoveryOptions& opts = options_.recovery;
  FileSystem* fs = FsOrDefault(options_.wal.fs);
  std::vector<LaneRecoveryState> state(lanes_.size());

  std::unique_lock<std::mutex> lock(supervisor_mu_);
  while (!stop_supervisor_) {
    supervisor_cv_.wait_for(lock, opts.poll_interval,
                            [&] { return stop_supervisor_; });
    if (stop_supervisor_) break;
    lock.unlock();
    for (size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = *lanes_[i];
      LaneRecoveryState& rec = state[i];
      if (!lane.commit->read_only() ||
          lane.recovery_gave_up.load(std::memory_order_relaxed) ||
          lane.quarantined.load(std::memory_order_relaxed)) {
        continue;
      }
      // Classify by the ORIGINAL failure's errno, never its message text.
      // EINTR/EAGAIN: scheduler/signal noise — probe right away. ENOSPC:
      // recoverable by definition once space frees, so wait (without
      // burning budget) until the watermark says a probe can pass. EIO or
      // no errno at all: per fsyncgate the kernel may have dropped dirty
      // pages already — no probe can make that data safe, stay latched.
      const int err = lane.commit->latch_cause().sys_errno();
      if (err == ENOSPC) {
        auto free_space = fs->FreeSpace(lane.path);
        if (!free_space.ok() || free_space.value() < opts.min_free_bytes) {
          continue;  // disk still full — not permanent, not probeable yet
        }
      } else if (err != EINTR && err != EAGAIN) {
        lane.recovery_gave_up.store(true, std::memory_order_relaxed);
        continue;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now < rec.next_probe) continue;
      if (rec.attempts >= opts.max_attempts) {
        lane.recovery_gave_up.store(true, std::memory_order_relaxed);
        continue;
      }
      ++rec.attempts;
      lane.recover_attempts.fetch_add(1, std::memory_order_relaxed);
      const Status probed = lane.commit->TryRecover();
      if (probed.ok()) {
        // Un-latched. Backoff resets; the cumulative attempt count does
        // NOT — a disk that keeps flapping runs out of budget and sticks.
        rec.backoff_shift = 0;
      } else {
        const uint32_t shift =
            rec.backoff_shift < 10 ? rec.backoff_shift : 10;
        rec.next_probe = now + opts.backoff_base * (1ull << shift);
        ++rec.backoff_shift;
      }
    }
    lock.lock();
  }
}

void IngestPipeline::WriterLoop(Lane* lane) {
  std::vector<WalMutation> muts;
  while (true) {
    std::vector<Pending> batch = lane->pool.Acquire();
    if (!lane->queue->PopBatch(options_.max_batch, &batch)) {
      lane->pool.Release(std::move(batch));
      return;
    }
    // Process the batch in segments split at fence markers so a Flush
    // barrier acks only after everything enqueued before it is applied.
    size_t i = 0;
    while (i < batch.size()) {
      size_t j = i;
      muts.clear();
      for (; j < batch.size() && !batch[j].fence; ++j) {
        Pending& p = batch[j];
        const Status pre = Validate(*lane, p.mut);
        if (!pre.ok()) {
          p.skip = true;
          if (p.ack != nullptr) p.ack->set_value(pre);
          continue;
        }
        muts.push_back(p.mut);
      }
      if (!muts.empty()) {
        // One Commit per drained segment: under kEveryRecord the whole
        // segment shares one fsync even with a single producer — the
        // queue is itself a batching stage in front of group commit.
        // The rotation window spans commit→apply exactly like the sync
        // path: compaction cannot snapshot between this segment's
        // acknowledgement and its tree mutations.
        std::shared_lock<std::shared_mutex> window = LockWindow(*lane);
        const Status st = lane->commit->Commit(muts);
        if (st.ok()) {
          std::unique_lock<std::shared_mutex> lock = LockExclusive(lane);
          for (size_t k = i; k < j; ++k) {
            Pending& p = batch[k];
            if (p.skip) continue;
            const Status applied = ApplyToTreeLocked(lane, p.mut);
            if (p.ack != nullptr) p.ack->set_value(applied);
          }
        } else {
          for (size_t k = i; k < j; ++k) {
            Pending& p = batch[k];
            if (!p.skip && p.ack != nullptr) p.ack->set_value(st);
          }
          // The queue deliberately stays OPEN on a latch: Push already
          // fails fast via read_only(), queued work keeps draining (and
          // nacking) here, and — the point — the recovery supervisor can
          // clear a transient latch and this same thread then commits new
          // durable writes without a restart. Closing the queue would
          // kill the writer and make every latch terminal.
        }
      }
      if (j < batch.size()) {
        const Status fenced = lane->commit->Fence();
        if (batch[j].ack != nullptr) batch[j].ack->set_value(fenced);
        ++j;
      }
      i = j;
    }
    lane->pool.Release(std::move(batch));
  }
}

Status IngestPipeline::HotSwapFromDisk(const LoadOptions& load) {
  if (lanes_.size() != 1 || lanes_[0]->owned == nullptr) {
    return Status::Unsupported(
        "hot snapshot swap supports single-tree pipelines only");
  }
  // Swap and compaction share one admission gate: both rewrite the
  // lane's tree/log pairing and must never interleave.
  bool expected = false;
  if (!compaction_running_.compare_exchange_strong(expected, true)) {
    return Status::ResourceExhausted(
        "a compaction or snapshot swap is already in flight");
  }
  Lane& lane = *lanes_[0];

  // Freeze the artifact: hold the commit-window barrier exclusively so no
  // committer sits between its log append and its tree mutation — and no
  // new window opens — while the on-disk image ∪ log is re-read. Writes
  // stall for the reload; readers keep serving the old tree throughout.
  lane.drain_waiting.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::shared_mutex> window(lane.window_mu);
  lane.drain_waiting.fetch_sub(1, std::memory_order_relaxed);

  const Status st = [&]() -> Status {
    LoadOptions opts = load;
    opts.replay_wal = true;
    if (opts.fs == nullptr) opts.fs = options_.wal.fs;
    TreeLoadInfo info;
    auto loaded = LoadTreeFromFile(lane.path, opts, &info);
    if (!loaded.ok()) return loaded.status();
    auto fresh =
        std::make_shared<BloomSampleTree>(std::move(loaded).value());
    if (!fresh->pruned()) {
      return Status::Unsupported(
          "hot swap requires a pruned snapshot (complete trees take no "
          "ingest)");
    }
    // The old writer's descriptor and sequence numbers describe the log
    // as it stood before the reload — an external rebuild may have reset,
    // truncated, or replaced it. Reopen at the replayed count so
    // post-swap commits extend exactly the log the next recovery will
    // replay. ReplaceWal also clears a read-only latch: the restored
    // artifact is a fresh epoch.
    auto writer = WalWriter::Open(WalPathFor(lane.path),
                                  WalConfigFingerprint(fresh->config()),
                                  info.wal_records_replayed + 1,
                                  options_.wal);
    if (!writer.ok()) return writer.status();
    lane.commit->ReplaceWal(std::move(writer).value());
    {
      // The same refcounted install as the compaction swap: a reader's
      // guard keeps the retired tree (and its mmap) alive to the end of
      // its pass, so every pass sees wholly-old or wholly-new draws.
      std::unique_lock<std::shared_mutex> lock = LockExclusive(&lane);
      lane.owned = std::move(fresh);
      lane.tree = lane.owned.get();
    }
    // Loading clean proves no quarantine marker is on disk; the restored
    // artifact lifts the in-memory latch too.
    lane.quarantined.store(false, std::memory_order_relaxed);
    lane.recovery_gave_up.store(false, std::memory_order_relaxed);
    return Status::OK();
  }();

  window.unlock();
  compaction_running_.store(false);
  return st;
}

Status IngestPipeline::TriggerCompaction() {
  if (lanes_.size() != 1 || lanes_[0]->owned == nullptr) {
    return Status::Unsupported(
        "background compaction supports single-tree pipelines only; quiesce "
        "a forest with Close() and use CompactForest");
  }
  bool expected = false;
  if (!compaction_running_.compare_exchange_strong(expected, true)) {
    return Status::ResourceExhausted("a compaction is already in flight");
  }
  // The flag is ours, so the previous compaction (if any) has finished
  // its body; reap its thread before starting a new one.
  std::thread prev;
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    prev = std::move(compaction_thread_);
  }
  if (prev.joinable()) prev.join();
  // Check for a stale frozen log only AFTER winning the flag: an
  // in-flight compaction has already rotated the live log to .wal.old,
  // and reporting that as a leftover would tell the operator to reopen
  // a healthy artifact.
  FileSystem* fs = FsOrDefault(options_.wal.fs);
  const std::string old_path = OldWalPathFor(lanes_[0]->path);
  if (fs->FileExists(old_path)) {
    compaction_running_.store(false);
    return Status::Internal("a previous compaction left " + old_path +
                            " behind; reopen the artifact to fold it");
  }
  std::lock_guard<std::mutex> lock(compaction_mu_);
  compaction_thread_ = std::thread([this] {
    const Status result = CompactionBody();
    {
      std::lock_guard<std::mutex> lock(compaction_mu_);
      compaction_result_ = result;
    }
    // Publish the result before releasing the flag: a TriggerCompaction
    // that wins the CAS after this store must observe it.
    compaction_running_.store(false);
  });
  return Status::OK();
}

Status IngestPipeline::WaitCompaction() {
  std::thread done;
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    done = std::move(compaction_thread_);
  }
  if (done.joinable()) done.join();
  std::lock_guard<std::mutex> lock(compaction_mu_);
  return compaction_result_;
}

Status IngestPipeline::CompactionBody() {
  Lane& lane = *lanes_[0];
  FileSystem* fs = FsOrDefault(options_.wal.fs);
  const std::string old_path = OldWalPathFor(lane.path);

  // 1. Rotate FIRST, so nothing new lands in the frozen log.
  // (Snapshot-first would leave post-snapshot records stranded in the
  // rotated log.)
  Status st = lane.commit->Rotate(old_path);
  if (!st.ok()) return st;

  // 2. Drain the commit→apply windows. Rotation froze the log in LOG
  // order, but a writer can already hold an acknowledgement against the
  // frozen log without having mutated the tree: snapshotting now would
  // miss that mutation, and step 5 would delete its only durable copy.
  // After the drain every .wal.old record has been applied, so the
  // snapshot (and the image built from it) strictly absorbs the frozen
  // log and retiring it can never lose an acknowledged write. Windows
  // opened after the rotation commit to the FRESH log and are safe on
  // either side of the snapshot: in `occupied` if applied before it,
  // else in the delta and replayable from the fresh log.
  DrainWindows(&lane);

  // 3. Snapshot the live state under a brief exclusive hold and open the
  // delta side-track: mutations applied while we build are recorded and
  // re-applied to the fresh tree at swap.
  TreeConfig config;
  std::vector<uint64_t> occupied;
  std::shared_ptr<const HashFamily> family;
  bool counting = false;
  {
    std::unique_lock<std::shared_mutex> lock = LockExclusive(&lane);
    config = lane.tree->config();
    occupied = lane.tree->occupied();
    family = lane.tree->family_ptr();
    counting = lane.tree->counting_leaves();
    lane.compacting = true;
    lane.delta.clear();
  }
  auto abandon = [&](Status s) {
    std::unique_lock<std::shared_mutex> lock = LockExclusive(&lane);
    lane.compacting = false;
    lane.delta.clear();
    // The old tree stays live and on-disk state stays complete: the new
    // image (if written) plus the live .wal replay to the current state.
    return s;
  };

  // 4. Build + save with no lane locks held — ingest and queries proceed.
  auto fresh = BloomSampleTree::BuildPruned(config, std::move(occupied),
                                            family);
  if (!fresh.ok()) return abandon(fresh.status());
  st = SaveTreeToFile(fresh.value(), lane.path, options_.save);
  if (!st.ok()) return abandon(st);

  // 5. The image is durable (SaveTreeToFile fences) and is a superset of
  // .wal.old (step 2 made that true in apply order) — retire the frozen
  // log.
  st = fs->RemoveFile(old_path);
  if (st.ok()) st = fs->SyncDirOf(old_path);
  if (!st.ok()) return abandon(st);

  // 6. Swap under the exclusive lock: bring the fresh tree up to date
  // with the delta, install it, and let the old tree retire when the last
  // ReadGuard's refcount drops.
  {
    std::unique_lock<std::shared_mutex> lock = LockExclusive(&lane);
    BloomSampleTree next = std::move(fresh).value();
    if (counting || lane.tree->counting_leaves()) {
      st = next.EnableCountingLeaves();
      if (!st.ok()) {
        lane.compacting = false;
        lane.delta.clear();
        return st;
      }
    }
    for (const WalMutation& mut : lane.delta) {
      const Status applied = mut.op == WalOp::kRemove ? next.Remove(mut.id)
                                                      : next.Insert(mut.id);
      if (!applied.ok()) {
        lane.compacting = false;
        lane.delta.clear();
        return applied;
      }
    }
    auto installed =
        std::make_shared<BloomSampleTree>(std::move(next));
    lane.owned = installed;
    lane.tree = installed.get();
    lane.compacting = false;
    lane.delta.clear();
  }
  return Status::OK();
}

Status IngestPipeline::Close() {
  if (closed_.exchange(true)) return Status::OK();
  Status first;
  {
    std::lock_guard<std::mutex> lock(supervisor_mu_);
    stop_supervisor_ = true;
  }
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) supervisor_.join();
  for (auto& lane : lanes_) lane->queue->Close();
  for (auto& lane : lanes_) {
    if (lane->writer.joinable()) lane->writer.join();
  }
  std::thread compaction;
  {
    std::lock_guard<std::mutex> lock(compaction_mu_);
    compaction = std::move(compaction_thread_);
  }
  if (compaction.joinable()) {
    compaction.join();
    std::lock_guard<std::mutex> lock(compaction_mu_);
    if (first.ok()) first = compaction_result_;
  }
  for (auto& lane : lanes_) {
    if (!lane->commit->read_only()) {
      const Status st = lane->commit->Fence();
      if (first.ok() && !st.ok()) first = st;
    }
    WalWriter* wal = lane->commit->wal();
    if (wal != nullptr) {
      const Status st = wal->Close();
      if (first.ok() && !st.ok()) first = st;
    }
  }
  return first;
}

}  // namespace bloomsample
