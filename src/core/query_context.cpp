#include "src/core/query_context.h"

namespace bloomsample {

QueryContext::QueryContext(const BloomSampleTree& tree,
                           const BloomFilter& query, IntersectKernel kernel,
                           bool cache_estimates)
    : tree_(&tree), view_(query, kernel) {
  BSR_CHECK(query.family_ptr() == tree.family_ptr(),
            "query filter does not share the tree's hash family");
  const size_t nodes = tree.node_count();
  if (!cache_estimates || nodes == 0) return;
  t_and_ = std::make_unique<std::atomic<uint64_t>[]>(nodes);
  for (size_t i = 0; i < nodes; ++i) {
    t_and_[i].store(kUnknown, std::memory_order_relaxed);
  }
  // LeafEntry slots exist for every node id so lookups stay a flat index;
  // only leaves are ever filled.
  leaves_ = std::make_unique<LeafEntry[]>(nodes);
}

}  // namespace bloomsample
