// Online integrity scrubber: the self-healing loop over live snapshots.
//
// Checksums only help if something reads them. A snapshot that loads once
// and then serves queries for weeks from mmap'ed pages can rot on disk
// silently: a lazily-mapped corrupt page either SIGBUSes a random future
// query or — quieter and worse — skews every estimate drawn through it.
// The scrubber closes that window: a background thread walks each live
// tree's snapshot file chunk-by-chunk (64 KiB, the unit the v2 format
// digests — see SaveOptions::chunk_checksums), preading the FILE rather
// than touching any mapping, so a shrunk or rotten file is detected by a
// short read or a digest mismatch, never by a fault.
//
// Pacing: a token-bucket rate limit (bytes/sec) spreads the walk out so
// scrubbing is invisible in sampler tail latency — bench/micro_scrub.cpp
// measures p50/p99 with the scrubber off, paced, and unthrottled.
//
// Self-healing ladder on a confirmed-bad chunk:
//   1. RE-CHECK on a fresh open — a background compaction may have
//      swapped the file mid-walk; metadata and slab from two different
//      images look exactly like corruption and must not trigger repair.
//   2. READ-REPAIR (single-tree pipelines, ScrubOptions::repair): trigger
//      the pipeline's background compaction. BuildPruned re-hashes every
//      id from the occupied set — it never reads the corrupt slab — and
//      the refcount swap installs the fresh image under live readers, so
//      the repaired tree is bit-identical to one that never corrupted.
//   3. QUARANTINE (repair failed, disabled, or unsupported): durably mark
//      `<path>.quarantine` via IngestPipeline::Quarantine — the lane's
//      mutations fail fast with kQuarantined, the next open refuses the
//      image (CLI exit 7), and forest siblings keep serving.
#ifndef BLOOMSAMPLE_CORE_SCRUBBER_H_
#define BLOOMSAMPLE_CORE_SCRUBBER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "src/core/ingest_pipeline.h"
#include "src/util/file_system.h"
#include "src/util/status.h"

namespace bloomsample {

struct ScrubOptions {
  /// Token-bucket budget for slab reads; 0 = unthrottled. The bucket
  /// holds at most one second of budget, so an idle scrubber cannot save
  /// up a burst that blows the latency it exists to protect.
  uint64_t rate_limit_bytes_per_sec = 0;
  /// Attempt read-repair (compaction) before quarantining. Off = detect
  /// and quarantine only.
  bool repair = true;
  /// Sleep between full passes over every lane.
  std::chrono::milliseconds rescan_interval{1000};
  /// File system the scrub reads through (pread; injectable) and the
  /// quarantine marker writes through; nullptr = FileSystem::Default().
  FileSystem* fs = nullptr;
};

struct ScrubStats {
  uint64_t passes = 0;          ///< completed full passes over all lanes
  uint64_t chunks_scanned = 0;
  uint64_t bytes_scanned = 0;
  uint64_t corrupt_chunks = 0;  ///< confirmed on a fresh re-check
  uint64_t repairs = 0;         ///< corruptions healed by compaction
  uint64_t quarantines = 0;     ///< lanes taken out of service
};

/// What one offline pass over a single file found.
struct ScrubFileReport {
  uint64_t chunks_scanned = 0;
  uint64_t bytes_scanned = 0;
  bool corruption_found = false;
  /// First mismatching chunk (UINT64_MAX when the failure was not a
  /// specific chunk — e.g. metadata digest or truncation).
  uint64_t first_bad_chunk = ~0ull;
};

/// One paced verification pass over `path` (no repair, no quarantine
/// marker writes — pure detection; `bsr verify` composes this with the
/// exit-code mapping). OK on a clean file; kInvalidArgument on a digest
/// mismatch; kOutOfRange on truncation; kQuarantined when a marker
/// already exists. Files without checksums pass clean.
Status ScrubSnapshotFileOnce(const std::string& path,
                             const ScrubOptions& options,
                             ScrubFileReport* report = nullptr);

/// The background scrubber over a live IngestPipeline. Start() spawns the
/// thread; Stop()/destructor joins it. Thread-safe stats().
class Scrubber {
 public:
  /// `pipeline` must outlive the scrubber and be the pipeline actually
  /// serving the files (repair goes through its compaction + swap).
  Scrubber(IngestPipeline* pipeline, ScrubOptions options);
  ~Scrubber();
  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  void Start();
  void Stop();

  /// One synchronous pass over every lane (detect → repair → quarantine),
  /// without the background thread — deterministic tests drive this.
  Status RunPass();

  ScrubStats stats() const;

 private:
  Status ScrubLane(uint32_t lane);
  /// The detect step: paced chunk walk of the lane's file. Sets
  /// `*confirmed` only after the fresh-open re-check agrees.
  Status DetectLane(uint32_t lane, bool* confirmed);

  IngestPipeline* const pipeline_;
  const ScrubOptions options_;
  FileSystem* const fs_;

  mutable std::mutex stats_mu_;
  ScrubStats stats_;

  std::thread thread_;
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::atomic<bool> started_{false};
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_SCRUBBER_H_
