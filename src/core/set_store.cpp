#include "src/core/set_store.h"

#include <algorithm>

namespace bloomsample {

Result<BloomSetStore> BloomSetStore::CreateImpl(uint64_t namespace_size,
                                                std::vector<uint64_t> occupied,
                                                bool pruned,
                                                const Options& options) {
  CostModel model;
  const CostModel* model_ptr = nullptr;
  Result<TreeConfig> config = MakeConfigForAccuracy(
      options.accuracy, options.expected_set_size, options.k, namespace_size,
      options.hash_kind, options.seed, nullptr);
  if (!config.ok()) return config.status();
  if (options.measure_costs) {
    model = MeasureCostModel(options.hash_kind, config.value().m, options.k,
                             options.seed);
    model_ptr = &model;
    config = MakeConfigForAccuracy(options.accuracy, options.expected_set_size,
                                   options.k, namespace_size,
                                   options.hash_kind, options.seed, model_ptr);
    if (!config.ok()) return config.status();
  }
  TreeConfig tree_config = config.value();
  tree_config.intersection_threshold = options.intersection_threshold;

  Result<BloomSampleTree> tree =
      pruned ? BloomSampleTree::BuildPruned(tree_config, std::move(occupied))
             : BloomSampleTree::BuildComplete(tree_config);
  if (!tree.ok()) return tree.status();
  return BloomSetStore(std::move(tree).value());
}

Result<BloomSetStore> BloomSetStore::Create(uint64_t namespace_size,
                                            const Options& options) {
  return CreateImpl(namespace_size, {}, /*pruned=*/false, options);
}

Result<BloomSetStore> BloomSetStore::CreateWithOccupied(
    uint64_t namespace_size, std::vector<uint64_t> occupied,
    const Options& options) {
  return CreateImpl(namespace_size, std::move(occupied), /*pruned=*/true,
                    options);
}

Status BloomSetStore::AddSet(const std::string& name,
                             const std::vector<uint64_t>& elements) {
  const uint64_t namespace_size = tree_->config().namespace_size;
  for (uint64_t x : elements) {
    if (x >= namespace_size) {
      return Status::OutOfRange("set element beyond namespace");
    }
    if (tree_->pruned() &&
        !std::binary_search(tree_->occupied().begin(),
                            tree_->occupied().end(), x)) {
      return Status::InvalidArgument(
          "set element is not an occupied id (call AddOccupied first)");
    }
  }
  BloomFilter filter = tree_->MakeQueryFilter(elements);
  sets_.insert_or_assign(name, std::move(filter));
  return Status::OK();
}

Status BloomSetStore::AddToSet(const std::string& name, uint64_t element) {
  auto it = sets_.find(name);
  if (it == sets_.end()) return Status::NotFound("no set named '" + name + "'");
  if (element >= tree_->config().namespace_size) {
    return Status::OutOfRange("set element beyond namespace");
  }
  if (tree_->pruned() &&
      !std::binary_search(tree_->occupied().begin(), tree_->occupied().end(),
                          element)) {
    return Status::InvalidArgument(
        "set element is not an occupied id (call AddOccupied first)");
  }
  it->second.Insert(element);
  return Status::OK();
}

Status BloomSetStore::AddOccupied(uint64_t id) { return tree_->Insert(id); }

const BloomFilter* BloomSetStore::GetFilter(const std::string& name) const {
  const auto it = sets_.find(name);
  return it == sets_.end() ? nullptr : &it->second;
}

std::vector<std::string> BloomSetStore::SetNames() const {
  std::vector<std::string> names;
  names.reserve(sets_.size());
  for (const auto& [name, filter] : sets_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

Result<uint64_t> BloomSetStore::Sample(const std::string& name, Rng* rng,
                                       OpCounters* counters) const {
  const BloomFilter* filter = GetFilter(name);
  if (filter == nullptr) return Status::NotFound("no set named '" + name + "'");
  const auto sample = sampler_.Sample(*filter, rng, counters);
  if (!sample.has_value()) {
    return Status::NotFound("set '" + name + "' produced no sample");
  }
  return *sample;
}

Result<std::vector<uint64_t>> BloomSetStore::SampleMany(
    const std::string& name, size_t r, Rng* rng, OpCounters* counters) const {
  const BloomFilter* filter = GetFilter(name);
  if (filter == nullptr) return Status::NotFound("no set named '" + name + "'");
  return sampler_.SampleMany(*filter, r, rng, /*with_replacement=*/false,
                             counters);
}

Result<std::vector<uint64_t>> BloomSetStore::Reconstruct(
    const std::string& name, OpCounters* counters,
    BstReconstructor::PruningMode mode) const {
  const BloomFilter* filter = GetFilter(name);
  if (filter == nullptr) return Status::NotFound("no set named '" + name + "'");
  return reconstructor_.Reconstruct(*filter, counters, mode);
}

namespace {

Result<BloomFilter> ComposeImpl(
    const BloomSetStore& store, const std::vector<std::string>& names,
    void (BloomFilter::*combine)(const BloomFilter&)) {
  if (names.empty()) {
    return Status::InvalidArgument("composition needs at least one set");
  }
  const BloomFilter* first = store.GetFilter(names.front());
  if (first == nullptr) {
    return Status::NotFound("no set named '" + names.front() + "'");
  }
  BloomFilter out = *first;
  for (size_t i = 1; i < names.size(); ++i) {
    const BloomFilter* next = store.GetFilter(names[i]);
    if (next == nullptr) {
      return Status::NotFound("no set named '" + names[i] + "'");
    }
    (out.*combine)(*next);
  }
  return out;
}

}  // namespace

Result<BloomFilter> BloomSetStore::ComposeUnion(
    const std::vector<std::string>& names) const {
  return ComposeImpl(*this, names, &BloomFilter::UnionWith);
}

Result<BloomFilter> BloomSetStore::ComposeIntersection(
    const std::vector<std::string>& names) const {
  return ComposeImpl(*this, names, &BloomFilter::IntersectWith);
}

Result<uint64_t> BloomSetStore::SampleFilter(const BloomFilter& query,
                                             Rng* rng,
                                             OpCounters* counters) const {
  if (query.family_ptr() != tree_->family_ptr()) {
    return Status::InvalidArgument(
        "query filter does not share this store's hash family");
  }
  const auto sample = sampler_.Sample(query, rng, counters);
  if (!sample.has_value()) {
    return Status::NotFound("filter produced no sample");
  }
  return *sample;
}

Result<std::vector<uint64_t>> BloomSetStore::ReconstructFilter(
    const BloomFilter& query, OpCounters* counters,
    BstReconstructor::PruningMode mode) const {
  if (query.family_ptr() != tree_->family_ptr()) {
    return Status::InvalidArgument(
        "query filter does not share this store's hash family");
  }
  return reconstructor_.Reconstruct(query, counters, mode);
}

size_t BloomSetStore::SetMemoryBytes() const {
  size_t total = 0;
  for (const auto& [name, filter] : sets_) total += filter.MemoryBytes();
  return total;
}

}  // namespace bloomsample
