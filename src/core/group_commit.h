// Leader–follower group commit over a WalWriter — the concurrency layer
// between many committing threads and the single-writer log.
//
// Under WalSyncPolicy::kEveryRecord a naive concurrent design pays one
// fsync per insert; at N writer threads that is N fsyncs for work one
// fence could cover. Group commit batches them: committers enqueue their
// mutations and the first one in line becomes the LEADER — it drains the
// whole queue, appends every batch through the (non-thread-safe)
// WalWriter, issues ONE policy fence covering all of them, and then wakes
// the followers with their results. Committers that arrive while a leader
// is flushing simply form the next group, so the fsync rate is decoupled
// from the commit rate — the group-commit win bench/micro_ingest.cpp
// measures.
//
// Acknowledgement rule (the crash-matrix invariant): under kEveryRecord a
// Commit() returns OK only after a successful fsync covers its records,
// so "acknowledged" always equals "durable" and recovery yields exactly
// base ∪ acknowledged. Under kInterval/kNone acknowledgement means
// appended (durability is the policy's bounded-loss window), and recovery
// yields a dense prefix: base ⊆ recovered ⊆ base ∪ acknowledged.
//
// Failure handling: a failed append or fence sends the leader into a
// bounded retry loop — exponential backoff, then WalWriter::Repair()
// (truncate to the durable prefix, reopen, re-append, re-fence; never
// re-fsync a poisoned descriptor — fsyncgate). If the retry budget runs
// out the whole object LATCHES READ-ONLY: the current group's unfenced
// batches and every later Commit() fail with Status::kReadOnly. Batches
// whose records a successful fence did cover before the latch are still
// acknowledged OK — exactly the set a post-crash recovery replays.
#ifndef BLOOMSAMPLE_CORE_GROUP_COMMIT_H_
#define BLOOMSAMPLE_CORE_GROUP_COMMIT_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/core/wal.h"
#include "src/util/status.h"

namespace bloomsample {

struct GroupCommitOptions {
  /// Repair attempts per commit round before latching read-only. Covers
  /// transient ENOSPC/EIO (space freed, controller hiccup); persistent
  /// failures exhaust the budget quickly and latch.
  uint64_t max_repair_attempts = 4;
  /// Backoff before the first repair attempt; doubles per attempt.
  std::chrono::microseconds backoff_base{500};
};

class GroupCommitWal {
 public:
  /// Takes ownership of an opened writer (fresh or post-replay).
  explicit GroupCommitWal(std::unique_ptr<WalWriter> wal,
                          GroupCommitOptions options = GroupCommitOptions());

  /// Durably (per policy) logs `muts` in order as one atomic batch.
  /// Thread-safe; blocks until the batch's acknowledgement rule (see file
  /// comment) is met or the writer latches. Empty batch = no-op.
  Status Commit(const std::vector<WalMutation>& muts);

  /// Single-mutation convenience.
  Status CommitOne(WalOp op, uint64_t id);

  /// Explicit durability fence regardless of policy, through the same
  /// leader discipline (safe concurrent with Commit calls).
  Status Fence();

  /// Rotates the log out for background compaction: waits for the active
  /// leader (if any) to finish, fences and closes the current file,
  /// renames it to `rotated_path` (fenced with a directory sync), and
  /// opens a fresh log at the original path — new header, sequence
  /// numbers restarting at 1. Queued committers simply land on the fresh
  /// log when the rotation releases them; their mutations belong to the
  /// post-rotation epoch by definition. Any failure latches read-only
  /// (the log tail's location would otherwise be ambiguous).
  Status Rotate(const std::string& rotated_path);

  /// True once latched; every later Commit fails fast with kReadOnly.
  bool read_only() const;
  /// OK when healthy, else the latch status (kReadOnly with the original
  /// failure in the message).
  Status read_only_status() const;
  /// OK when healthy, else the ORIGINAL failure that caused the latch —
  /// code and sys_errno() preserved, not rewrapped as kReadOnly. The lane
  /// recovery supervisor classifies transient-vs-permanent from this.
  Status latch_cause() const;

  /// Attempts to clear a read-only latch: waits for any active leader,
  /// repairs the writer on a fresh descriptor (WalWriter::Repair — never
  /// re-fsync a poisoned fd), then proves the log is writable again by
  /// appending and fsyncing one WalOp::kNoop probe record. Only on a
  /// fully round-tripped probe does the latch clear; queued committers
  /// then proceed normally. Fails with the probe's error otherwise (the
  /// latch stays, sys_errno() tells the supervisor why). No-op when not
  /// latched.
  Status TryRecover();

  /// Latches successfully cleared by TryRecover over this object's life.
  uint64_t recover_count() const;

  /// Commit() calls that returned OK / leader rounds executed — the
  /// batching factor is commit_count()/group_count().
  uint64_t commit_count() const;
  uint64_t group_count() const;
  /// Successful fsyncs issued by the underlying writer.
  uint64_t fsync_count() const;

  /// The underlying writer — for rotation/reset/close only. Callers must
  /// have quiesced every committer first; the handle is unsynchronized.
  WalWriter* wal() const { return wal_.get(); }
  std::unique_ptr<WalWriter> DetachWal() { return std::move(wal_); }

  /// Installs a freshly opened writer and clears any read-only latch —
  /// the hot-snapshot-swap hook: after a reload picked up an externally
  /// rewritten image + log, the old writer's descriptor and sequence
  /// numbers describe a file that no longer exists. Callers must have
  /// quiesced every committer (IngestPipeline holds the commit-window
  /// barrier exclusively); waits out an active leader, then swaps under
  /// the group mutex so read_only()/stats readers never see a torn state.
  void ReplaceWal(std::unique_ptr<WalWriter> wal);

 private:
  struct Batch {
    const std::vector<WalMutation>* muts = nullptr;
    bool force_sync = false;
    size_t appended = 0;  ///< leader progress, survives repair retries
    bool fenced = false;  ///< covered by a successful fsync
    bool done = false;
    Status result;
  };

  Status CommitInternal(const std::vector<WalMutation>* muts,
                        bool force_sync);
  /// Leader context, mu_ NOT held: appends every batch, fences per policy,
  /// repairs with backoff on failure. Returns the round's overall status.
  Status RunGroup(std::vector<Batch*>* group);
  /// Backoff + Repair(); on success marks fully appended batches fenced.
  /// Exhausted budget → error (caller latches).
  Status RepairWithBackoff(uint64_t* attempts, std::vector<Batch*>* group);

  std::unique_ptr<WalWriter> wal_;
  const GroupCommitOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Batch*> queue_;
  bool leader_active_ = false;
  Status latch_;        ///< OK while healthy; kReadOnly once latched
  Status latch_cause_;  ///< the original failure behind latch_ (errno intact)
  bool rotation_latched_ = false;  ///< latch from Rotate — unrecoverable
  /// Trailing NACKed records still in the writer's unsynced tail, counted
  /// at latch time; TryRecover drops them before repairing.
  uint64_t pending_discard_records_ = 0;
  uint64_t commit_count_ = 0;
  uint64_t group_count_ = 0;
  uint64_t recover_count_ = 0;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_GROUP_COMMIT_H_
