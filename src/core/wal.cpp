#include "src/core/wal.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "src/util/xxhash64.h"

namespace bloomsample {

namespace {

constexpr uint32_t kWalTag = 0x57545342;  // 'BSTW' little-endian
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 32;
constexpr uint32_t kWalPayloadBytes = 20;  // seq u64 | op u32 | id u64
constexpr size_t kWalRecordBytes = 4 + kWalPayloadBytes + 8;

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

void EncodeHeader(uint64_t fingerprint, uint8_t out[kWalHeaderBytes]) {
  PutU32(out, kWalTag);
  PutU32(out + 4, kWalVersion);
  PutU64(out + 8, fingerprint);
  PutU64(out + 16, 0);  // reserved
  PutU64(out + 24, XxHash64::Hash(out, 24));
}

void EncodeRecord(const WalRecord& rec, uint8_t out[kWalRecordBytes]) {
  PutU32(out, kWalPayloadBytes);
  uint8_t* payload = out + 4;
  PutU64(payload, rec.seq);
  PutU32(payload + 8, static_cast<uint32_t>(rec.op));
  PutU64(payload + 12, rec.id);
  PutU64(out + 4 + kWalPayloadBytes, XxHash64::Hash(payload, kWalPayloadBytes));
}

/// True when `bytes` starts with a structurally valid header carrying
/// `fingerprint`. `*fingerprint_out` reports the stored fingerprint when
/// the header is otherwise valid (for the mismatch diagnostic).
bool HeaderValid(const uint8_t* bytes, size_t len, uint64_t* fingerprint_out) {
  if (len < kWalHeaderBytes) return false;
  if (GetU32(bytes) != kWalTag || GetU32(bytes + 4) != kWalVersion) {
    return false;
  }
  if (GetU64(bytes + 24) != XxHash64::Hash(bytes, 24)) return false;
  *fingerprint_out = GetU64(bytes + 8);
  return true;
}

}  // namespace

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kEveryRecord:
      return "every";
    case WalSyncPolicy::kInterval:
      return "interval";
    case WalSyncPolicy::kNone:
      return "none";
  }
  return "unknown";
}

std::string WalPathFor(const std::string& snapshot_path) {
  return snapshot_path + ".wal";
}

std::string OldWalPathFor(const std::string& snapshot_path) {
  return snapshot_path + ".wal.old";
}

uint64_t WalConfigFingerprint(const TreeConfig& config) {
  uint8_t buf[44];
  PutU64(buf, config.namespace_size);
  PutU64(buf + 8, config.m);
  PutU64(buf + 16, config.k);
  PutU32(buf + 24, static_cast<uint32_t>(config.hash_kind));
  PutU64(buf + 28, config.seed);
  PutU32(buf + 36, config.depth);
  PutU32(buf + 40, 0);  // pad
  return XxHash64::Hash(buf, sizeof(buf));
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& path,
                                                   uint64_t fingerprint,
                                                   uint64_t next_seq,
                                                   const WalOptions& options) {
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();

  bool fresh = true;
  if (fs->FileExists(path)) {
    // Validate the existing header before appending behind it. Replay
    // normally runs first and amputates damage, but an Open without
    // replay must not append onto garbage.
    std::ifstream in(path, std::ios::binary);
    uint8_t header[kWalHeaderBytes];
    in.read(reinterpret_cast<char*>(header), kWalHeaderBytes);
    if (in.gcount() == static_cast<std::streamsize>(kWalHeaderBytes)) {
      uint64_t stored = 0;
      if (!HeaderValid(header, kWalHeaderBytes, &stored)) {
        return Status::InvalidArgument("wal '" + path +
                                       "': corrupt header (run replay first)");
      }
      if (stored != fingerprint) {
        return Status::InvalidArgument(
            "wal '" + path + "': config fingerprint mismatch — this log "
            "belongs to a tree with different parameters");
      }
      fresh = false;
    }
    // Shorter than a header: a creation that died mid-write; rebuild it.
  }

  WalOptions opts = options;
  opts.fs = fs;
  if (fresh) {
    auto created = fs->NewWritableFile(path, WriteMode::kTruncate);
    if (!created.ok()) return created.status();
    uint8_t header[kWalHeaderBytes];
    EncodeHeader(fingerprint, header);
    Status st = created.value()->Append(header, kWalHeaderBytes);
    if (st.ok()) st = created.value()->Sync();
    if (st.ok()) st = created.value()->Close();
    if (st.ok()) st = fs->SyncDirOf(path);
    if (!st.ok()) return st;
    // Fall through to the append-mode open below: a truncate-mode
    // descriptor tracks its own offset, so keeping it would leave a
    // zero-filled hole after Reset() shrinks the file under it. An
    // O_APPEND descriptor always lands at the inode's current end.
  }

  // Whatever the file holds at open time — header plus replayed records —
  // is the durable base Repair() may truncate back to.
  uint64_t base_bytes = kWalHeaderBytes;
  auto size = fs->FileSize(path);
  if (size.ok()) base_bytes = size.value();

  auto file = fs->NewWritableFile(path, WriteMode::kAppend);
  if (!file.ok()) return file.status();
  return std::unique_ptr<WalWriter>(new WalWriter(
      path, std::move(file).value(), opts, fingerprint, next_seq,
      base_bytes));
}

Status WalWriter::AppendNoSync(WalOp op, uint64_t id) {
  if (dead_) {
    return Status::Internal("wal '" + path_ +
                            "': writer is dead after an earlier append/fsync "
                            "failure; Repair() or reopen the tree");
  }
  WalRecord rec;
  rec.seq = next_seq_;
  rec.op = op;
  rec.id = id;
  uint8_t buf[kWalRecordBytes];
  EncodeRecord(rec, buf);
  Status st = file_->Append(buf, kWalRecordBytes);
  if (!st.ok()) {
    // The tail may be torn mid-record; no further appends behind it. The
    // failed record is NOT buffered (its seq was not consumed), so Repair
    // restores the log to exactly the pre-failure state.
    dead_ = true;
    return st;
  }
  unsynced_tail_.append(reinterpret_cast<const char*>(buf), kWalRecordBytes);
  ++next_seq_;
  ++appended_;
  ++unsynced_;
  return Status::OK();
}

Status WalWriter::MaybeSync() {
  switch (options_.policy) {
    case WalSyncPolicy::kEveryRecord:
      return Sync();
    case WalSyncPolicy::kInterval:
      if (unsynced_ >= options_.sync_interval) return Sync();
      return Status::OK();
    case WalSyncPolicy::kNone:
      return Status::OK();
  }
  return Status::OK();
}

Status WalWriter::Append(WalOp op, uint64_t id) {
  const Status st = AppendNoSync(op, id);
  if (!st.ok()) return st;
  return MaybeSync();
}

Status WalWriter::Sync() {
  if (dead_) return Status::Internal("wal '" + path_ + "': writer is dead");
  const Status st = file_->Sync();
  if (!st.ok()) {
    // fsyncgate: the kernel may have dropped the dirty pages while
    // reporting the error. Latch dead; Repair() re-appends the buffered
    // tail instead of re-fsyncing this descriptor.
    dead_ = true;
    return st;
  }
  unsynced_ = 0;
  durable_bytes_ += unsynced_tail_.size();
  unsynced_tail_.clear();
  ++sync_count_;
  return Status::OK();
}

Status WalWriter::DropUnsyncedTailRecords(uint64_t n) {
  if (n == 0) return Status::OK();
  if (!dead_) {
    return Status::Internal("wal '" + path_ +
                            "': can only drop tail records from a dead "
                            "writer (they may already be durable)");
  }
  const uint64_t bytes = n * kWalRecordBytes;
  if (bytes > unsynced_tail_.size() || next_seq_ < n + 1) {
    return Status::Internal("wal '" + path_ +
                            "': drop count exceeds the unsynced tail");
  }
  unsynced_tail_.resize(unsynced_tail_.size() - bytes);
  appended_ -= n;
  next_seq_ -= n;
  if (unsynced_ >= n) unsynced_ -= n;
  return Status::OK();
}

Status WalWriter::Repair() {
  if (!dead_) return Status::OK();
  FileSystem* fs = options_.fs;
  // Drop the poisoned descriptor first; its buffered state is untrusted.
  if (file_ != nullptr) {
    (void)file_->Close();
    file_.reset();
  }
  // Cut the file back to the provably durable prefix: this removes both a
  // possibly-torn tail record and appends whose only covering fsync
  // failed (which the kernel may or may not have persisted).
  Status st = fs->Truncate(path_, durable_bytes_);
  if (!st.ok()) return st;
  auto reopened = fs->NewWritableFile(path_, WriteMode::kAppend);
  if (!reopened.ok()) return reopened.status();
  file_ = std::move(reopened).value();
  // Re-append the unsynced records byte-for-byte (same seqs) and fence.
  if (!unsynced_tail_.empty()) {
    st = file_->Append(unsynced_tail_.data(), unsynced_tail_.size());
    if (!st.ok()) return st;
  }
  st = file_->Sync();
  if (!st.ok()) return st;
  durable_bytes_ += unsynced_tail_.size();
  unsynced_tail_.clear();
  unsynced_ = 0;
  ++sync_count_;
  dead_ = false;
  return Status::OK();
}

Status WalWriter::Reset() {
  if (file_ == nullptr) {
    return Status::Internal("wal '" + path_ +
                            "': cannot reset a closed writer");
  }
  // The O_APPEND descriptor tracks the inode: after the truncate, new
  // appends land right behind the header.
  Status st = options_.fs->Truncate(path_, kWalHeaderBytes);
  if (!st.ok()) return st;
  st = file_->Sync();
  if (!st.ok()) return st;
  next_seq_ = 1;
  unsynced_ = 0;
  durable_bytes_ = kWalHeaderBytes;
  unsynced_tail_.clear();
  dead_ = false;
  return Status::OK();
}

Status WalWriter::Close() {
  // A failed Repair may have dropped the descriptor already (the file is
  // closed, just not reopenable) — Close on that writer is a no-op.
  if (file_ == nullptr) return Status::OK();
  const Status st = file_->Close();
  file_.reset();
  return st;
}

Result<WalReplayStats> ReplayWal(
    const std::string& path, uint64_t fingerprint,
    const std::function<Status(const WalRecord&)>& apply, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  WalReplayStats stats;
  if (!fs->FileExists(path)) return stats;
  stats.present = true;

  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) {
    return Status::Internal("wal '" + path + "': cannot open for replay");
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (in.gcount() != size) {
      return Status::Internal("wal '" + path + "': short read during replay");
    }
  }

  uint64_t stored_fingerprint = 0;
  if (!HeaderValid(bytes.data(), bytes.size(), &stored_fingerprint)) {
    // No intact header: nothing in this file is trustworthy. Amputate to
    // zero bytes; WalWriter::Open rebuilds the header.
    if (!bytes.empty()) {
      stats.recovered_corruption = true;
      Status st = fs->Truncate(path, 0);
      if (!st.ok()) return st;
    }
    return stats;
  }
  if (stored_fingerprint != fingerprint) {
    return Status::InvalidArgument(
        "wal '" + path + "': config fingerprint mismatch — this log belongs "
        "to a tree with different parameters");
  }

  size_t offset = kWalHeaderBytes;
  uint64_t expected_seq = 1;
  while (true) {
    if (offset + 4 > bytes.size()) break;  // torn length prefix (or EOF)
    const uint32_t len = GetU32(bytes.data() + offset);
    if (len != kWalPayloadBytes) break;  // empty/huge/garbage length
    if (offset + 4 + len + 8 > bytes.size()) break;  // torn payload/digest
    const uint8_t* payload = bytes.data() + offset + 4;
    if (GetU64(payload + len) != XxHash64::Hash(payload, len)) break;
    WalRecord rec;
    rec.seq = GetU64(payload);
    rec.op = static_cast<WalOp>(GetU32(payload + 8));
    rec.id = GetU64(payload + 12);
    if (rec.seq != expected_seq) break;  // gap or replayed-out-of-order
    if (rec.op == WalOp::kNoop) {
      // Recovery probe: mutates nothing, but counts like any record — it
      // consumed a sequence number, and records_replayed seeds the next
      // writer's seq (AttachTreeWal passes replayed + 1).
      ++expected_seq;
      ++stats.records_replayed;
      offset += 4 + len + 8;
      continue;
    }
    if (rec.op != WalOp::kInsert && rec.op != WalOp::kRemove) {
      break;  // unknown op: can't apply safely
    }
    Status st = apply(rec);
    if (!st.ok()) return st;  // tree-side failure, not log corruption
    ++expected_seq;
    ++stats.records_replayed;
    offset += 4 + len + 8;
  }
  stats.next_seq = expected_seq;

  if (offset < bytes.size()) {
    // First invalid record found at `offset`: cut the file there so the
    // next writer appends onto a clean prefix.
    stats.recovered_corruption = true;
    Status st = fs->Truncate(path, offset);
    if (!st.ok()) return st;
  }
  return stats;
}

}  // namespace bloomsample
