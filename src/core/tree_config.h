// BloomSampleTree parameterization (Section 5.4).
//
// The tree's depth is the accuracy/runtime dial: deeper trees mean smaller
// leaf scans (fewer membership queries) but more intersections on the way
// down. The paper picks the leaf capacity
//
//     M⊥ = max N⊥ such that N⊥ / log₂N⊥ ≤ icost / mcost
//
// where icost is the cost of one Bloom-filter intersection (O(m) bit ops)
// and mcost the cost of one membership query (k hashes + k probes). We
// support both a closed-form cost model (icost = m/64 word operations,
// mcost = k + 1 units — this reproduces the depth/M⊥ columns of Tables 2
// and 3) and live micro-calibration on the host machine.
#ifndef BLOOMSAMPLE_CORE_TREE_CONFIG_H_
#define BLOOMSAMPLE_CORE_TREE_CONFIG_H_

#include <cstdint>

#include "src/hash/hash_family.h"
#include "src/util/status.h"

namespace bloomsample {

/// Relative costs of the two primitive operations.
struct CostModel {
  double membership_cost = 1.0;  ///< one membership query
  /// One filter intersection + estimate, as the query path actually pays
  /// it: the measured model times the kernel a typical query's
  /// BloomQueryView dispatches to (sparse for genuinely sparse queries),
  /// the analytic model keeps the classic m/64-word dense figure.
  double intersection_cost = 1.0;
  /// The dense O(m/64)-word kernel's cost, kept alongside so callers can
  /// see how much the sparse dispatch changes the ratio.
  double dense_intersection_cost = 1.0;

  double Ratio() const { return intersection_cost / membership_cost; }
};

/// Closed-form model used for the paper-table reproductions: an
/// intersection touches m/64 words; a membership query costs k hash
/// evaluations plus one aggregation unit.
CostModel AnalyticCostModel(uint64_t m, uint64_t k);

/// Measures both costs on this machine with the given family (times a few
/// thousand operations of each kind). Deterministic inputs, wall-clock
/// timed; use for honest end-to-end runs, not for unit tests.
/// `typical_query_size` shapes the query filter whose intersection kernel
/// is timed: intersection_cost reflects the sparse/dense kernel a query of
/// that size actually dispatches to at this (m, k).
CostModel MeasureCostModel(HashFamilyKind kind, uint64_t m, uint64_t k,
                           uint64_t seed, uint64_t typical_query_size = 1000);

/// max N⊥ ≥ 2 with N⊥ / log₂N⊥ ≤ ratio (binary search; the left side is
/// increasing for N⊥ ≥ 3). ratio ≤ 2 degenerates to 2.
uint64_t MaxLeafCapacityForRatio(double ratio);

/// Tree depth so each leaf covers ≤ leaf_capacity names:
/// ceil(log₂(M / leaf_capacity)), at least 0.
uint32_t DepthForLeafCapacity(uint64_t namespace_size, uint64_t leaf_capacity);

/// Full parameter bundle for building a tree and its query filters.
struct TreeConfig {
  uint64_t namespace_size = 0;  ///< M
  uint64_t m = 0;               ///< bits per Bloom filter
  uint64_t k = 3;               ///< hash functions (paper default)
  HashFamilyKind hash_kind = HashFamilyKind::kSimple;
  uint64_t seed = 42;           ///< hash-family seed
  uint32_t depth = 0;           ///< levels below the root
  /// Section 5.6 estimate-threshold (in elements): estimated intersection
  /// sizes below this are treated as empty. 0 (the default) disables the
  /// heuristic, leaving only the lossless "fewer than k shared bits" test
  /// — which can never drop a true positive. Positive values trade
  /// completeness for traversal speed; bench/ablation_threshold quantifies
  /// the loss.
  double intersection_threshold = 0.0;
  /// Threads used by BuildComplete/BuildPruned: 0 = hardware concurrency,
  /// 1 = serial. Build-time knob only — it is not part of the tree's
  /// identity, is not serialized, and any value produces bit-identical
  /// trees (leaf fills and level-wise unions partition disjoint state).
  uint32_t build_threads = 0;
  /// Threads the query-side engines fan work across — BstReconstructor's
  /// frontier subtree traversals and BstSampler::SampleBatch's draw
  /// partitions: 0 = hardware concurrency, 1 = serial — the same semantics
  /// as build_threads. Like build_threads it is a runtime policy, not tree
  /// identity: it is not serialized, and every value produces identical
  /// output (subtrees are disjoint and merge in deterministic frontier
  /// order; batch draws run on counter-based per-draw RNG streams).
  uint32_t query_threads = 0;
  /// Minimum per-lane workload (in work units: leaf candidates for
  /// reconstruction, descent steps — draws x (depth+1) — for batch
  /// sampling) required before the query engines actually engage the
  /// thread pool; below it the requested fan-out runs serially, because
  /// pool dispatch would cost more than it buys. 0 disables the gate and
  /// always fans out when query_threads > 1 (tests use this to pin the
  /// parallel path). When the host has a single hardware thread the gate
  /// also declines fan-out outright — oversubscribing a CPU-bound
  /// traversal can only add scheduling overhead. Runtime policy like
  /// query_threads: not serialized, never changes output or op counts.
  uint64_t min_parallel_work = 16384;

  /// Leaf range width implied by depth: ceil(M / 2^depth).
  uint64_t LeafRangeSize() const;
  /// Node count of the complete tree: 2^(depth+1) − 1.
  uint64_t CompleteNodeCount() const { return (2ULL << depth) - 1; }

  /// Validates field ranges (M ≥ 2, m ≥ 1, 1 ≤ k ≤ 16, depth sane).
  Status Validate() const;
};

/// Builds a TreeConfig the way the paper's experiments do: size m from the
/// desired sampling accuracy for typical set size n (Sec 5.4 / Tables 2-3),
/// then choose depth from the cost model.
Result<TreeConfig> MakeConfigForAccuracy(double accuracy, uint64_t n,
                                         uint64_t k, uint64_t namespace_size,
                                         HashFamilyKind kind, uint64_t seed,
                                         const CostModel* cost_model = nullptr);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_TREE_CONFIG_H_
