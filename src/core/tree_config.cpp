#include "src/core/tree_config.h"

#include <cmath>

#include "src/bloom/bloom_filter.h"
#include "src/bloom/bloom_params.h"
#include "src/util/math_util.h"
#include "src/util/rng.h"
#include "src/util/timer.h"

namespace bloomsample {

CostModel AnalyticCostModel(uint64_t m, uint64_t k) {
  CostModel model;
  model.intersection_cost = static_cast<double>(CeilDiv(m, 64));
  model.dense_intersection_cost = model.intersection_cost;
  model.membership_cost = static_cast<double>(k) + 1.0;
  return model;
}

CostModel MeasureCostModel(HashFamilyKind kind, uint64_t m, uint64_t k,
                           uint64_t seed, uint64_t typical_query_size) {
  auto family_result = MakeHashFamily(kind, k, m, seed);
  BSR_CHECK(family_result.ok(), "MeasureCostModel: bad hash parameters");
  auto family = std::move(family_result).value();

  // Two half-full filters so membership queries take realistic branch
  // paths and intersections have realistic word contents.
  BloomFilter a(family);
  BloomFilter b(family);
  Rng rng(seed ^ 0xc057c057c057c057ULL);
  const uint64_t fill = m / (2 * k) + 1;
  for (uint64_t i = 0; i < fill; ++i) {
    a.Insert(rng.Next());
    b.Insert(rng.Next());
  }

  constexpr int kMembershipReps = 20000;
  constexpr int kIntersectionReps = 2000;

  volatile uint64_t sink = 0;  // defeat dead-code elimination
  Timer timer;
  for (int i = 0; i < kMembershipReps; ++i) {
    sink = sink + a.Contains(static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
  }
  const double membership_s = timer.ElapsedSeconds();

  timer.Restart();
  for (int i = 0; i < kIntersectionReps; ++i) {
    sink = sink + a.AndPopcount(b);
  }
  const double intersection_s = timer.ElapsedSeconds();

  // Time the intersection the query path actually performs: a node filter
  // against a BloomQueryView of a typical query, which dispatches to the
  // sparse O(nnz-words) kernel whenever the query is genuinely sparse at
  // this (m, k) and degrades to the dense kernel when it is not.
  BloomFilter query(family);
  if (typical_query_size == 0) typical_query_size = 1;
  for (uint64_t i = 0; i < typical_query_size; ++i) query.Insert(rng.Next());
  const BloomQueryView view(query);
  timer.Restart();
  for (int i = 0; i < kIntersectionReps; ++i) {
    sink = sink + a.AndPopcount(view);
  }
  const double query_intersection_s = timer.ElapsedSeconds();
  (void)sink;

  CostModel model;
  model.membership_cost = membership_s / kMembershipReps;
  model.intersection_cost = query_intersection_s / kIntersectionReps;
  model.dense_intersection_cost = intersection_s / kIntersectionReps;
  // Guard against timer granularity zeros on very small m.
  if (model.membership_cost <= 0) model.membership_cost = 1e-9;
  if (model.intersection_cost <= 0) model.intersection_cost = 1e-9;
  if (model.dense_intersection_cost <= 0) model.dense_intersection_cost = 1e-9;
  return model;
}

uint64_t MaxLeafCapacityForRatio(double ratio) {
  // f(N) = N / log2(N) is increasing for N >= 3; f(2) = 2, f(3) ~ 1.89 —
  // start the search at 4 and treat <= 2 ratios as the minimum capacity.
  if (!(ratio > 2.0)) return 2;
  uint64_t lo = 2;                    // known feasible
  uint64_t hi = 1ULL << 62;           // known infeasible for any sane ratio
  const auto feasible = [ratio](uint64_t n) {
    return static_cast<double>(n) / std::log2(static_cast<double>(n)) <=
           ratio;
  };
  if (feasible(hi)) return hi;
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t DepthForLeafCapacity(uint64_t namespace_size,
                              uint64_t leaf_capacity) {
  BSR_CHECK(namespace_size > 0, "namespace must be non-empty");
  if (leaf_capacity == 0) leaf_capacity = 1;
  if (leaf_capacity >= namespace_size) return 0;
  return CeilLog2(CeilDiv(namespace_size, leaf_capacity));
}

uint64_t TreeConfig::LeafRangeSize() const {
  return CeilDiv(namespace_size, 1ULL << depth);
}

Status TreeConfig::Validate() const {
  if (namespace_size < 2) {
    return Status::InvalidArgument("namespace_size must be >= 2");
  }
  if (m == 0) return Status::InvalidArgument("m must be >= 1");
  if (k == 0 || k > BloomFilter::kMaxK) {
    return Status::InvalidArgument("k must be in [1, 16]");
  }
  if (depth >= 63) return Status::InvalidArgument("depth must be < 63");
  if ((1ULL << depth) > namespace_size) {
    return Status::InvalidArgument("depth yields more leaves than names");
  }
  if (intersection_threshold < 0) {
    return Status::InvalidArgument("intersection_threshold must be >= 0");
  }
  return Status::OK();
}

Result<TreeConfig> MakeConfigForAccuracy(double accuracy, uint64_t n,
                                         uint64_t k, uint64_t namespace_size,
                                         HashFamilyKind kind, uint64_t seed,
                                         const CostModel* cost_model) {
  Result<uint64_t> m = SolveBitsForAccuracy(accuracy, n, k, namespace_size);
  if (!m.ok()) return m.status();

  TreeConfig config;
  config.namespace_size = namespace_size;
  config.m = m.value();
  config.k = k;
  config.hash_kind = kind;
  config.seed = seed;

  const CostModel model =
      cost_model != nullptr ? *cost_model : AnalyticCostModel(config.m, k);
  const uint64_t leaf_capacity = MaxLeafCapacityForRatio(model.Ratio());
  config.depth = DepthForLeafCapacity(namespace_size, leaf_capacity);

  const Status st = config.Validate();
  if (!st.ok()) return st;
  return config;
}

}  // namespace bloomsample
