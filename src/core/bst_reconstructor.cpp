#include "src/core/bst_reconstructor.h"

#include "src/bloom/cardinality.h"

namespace bloomsample {

void BstReconstructor::ReconstructNode(int64_t id, const BloomFilter& query,
                                       uint64_t query_bits, PruningMode mode,
                                       OpCounters* counters,
                                       std::vector<uint64_t>* out) const {
  if (id == BloomSampleTree::kNoNode) return;
  CountNodeVisit(counters);

  // Lossless emptiness test (see bst_sampler.cpp): every member of
  // S ∪ S(B) inside this range forces k shared bits, so pruning below k
  // can never drop an element and kExact stays exactly DictionaryAttack.
  const BloomSampleTree::Node& node = tree_->node(id);
  CountIntersection(counters);
  const uint64_t t_and = node.filter.AndPopcount(query);
  if (t_and < node.filter.k()) return;
  if (mode == PruningMode::kThresholded) {
    const double threshold = tree_->config().intersection_threshold;
    if (threshold > 0.0) {
      const double estimate = EstimateIntersectionFromBits(
          node.set_bits, query_bits, t_and, node.filter.m(), node.filter.k());
      if (estimate < threshold) return;
    }
  }

  if (tree_->IsLeaf(id)) {
    tree_->ForEachLeafCandidate(id, [&](uint64_t x) {
      CountMembership(counters);
      if (query.Contains(x)) out->push_back(x);
    });
    return;
  }
  // Left before right keeps the output globally ascending (child ranges
  // are disjoint and ordered).
  ReconstructNode(node.left, query, query_bits, mode, counters, out);
  ReconstructNode(node.right, query, query_bits, mode, counters, out);
}

std::vector<uint64_t> BstReconstructor::Reconstruct(const BloomFilter& query,
                                                    OpCounters* counters,
                                                    PruningMode mode) const {
  BSR_CHECK(query.family_ptr() == tree_->family_ptr(),
            "query filter does not share the tree's hash family");
  std::vector<uint64_t> out;
  if (query.IsEmpty()) return out;
  ReconstructNode(tree_->root(), query, query.SetBitCount(), mode, counters,
                  &out);
  return out;
}

}  // namespace bloomsample
