#include "src/core/bst_reconstructor.h"

#include <thread>

#include "src/bloom/cardinality.h"

namespace bloomsample {

namespace {

// Resolves the query_threads knob: 0 = hardware concurrency, else itself.
size_t ResolveQueryThreads(uint32_t knob) {
  if (knob != 0) return knob;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

bool BstReconstructor::NodePasses(int64_t id, const QueryContext& ctx,
                                  PruningMode mode,
                                  OpCounters* counters) const {
  CountNodeVisit(counters);

  // Lossless emptiness test (see bst_sampler.cpp): every member of
  // S ∪ S(B) inside this range forces k shared bits, so pruning below k
  // can never drop an element and kExact stays exactly DictionaryAttack.
  const BloomSampleTree::Node& node = tree_->node(id);
  CountIntersectionKernel(counters, ctx.view().sparse(), 1,
                          ctx.view().words_touched());
  const uint64_t t_and = node.filter.AndPopcount(ctx.view());
  if (t_and < node.filter.k()) return false;
  if (mode == PruningMode::kThresholded) {
    const double threshold = tree_->config().intersection_threshold;
    if (threshold > 0.0) {
      const double estimate = EstimateIntersectionFromBits(
          node.set_bits, ctx.query_bits(), t_and, node.filter.m(),
          node.filter.k());
      if (estimate < threshold) return false;
    }
  }
  return true;
}

void BstReconstructor::TraverseSubtree(int64_t id, const QueryContext& ctx,
                                       PruningMode mode, OpCounters* counters,
                                       std::vector<uint64_t>* out) const {
  if (tree_->IsLeaf(id)) {
    tree_->ScanLeafCandidates(id, ctx.query(), counters, out);
    return;
  }
  // Left before right keeps the output globally ascending (child ranges
  // are disjoint and ordered). Prefetch both children's filter blocks up
  // front so the right child's words travel while the left subtree runs.
  const BloomSampleTree::Node& node = tree_->node(id);
  tree_->PrefetchFilter(node.left, ctx.view());
  tree_->PrefetchFilter(node.right, ctx.view());
  ReconstructNode(node.left, ctx, mode, counters, out);
  ReconstructNode(node.right, ctx, mode, counters, out);
}

void BstReconstructor::ReconstructNode(int64_t id, const QueryContext& ctx,
                                       PruningMode mode, OpCounters* counters,
                                       std::vector<uint64_t>* out) const {
  if (id == BloomSampleTree::kNoNode) return;
  if (!NodePasses(id, ctx, mode, counters)) return;
  TraverseSubtree(id, ctx, mode, counters, out);
}

std::shared_ptr<ThreadPool> BstReconstructor::AcquirePool(
    size_t threads) const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (pool_ == nullptr || pool_->thread_count() != threads) {
    // Concurrent callers holding the old pool keep it alive through their
    // shared_ptr; ThreadPool::ParallelFor is itself safe for concurrent
    // callers on one pool.
    pool_ = std::make_shared<ThreadPool>(threads);
  }
  return pool_;
}

std::vector<uint64_t> BstReconstructor::Reconstruct(const QueryContext& ctx,
                                                    OpCounters* counters,
                                                    PruningMode mode) const {
  BSR_CHECK(&ctx.tree() == tree_, "query context built for a different tree");
  std::vector<uint64_t> out;
  if (tree_->root() == BloomSampleTree::kNoNode || ctx.query_bits() == 0) {
    return out;
  }

  const size_t threads = ResolveQueryThreads(tree_->config().query_threads);

  // Phase 1 (serial): expand the top of the tree into a frontier of
  // surviving subtree roots, in left-to-right dyadic order. The expansion
  // performs exactly the node tests the recursive traversal would, so op
  // totals and output are identical for every thread count; only the
  // scheduling of the disjoint subtrees below the frontier changes.
  std::vector<int64_t> frontier;
  if (NodePasses(tree_->root(), ctx, mode, counters)) {
    frontier.push_back(tree_->root());
  }
  if (threads > 1) {
    // 4 subtrees per lane smooths imbalance between shallow and deep
    // survivors without flooding the pool with tiny tasks.
    const size_t width_target = 4 * threads;
    while (!frontier.empty() && frontier.size() < width_target) {
      bool any_internal = false;
      for (int64_t id : frontier) {
        if (!tree_->IsLeaf(id)) {
          any_internal = true;
          break;
        }
      }
      if (!any_internal) break;
      std::vector<int64_t> next;
      next.reserve(frontier.size() * 2);
      for (int64_t id : frontier) {
        if (tree_->IsLeaf(id)) {
          next.push_back(id);
          continue;
        }
        const BloomSampleTree::Node& node = tree_->node(id);
        if (node.left != BloomSampleTree::kNoNode &&
            NodePasses(node.left, ctx, mode, counters)) {
          next.push_back(node.left);
        }
        if (node.right != BloomSampleTree::kNoNode &&
            NodePasses(node.right, ctx, mode, counters)) {
          next.push_back(node.right);
        }
      }
      frontier = std::move(next);
    }
  }

  // Phase 2: traverse the disjoint frontier subtrees — in parallel when
  // the fan-out is worth it — and concatenate in frontier order, which is
  // ascending-range order.
  if (threads <= 1 || frontier.size() <= 1) {
    for (int64_t id : frontier) {
      TraverseSubtree(id, ctx, mode, counters, &out);
    }
    return out;
  }

  std::vector<std::vector<uint64_t>> parts(frontier.size());
  std::vector<OpCounters> part_counters(
      counters != nullptr ? frontier.size() : 0);
  AcquirePool(threads)->ParallelFor(
      0, frontier.size(), /*grain=*/1,
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          TraverseSubtree(frontier[static_cast<size_t>(i)], ctx, mode,
                          counters != nullptr
                              ? &part_counters[static_cast<size_t>(i)]
                              : nullptr,
                          &parts[static_cast<size_t>(i)]);
        }
      });
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (size_t i = 0; i < parts.size(); ++i) {
    out.insert(out.end(), parts[i].begin(), parts[i].end());
    if (counters != nullptr) *counters += part_counters[i];
  }
  return out;
}

std::vector<uint64_t> BstReconstructor::Reconstruct(const BloomFilter& query,
                                                    OpCounters* counters,
                                                    PruningMode mode) const {
  QueryContext ctx(*tree_, query);
  return Reconstruct(ctx, counters, mode);
}

}  // namespace bloomsample
