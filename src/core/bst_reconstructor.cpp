#include "src/core/bst_reconstructor.h"

#include "src/bloom/cardinality.h"

namespace bloomsample {

bool BstReconstructor::NodePasses(int64_t id, const QueryContext& ctx,
                                  PruningMode mode,
                                  OpCounters* counters) const {
  CountNodeVisit(counters);

  // Lossless emptiness test (see bst_sampler.cpp): every member of
  // S ∪ S(B) inside this range forces k shared bits, so pruning below k
  // can never drop an element and kExact stays exactly DictionaryAttack.
  // t∧ comes from the context's EstimateCache — one kernel per (node,
  // query) across every Reconstruct/Sample call on this context.
  const BloomSampleTree::Node& node = tree_->node(id);
  const uint64_t t_and = ctx.AndPopcount(id, counters);
  if (t_and < node.filter.k()) return false;
  if (mode == PruningMode::kThresholded) {
    const double threshold = tree_->config().intersection_threshold;
    if (threshold > 0.0) {
      const double estimate = EstimateIntersectionFromBits(
          node.set_bits, ctx.query_bits(), t_and, node.filter.m(),
          node.filter.k());
      if (estimate < threshold) return false;
    }
  }
  return true;
}

void BstReconstructor::TraverseSubtree(int64_t id, const QueryContext& ctx,
                                       PruningMode mode, OpCounters* counters,
                                       std::vector<uint64_t>* out) const {
  if (tree_->IsLeaf(id)) {
    if (ctx.caching()) {
      // Scanned once per context lifetime; repeat traversals append the
      // recorded positives with zero membership queries.
      const std::vector<uint64_t>& positives = ctx.LeafPositives(id, counters);
      out->insert(out->end(), positives.begin(), positives.end());
    } else {
      tree_->ScanLeafCandidates(id, ctx.query(), counters, out);
    }
    return;
  }
  // Left before right keeps the output globally ascending (child ranges
  // are disjoint and ordered). Prefetch both children's filter blocks up
  // front so the right child's words travel while the left subtree runs —
  // skipped when both tests will be served from the cache.
  const BloomSampleTree::Node& node = tree_->node(id);
  if (!ctx.EstimateCached(node.left) || !ctx.EstimateCached(node.right)) {
    tree_->PrefetchChildren(node, ctx.view());
  }
  ReconstructNode(node.left, ctx, mode, counters, out);
  ReconstructNode(node.right, ctx, mode, counters, out);
}

void BstReconstructor::ReconstructNode(int64_t id, const QueryContext& ctx,
                                       PruningMode mode, OpCounters* counters,
                                       std::vector<uint64_t>* out) const {
  if (id == BloomSampleTree::kNoNode) return;
  if (!NodePasses(id, ctx, mode, counters)) return;
  TraverseSubtree(id, ctx, mode, counters, out);
}

std::vector<uint64_t> BstReconstructor::Reconstruct(const QueryContext& ctx,
                                                    OpCounters* counters,
                                                    PruningMode mode) const {
  BSR_CHECK(&ctx.tree() == tree_, "query context built for a different tree");
  std::vector<uint64_t> out;
  if (tree_->root() == BloomSampleTree::kNoNode || ctx.query_bits() == 0) {
    return out;
  }

  const size_t threads = ResolveThreadCount(tree_->config().query_threads);

  // Phase 1 (serial): expand the top of the tree into a frontier of
  // surviving subtree roots, in left-to-right dyadic order. The expansion
  // performs exactly the node tests the recursive traversal would, so op
  // totals and output are identical for every thread count; only the
  // scheduling of the disjoint subtrees below the frontier changes.
  std::vector<int64_t> frontier;
  if (NodePasses(tree_->root(), ctx, mode, counters)) {
    frontier.push_back(tree_->root());
  }
  if (threads > 1) {
    // 4 subtrees per lane smooths imbalance between shallow and deep
    // survivors without flooding the pool with tiny tasks.
    const size_t width_target = 4 * threads;
    while (!frontier.empty() && frontier.size() < width_target) {
      bool any_internal = false;
      for (int64_t id : frontier) {
        if (!tree_->IsLeaf(id)) {
          any_internal = true;
          break;
        }
      }
      if (!any_internal) break;
      std::vector<int64_t> next;
      next.reserve(frontier.size() * 2);
      for (int64_t id : frontier) {
        if (tree_->IsLeaf(id)) {
          next.push_back(id);
          continue;
        }
        const BloomSampleTree::Node& node = tree_->node(id);
        if (node.left != BloomSampleTree::kNoNode &&
            NodePasses(node.left, ctx, mode, counters)) {
          next.push_back(node.left);
        }
        if (node.right != BloomSampleTree::kNoNode &&
            NodePasses(node.right, ctx, mode, counters)) {
          next.push_back(node.right);
        }
      }
      frontier = std::move(next);
    }
  }

  // Fan-out gate: the pool only pays for itself when the workload below
  // the frontier is real. The candidate count bounds the membership
  // queries the subtree scans can issue — the traversal's dominant cost —
  // so it is the work unit min_parallel_work is denominated in. A
  // single-hardware-thread host never fans out (the lanes would time-slice
  // one core); min_parallel_work = 0 forces fan-out for tests.
  bool fan_out = threads > 1 && frontier.size() > 1;
  if (fan_out && tree_->config().min_parallel_work > 0) {
    const size_t hw = ResolveThreadCount(0);
    if (hw <= 1) {
      fan_out = false;
    } else {
      uint64_t work = 0;
      for (int64_t id : frontier) work += tree_->SubtreeCandidateCount(id);
      const size_t amortizing = threads < hw ? threads : hw;
      fan_out = work >= tree_->config().min_parallel_work * amortizing;
    }
  }

  // Phase 2: traverse the disjoint frontier subtrees — in parallel when
  // the fan-out is worth it — and concatenate in frontier order, which is
  // ascending-range order.
  if (!fan_out) {
    for (int64_t id : frontier) {
      TraverseSubtree(id, ctx, mode, counters, &out);
    }
    return out;
  }

  std::vector<std::vector<uint64_t>> parts(frontier.size());
  std::vector<OpCounters> part_counters(
      counters != nullptr ? frontier.size() : 0);
  pool_.Acquire(threads)->ParallelFor(
      0, frontier.size(), /*grain=*/1,
      [&](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          TraverseSubtree(frontier[static_cast<size_t>(i)], ctx, mode,
                          counters != nullptr
                              ? &part_counters[static_cast<size_t>(i)]
                              : nullptr,
                          &parts[static_cast<size_t>(i)]);
        }
      });
  size_t total = 0;
  for (const auto& part : parts) total += part.size();
  out.reserve(total);
  for (size_t i = 0; i < parts.size(); ++i) {
    out.insert(out.end(), parts[i].begin(), parts[i].end());
    if (counters != nullptr) *counters += part_counters[i];
  }
  return out;
}

std::vector<uint64_t> BstReconstructor::Reconstruct(const BloomFilter& query,
                                                    OpCounters* counters,
                                                    PruningMode mode) const {
  // One traversal tests every node at most once, so a throwaway cache
  // could never hit — skip its allocation.
  QueryContext ctx(*tree_, query, IntersectKernel::kAuto,
                   /*cache_estimates=*/false);
  return Reconstruct(ctx, counters, mode);
}

}  // namespace bloomsample
