#include "src/core/scrubber.h"

#include <limits>
#include <utility>
#include <vector>

#include "src/core/tree_io.h"
#include "src/util/xxhash64.h"

namespace bloomsample {
namespace {

/// Token-bucket pacer over bytes. After each chunk read the scrubber
/// "pays" for the bytes; once the budget for this second is spent, Pace
/// sleeps until the bucket refills. The bucket is clamped to one second
/// of budget so an idle scrubber cannot bank a burst.
class Pacer {
 public:
  explicit Pacer(uint64_t bytes_per_sec) : rate_(bytes_per_sec) {
    if (rate_ != 0) next_free_ = std::chrono::steady_clock::now();
  }

  void Pace(uint64_t bytes) {
    if (rate_ == 0) return;
    const auto now = std::chrono::steady_clock::now();
    if (next_free_ < now - std::chrono::seconds(1)) {
      next_free_ = now - std::chrono::seconds(1);
    }
    next_free_ += std::chrono::nanoseconds(bytes * 1000000000ull / rate_);
    if (next_free_ > now) std::this_thread::sleep_for(next_free_ - now);
  }

 private:
  const uint64_t rate_;
  std::chrono::steady_clock::time_point next_free_;
};

constexpr uint64_t kNoBadChunk = std::numeric_limits<uint64_t>::max();

}  // namespace

Status ScrubSnapshotFileOnce(const std::string& path,
                             const ScrubOptions& options,
                             ScrubFileReport* report) {
  ScrubFileReport local;
  if (report == nullptr) report = &local;
  *report = ScrubFileReport{};
  FileSystem* fs =
      options.fs != nullptr ? options.fs : FileSystem::Default();

  if (IsQuarantined(path, fs)) {
    return Status::Quarantined("snapshot '" + path + "' is quarantined (" +
                               QuarantinePathFor(path) + " exists)");
  }

  auto info = ReadSnapshotChunkInfo(path, fs);
  if (!info.ok()) {
    // A v1 stream has no digests to scrub against — clean pass, same
    // contract as VerifySnapshotFile.
    if (info.status().code() == Status::Code::kUnsupported) {
      return Status::OK();
    }
    return info.status();
  }
  const SnapshotChunkInfo& ci = info.value();
  if (!ci.has_checksums || ci.slab_bytes == 0) return Status::OK();

  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();

  Pacer pacer(options.rate_limit_bytes_per_sec);
  std::vector<char> buf(static_cast<size_t>(ci.chunk_bytes));
  XxHash64 whole;
  const uint64_t chunk_count =
      (ci.slab_bytes + ci.chunk_bytes - 1) / ci.chunk_bytes;
  for (uint64_t c = 0; c < chunk_count; ++c) {
    const uint64_t offset = c * ci.chunk_bytes;
    const size_t want = static_cast<size_t>(
        ci.slab_bytes - offset < ci.chunk_bytes ? ci.slab_bytes - offset
                                                : ci.chunk_bytes);
    size_t got = 0;
    const Status st =
        file.value()->Read(ci.slab_offset + offset, want, buf.data(), &got);
    if (!st.ok()) return st;
    if (got != want) {
      report->corruption_found = true;
      report->first_bad_chunk = c;
      return Status::OutOfRange("snapshot '" + path + "' truncated mid-slab");
    }
    ++report->chunks_scanned;
    report->bytes_scanned += want;
    if (ci.has_chunk_checksums &&
        XxHash64::Hash(buf.data(), want) != ci.chunk_digests[c]) {
      report->corruption_found = true;
      report->first_bad_chunk = c;
      return Status::InvalidArgument("snapshot '" + path + "' slab chunk " +
                                     std::to_string(c) +
                                     " checksum mismatch");
    }
    whole.Update(buf.data(), want);
    pacer.Pace(want);
  }
  if (whole.Digest() != ci.slab_digest) {
    report->corruption_found = true;
    return Status::InvalidArgument("snapshot '" + path +
                                   "' filter slab checksum mismatch");
  }
  return Status::OK();
}

Scrubber::Scrubber(IngestPipeline* pipeline, ScrubOptions options)
    : pipeline_(pipeline),
      options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : FileSystem::Default()) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  if (started_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(stop_mu_);
        if (stop_) return;
      }
      RunPass();
      std::unique_lock<std::mutex> lock(stop_mu_);
      if (stop_cv_.wait_for(lock, options_.rescan_interval,
                            [this] { return stop_; })) {
        return;
      }
    }
  });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  started_.store(false, std::memory_order_release);
}

Status Scrubber::RunPass() {
  Status first_failure;
  for (uint32_t lane = 0; lane < pipeline_->lane_count(); ++lane) {
    const Status st = ScrubLane(lane);
    if (!st.ok() && first_failure.ok()) first_failure = st;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.passes;
  }
  return first_failure;
}

Status Scrubber::DetectLane(uint32_t lane, bool* confirmed) {
  *confirmed = false;
  const std::string& path = pipeline_->lane_path(lane);

  ScrubOptions paced = options_;
  paced.fs = fs_;
  ScrubFileReport report;
  Status st = ScrubSnapshotFileOnce(path, paced, &report);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.chunks_scanned += report.chunks_scanned;
    stats_.bytes_scanned += report.bytes_scanned;
  }
  if (st.ok() || st.code() == Status::Code::kQuarantined) return st;

  // Suspected corruption — but a background compaction may have renamed a
  // fresh image over the file mid-walk, making metadata from one image
  // disagree with slab bytes from another. Re-check on a fresh unpaced
  // open: only a mismatch that survives a self-consistent pass is real.
  ScrubOptions recheck = paced;
  recheck.rate_limit_bytes_per_sec = 0;
  ScrubFileReport report2;
  const Status st2 = ScrubSnapshotFileOnce(path, recheck, &report2);
  if (st2.ok()) return Status::OK();
  if (report2.corruption_found) {
    *confirmed = true;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.corrupt_chunks;
  }
  // Not corruption_found (e.g. an injected read error, or the file
  // vanished): surface the failure but do not repair on it.
  return st2;
}

Status Scrubber::ScrubLane(uint32_t lane) {
  if (pipeline_->lane_quarantined(lane)) return Status::OK();
  const std::string& path = pipeline_->lane_path(lane);

  bool confirmed = false;
  Status detect = DetectLane(lane, &confirmed);
  if (!confirmed) return detect;

  if (options_.repair) {
    // Read-repair: compaction re-materializes the image from the occupied
    // set (it never reads the corrupt slab) and refcount-swaps it in under
    // live readers. An in-flight compaction is as good as our own — wait
    // it out and trigger again so OUR post-detection rebuild runs.
    Status trig = pipeline_->TriggerCompaction();
    if (trig.code() == Status::Code::kResourceExhausted) {
      (void)pipeline_->WaitCompaction();
      trig = pipeline_->TriggerCompaction();
    }
    if (trig.ok()) {
      const Status built = pipeline_->WaitCompaction();
      if (built.ok()) {
        uint64_t bad_chunk = kNoBadChunk;
        const Status verify = VerifySnapshotFile(path, fs_, &bad_chunk);
        if (verify.ok()) {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.repairs;
          return Status::OK();
        }
      }
    }
    // kUnsupported (forest lane), trigger/build failure, or the rebuilt
    // image STILL fails verification — fall through to quarantine.
  }

  const Status q = pipeline_->Quarantine(
      lane, "scrub: " + detect.message());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.quarantines;
  }
  if (!q.ok()) return q;
  return detect;
}

ScrubStats Scrubber::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace bloomsample
