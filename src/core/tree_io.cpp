#include "src/core/tree_io.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <vector>

#include <sstream>

#include "src/bloom/bloom_io.h"
#include "src/core/wal.h"
#include "src/util/serialize.h"
#include "src/util/xxhash64.h"

#if defined(__unix__) || defined(__APPLE__)
#define BSR_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define BSR_HAVE_MMAP 0
#endif

namespace bloomsample {

namespace {
constexpr char kTreeTag[4] = {'B', 'S', 'T', 'R'};      // v1 stream
constexpr char kSnapshotTag[4] = {'B', 'S', 'T', '2'};  // v2 arena image
constexpr uint32_t kTreeVersion = 1;
constexpr uint32_t kSnapshotVersion = 2;
/// Written in NATIVE byte order (unlike the little-endian metadata), so a
/// reader whose endianness differs from the writer's sees a scrambled
/// value and rejects the file instead of mis-reading the raw slab.
constexpr uint32_t kEndianMark = 0x01020304u;
constexpr uint64_t kHeaderBytes = 144;
constexpr uint64_t kNodeEntryBytes = 48;
/// Snapshot flag bit 1: a 40-byte block of per-region XXH64 digests
/// (header, node table, block index, occupancy, slab — in that order)
/// follows the 144-byte core header, and every region offset shifts by
/// kChecksumBytes. Files without the bit (pre-checksum writers, or
/// SaveOptions::checksums = false) load unverified.
constexpr uint32_t kFlagChecksums = 0x2u;
constexpr uint64_t kChecksumBytes = 5 * sizeof(uint64_t);
/// Snapshot flag bit 2 (valid only together with kFlagChecksums): the
/// digest block grows to six entries — the sixth guards a per-chunk digest
/// table over the slab (one XXH64 per kSlabChunkBytes, last chunk short)
/// that sits between the digest block and the node table. The chunk table
/// is what the online scrubber and `bsr verify` walk: it localizes slab
/// corruption to one 64 KiB range instead of one all-or-nothing verdict.
constexpr uint32_t kFlagChunkChecksums = 0x4u;
constexpr uint64_t kChecksumBytesChunked = 6 * sizeof(uint64_t);
constexpr uint64_t kSlabChunkBytes = 64 * 1024;
/// Slab alignment in the file. A page multiple on every mainstream
/// platform, so the mmap path can map the slab at (or just below) this
/// offset, and comfortably beyond the arena's 64-byte line alignment.
constexpr uint64_t kSlabAlign = 4096;

/// Parsed v2 metadata — everything before the slab.
struct SnapshotMeta {
  TreeConfig config;
  bool pruned = false;
  NodeLayout layout = NodeLayout::kIdOrder;
  uint64_t node_count = 0;
  uint64_t words_per_block = 0;
  uint64_t stride_words = 0;
  uint64_t node_table_offset = 0;
  uint64_t block_index_offset = 0;
  uint64_t occupied_offset = 0;
  uint64_t metadata_end = 0;
  uint64_t slab_offset = 0;
  uint64_t slab_bytes = 0;
  uint64_t file_bytes = 0;
  /// Region digests (meaningful only when has_checksums): header core,
  /// node table, block index, occupancy, slab — plus, when
  /// has_chunk_checksums, a sixth over the chunk digest table.
  bool has_checksums = false;
  bool has_chunk_checksums = false;
  uint64_t checksum[6] = {0, 0, 0, 0, 0, 0};
  /// One XXH64 per kSlabChunkBytes slab chunk (empty unless flagged).
  std::vector<uint64_t> chunk_digests;

  struct NodeMeta {
    uint64_t lo = 0;
    uint64_t hi = 0;
    uint32_t level = 0;
    int64_t left = 0;
    int64_t right = 0;
    uint64_t set_bits = 0;
  };
  std::vector<NodeMeta> nodes;
  std::vector<uint32_t> block_of;  ///< id → slab block index (permutation)
  std::vector<uint64_t> occupied;
};

/// Streams the slab bytes once and produces BOTH the whole-slab digest and
/// the per-chunk digest table, splitting the stream at kSlabChunkBytes
/// boundaries regardless of how callers slice their Update calls (the
/// writer feeds block-sized pieces that straddle chunk edges).
class ChunkedSlabHasher {
 public:
  void Update(const void* data, size_t len) {
    whole_.Update(data, len);
    const char* p = static_cast<const char*>(data);
    while (len > 0) {
      const uint64_t room = kSlabChunkBytes - in_chunk_;
      const size_t take =
          len < room ? len : static_cast<size_t>(room);
      chunk_.Update(p, take);
      in_chunk_ += take;
      p += take;
      len -= take;
      if (in_chunk_ == kSlabChunkBytes) FlushChunk();
    }
  }

  uint64_t WholeDigest() const { return whole_.Digest(); }

  /// Digest table including the trailing short chunk, if any. Call once.
  std::vector<uint64_t> TakeChunkDigests() {
    if (in_chunk_ > 0) FlushChunk();
    return std::move(chunk_digests_);
  }

 private:
  void FlushChunk() {
    chunk_digests_.push_back(chunk_.Digest());
    chunk_.Reset();
    in_chunk_ = 0;
  }

  XxHash64 whole_;
  XxHash64 chunk_;
  uint64_t in_chunk_ = 0;
  std::vector<uint64_t> chunk_digests_;
};

/// Child-topology invariant shared by both formats: node 0 is the level-0
/// root, a child sits exactly one level deeper than its parent with a
/// nested range, and every other node is referenced as a child exactly
/// once. Together these force the child graph to be precisely a tree over
/// all nodes — no cycles (levels strictly increase along any walk), no
/// shared children, no orphans — so a corrupt pointer can neither hang a
/// traversal nor break the save path's layout permutation.
template <typename Nodes>
Status ValidateChildTopology(const Nodes& nodes) {
  if (nodes.empty()) return Status::OK();
  if (nodes[0].level != 0) {
    return Status::InvalidArgument("root node is not at level 0");
  }
  std::vector<bool> referenced(nodes.size(), false);
  for (size_t id = 0; id < nodes.size(); ++id) {
    const auto& node = nodes[id];
    for (int64_t child_id : {node.left, node.right}) {
      if (child_id == BloomSampleTree::kNoNode) continue;
      const auto& child = nodes[static_cast<size_t>(child_id)];
      if (child.level != node.level + 1 || child.lo < node.lo ||
          child.hi > node.hi) {
        return Status::InvalidArgument("corrupt child topology");
      }
      if (referenced[static_cast<size_t>(child_id)]) {
        return Status::InvalidArgument("node referenced by two parents");
      }
      referenced[static_cast<size_t>(child_id)] = true;
    }
  }
  for (size_t id = 1; id < nodes.size(); ++id) {
    if (!referenced[id]) {
      return Status::InvalidArgument("orphan node outside the tree");
    }
  }
  return Status::OK();
}

/// Bytes from `data_start` to the end of a seekable stream; 0 if the
/// stream cannot be sized. Restores the read position.
uint64_t StreamBytesFrom(std::istream* in, std::streampos data_start) {
  if (data_start == std::streampos(-1)) return 0;
  const std::streampos here = in->tellg();
  if (here == std::streampos(-1)) return 0;
  in->seekg(0, std::ios::end);
  const std::streampos end = in->tellg();
  in->seekg(here);
  if (end == std::streampos(-1) || end < data_start) return 0;
  return static_cast<uint64_t>(end - data_start);
}

}  // namespace

/// Befriended by BloomSampleTree; does the actual field surgery.
class TreeSerializer {
 public:
  // -------------------------------------------------------------------------
  // v1: legacy field-by-field stream format (unchanged bytes).
  // -------------------------------------------------------------------------

  static Status Write(const BloomSampleTree& tree, std::ostream* out) {
    BinaryWriter writer(out);
    writer.WriteTag(kTreeTag);
    writer.WriteU32(kTreeVersion);

    const TreeConfig& config = tree.config_;
    writer.WriteU64(config.namespace_size);
    writer.WriteU64(config.m);
    writer.WriteU64(config.k);
    writer.WriteU32(static_cast<uint32_t>(config.hash_kind));
    writer.WriteU64(config.seed);
    writer.WriteU32(config.depth);
    writer.WriteDouble(config.intersection_threshold);

    writer.WriteU32(tree.pruned_ ? 1 : 0);
    writer.WriteU64Vector(tree.occupied_);

    writer.WriteU64(tree.nodes_.size());
    for (const BloomSampleTree::Node& node : tree.nodes_) {
      writer.WriteU64(node.lo);
      writer.WriteU64(node.hi);
      writer.WriteU32(node.level);
      writer.WriteI64(node.left);
      writer.WriteI64(node.right);
      writer.WriteU64Array(node.filter.bits().word_data(),
                           node.filter.bits().word_count());
    }
    return writer.ok() ? Status::OK()
                       : Status::Internal("stream write failed");
  }

#define BSR_READ_OR_RETURN(field, expr)             \
  do {                                              \
    auto result = (expr);                           \
    if (!result.ok()) return result.status();       \
    field = result.value();                         \
  } while (0)

  /// v1 body, with the 4-byte tag already consumed by the dispatcher.
  /// `shared_family` as in MakeEmptyTree (null = create from the stream's
  /// config).
  static Result<BloomSampleTree> ReadV1Body(
      std::istream* in,
      std::shared_ptr<const HashFamily> shared_family = nullptr) {
    BinaryReader reader(in);
    Result<uint32_t> version = reader.ReadU32();
    if (!version.ok()) return version.status();
    if (version.value() != kTreeVersion) {
      return Status::Unsupported("unknown tree format version");
    }

    TreeConfig config;
    BSR_READ_OR_RETURN(config.namespace_size, reader.ReadU64());
    BSR_READ_OR_RETURN(config.m, reader.ReadU64());
    BSR_READ_OR_RETURN(config.k, reader.ReadU64());
    uint32_t kind_raw;
    BSR_READ_OR_RETURN(kind_raw, reader.ReadU32());
    if (kind_raw > static_cast<uint32_t>(HashFamilyKind::kMd5)) {
      return Status::InvalidArgument("unknown hash family kind in stream");
    }
    config.hash_kind = static_cast<HashFamilyKind>(kind_raw);
    BSR_READ_OR_RETURN(config.seed, reader.ReadU64());
    BSR_READ_OR_RETURN(config.depth, reader.ReadU32());
    BSR_READ_OR_RETURN(config.intersection_threshold, reader.ReadDouble());
    Status st = config.Validate();
    if (!st.ok()) return st;

    uint32_t pruned_flag;
    BSR_READ_OR_RETURN(pruned_flag, reader.ReadU32());
    if (pruned_flag > 1) {
      return Status::InvalidArgument("corrupt pruned flag");
    }
    std::vector<uint64_t> occupied;
    BSR_READ_OR_RETURN(occupied,
                       reader.ReadU64Vector(config.namespace_size));

    std::shared_ptr<const HashFamily> family;
    if (shared_family != nullptr) {
      if (shared_family->k() != config.k || shared_family->m() != config.m ||
          shared_family->seed() != config.seed ||
          shared_family->Name() != HashFamilyKindName(config.hash_kind)) {
        return Status::InvalidArgument(
            "shared hash family does not match the stream's config");
      }
      family = std::move(shared_family);
    } else {
      auto made = MakeHashFamily(config.hash_kind,
                                 static_cast<size_t>(config.k), config.m,
                                 config.seed, config.namespace_size);
      if (!made.ok()) return made.status();
      family = std::move(made).value();
    }

    BloomSampleTree tree(config, std::move(family), pruned_flag == 1);
    tree.occupied_ = std::move(occupied);

    uint64_t node_count;
    BSR_READ_OR_RETURN(node_count, reader.ReadU64());
    if (node_count > config.CompleteNodeCount()) {
      return Status::InvalidArgument("node count exceeds complete tree");
    }
    const uint64_t words_per_filter = (config.m + 63) / 64;
    tree.arena_.Reserve(static_cast<size_t>(node_count));
    tree.nodes_.reserve(static_cast<size_t>(node_count));
    for (uint64_t i = 0; i < node_count; ++i) {
      uint64_t lo;
      uint64_t hi;
      uint32_t level;
      int64_t left;
      int64_t right;
      BSR_READ_OR_RETURN(lo, reader.ReadU64());
      BSR_READ_OR_RETURN(hi, reader.ReadU64());
      BSR_READ_OR_RETURN(level, reader.ReadU32());
      BSR_READ_OR_RETURN(left, reader.ReadI64());
      BSR_READ_OR_RETURN(right, reader.ReadI64());
      if (level > config.depth || hi > config.namespace_size || lo > hi) {
        return Status::InvalidArgument("corrupt node geometry");
      }
      const auto valid_child = [node_count](int64_t child) {
        return child == BloomSampleTree::kNoNode ||
               (child >= 0 && static_cast<uint64_t>(child) < node_count);
      };
      if (!valid_child(left) || !valid_child(right)) {
        return Status::InvalidArgument("corrupt child pointer");
      }
      std::vector<uint64_t> words;
      BSR_READ_OR_RETURN(words, reader.ReadU64Vector(words_per_filter));
      if (words.size() != words_per_filter) {
        return Status::InvalidArgument("node payload has wrong word count");
      }

      BloomSampleTree::Node node(lo, hi, level, tree.family_, &tree.arena_);
      BitVector& bits = node.filter.mutable_bits();
      for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          const size_t index = w * 64 + static_cast<size_t>(bit);
          if (index >= bits.size()) {
            return Status::InvalidArgument("node payload has stray bits");
          }
          bits.Set(index);
          word &= word - 1;
        }
      }
      node.left = left;
      node.right = right;
      node.set_bits = node.filter.SetBitCount();
      tree.nodes_.push_back(std::move(node));
    }
    st = ValidateChildTopology(tree.nodes_);
    if (!st.ok()) return st;
    return tree;
  }

  // -------------------------------------------------------------------------
  // v2: flat snapshot — header + node table + id→block index + occupancy,
  // then the raw filter slab at a page-aligned offset.
  // -------------------------------------------------------------------------

  static Status WriteV2(const BloomSampleTree& tree, std::ostream* out,
                        const SaveOptions& options) {
    const NodeLayout layout = options.layout;
    const TreeConfig& config = tree.config_;
    const uint64_t node_count = tree.nodes_.size();
    if (node_count > std::numeric_limits<uint32_t>::max()) {
      return Status::Unsupported("tree too large for the snapshot format");
    }
    const uint64_t words_per_block = (config.m + 63) / 64;
    const uint64_t stride_words = (words_per_block + 7) / 8 * 8;

    std::vector<uint32_t> block_of;
    if (layout == NodeLayout::kDescent) {
      block_of = tree.ComputeDescentOrder();
    } else {
      block_of.resize(static_cast<size_t>(node_count));
      for (size_t id = 0; id < block_of.size(); ++id) {
        block_of[id] = static_cast<uint32_t>(id);
      }
    }

    const uint64_t slab_bytes = node_count * stride_words * sizeof(uint64_t);
    const bool chunked = options.checksums && options.chunk_checksums;
    const uint64_t chunk_count =
        chunked ? (slab_bytes + kSlabChunkBytes - 1) / kSlabChunkBytes : 0;
    const uint64_t node_table_offset =
        kHeaderBytes +
        (options.checksums
             ? (chunked ? kChecksumBytesChunked : kChecksumBytes)
             : 0) +
        chunk_count * sizeof(uint64_t);
    const uint64_t block_index_offset =
        node_table_offset + node_count * kNodeEntryBytes;
    const uint64_t occupied_offset =
        block_index_offset + node_count * sizeof(uint32_t);
    const uint64_t metadata_end =
        occupied_offset + tree.occupied_.size() * sizeof(uint64_t);
    const uint64_t slab_offset =
        (metadata_end + kSlabAlign - 1) / kSlabAlign * kSlabAlign;
    const uint64_t file_bytes = slab_offset + slab_bytes;

    // Each metadata region is staged in memory so its digest can precede
    // it in the file; the slab — the one region too big to stage — is
    // hashed in a streaming pre-pass straight off the node filters.
    std::ostringstream header_buf;
    {
      BinaryWriter header(&header_buf);
      header.WriteTag(kSnapshotTag);
      header.WriteU32(kSnapshotVersion);
      // The byte-order mark is dumped natively on purpose (kEndianMark).
      header_buf.write(reinterpret_cast<const char*>(&kEndianMark),
                       sizeof(kEndianMark));
      const uint32_t flags = (tree.pruned_ ? 1u : 0u) |
                             (options.checksums ? kFlagChecksums : 0u) |
                             (chunked ? kFlagChunkChecksums : 0u) |
                             (static_cast<uint32_t>(layout) << 8);
      header.WriteU32(flags);
      header.WriteU32(static_cast<uint32_t>(config.hash_kind));
      header.WriteU32(config.depth);
      header.WriteU64(config.namespace_size);
      header.WriteU64(config.m);
      header.WriteU64(config.k);
      header.WriteU64(config.seed);
      header.WriteDouble(config.intersection_threshold);
      header.WriteU64(node_count);
      header.WriteU64(tree.occupied_.size());
      header.WriteU64(words_per_block);
      header.WriteU64(stride_words);
      header.WriteU64(node_table_offset);
      header.WriteU64(block_index_offset);
      header.WriteU64(occupied_offset);
      header.WriteU64(slab_offset);
      header.WriteU64(slab_bytes);
      header.WriteU64(file_bytes);
      if (!header.ok()) return Status::Internal("stream write failed");
    }

    std::ostringstream node_table_buf;
    {
      BinaryWriter nodes(&node_table_buf);
      for (const BloomSampleTree::Node& node : tree.nodes_) {
        nodes.WriteU64(node.lo);
        nodes.WriteU64(node.hi);
        nodes.WriteU32(node.level);
        nodes.WriteU32(0);  // reserved
        nodes.WriteI64(node.left);
        nodes.WriteI64(node.right);
        nodes.WriteU64(node.set_bits);
      }
      if (!nodes.ok()) return Status::Internal("stream write failed");
    }

    std::ostringstream block_index_buf;
    {
      BinaryWriter blocks(&block_index_buf);
      for (uint32_t block : block_of) blocks.WriteU32(block);
      if (!blocks.ok()) return Status::Internal("stream write failed");
    }

    std::ostringstream occupied_buf;
    {
      BinaryWriter occupied(&occupied_buf);
      for (uint64_t id : tree.occupied_) occupied.WriteU64(id);
      if (!occupied.ok()) return Status::Internal("stream write failed");
    }

    std::vector<uint32_t> id_at_block(static_cast<size_t>(node_count));
    for (size_t id = 0; id < block_of.size(); ++id) {
      id_at_block[block_of[id]] = static_cast<uint32_t>(id);
    }

    const std::string header_bytes = header_buf.str();
    const std::string node_table_bytes = node_table_buf.str();
    const std::string block_index_bytes = block_index_buf.str();
    const std::string occupied_bytes = occupied_buf.str();

    BinaryWriter writer(out);
    out->write(header_bytes.data(),
               static_cast<std::streamsize>(header_bytes.size()));
    if (options.checksums) {
      // Slab digest pre-pass: hash exactly the bytes the dump loop below
      // will emit — payload words then zeroed stride padding per block.
      // One pass yields both the whole-slab digest and the chunk table.
      ChunkedSlabHasher slab_hash;
      const std::vector<uint64_t> zeros(
          static_cast<size_t>(stride_words - words_per_block), 0);
      for (uint64_t b = 0; b < node_count; ++b) {
        const BloomSampleTree::Node& node =
            tree.nodes_[id_at_block[static_cast<size_t>(b)]];
        slab_hash.Update(node.filter.bits().word_data(),
                         static_cast<size_t>(words_per_block) *
                             sizeof(uint64_t));
        slab_hash.Update(zeros.data(), zeros.size() * sizeof(uint64_t));
      }
      std::string chunk_table_bytes;
      if (chunked) {
        std::ostringstream chunk_buf;
        BinaryWriter chunks(&chunk_buf);
        for (uint64_t digest : slab_hash.TakeChunkDigests()) {
          chunks.WriteU64(digest);
        }
        if (!chunks.ok()) return Status::Internal("stream write failed");
        chunk_table_bytes = chunk_buf.str();
        BSR_CHECK(chunk_table_bytes.size() ==
                      chunk_count * sizeof(uint64_t),
                  "chunk table size mismatch");
      }
      writer.WriteU64(XxHash64::Hash(header_bytes.data(),
                                     header_bytes.size()));
      writer.WriteU64(XxHash64::Hash(node_table_bytes.data(),
                                     node_table_bytes.size()));
      writer.WriteU64(XxHash64::Hash(block_index_bytes.data(),
                                     block_index_bytes.size()));
      writer.WriteU64(XxHash64::Hash(occupied_bytes.data(),
                                     occupied_bytes.size()));
      writer.WriteU64(slab_hash.WholeDigest());
      if (chunked) {
        // Sixth digest guards the chunk table itself, then the table.
        writer.WriteU64(XxHash64::Hash(chunk_table_bytes.data(),
                                       chunk_table_bytes.size()));
        out->write(chunk_table_bytes.data(),
                   static_cast<std::streamsize>(chunk_table_bytes.size()));
      }
    }
    out->write(node_table_bytes.data(),
               static_cast<std::streamsize>(node_table_bytes.size()));
    out->write(block_index_bytes.data(),
               static_cast<std::streamsize>(block_index_bytes.size()));
    out->write(occupied_bytes.data(),
               static_cast<std::streamsize>(occupied_bytes.size()));

    // Zero pad to the page-aligned slab, then bulk-dump the blocks in slab
    // order (the inverse permutation), each padded to the arena stride so
    // the file image byte-for-byte matches a freshly packed FilterArena.
    std::vector<char> pad(static_cast<size_t>(slab_offset - metadata_end), 0);
    out->write(pad.data(), static_cast<std::streamsize>(pad.size()));

    std::vector<uint64_t> block(static_cast<size_t>(stride_words), 0);
    for (uint64_t b = 0; b < node_count; ++b) {
      const BloomSampleTree::Node& node =
          tree.nodes_[id_at_block[static_cast<size_t>(b)]];
      std::memcpy(block.data(), node.filter.bits().word_data(),
                  static_cast<size_t>(words_per_block) * sizeof(uint64_t));
      out->write(reinterpret_cast<const char*>(block.data()),
                 static_cast<std::streamsize>(stride_words *
                                              sizeof(uint64_t)));
    }
    return writer.ok() && out->good()
               ? Status::OK()
               : Status::Internal("stream write failed");
  }

  /// Streams region [base + offset, base + offset + bytes) through XXH64
  /// and compares against the recorded digest. Leaves the read position
  /// wherever the last chunk ended — callers reposition explicitly.
  static Status VerifyRegion(std::istream* in, std::streampos base,
                             uint64_t offset, uint64_t bytes,
                             uint64_t expected, const char* what) {
    in->clear();
    in->seekg(base + static_cast<std::streamoff>(offset));
    if (!in->good()) {
      return Status::OutOfRange(std::string("snapshot truncated (") + what +
                                ")");
    }
    XxHash64 hash;
    char buf[65536];
    uint64_t remaining = bytes;
    while (remaining > 0) {
      const size_t chunk = remaining < sizeof(buf)
                               ? static_cast<size_t>(remaining)
                               : sizeof(buf);
      in->read(buf, static_cast<std::streamsize>(chunk));
      if (in->gcount() != static_cast<std::streamsize>(chunk)) {
        return Status::OutOfRange(std::string("snapshot truncated (") + what +
                                  ")");
      }
      hash.Update(buf, chunk);
      remaining -= chunk;
    }
    if (hash.Digest() != expected) {
      return Status::InvalidArgument(std::string("snapshot ") + what +
                                     " checksum mismatch");
    }
    return Status::OK();
  }

  /// Parses and validates everything before the slab; the 4-byte tag is
  /// already consumed. `stream_bytes` is the number of bytes the stream
  /// holds from the tag onward (0 = unknown): when known, the declared
  /// file size is cross-checked BEFORE any size-proportional allocation,
  /// so a corrupt header cannot trigger a huge allocation or a partial
  /// parse of garbage. `base` is the stream position of the tag — region
  /// checksums (when present) are verified against it before the regions
  /// they guard are parsed.
  static Result<SnapshotMeta> ReadV2Meta(std::istream* in,
                                         uint64_t stream_bytes,
                                         std::streampos base) {
    BinaryReader reader(in);
    SnapshotMeta meta;

    Result<uint32_t> version = reader.ReadU32();
    if (!version.ok()) return version.status();
    if (version.value() != kSnapshotVersion) {
      return Status::Unsupported("unknown snapshot format version");
    }
    uint32_t endian_mark;
    in->read(reinterpret_cast<char*>(&endian_mark), sizeof(endian_mark));
    if (!in->good()) return Status::OutOfRange("truncated snapshot header");
    if (endian_mark != kEndianMark) {
      return Status::Unsupported(
          "snapshot byte order does not match this host (use the v1 stream "
          "format for cross-endian transport)");
    }

    uint32_t flags;
    BSR_READ_OR_RETURN(flags, reader.ReadU32());
    if ((flags &
         ~(0x1u | kFlagChecksums | kFlagChunkChecksums | 0xff00u)) != 0) {
      return Status::InvalidArgument("unknown snapshot flags");
    }
    meta.pruned = (flags & 1u) != 0;
    meta.has_checksums = (flags & kFlagChecksums) != 0;
    meta.has_chunk_checksums = (flags & kFlagChunkChecksums) != 0;
    if (meta.has_chunk_checksums && !meta.has_checksums) {
      // The chunk table rides inside the checksum block; alone it is
      // unanchored — no writer emits this combination.
      return Status::InvalidArgument("snapshot chunk checksums without "
                                     "region checksums");
    }
    const uint32_t layout_raw = (flags >> 8) & 0xffu;
    if (layout_raw > static_cast<uint32_t>(NodeLayout::kDescent)) {
      return Status::InvalidArgument("unknown snapshot node layout");
    }
    meta.layout = static_cast<NodeLayout>(layout_raw);

    uint32_t kind_raw;
    BSR_READ_OR_RETURN(kind_raw, reader.ReadU32());
    if (kind_raw > static_cast<uint32_t>(HashFamilyKind::kMd5)) {
      return Status::InvalidArgument("unknown hash family kind in snapshot");
    }
    meta.config.hash_kind = static_cast<HashFamilyKind>(kind_raw);
    BSR_READ_OR_RETURN(meta.config.depth, reader.ReadU32());
    BSR_READ_OR_RETURN(meta.config.namespace_size, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.config.m, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.config.k, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.config.seed, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.config.intersection_threshold,
                       reader.ReadDouble());
    const Status st = meta.config.Validate();
    if (!st.ok()) return st;

    uint64_t occupied_count;
    BSR_READ_OR_RETURN(meta.node_count, reader.ReadU64());
    BSR_READ_OR_RETURN(occupied_count, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.words_per_block, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.stride_words, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.node_table_offset, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.block_index_offset, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.occupied_offset, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.slab_offset, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.slab_bytes, reader.ReadU64());
    BSR_READ_OR_RETURN(meta.file_bytes, reader.ReadU64());
    if (meta.has_checksums) {
      const int digest_count = meta.has_chunk_checksums ? 6 : 5;
      for (int i = 0; i < digest_count; ++i) {
        BSR_READ_OR_RETURN(meta.checksum[i], reader.ReadU64());
      }
    }

    // Geometry validation. Every derived quantity is recomputed with
    // overflow checks and compared against the header's claim — the file
    // offers no layout freedom, so any mismatch is corruption.
    if (meta.node_count > meta.config.CompleteNodeCount() ||
        meta.node_count > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("snapshot node count out of range");
    }
    if (meta.words_per_block != (meta.config.m + 63) / 64 ||
        meta.stride_words != (meta.words_per_block + 7) / 8 * 8) {
      return Status::InvalidArgument("snapshot block geometry mismatch");
    }
    if (occupied_count > meta.config.namespace_size ||
        (!meta.pruned && occupied_count != 0)) {
      return Status::InvalidArgument("snapshot occupancy out of range");
    }
    // Recompute the slab size first: the chunk table's length — and with
    // it every metadata offset — derives from it, and it must come from
    // validated geometry (node_count × stride), never the header's claim.
    // stride_words matched (wpb+7)/8*8 above, so stride_words * 8 cannot
    // itself overflow (wpb ≤ 2^58); only the per-node product can.
    uint64_t slab_bytes;
    if (__builtin_mul_overflow(meta.node_count,
                               meta.stride_words * sizeof(uint64_t),
                               &slab_bytes)) {
      return Status::InvalidArgument("snapshot slab size overflows");
    }
    if (meta.slab_bytes != slab_bytes) {
      return Status::InvalidArgument("snapshot slab size mismatch");
    }
    const uint64_t chunk_count =
        meta.has_chunk_checksums
            ? (slab_bytes + kSlabChunkBytes - 1) / kSlabChunkBytes
            : 0;
    uint64_t expect =
        kHeaderBytes +
        (meta.has_checksums
             ? (meta.has_chunk_checksums ? kChecksumBytesChunked
                                         : kChecksumBytes)
             : 0) +
        chunk_count * sizeof(uint64_t);
    if (meta.node_table_offset != expect) {
      return Status::InvalidArgument("snapshot node table offset mismatch");
    }
    expect += meta.node_count * kNodeEntryBytes;  // count < 2^32: no overflow
    if (meta.block_index_offset != expect) {
      return Status::InvalidArgument("snapshot block index offset mismatch");
    }
    expect += meta.node_count * sizeof(uint32_t);
    if (meta.occupied_offset != expect) {
      return Status::InvalidArgument("snapshot occupancy offset mismatch");
    }
    uint64_t occupied_bytes;
    if (__builtin_mul_overflow(occupied_count, sizeof(uint64_t),
                               &occupied_bytes) ||
        __builtin_add_overflow(expect, occupied_bytes, &meta.metadata_end)) {
      return Status::InvalidArgument("snapshot metadata size overflows");
    }
    uint64_t slab_offset;
    if (__builtin_add_overflow(meta.metadata_end, kSlabAlign - 1,
                               &slab_offset)) {
      return Status::InvalidArgument("snapshot slab offset overflows");
    }
    slab_offset = slab_offset / kSlabAlign * kSlabAlign;
    if (meta.slab_offset != slab_offset) {
      return Status::InvalidArgument("snapshot slab offset mismatch");
    }
    uint64_t file_bytes;
    if (__builtin_add_overflow(meta.slab_offset, meta.slab_bytes,
                               &file_bytes)) {
      return Status::InvalidArgument("snapshot file size overflows");
    }
    if (meta.file_bytes != file_bytes) {
      return Status::InvalidArgument("snapshot file size mismatch");
    }
    if (stream_bytes != 0 && stream_bytes != meta.file_bytes) {
      return Status::OutOfRange("snapshot truncated or padded on disk");
    }

    // Chunk digest table — read only AFTER the full geometry validation
    // above, so chunk_count is bounded by the file's real size and a
    // forged header cannot demand a huge allocation. The stream is still
    // positioned right after the digest block (validation is pure
    // computation), which is exactly where the table lives.
    if (meta.has_chunk_checksums) {
      meta.chunk_digests.reserve(static_cast<size_t>(chunk_count));
      for (uint64_t i = 0; i < chunk_count; ++i) {
        uint64_t digest;
        BSR_READ_OR_RETURN(digest, reader.ReadU64());
        meta.chunk_digests.push_back(digest);
      }
    }

    // Verify the metadata-region digests BEFORE parsing the regions they
    // guard, so corruption surfaces as a checksum mismatch rather than as
    // whichever downstream invariant happens to trip (or, worse, as a
    // silently skewed estimate). The slab digest is checked later, by the
    // materialization path that actually touches slab bytes.
    if (meta.has_checksums) {
      Status vst = VerifyRegion(in, base, 0, kHeaderBytes, meta.checksum[0],
                                "header");
      if (vst.ok() && meta.has_chunk_checksums) {
        vst = VerifyRegion(in, base, kHeaderBytes + kChecksumBytesChunked,
                           chunk_count * sizeof(uint64_t), meta.checksum[5],
                           "chunk table");
      }
      if (vst.ok()) {
        vst = VerifyRegion(in, base, meta.node_table_offset,
                           meta.block_index_offset - meta.node_table_offset,
                           meta.checksum[1], "node table");
      }
      if (vst.ok()) {
        vst = VerifyRegion(in, base, meta.block_index_offset,
                           meta.occupied_offset - meta.block_index_offset,
                           meta.checksum[2], "block index");
      }
      if (vst.ok()) {
        vst = VerifyRegion(in, base, meta.occupied_offset,
                           meta.metadata_end - meta.occupied_offset,
                           meta.checksum[3], "occupancy");
      }
      if (!vst.ok()) return vst;
      in->clear();
      in->seekg(base + static_cast<std::streamoff>(meta.node_table_offset));
      if (!in->good()) {
        return Status::OutOfRange("truncated snapshot header");
      }
    }

    // Node table.
    meta.nodes.reserve(static_cast<size_t>(meta.node_count));
    for (uint64_t i = 0; i < meta.node_count; ++i) {
      SnapshotMeta::NodeMeta node;
      uint32_t reserved;
      BSR_READ_OR_RETURN(node.lo, reader.ReadU64());
      BSR_READ_OR_RETURN(node.hi, reader.ReadU64());
      BSR_READ_OR_RETURN(node.level, reader.ReadU32());
      BSR_READ_OR_RETURN(reserved, reader.ReadU32());
      BSR_READ_OR_RETURN(node.left, reader.ReadI64());
      BSR_READ_OR_RETURN(node.right, reader.ReadI64());
      BSR_READ_OR_RETURN(node.set_bits, reader.ReadU64());
      if (reserved != 0) {
        return Status::InvalidArgument("snapshot node entry reserved bits");
      }
      if (node.level > meta.config.depth ||
          node.hi > meta.config.namespace_size || node.lo > node.hi) {
        return Status::InvalidArgument("corrupt node geometry");
      }
      const auto valid_child = [&meta](int64_t child) {
        return child == BloomSampleTree::kNoNode ||
               (child >= 0 &&
                static_cast<uint64_t>(child) < meta.node_count);
      };
      if (!valid_child(node.left) || !valid_child(node.right)) {
        return Status::InvalidArgument("corrupt child pointer");
      }
      if (node.set_bits > meta.config.m) {
        return Status::InvalidArgument("corrupt node popcount");
      }
      meta.nodes.push_back(node);
    }
    const Status topology = ValidateChildTopology(meta.nodes);
    if (!topology.ok()) return topology;

    // id→block index: must be a permutation of [0, node_count).
    meta.block_of.reserve(static_cast<size_t>(meta.node_count));
    std::vector<bool> seen(static_cast<size_t>(meta.node_count), false);
    for (uint64_t i = 0; i < meta.node_count; ++i) {
      uint32_t block;
      BSR_READ_OR_RETURN(block, reader.ReadU32());
      if (block >= meta.node_count || seen[block]) {
        return Status::InvalidArgument("snapshot block index is not a "
                                       "permutation");
      }
      seen[block] = true;
      meta.block_of.push_back(block);
    }

    // Occupancy (pruned trees): sorted, unique, in range.
    meta.occupied.reserve(static_cast<size_t>(occupied_count));
    for (uint64_t i = 0; i < occupied_count; ++i) {
      uint64_t id;
      BSR_READ_OR_RETURN(id, reader.ReadU64());
      if (id >= meta.config.namespace_size ||
          (!meta.occupied.empty() && id <= meta.occupied.back())) {
        return Status::InvalidArgument("corrupt occupancy list");
      }
      meta.occupied.push_back(id);
    }
    return meta;
  }
#undef BSR_READ_OR_RETURN

  /// Builds the tree around an arena whose first meta.node_count blocks
  /// already hold the slab (heap-read or mmap'ed): wires each node's
  /// filter span to block block_of[id] and seeds the persisted popcounts,
  /// touching no payload words. `checked_spans` selects SpanOf (heap
  /// payloads, invariant restored by the loader) vs SpanOfUnchecked
  /// (mmap'ed payloads, untrusted bytes must not trip debug asserts).
  static Result<BloomSampleTree> AssembleNodes(SnapshotMeta&& meta,
                                               BloomSampleTree&& tree,
                                               uint64_t* slab_base,
                                               bool checked_spans) {
    tree.occupied_ = std::move(meta.occupied);
    tree.node_layout_ = meta.layout;
    tree.nodes_.reserve(static_cast<size_t>(meta.node_count));
    for (uint64_t id = 0; id < meta.node_count; ++id) {
      const SnapshotMeta::NodeMeta& nm = meta.nodes[static_cast<size_t>(id)];
      uint64_t* block =
          slab_base + static_cast<size_t>(meta.block_of[id]) *
                          static_cast<size_t>(meta.stride_words);
      BitVector bits =
          checked_spans
              ? BitVector::SpanOf(block, static_cast<size_t>(meta.config.m))
              : BitVector::SpanOfUnchecked(
                    block, static_cast<size_t>(meta.config.m));
      BloomSampleTree::Node node(nm.lo, nm.hi, nm.level, tree.family_,
                                 std::move(bits));
      node.left = nm.left;
      node.right = nm.right;
      node.set_bits = nm.set_bits;
      node.filter.SeedSetBitCount(static_cast<size_t>(nm.set_bits));
      tree.nodes_.push_back(std::move(node));
    }
    return std::move(tree);
  }

  /// `shared_family` (optional) becomes the loaded tree's family after a
  /// compatibility check against the file's config — the forest loader's
  /// way of making every shard share one family instance (compatibility
  /// between filters is pointer identity on the family).
  static Result<BloomSampleTree> MakeEmptyTree(
      const SnapshotMeta& meta,
      std::shared_ptr<const HashFamily> shared_family) {
    if (shared_family != nullptr) {
      if (shared_family->k() != meta.config.k ||
          shared_family->m() != meta.config.m ||
          shared_family->seed() != meta.config.seed ||
          shared_family->Name() != HashFamilyKindName(meta.config.hash_kind)) {
        return Status::InvalidArgument(
            "shared hash family does not match the snapshot's config");
      }
      return BloomSampleTree(meta.config, std::move(shared_family),
                             meta.pruned);
    }
    auto family = MakeHashFamily(meta.config.hash_kind,
                                 static_cast<size_t>(meta.config.k),
                                 meta.config.m, meta.config.seed,
                                 meta.config.namespace_size);
    if (!family.ok()) return family.status();
    return BloomSampleTree(meta.config, family.value(), meta.pruned);
  }

  /// Heap materialization: the stream is positioned at metadata_end; skip
  /// the pad, bulk-read the slab into a fresh arena, restore the
  /// trailing-bit/padding-word invariants, and wire up the nodes.
  static Result<BloomSampleTree> ReadV2Heap(
      SnapshotMeta&& meta, std::istream* in,
      std::shared_ptr<const HashFamily> shared_family) {
    auto tree = MakeEmptyTree(meta, std::move(shared_family));
    if (!tree.ok()) return tree;

    const uint64_t pad = meta.slab_offset - meta.metadata_end;
    in->ignore(static_cast<std::streamsize>(pad));
    if (meta.node_count == 0) {
      return AssembleNodes(std::move(meta), std::move(tree).value(), nullptr,
                           /*checked_spans=*/true);
    }
    if (!in->good()) return Status::OutOfRange("snapshot truncated (pad)");

    tree.value().arena_.Reserve(static_cast<size_t>(meta.node_count));
    uint64_t* base = tree.value().arena_.AllocateBlocks(
        static_cast<size_t>(meta.node_count));
    in->read(reinterpret_cast<char*>(base),
             static_cast<std::streamsize>(meta.slab_bytes));
    if (in->gcount() != static_cast<std::streamsize>(meta.slab_bytes)) {
      return Status::OutOfRange("snapshot truncated (slab)");
    }
    // Verify the slab digest over the raw file bytes, before the invariant
    // restoration below rewrites any of them.
    if (meta.has_checksums &&
        XxHash64::Hash(base, static_cast<size_t>(meta.slab_bytes)) !=
            meta.checksum[4]) {
      return Status::InvalidArgument("snapshot filter slab checksum mismatch");
    }
    // Restore the invariants BitVector relies on: zero the padding words
    // of every block and the trailing bits of the last payload word, so a
    // corrupt slab can skew results but never break popcount/equality
    // contracts. (The mmap path leaves bytes untouched by design; its
    // spans are created unchecked.)
    const size_t wpb = static_cast<size_t>(meta.words_per_block);
    const size_t stride = static_cast<size_t>(meta.stride_words);
    const size_t tail = static_cast<size_t>(meta.config.m % 64);
    for (uint64_t b = 0; b < meta.node_count; ++b) {
      uint64_t* block = base + static_cast<size_t>(b) * stride;
      if (tail != 0) block[wpb - 1] &= (~0ULL >> (64 - tail));
      for (size_t w = wpb; w < stride; ++w) block[w] = 0;
    }
    return AssembleNodes(std::move(meta), std::move(tree).value(), base,
                         /*checked_spans=*/true);
  }

#if BSR_HAVE_MMAP
  /// Zero-copy materialization: map the slab MAP_PRIVATE (so dynamic
  /// Insert copy-on-writes pages instead of touching the file) and hand
  /// the mapping to the arena; node spans point straight into it. Open
  /// cost is O(metadata) — payload pages fault in on first intersection.
  static Result<BloomSampleTree> ReadV2Mmap(
      SnapshotMeta&& meta, const std::string& path, bool prewarm,
      TreeLoadInfo* info, std::shared_ptr<const HashFamily> shared_family,
      FileSystem* fs) {
    auto tree = MakeEmptyTree(meta, std::move(shared_family));
    if (!tree.ok()) return tree;
    if (meta.node_count == 0) {
      return AssembleNodes(std::move(meta), std::move(tree).value(), nullptr,
                           /*checked_spans=*/true);
    }

    // SIGBUS safety, part 1: pread the LAST slab byte through the
    // FileSystem interface. Touching a mapped page past the file's current
    // EOF raises SIGBUS — a pread of the same byte just comes back short.
    // A short probe means the file shrank between the metadata parse and
    // now (truncated by another process, or a fault test saying it was):
    // quarantine instead of handing out a mapping that detonates on first
    // intersection. Going through `fs` makes the probe injectable.
    {
      auto probe = fs->NewRandomAccessFile(path);
      if (!probe.ok()) return probe.status();
      char last;
      size_t got = 0;
      const Status pst =
          probe.value()->Read(meta.file_bytes - 1, 1, &last, &got);
      if (!pst.ok()) return pst;
      if (got != 1) {
        return Status::Quarantined(
            "snapshot '" + path + "' shrank beneath its declared size; "
            "refusing to map (a page fault past EOF would raise SIGBUS)");
      }
    }

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::NotFound("cannot open '" + path + "' for mapping");
    }
    // SIGBUS safety, part 2: revalidate the length of the descriptor being
    // mapped (the probe raced; this fd is what the mapping binds to).
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::Internal(std::string("fstat failed: ") +
                              std::strerror(errno));
    }
    if (st.st_size < static_cast<off_t>(meta.file_bytes)) {
      ::close(fd);
      return Status::Quarantined(
          "snapshot '" + path + "' shrank beneath its declared size; "
          "refusing to map (a page fault past EOF would raise SIGBUS)");
    }
    if (st.st_size != static_cast<off_t>(meta.file_bytes)) {
      ::close(fd);
      return Status::OutOfRange("snapshot truncated or padded on disk");
    }

    // The slab offset is kSlabAlign-ed; map from the enclosing page
    // boundary in case the system page size exceeds kSlabAlign.
    const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
    const uint64_t map_offset = meta.slab_offset / page * page;
    const size_t delta = static_cast<size_t>(meta.slab_offset - map_offset);
    const size_t map_len = static_cast<size_t>(meta.slab_bytes) + delta;
    int mmap_flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
    if (prewarm) mmap_flags |= MAP_POPULATE;
#else
    (void)prewarm;
#endif
    void* map = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, mmap_flags,
                       fd, static_cast<off_t>(map_offset));
    ::close(fd);  // the mapping keeps its own reference
    if (map == MAP_FAILED) {
      return Status::Internal(std::string("mmap failed: ") +
                              std::strerror(errno));
    }
    // Advisory hints: kick off readahead for the descent-ordered slab and
    // ask for transparent huge pages (a 1.25 MB filter block spans 320
    // 4 KiB pages; THP cuts the TLB cost of a cold dense intersection).
    ::madvise(map, map_len, MADV_WILLNEED);
#ifdef MADV_HUGEPAGE
    ::madvise(map, map_len, MADV_HUGEPAGE);
#endif
    uint64_t* base =
        reinterpret_cast<uint64_t*>(static_cast<char*>(map) + delta);
    // Slab verification faults in every page, so it only runs when the
    // caller asked for a prewarmed mapping anyway; a lazy open keeps its
    // O(metadata) cost and trusts the (always-verified) metadata regions.
    if (meta.has_checksums && prewarm &&
        XxHash64::Hash(base, static_cast<size_t>(meta.slab_bytes)) !=
            meta.checksum[4]) {
      ::munmap(map, map_len);
      return Status::InvalidArgument("snapshot filter slab checksum mismatch");
    }
    tree.value().arena_.AdoptExternal(
        base, static_cast<size_t>(meta.node_count),
        [map, map_len](uint64_t*) { ::munmap(map, map_len); });
    if (info != nullptr) info->mapped_bytes = meta.slab_bytes;
    return AssembleNodes(std::move(meta), std::move(tree).value(), base,
                         /*checked_spans=*/false);
  }
#endif  // BSR_HAVE_MMAP
};

Status SerializeTree(const BloomSampleTree& tree, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  return TreeSerializer::Write(tree, out);
}

Result<BloomSampleTree> DeserializeTree(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  const std::streampos start = in->tellg();
  char tag[4];
  in->read(tag, 4);
  if (!in->good()) return Status::OutOfRange("truncated stream (tag)");
  if (std::memcmp(tag, kTreeTag, 4) == 0) {
    return TreeSerializer::ReadV1Body(in);
  }
  if (std::memcmp(tag, kSnapshotTag, 4) == 0) {
    const uint64_t stream_bytes = StreamBytesFrom(in, start);
    if (stream_bytes == 0) {
      // Without a sizeable stream the header's slab size cannot be
      // cross-checked before the slab allocation it dictates — a forged
      // header could demand petabytes. v1 streams stay fine (their reads
      // are bounded per node); v2 consumers should load from a file.
      return Status::Unsupported(
          "v2 snapshots require a seekable stream (use LoadTreeFromFile)");
    }
    auto meta = TreeSerializer::ReadV2Meta(in, stream_bytes, start);
    if (!meta.ok()) return meta.status();
    return TreeSerializer::ReadV2Heap(std::move(meta).value(), in, nullptr);
  }
  return Status::InvalidArgument("bad magic tag; expected 'BSTR' or 'BST2'");
}

Status SaveTreeToFile(const BloomSampleTree& tree, const std::string& path) {
  return SaveTreeToFile(tree, path, SaveOptions());
}

Status SaveTreeToFile(const BloomSampleTree& tree, const std::string& path,
                      const SaveOptions& options) {
  if (options.version != kTreeVersion && options.version != kSnapshotVersion) {
    return Status::InvalidArgument("unknown snapshot version requested");
  }
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();
  const std::string tmp = path + ".tmp";
  auto file = fs->NewWritableFile(tmp, WriteMode::kTruncate);
  if (!file.ok()) return file.status();
  Status st;
  {
    WritableFileStreamBuf buf(file.value().get());
    std::ostream out(&buf);
    st = options.version == kTreeVersion
             ? TreeSerializer::Write(tree, &out)
             : TreeSerializer::WriteV2(tree, &out, options);
    if (st.ok() && !buf.FlushBuffered()) st = buf.error();
    // An injected/real write error surfaces through the streambuf with
    // more detail than the serializer's generic stream-state check.
    if (buf.bad()) st = buf.error();
  }
  if (st.ok()) st = file.value()->Sync();
  const Status closed = file.value()->Close();
  if (st.ok()) st = closed;
  if (st.ok()) st = fs->Rename(tmp, path);
  if (!st.ok()) {
    (void)fs->RemoveFile(tmp);  // best effort; `path` is untouched
    return st;
  }
  return fs->SyncDirOf(path);
}

Status AttachTreeWal(BloomSampleTree* tree, const std::string& path,
                     const WalOptions& wal_options, const TreeLoadInfo* info) {
  BSR_CHECK(tree != nullptr, "AttachTreeWal: null tree");
  const uint64_t replayed =
      info != nullptr ? info->wal_records_replayed : 0;
  auto writer = WalWriter::Open(WalPathFor(path),
                                WalConfigFingerprint(tree->config()),
                                replayed + 1, wal_options);
  if (!writer.ok()) return writer.status();
  tree->AttachWal(std::move(writer).value());
  return Status::OK();
}

Status CompactTree(BloomSampleTree* tree, const std::string& path) {
  return CompactTree(tree, path, SaveOptions());
}

Status CompactTree(BloomSampleTree* tree, const std::string& path,
                   const SaveOptions& options) {
  BSR_CHECK(tree != nullptr, "CompactTree: null tree");
  Status st = SaveTreeToFile(*tree, path, options);
  if (!st.ok()) return st;
  // The new image is durable from here on; shrinking the logs can no
  // longer lose anything (and a crash before the shrink just replays the
  // old logs into the new image — pure no-ops).
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();
  const std::string old_wal_path = OldWalPathFor(path);
  if (fs->FileExists(old_wal_path)) {
    // A rotated log a background compaction left behind: folded into the
    // image we just wrote, so it is history now.
    st = fs->RemoveFile(old_wal_path);
    if (st.ok()) st = fs->SyncDirOf(old_wal_path);
    if (!st.ok()) return st;
  }
  if (tree->wal() != nullptr) return tree->wal()->Reset();
  const std::string wal_path = WalPathFor(path);
  if (!fs->FileExists(wal_path)) return Status::OK();
  st = fs->RemoveFile(wal_path);
  if (!st.ok()) return st;
  return fs->SyncDirOf(wal_path);
}

LoadOptions LoadOptions::FromEnv() {
  LoadOptions options;
  if (const char* mode = std::getenv("BSR_LOAD")) {
    if (std::strcmp(mode, "heap") == 0) options.mode = LoadMode::kHeap;
    if (std::strcmp(mode, "mmap") == 0) options.mode = LoadMode::kMmap;
  }
  if (const char* prewarm = std::getenv("BSR_LOAD_PREWARM")) {
    options.prewarm = prewarm[0] == '1';
  }
  return options;
}

const char* TreeLoadMethodName(TreeLoadInfo::Method method) {
  switch (method) {
    case TreeLoadInfo::Method::kStreamV1: return "stream-v1";
    case TreeLoadInfo::Method::kHeapV2: return "heap-v2";
    case TreeLoadInfo::Method::kMmapV2: return "mmap-v2";
  }
  return "unknown";
}

Result<BloomSampleTree> LoadTreeFromFile(const std::string& path) {
  return LoadTreeFromFile(path, LoadOptions::FromEnv());
}

namespace {

/// Replays `path`'s sidecar log into the freshly opened tree (the last
/// step of every load path). Safe across load modes: mmap opens are
/// MAP_PRIVATE, so the replayed Inserts copy-on-write in memory and never
/// touch the snapshot file.
Result<BloomSampleTree> FinishLoad(Result<BloomSampleTree> tree,
                                   const std::string& path,
                                   const LoadOptions& options,
                                   TreeLoadInfo* info) {
  if (!tree.ok() || !options.replay_wal) return tree;
  BloomSampleTree& t = tree.value();
  // kInsert applies directly; kRemove needs the counting-bloom leaf
  // backend, which snapshots do not persist — auto-enable it on the first
  // remove record (exact: rebuilt from the occupied set at that point).
  auto apply = [&t](const WalRecord& rec) -> Status {
    if (rec.op == WalOp::kRemove) {
      if (!t.counting_leaves()) {
        const Status enabled = t.EnableCountingLeaves();
        if (!enabled.ok()) return enabled;
      }
      return t.Remove(rec.id);
    }
    return t.Insert(rec.id);
  };
  // A background compaction rotates the live log to `<path>.wal.old` and
  // deletes it only after the image that folded it is durable. Replaying
  // old-then-current re-walks the full mutation history in order; every
  // op is idempotent and last-op-per-id-wins, so an image built from any
  // prefix of that history recovers to the identical final tree.
  const uint64_t fp = WalConfigFingerprint(t.config());
  auto old_stats = ReplayWal(OldWalPathFor(path), fp, apply, options.fs);
  if (!old_stats.ok()) return old_stats.status();
  auto stats = ReplayWal(WalPathFor(path), fp, apply, options.fs);
  if (!stats.ok()) return stats.status();
  if (info != nullptr) {
    info->wal_present = stats.value().present || old_stats.value().present;
    // Seeds the writer's next seq, so it counts the CURRENT log only (the
    // rotated log's sequence space is frozen).
    info->wal_records_replayed = stats.value().records_replayed;
    info->wal_old_records_replayed = old_stats.value().records_replayed;
    info->wal_recovered_corruption = stats.value().recovered_corruption ||
                                     old_stats.value().recovered_corruption;
  }
  return tree;
}

}  // namespace

Result<BloomSampleTree> LoadTreeFromFile(const std::string& path,
                                         const LoadOptions& options,
                                         TreeLoadInfo* info) {
  // A quarantine marker means a scrub found corruption and repair failed:
  // fail fast with the dedicated code (forest siblings keep serving; the
  // CLI maps this to its own exit code) instead of re-tripping whichever
  // checksum is broken — or worse, serving a lazily-mmap'ed bad slab.
  if (IsQuarantined(path, options.fs)) {
    return Status::Quarantined("snapshot '" + path + "' is quarantined (" +
                               QuarantinePathFor(path) +
                               " exists); restore the file and clear the "
                               "marker to serve it again");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  char tag[4];
  in.read(tag, 4);
  if (!in.good()) return Status::OutOfRange("truncated stream (tag)");

  if (std::memcmp(tag, kTreeTag, 4) == 0) {
    if (info != nullptr) {
      *info = TreeLoadInfo{TreeLoadInfo::Method::kStreamV1, kTreeVersion,
                           NodeLayout::kIdOrder, 0};
    }
    return FinishLoad(TreeSerializer::ReadV1Body(&in, options.family), path,
                      options, info);
  }
  if (std::memcmp(tag, kSnapshotTag, 4) != 0) {
    return Status::InvalidArgument("bad magic tag; expected 'BSTR' or 'BST2'");
  }

  const uint64_t stream_bytes = StreamBytesFrom(&in, std::streampos(0));
  if (stream_bytes == 0) {
    // Unsizeable input (a FIFO, say): the slab-size cross-check cannot
    // run before the allocation it guards — refuse rather than trust.
    return Status::Unsupported("v2 snapshots require a seekable file");
  }
  auto meta = TreeSerializer::ReadV2Meta(&in, stream_bytes, std::streampos(0));
  if (!meta.ok()) return meta.status();

  const bool want_mmap = options.mode == LoadMode::kMmap ||
                         (options.mode == LoadMode::kAuto && BSR_HAVE_MMAP);
  if (info != nullptr) {
    *info = TreeLoadInfo{want_mmap ? TreeLoadInfo::Method::kMmapV2
                                   : TreeLoadInfo::Method::kHeapV2,
                         kSnapshotVersion, meta.value().layout, 0};
  }
#if BSR_HAVE_MMAP
  if (want_mmap) {
    FileSystem* fs =
        options.fs != nullptr ? options.fs : FileSystem::Default();
    return FinishLoad(
        TreeSerializer::ReadV2Mmap(std::move(meta).value(), path,
                                   options.prewarm, info, options.family,
                                   fs),
        path, options, info);
  }
#else
  if (options.mode == LoadMode::kMmap) {
    return Status::Unsupported("mmap loading is not available on this "
                               "platform; use LoadMode::kHeap");
  }
#endif
  return FinishLoad(TreeSerializer::ReadV2Heap(std::move(meta).value(), &in,
                                               options.family),
                    path, options, info);
}

namespace {

/// Opens `path`, dispatches on the tag, and runs the full metadata parse
/// (digest verification included). kUnsupported for v1 streams.
Result<SnapshotMeta> ParseSnapshotMetaFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  char tag[4];
  in.read(tag, 4);
  if (!in.good()) return Status::OutOfRange("truncated stream (tag)");
  if (std::memcmp(tag, kTreeTag, 4) == 0) {
    return Status::Unsupported("v1 stream snapshots carry no chunk "
                               "geometry");
  }
  if (std::memcmp(tag, kSnapshotTag, 4) != 0) {
    return Status::InvalidArgument("bad magic tag; expected 'BSTR' or "
                                   "'BST2'");
  }
  const uint64_t stream_bytes = StreamBytesFrom(&in, std::streampos(0));
  if (stream_bytes == 0) {
    return Status::Unsupported("v2 snapshots require a seekable file");
  }
  return TreeSerializer::ReadV2Meta(&in, stream_bytes, std::streampos(0));
}

SnapshotChunkInfo ChunkInfoFromMeta(SnapshotMeta&& meta) {
  SnapshotChunkInfo info;
  info.file_bytes = meta.file_bytes;
  info.slab_offset = meta.slab_offset;
  info.slab_bytes = meta.slab_bytes;
  info.chunk_bytes = kSlabChunkBytes;
  info.has_checksums = meta.has_checksums;
  info.has_chunk_checksums = meta.has_chunk_checksums;
  info.slab_digest = meta.checksum[4];
  info.chunk_digests = std::move(meta.chunk_digests);
  return info;
}

}  // namespace

Result<SnapshotChunkInfo> ReadSnapshotChunkInfo(const std::string& path,
                                                FileSystem* fs) {
  (void)fs;  // metadata parse reads the real file; fs gates writes only
  auto meta = ParseSnapshotMetaFromFile(path);
  if (!meta.ok()) return meta.status();
  return ChunkInfoFromMeta(std::move(meta).value());
}

Status VerifySnapshotFile(const std::string& path, FileSystem* fs,
                          uint64_t* first_bad_chunk) {
  if (first_bad_chunk != nullptr) {
    *first_bad_chunk = std::numeric_limits<uint64_t>::max();
  }
  if (fs == nullptr) fs = FileSystem::Default();
  if (IsQuarantined(path, fs)) {
    return Status::Quarantined("snapshot '" + path + "' is quarantined (" +
                               QuarantinePathFor(path) + " exists)");
  }

  // Metadata walk: header parse + region digest verification. A v1 stream
  // passes clean — it predates checksums, so there is nothing on disk to
  // verify against (DeserializeTree's per-field validation is its guard).
  auto meta = ParseSnapshotMetaFromFile(path);
  if (!meta.ok()) {
    if (meta.status().code() == Status::Code::kUnsupported) {
      return Status::OK();
    }
    return meta.status();
  }
  const SnapshotMeta& m = meta.value();
  if (!m.has_checksums || m.slab_bytes == 0) return Status::OK();

  // Slab walk through the FileSystem interface (pread; injectable). With
  // a chunk table every chunk is judged independently, so the report
  // names the first bad one; without it the whole slab is one verdict.
  auto file = fs->NewRandomAccessFile(path);
  if (!file.ok()) return file.status();
  std::vector<char> buf(static_cast<size_t>(kSlabChunkBytes));
  XxHash64 whole;
  const uint64_t chunk_count =
      (m.slab_bytes + kSlabChunkBytes - 1) / kSlabChunkBytes;
  for (uint64_t c = 0; c < chunk_count; ++c) {
    const uint64_t offset = c * kSlabChunkBytes;
    const size_t want = static_cast<size_t>(
        m.slab_bytes - offset < kSlabChunkBytes ? m.slab_bytes - offset
                                                : kSlabChunkBytes);
    size_t got = 0;
    const Status st =
        file.value()->Read(m.slab_offset + offset, want, buf.data(), &got);
    if (!st.ok()) return st;
    if (got != want) {
      if (first_bad_chunk != nullptr) *first_bad_chunk = c;
      return Status::OutOfRange("snapshot '" + path +
                                "' truncated mid-slab");
    }
    if (m.has_chunk_checksums) {
      if (XxHash64::Hash(buf.data(), want) != m.chunk_digests[c]) {
        if (first_bad_chunk != nullptr) *first_bad_chunk = c;
        return Status::InvalidArgument(
            "snapshot '" + path + "' slab chunk " + std::to_string(c) +
            " checksum mismatch");
      }
    }
    whole.Update(buf.data(), want);
  }
  if (whole.Digest() != m.checksum[4]) {
    return Status::InvalidArgument("snapshot filter slab checksum mismatch");
  }
  return Status::OK();
}

std::string QuarantinePathFor(const std::string& snapshot_path) {
  return snapshot_path + ".quarantine";
}

bool IsQuarantined(const std::string& snapshot_path, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  return fs->FileExists(QuarantinePathFor(snapshot_path));
}

Status WriteQuarantineMarker(const std::string& snapshot_path,
                             const std::string& reason, FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  const std::string marker = QuarantinePathFor(snapshot_path);
  auto file = fs->NewWritableFile(marker, WriteMode::kTruncate);
  if (!file.ok()) return file.status();
  Status st = file.value()->Append(reason.data(), reason.size());
  if (st.ok()) st = file.value()->Sync();
  const Status closed = file.value()->Close();
  if (st.ok()) st = closed;
  if (st.ok()) st = fs->SyncDirOf(marker);
  return st;
}

Status ClearQuarantineMarker(const std::string& snapshot_path,
                             FileSystem* fs) {
  if (fs == nullptr) fs = FileSystem::Default();
  const std::string marker = QuarantinePathFor(snapshot_path);
  if (!fs->FileExists(marker)) return Status::OK();
  Status st = fs->RemoveFile(marker);
  if (!st.ok()) return st;
  return fs->SyncDirOf(marker);
}

}  // namespace bloomsample
