#include "src/core/tree_io.h"

#include <fstream>

#include "src/bloom/bloom_io.h"
#include "src/util/serialize.h"

namespace bloomsample {

namespace {
constexpr char kTreeTag[4] = {'B', 'S', 'T', 'R'};
constexpr uint32_t kTreeVersion = 1;
}  // namespace

/// Befriended by BloomSampleTree; does the actual field surgery.
class TreeSerializer {
 public:
  static Status Write(const BloomSampleTree& tree, std::ostream* out) {
    BinaryWriter writer(out);
    writer.WriteTag(kTreeTag);
    writer.WriteU32(kTreeVersion);

    const TreeConfig& config = tree.config_;
    writer.WriteU64(config.namespace_size);
    writer.WriteU64(config.m);
    writer.WriteU64(config.k);
    writer.WriteU32(static_cast<uint32_t>(config.hash_kind));
    writer.WriteU64(config.seed);
    writer.WriteU32(config.depth);
    writer.WriteDouble(config.intersection_threshold);

    writer.WriteU32(tree.pruned_ ? 1 : 0);
    writer.WriteU64Vector(tree.occupied_);

    writer.WriteU64(tree.nodes_.size());
    for (const BloomSampleTree::Node& node : tree.nodes_) {
      writer.WriteU64(node.lo);
      writer.WriteU64(node.hi);
      writer.WriteU32(node.level);
      writer.WriteI64(node.left);
      writer.WriteI64(node.right);
      writer.WriteU64Array(node.filter.bits().word_data(),
                           node.filter.bits().word_count());
    }
    return writer.ok() ? Status::OK()
                       : Status::Internal("stream write failed");
  }

  static Result<BloomSampleTree> Read(std::istream* in) {
    BinaryReader reader(in);
    Status st = reader.ExpectTag(kTreeTag);
    if (!st.ok()) return st;
    Result<uint32_t> version = reader.ReadU32();
    if (!version.ok()) return version.status();
    if (version.value() != kTreeVersion) {
      return Status::Unsupported("unknown tree format version");
    }

    TreeConfig config;
#define BSR_READ_OR_RETURN(field, expr)             \
  do {                                              \
    auto result = (expr);                           \
    if (!result.ok()) return result.status();       \
    field = result.value();                         \
  } while (0)

    BSR_READ_OR_RETURN(config.namespace_size, reader.ReadU64());
    BSR_READ_OR_RETURN(config.m, reader.ReadU64());
    BSR_READ_OR_RETURN(config.k, reader.ReadU64());
    uint32_t kind_raw;
    BSR_READ_OR_RETURN(kind_raw, reader.ReadU32());
    if (kind_raw > static_cast<uint32_t>(HashFamilyKind::kMd5)) {
      return Status::InvalidArgument("unknown hash family kind in stream");
    }
    config.hash_kind = static_cast<HashFamilyKind>(kind_raw);
    BSR_READ_OR_RETURN(config.seed, reader.ReadU64());
    BSR_READ_OR_RETURN(config.depth, reader.ReadU32());
    BSR_READ_OR_RETURN(config.intersection_threshold, reader.ReadDouble());
    st = config.Validate();
    if (!st.ok()) return st;

    uint32_t pruned_flag;
    BSR_READ_OR_RETURN(pruned_flag, reader.ReadU32());
    if (pruned_flag > 1) {
      return Status::InvalidArgument("corrupt pruned flag");
    }
    std::vector<uint64_t> occupied;
    BSR_READ_OR_RETURN(occupied,
                       reader.ReadU64Vector(config.namespace_size));

    auto family = MakeHashFamily(config.hash_kind,
                                 static_cast<size_t>(config.k), config.m,
                                 config.seed, config.namespace_size);
    if (!family.ok()) return family.status();

    BloomSampleTree tree(config, family.value(), pruned_flag == 1);
    tree.occupied_ = std::move(occupied);

    uint64_t node_count;
    BSR_READ_OR_RETURN(node_count, reader.ReadU64());
    if (node_count > config.CompleteNodeCount()) {
      return Status::InvalidArgument("node count exceeds complete tree");
    }
    const uint64_t words_per_filter = (config.m + 63) / 64;
    tree.arena_.Reserve(static_cast<size_t>(node_count));
    tree.nodes_.reserve(static_cast<size_t>(node_count));
    for (uint64_t i = 0; i < node_count; ++i) {
      uint64_t lo;
      uint64_t hi;
      uint32_t level;
      int64_t left;
      int64_t right;
      BSR_READ_OR_RETURN(lo, reader.ReadU64());
      BSR_READ_OR_RETURN(hi, reader.ReadU64());
      BSR_READ_OR_RETURN(level, reader.ReadU32());
      BSR_READ_OR_RETURN(left, reader.ReadI64());
      BSR_READ_OR_RETURN(right, reader.ReadI64());
      if (level > config.depth || hi > config.namespace_size || lo > hi) {
        return Status::InvalidArgument("corrupt node geometry");
      }
      const auto valid_child = [node_count](int64_t child) {
        return child == BloomSampleTree::kNoNode ||
               (child >= 0 && static_cast<uint64_t>(child) < node_count);
      };
      if (!valid_child(left) || !valid_child(right)) {
        return Status::InvalidArgument("corrupt child pointer");
      }
      std::vector<uint64_t> words;
      BSR_READ_OR_RETURN(words, reader.ReadU64Vector(words_per_filter));
      if (words.size() != words_per_filter) {
        return Status::InvalidArgument("node payload has wrong word count");
      }

      BloomSampleTree::Node node(lo, hi, level, tree.family_, &tree.arena_);
      BitVector& bits = node.filter.mutable_bits();
      for (size_t w = 0; w < words.size(); ++w) {
        uint64_t word = words[w];
        while (word != 0) {
          const int bit = __builtin_ctzll(word);
          const size_t index = w * 64 + static_cast<size_t>(bit);
          if (index >= bits.size()) {
            return Status::InvalidArgument("node payload has stray bits");
          }
          bits.Set(index);
          word &= word - 1;
        }
      }
      node.left = left;
      node.right = right;
      node.set_bits = node.filter.SetBitCount();
      tree.nodes_.push_back(std::move(node));
    }
#undef BSR_READ_OR_RETURN
    return tree;
  }
};

Status SerializeTree(const BloomSampleTree& tree, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  return TreeSerializer::Write(tree, out);
}

Result<BloomSampleTree> DeserializeTree(std::istream* in) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  return TreeSerializer::Read(in);
}

Status SaveTreeToFile(const BloomSampleTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  return SerializeTree(tree, &out);
}

Result<BloomSampleTree> LoadTreeFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  return DeserializeTree(&in);
}

}  // namespace bloomsample
