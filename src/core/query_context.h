// Per-query state shared by the query-side algorithms (BstSampler,
// BstReconstructor).
//
// A QueryContext binds a query Bloom filter to a tree once and carries
// everything a descent or traversal needs per node with zero redundant
// work:
//   * the BloomQueryView — sparse word view + memoized set-bit count (t2)
//     + resolved intersection kernel — so every node intersection costs
//     O(nnz words) for sparse queries and never re-popcounts the query;
//   * the EstimateCache — a flat array indexed by node id memoizing
//     t∧ = popcount(node.filter & query), the one quantity every node
//     decision (branch weight, k-shared-bits pruning, thresholded
//     estimate) derives from deterministically. The first touch of a node
//     runs the intersection kernel; every later touch — a later draw, a
//     repeated Reconstruct, the other algorithm — is an O(1) load. The
//     multi-draw amortization story: the k-th draw against a warm context
//     descends in O(depth) with zero kernel invocations;
//   * a leaf-positives cache: each leaf's membership scan against the
//     query runs once, and every path that lands there afterwards picks
//     from the recorded positives;
//   * reusable scratch buffers for the non-caching leaf-scan path.
//
// Build one per query filter and reuse it across calls — that reuse is
// where the amortization lives. The context snapshots the query's bits:
// mutate the filter (or the tree) and the context is stale — build a new
// one. The caches are safe to share across query threads: cache entries
// are pure functions of (node, query), so racing fills store identical
// values (t∧ lives in relaxed atomics; leaf scans run under call_once).
// The scratch buffers are NOT thread-safe; they are only touched by the
// serial sampler paths and by the non-caching fallback.
#ifndef BLOOMSAMPLE_CORE_QUERY_CONTEXT_H_
#define BLOOMSAMPLE_CORE_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"
#include "src/util/op_counters.h"

namespace bloomsample {

class QueryContext {
 public:
  /// The query filter must share `tree`'s hash family and must outlive the
  /// context (the view keeps a pointer for dense-kernel dispatch).
  /// `cache_estimates` allocates the per-node estimate and leaf caches
  /// (~16 bytes + one empty vector per node); pass false to get the
  /// historical recompute-every-visit behavior — results are identical
  /// either way, only the work performed differs.
  QueryContext(const BloomSampleTree& tree, const BloomFilter& query,
               IntersectKernel kernel = IntersectKernel::kAuto,
               bool cache_estimates = true);

  const BloomSampleTree& tree() const { return *tree_; }
  const BloomFilter& query() const { return view_.filter(); }
  const BloomQueryView& view() const { return view_; }
  /// Cached set-bit count of the query (t2 in the estimator).
  uint64_t query_bits() const { return view_.set_bits(); }
  /// True when this context memoizes node estimates and leaf scans.
  bool caching() const { return t_and_ != nullptr; }

  /// t∧ = popcount(node(id).filter & query), the input to both the branch
  /// weight and the k-shared-bits pruning test. On a caching context the
  /// kernel runs only on the first touch of `id` (counted as a miss plus
  /// the usual kernel intersection); later touches are counted as cache
  /// hits and cost one relaxed load. Safe to call concurrently: racing
  /// first touches compute the same value, and the CAS lets exactly one
  /// of them record the miss — every access counts exactly one hit or
  /// miss, so op totals stay deterministic for every thread count.
  uint64_t AndPopcount(int64_t id, OpCounters* counters) const {
    if (t_and_ == nullptr) {
      CountIntersectionKernel(counters, view_.sparse(), 1,
                              view_.words_touched());
      return tree_->node(id).filter.AndPopcount(view_);
    }
    std::atomic<uint64_t>& slot = t_and_[static_cast<size_t>(id)];
    const uint64_t cached = slot.load(std::memory_order_relaxed);
    if (cached != kUnknown) {
      CountEstimateCacheHit(counters);
      return cached;
    }
    const uint64_t t_and = tree_->node(id).filter.AndPopcount(view_);
    uint64_t expected = kUnknown;
    if (slot.compare_exchange_strong(expected, t_and,
                                     std::memory_order_relaxed)) {
      CountEstimateCacheMiss(counters);
      CountIntersectionKernel(counters, view_.sparse(), 1,
                              view_.words_touched());
    } else {
      // A racing first touch recorded the miss; this access is logically
      // a hit (the duplicate kernel run is a scheduling artifact, not a
      // logical intersection).
      CountEstimateCacheHit(counters);
    }
    return t_and;
  }

  /// True when AndPopcount(id) would be served from the cache — used to
  /// skip the software prefetch of filters that will never be read.
  /// Returns true for kNoNode (nothing to compute).
  bool EstimateCached(int64_t id) const {
    if (id == BloomSampleTree::kNoNode) return true;
    return t_and_ != nullptr &&
           t_and_[static_cast<size_t>(id)].load(std::memory_order_relaxed) !=
               kUnknown;
  }

  /// The query's positives among leaf `id`'s candidates, ascending. On a
  /// caching context the membership scan runs once per leaf (under
  /// call_once, so concurrent callers are safe and the scan's membership
  /// queries are counted exactly once, by the filling thread); later calls
  /// return the recorded vector untouched. On a non-caching context this
  /// scans into the context's scratch buffer — the returned reference is
  /// invalidated by the next call and must not be shared across threads.
  const std::vector<uint64_t>& LeafPositives(int64_t id,
                                             OpCounters* counters) const {
    if (leaves_ == nullptr) {
      positives_.clear();
      tree_->ScanLeafCandidates(id, query(), counters, &positives_);
      return positives_;
    }
    LeafEntry& entry = leaves_[static_cast<size_t>(id)];
    std::call_once(entry.once, [&] {
      tree_->ScanLeafCandidates(id, query(), counters, &entry.positives);
    });
    return entry.positives;
  }

 private:
  friend class BstSampler;

  static constexpr uint64_t kUnknown = ~0ULL;  // t∧ <= m < 2^64 - 1

  struct LeafEntry {
    std::once_flag once;
    std::vector<uint64_t> positives;
  };

  const BloomSampleTree* tree_;
  BloomQueryView view_;
  // EstimateCache payload: t∧ per node id (kUnknown = not yet computed) and
  // the leaf-scan results. Mutable because memoization is not logical
  // state: BstReconstructor reads the context through const&.
  mutable std::unique_ptr<std::atomic<uint64_t>[]> t_and_;
  mutable std::unique_ptr<LeafEntry[]> leaves_;
  // Sampler scratch: the non-caching leaf scan target, the pick buffer
  // SampleMany's without-replacement leaf draws permute, and the serial
  // descent's backtrack stack. Cleared (not reallocated) per use, so
  // steady-state descents do no per-node allocation.
  mutable std::vector<uint64_t> positives_;
  std::vector<uint64_t> scratch_;
  std::vector<int64_t> alts_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_QUERY_CONTEXT_H_
