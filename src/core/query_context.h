// Per-query state shared by the query-side algorithms (BstSampler,
// BstReconstructor).
//
// A QueryContext binds a query Bloom filter to a tree once and carries
// everything a descent or traversal needs per node with zero redundant
// work:
//   * the BloomQueryView — sparse word view + memoized set-bit count (t2)
//     + resolved intersection kernel — so every node intersection costs
//     O(nnz words) for sparse queries and never re-popcounts the query;
//   * reusable scratch buffers for leaf scans, so repeated Sample /
//     SampleMany calls on the same query allocate nothing per node.
//
// Build one per query filter and reuse it across calls. The context
// snapshots the query's bits: mutate the filter and the context is stale —
// build a new one. A context is bound to the tree it was created with and
// is not safe to share across threads (the scratch buffers are mutable);
// the parallel reconstructor hands each worker its own output buffer and
// only reads the shared view, which is const after construction.
#ifndef BLOOMSAMPLE_CORE_QUERY_CONTEXT_H_
#define BLOOMSAMPLE_CORE_QUERY_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"

namespace bloomsample {

class QueryContext {
 public:
  /// The query filter must share `tree`'s hash family and must outlive the
  /// context (the view keeps a pointer for dense-kernel dispatch).
  QueryContext(const BloomSampleTree& tree, const BloomFilter& query,
               IntersectKernel kernel = IntersectKernel::kAuto)
      : tree_(&tree), view_(query, kernel) {
    BSR_CHECK(query.family_ptr() == tree.family_ptr(),
              "query filter does not share the tree's hash family");
  }

  const BloomSampleTree& tree() const { return *tree_; }
  const BloomFilter& query() const { return view_.filter(); }
  const BloomQueryView& view() const { return view_; }
  /// Cached set-bit count of the query (t2 in the estimator).
  uint64_t query_bits() const { return view_.set_bits(); }

 private:
  friend class BstSampler;

  const BloomSampleTree* tree_;
  BloomQueryView view_;
  // Sampler leaf-scan scratch: positives of the current leaf and the picks
  // handed back by a single-sample descent. Cleared (not reallocated) per
  // leaf, so steady-state descents do no per-node allocation.
  std::vector<uint64_t> positives_;
  std::vector<uint64_t> picked_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_QUERY_CONTEXT_H_
