#include "src/core/bloom_sample_tree.h"

#include <algorithm>

#include "src/util/math_util.h"
#include "src/util/thread_pool.h"

namespace bloomsample {

const char* NodeLayoutName(NodeLayout layout) {
  return layout == NodeLayout::kDescent ? "descent" : "id-order";
}

namespace {

Result<std::shared_ptr<const HashFamily>> FamilyFor(const TreeConfig& config) {
  const Status st = config.Validate();
  if (!st.ok()) return st;
  return MakeHashFamily(config.hash_kind, static_cast<size_t>(config.k),
                        config.m, config.seed, config.namespace_size);
}

/// A caller-supplied (shared) family must agree with the config on every
/// parameter that shapes hash values — otherwise the tree's filters would
/// silently diverge from what its config claims.
Status ValidateSharedFamily(const TreeConfig& config,
                            const std::shared_ptr<const HashFamily>& family) {
  if (family == nullptr) {
    return Status::InvalidArgument("null shared hash family");
  }
  if (family->k() != config.k || family->m() != config.m ||
      family->seed() != config.seed ||
      family->Name() != HashFamilyKindName(config.hash_kind)) {
    return Status::InvalidArgument(
        "shared hash family does not match the tree config");
  }
  return Status::OK();
}

// Chunk size that amortizes ParallelFor's per-chunk dispatch without
// starving threads of work. Purely a scheduling knob: results are
// chunk-partition independent (every parallel section writes disjoint
// nodes), so any grain yields bit-identical trees.
uint64_t GrainFor(uint64_t count, size_t threads) {
  const uint64_t target = 8 * static_cast<uint64_t>(threads);
  const uint64_t grain = count / target;
  return grain == 0 ? 1 : grain;
}

}  // namespace

Result<BloomSampleTree> BloomSampleTree::BuildComplete(
    const TreeConfig& config) {
  auto family = FamilyFor(config);
  if (!family.ok()) return family.status();
  return BuildComplete(config, std::move(family).value());
}

Result<BloomSampleTree> BloomSampleTree::BuildComplete(
    const TreeConfig& config, std::shared_ptr<const HashFamily> family) {
  Status st = config.Validate();
  if (!st.ok()) return st;
  st = ValidateSharedFamily(config, family);
  if (!st.ok()) return st;

  BloomSampleTree tree(config, std::move(family), /*pruned=*/false);
  const uint32_t depth = config.depth;
  const uint64_t leaf_width = config.LeafRangeSize();
  const uint64_t total_nodes = config.CompleteNodeCount();
  tree.arena_.Reserve(total_nodes);
  tree.nodes_.reserve(total_nodes);

  // Heap layout: node i has children 2i+1, 2i+2; the node at position p
  // within its level ℓ (p = i − (2^ℓ − 1)) covers
  // [p · leaf_width · 2^{D−ℓ}, …) clipped to M.
  for (uint64_t i = 0; i < total_nodes; ++i) {
    const uint32_t level = FloorLog2(i + 1);
    const uint64_t pos = i + 1 - (1ULL << level);
    const uint64_t width = leaf_width << (depth - level);
    const uint64_t lo = std::min<uint64_t>(pos * width, config.namespace_size);
    const uint64_t hi =
        std::min<uint64_t>(lo + width, config.namespace_size);
    Node node(lo, hi, level, tree.family_, &tree.arena_);
    if (level < depth) {
      node.left = static_cast<int64_t>(2 * i + 1);
      node.right = static_cast<int64_t>(2 * i + 2);
    }
    tree.nodes_.push_back(std::move(node));
  }

  // Populate leaves by batched insertion — every leaf is independent, so
  // the fill partitions cleanly across threads — then OR upwards (exact
  // Bloom union) one level at a time: a parent depends only on its two
  // children in the already-finished level below, so parents within a
  // level partition across threads the same way.
  ThreadPool pool(config.build_threads);
  const uint64_t first_leaf = (1ULL << depth) - 1;
  pool.ParallelFor(
      first_leaf, total_nodes, GrainFor(total_nodes - first_leaf, pool.thread_count()),
      [&tree](uint64_t lo, uint64_t hi) {
        for (uint64_t i = lo; i < hi; ++i) {
          Node& leaf = tree.nodes_[static_cast<size_t>(i)];
          leaf.filter.InsertRange(leaf.lo, leaf.hi);
        }
      });
  for (uint32_t level = depth; level-- > 0;) {
    const uint64_t level_lo = (1ULL << level) - 1;
    const uint64_t level_hi = (2ULL << level) - 1;
    pool.ParallelFor(
        level_lo, level_hi, GrainFor(level_hi - level_lo, pool.thread_count()),
        [&tree](uint64_t lo, uint64_t hi) {
          for (uint64_t i = lo; i < hi; ++i) {
            Node& parent = tree.nodes_[static_cast<size_t>(i)];
            parent.filter.UnionWith(
                tree.nodes_[static_cast<size_t>(2 * i + 1)].filter);
            parent.filter.UnionWith(
                tree.nodes_[static_cast<size_t>(2 * i + 2)].filter);
          }
        });
  }
  pool.ParallelFor(0, total_nodes, GrainFor(total_nodes, pool.thread_count()),
                   [&tree](uint64_t lo, uint64_t hi) {
                     for (uint64_t i = lo; i < hi; ++i) {
                       Node& node = tree.nodes_[static_cast<size_t>(i)];
                       node.set_bits = node.filter.SetBitCount();
                     }
                   });
  return tree;
}

uint64_t BloomSampleTree::PrunedSplitPoint(uint32_t level, uint64_t lo,
                                           size_t begin, size_t end) const {
  const uint64_t mid = lo + RangeWidthAtLevel(level + 1);
  return static_cast<uint64_t>(
      std::lower_bound(occupied_.begin() + static_cast<ptrdiff_t>(begin),
                       occupied_.begin() + static_cast<ptrdiff_t>(end), mid) -
      occupied_.begin());
}

uint64_t BloomSampleTree::CountPrunedNodes(uint32_t level, uint64_t lo,
                                           uint64_t hi, size_t begin,
                                           size_t end) const {
  if (begin == end) return 0;
  if (level == config_.depth) return 1;
  const uint64_t mid = lo + RangeWidthAtLevel(level + 1);
  const size_t split =
      static_cast<size_t>(PrunedSplitPoint(level, lo, begin, end));
  return 1 + CountPrunedNodes(level + 1, lo, mid, begin, split) +
         CountPrunedNodes(level + 1, mid, hi, split, end);
}

int64_t BloomSampleTree::BuildPrunedSubtree(uint32_t level, uint64_t lo,
                                            uint64_t hi, size_t begin,
                                            size_t end,
                                            std::vector<LeafFill>* leaf_fills) {
  if (begin == end) return kNoNode;  // range holds no occupied id
  const int64_t id = static_cast<int64_t>(nodes_.size());
  nodes_.emplace_back(lo, std::min(hi, config_.namespace_size), level,
                      family_, &arena_);
  if (level == config_.depth) {
    leaf_fills->push_back({id, begin, end});
    return id;
  }

  const uint64_t mid = lo + RangeWidthAtLevel(level + 1);
  const size_t split =
      static_cast<size_t>(PrunedSplitPoint(level, lo, begin, end));
  // Children are built first; vector growth may reallocate, so re-resolve
  // the node reference afterwards instead of holding one across the calls.
  const int64_t left =
      BuildPrunedSubtree(level + 1, lo, mid, begin, split, leaf_fills);
  const int64_t right =
      BuildPrunedSubtree(level + 1, mid, hi, split, end, leaf_fills);
  Node& node = nodes_[static_cast<size_t>(id)];
  node.left = left;
  node.right = right;
  return id;
}

Result<BloomSampleTree> BloomSampleTree::BuildPruned(
    const TreeConfig& config, std::vector<uint64_t> occupied) {
  auto family = FamilyFor(config);
  if (!family.ok()) return family.status();
  return BuildPruned(config, std::move(occupied), std::move(family).value());
}

Result<BloomSampleTree> BloomSampleTree::BuildPruned(
    const TreeConfig& config, std::vector<uint64_t> occupied,
    std::shared_ptr<const HashFamily> family) {
  Status vst = config.Validate();
  if (!vst.ok()) return vst;
  vst = ValidateSharedFamily(config, family);
  if (!vst.ok()) return vst;
  if (!std::is_sorted(occupied.begin(), occupied.end())) {
    return Status::InvalidArgument("occupied ids must be sorted");
  }
  if (std::adjacent_find(occupied.begin(), occupied.end()) != occupied.end()) {
    return Status::InvalidArgument("occupied ids must be unique");
  }
  if (!occupied.empty() && occupied.back() >= config.namespace_size) {
    return Status::OutOfRange("occupied id beyond namespace");
  }

  BloomSampleTree tree(config, std::move(family), /*pruned=*/true);
  tree.occupied_ = std::move(occupied);
  const uint64_t root_width = tree.RangeWidthAtLevel(0);

  // Pass 1 (serial): node structure in DFS preorder — ids are therefore
  // independent of build_threads — plus each leaf's slice of occupied_.
  // A counting pre-pass sizes the arena exactly, so the whole pruned tree
  // lands in one contiguous slab.
  const uint64_t pruned_nodes =
      tree.CountPrunedNodes(0, 0, root_width, 0, tree.occupied_.size());
  tree.arena_.Reserve(pruned_nodes);
  tree.nodes_.reserve(static_cast<size_t>(pruned_nodes));
  std::vector<LeafFill> leaf_fills;
  tree.BuildPrunedSubtree(0, 0, root_width, 0, tree.occupied_.size(),
                          &leaf_fills);
  BSR_CHECK(tree.nodes_.size() == pruned_nodes,
            "pruned counting pass disagrees with the structure pass");

  // Pass 2: leaves fill independently from disjoint occupied_ slices.
  ThreadPool pool(config.build_threads);
  pool.ParallelFor(
      0, leaf_fills.size(), GrainFor(leaf_fills.size(), pool.thread_count()),
      [&tree, &leaf_fills](uint64_t lo, uint64_t hi) {
        for (uint64_t f = lo; f < hi; ++f) {
          const LeafFill& fill = leaf_fills[static_cast<size_t>(f)];
          tree.nodes_[static_cast<size_t>(fill.id)].filter.InsertBatch(
              tree.occupied_.data() + fill.begin, fill.end - fill.begin);
        }
      });

  // Pass 3: upward unions, deepest level first. Children always sit on a
  // strictly deeper (already finished) level, so parents within one level
  // partition across threads.
  if (config.depth > 0) {
    std::vector<std::vector<size_t>> internal_by_level(config.depth);
    for (size_t id = 0; id < tree.nodes_.size(); ++id) {
      const Node& node = tree.nodes_[id];
      if (node.level < config.depth) internal_by_level[node.level].push_back(id);
    }
    for (uint32_t level = config.depth; level-- > 0;) {
      const std::vector<size_t>& ids = internal_by_level[level];
      pool.ParallelFor(
          0, ids.size(), GrainFor(ids.size(), pool.thread_count()),
          [&tree, &ids](uint64_t lo, uint64_t hi) {
            for (uint64_t i = lo; i < hi; ++i) {
              Node& parent = tree.nodes_[ids[static_cast<size_t>(i)]];
              if (parent.left != kNoNode) {
                parent.filter.UnionWith(
                    tree.nodes_[static_cast<size_t>(parent.left)].filter);
              }
              if (parent.right != kNoNode) {
                parent.filter.UnionWith(
                    tree.nodes_[static_cast<size_t>(parent.right)].filter);
              }
            }
          });
    }
  }

  pool.ParallelFor(0, tree.nodes_.size(),
                   GrainFor(tree.nodes_.size(), pool.thread_count()),
                   [&tree](uint64_t lo, uint64_t hi) {
                     for (uint64_t i = lo; i < hi; ++i) {
                       Node& node = tree.nodes_[static_cast<size_t>(i)];
                       node.set_bits = node.filter.SetBitCount();
                     }
                   });
  return tree;
}

void BloomSampleTree::CollectDescendantsAt(int64_t root, uint32_t levels_below,
                                           std::vector<int64_t>* out) const {
  if (root == kNoNode) return;
  if (levels_below == 0) {
    out->push_back(root);
    return;
  }
  const Node& n = nodes_[static_cast<size_t>(root)];
  CollectDescendantsAt(n.left, levels_below - 1, out);
  CollectDescendantsAt(n.right, levels_below - 1, out);
}

void BloomSampleTree::AssignVebBlocks(int64_t root, uint32_t levels,
                                      uint32_t* next,
                                      std::vector<uint32_t>* block_of) const {
  if (root == kNoNode) return;
  if (levels == 1) {
    (*block_of)[static_cast<size_t>(root)] = (*next)++;
    return;
  }
  // Classic vEB split: the top floor(levels/2) levels form one recursively
  // laid-out cluster, followed by each bottom subtree (rooted exactly
  // `top` levels down) as its own contiguous cluster, left to right. A
  // root-to-leaf descent then crosses O(log levels) cluster boundaries
  // instead of touching a new region at every level.
  const uint32_t top = levels / 2;
  AssignVebBlocks(root, top, next, block_of);
  std::vector<int64_t> bottom_roots;
  CollectDescendantsAt(root, top, &bottom_roots);
  for (int64_t r : bottom_roots) {
    AssignVebBlocks(r, levels - top, next, block_of);
  }
}

std::vector<uint32_t> BloomSampleTree::ComputeDescentOrder() const {
  std::vector<uint32_t> block_of(nodes_.size(), 0);
  if (nodes_.empty()) return block_of;
  uint32_t next = 0;
  // Top levels in BFS order: every descent reads this prefix, so its
  // blocks pack the front of the slab (and share pages) regardless of
  // which leaf the walk ends at.
  const uint32_t bfs_levels =
      config_.depth + 1 < kDescentBfsLevels ? config_.depth + 1
                                            : kDescentBfsLevels;
  std::vector<int64_t> frontier{root()};
  for (uint32_t level = 0; level < bfs_levels; ++level) {
    std::vector<int64_t> next_level;
    for (int64_t id : frontier) {
      block_of[static_cast<size_t>(id)] = next++;
      const Node& n = nodes_[static_cast<size_t>(id)];
      if (n.left != kNoNode) next_level.push_back(n.left);
      if (n.right != kNoNode) next_level.push_back(n.right);
    }
    frontier = std::move(next_level);
  }
  // Each subtree hanging below the BFS block gets a contiguous vEB-ordered
  // cluster, in BFS-encounter (left-to-right) order.
  const uint32_t below = config_.depth + 1 - bfs_levels;
  for (int64_t id : frontier) {
    AssignVebBlocks(id, below, &next, &block_of);
  }
  BSR_CHECK(next == nodes_.size(),
            "descent layout did not assign every node exactly once");
  return block_of;
}

uint64_t BloomSampleTree::LeafCandidateCount(int64_t id) const {
  // A leaf is just a height-0 subtree; the range arithmetic is shared.
  return SubtreeCandidateCount(id);
}

uint64_t BloomSampleTree::SubtreeCandidateCount(int64_t id) const {
  const Node& n = node(id);
  if (!pruned_) return n.hi - n.lo;
  const auto begin = std::lower_bound(occupied_.begin(), occupied_.end(), n.lo);
  const auto end = std::lower_bound(begin, occupied_.end(), n.hi);
  return static_cast<uint64_t>(end - begin);
}

void BloomSampleTree::ScanLeafCandidates(int64_t id, const BloomFilter& query,
                                         OpCounters* counters,
                                         std::vector<uint64_t>* out) const {
  BSR_CHECK(out != nullptr, "ScanLeafCandidates: null output");
  uint64_t block[BloomFilter::kHashBlock];
  size_t filled = 0;
  ForEachLeafCandidate(id, [&](uint64_t x) {
    block[filled++] = x;
    if (filled == BloomFilter::kHashBlock) {
      CountMembership(counters, filled);
      query.FilterContained(block, filled, out);
      filled = 0;
    }
  });
  if (filled > 0) {
    CountMembership(counters, filled);
    query.FilterContained(block, filled, out);
  }
}

Status BloomSampleTree::Insert(uint64_t x) {
  if (!pruned_) {
    return Status::Unsupported(
        "dynamic insert is only meaningful for pruned trees (complete trees "
        "already store the whole namespace)");
  }
  if (x >= config_.namespace_size) {
    return Status::OutOfRange("id beyond namespace");
  }
  const auto it = std::lower_bound(occupied_.begin(), occupied_.end(), x);
  if (it != occupied_.end() && *it == x) {
    return Status::OK();  // already present — filters already contain x
  }
  if (wal_ != nullptr) {
    // Log-before-mutate: if the append (or its policy-driven fsync) fails,
    // the tree stays exactly as it was and the caller sees the error — no
    // acknowledged-but-unlogged state can exist.
    const Status logged = wal_->Append(WalOp::kInsert, x);
    if (!logged.ok()) return logged;
  }
  occupied_.insert(it, x);

  // Walk the root-to-leaf path, creating missing nodes.
  if (nodes_.empty()) {
    nodes_.emplace_back(0, std::min(RangeWidthAtLevel(0), config_.namespace_size),
                        0u, family_, &arena_);
  }
  int64_t id = 0;
  for (;;) {
    Node& current = nodes_[static_cast<size_t>(id)];
    BSR_CHECK(current.lo <= x && x < current.hi,
              "insert walked outside node range");
    current.filter.Insert(x);
    current.set_bits = current.filter.SetBitCount();
    if (current.level == config_.depth) {
      if (counting_leaves_) {
        auto cit = leaf_counters_.find(id);
        if (cit == leaf_counters_.end()) {
          cit = leaf_counters_.emplace(id, CountingBloomFilter(family_)).first;
        }
        cit->second.Insert(x);
      }
      return Status::OK();
    }

    const uint64_t child_width = RangeWidthAtLevel(current.level + 1);
    const uint64_t mid = current.lo + child_width;
    const bool go_left = x < mid;
    const uint64_t child_lo = go_left ? current.lo : mid;
    const uint64_t child_hi = go_left ? mid : mid + child_width;
    int64_t child = go_left ? current.left : current.right;
    if (child == kNoNode) {
      child = static_cast<int64_t>(nodes_.size());
      const uint32_t child_level = current.level + 1;
      nodes_.emplace_back(child_lo,
                          std::min(child_hi, config_.namespace_size),
                          child_level, family_, &arena_);
      // emplace_back may have reallocated: re-resolve the parent.
      Node& parent = nodes_[static_cast<size_t>(id)];
      (go_left ? parent.left : parent.right) = child;
    }
    id = child;
  }
}

Status BloomSampleTree::EnableCountingLeaves() {
  if (!pruned_) {
    return Status::Unsupported(
        "counting leaves require a pruned tree (complete trees have no "
        "dynamic occupancy to maintain)");
  }
  if (counting_leaves_) return Status::OK();
  leaf_counters_.clear();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.level != config_.depth) continue;
    CountingBloomFilter counter(family_);
    auto it = std::lower_bound(occupied_.begin(), occupied_.end(), n.lo);
    for (; it != occupied_.end() && *it < n.hi; ++it) counter.Insert(*it);
    leaf_counters_.emplace(static_cast<int64_t>(i), std::move(counter));
  }
  counting_leaves_ = true;
  return Status::OK();
}

void BloomSampleTree::RebuildLeafFromCounters(int64_t leaf_id) {
  Node& leaf = nodes_[static_cast<size_t>(leaf_id)];
  const CountingBloomFilter& counter = leaf_counters_.at(leaf_id);
  leaf.filter.Clear();
  BitVector& bits = leaf.filter.mutable_bits();
  const uint64_t m = counter.m();
  for (uint64_t i = 0; i < m; ++i) {
    if (counter.counter(i) > 0) bits.Set(static_cast<size_t>(i));
  }
  leaf.set_bits = leaf.filter.SetBitCount();
}

Status BloomSampleTree::Remove(uint64_t x) {
  if (!pruned_) {
    return Status::Unsupported(
        "dynamic remove is only meaningful for pruned trees");
  }
  if (x >= config_.namespace_size) {
    return Status::OutOfRange("id beyond namespace");
  }
  if (!counting_leaves_) {
    return Status::Unsupported(
        "remove requires the counting-bloom leaf backend: plain Bloom "
        "filters cannot unset bits — call EnableCountingLeaves() first");
  }
  const auto it = std::lower_bound(occupied_.begin(), occupied_.end(), x);
  if (it == occupied_.end() || *it != x) {
    return Status::OK();  // absent — idempotent, mirroring Insert
  }
  if (wal_ != nullptr) {
    // Log-before-mutate, same discipline as Insert.
    const Status logged = wal_->Append(WalOp::kRemove, x);
    if (!logged.ok()) return logged;
  }
  occupied_.erase(it);

  // Walk the root-to-leaf path over x. Every node exists: x was occupied.
  BSR_CHECK(!nodes_.empty(), "remove of an occupied id in an empty tree");
  std::vector<int64_t> path;
  int64_t id = 0;
  for (;;) {
    const Node& current = nodes_[static_cast<size_t>(id)];
    BSR_CHECK(current.lo <= x && x < current.hi,
              "remove walked outside node range");
    path.push_back(id);
    if (current.level == config_.depth) break;
    const uint64_t child_width = RangeWidthAtLevel(current.level + 1);
    const uint64_t mid = current.lo + child_width;
    id = x < mid ? current.left : current.right;
    BSR_CHECK(id != kNoNode, "remove path fell off the tree");
  }

  // Leaf: decrement the counters, rewrite the bit filter from the
  // positive-counter pattern (saturated counters keep their bits set —
  // false positives, never false negatives).
  const auto counter_it = leaf_counters_.find(path.back());
  BSR_CHECK(counter_it != leaf_counters_.end(),
            "counting leaf missing for an occupied id");
  const Status dec = counter_it->second.Remove(x);
  if (!dec.ok()) {
    return Status::Internal(
        "counting leaf underflow for an id present in the occupied set: " +
        dec.ToString());
  }
  RebuildLeafFromCounters(path.back());

  // Ancestors bottom-up: each is the exact union of its children (Bloom
  // union over a shared family), so the removal propagates precisely.
  for (size_t i = path.size() - 1; i-- > 0;) {
    Node& n = nodes_[static_cast<size_t>(path[i])];
    n.filter.Clear();
    if (n.left != kNoNode) {
      n.filter.UnionWith(nodes_[static_cast<size_t>(n.left)].filter);
    }
    if (n.right != kNoNode) {
      n.filter.UnionWith(nodes_[static_cast<size_t>(n.right)].filter);
    }
    n.set_bits = n.filter.SetBitCount();
  }
  return Status::OK();
}

BloomFilter BloomSampleTree::MakeQueryFilter(
    const std::vector<uint64_t>& keys) const {
  BloomFilter filter(family_);
  filter.InsertBatch(keys);
  return filter;
}

size_t BloomSampleTree::MemoryBytes() const {
  size_t total = 0;
  for (const Node& n : nodes_) total += n.filter.MemoryBytes();
  return total;
}

}  // namespace bloomsample
