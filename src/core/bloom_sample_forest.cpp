#include "src/core/bloom_sample_forest.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/bloom/cardinality.h"
#include "src/util/numa.h"
#include "src/util/serialize.h"
#include "src/util/xxhash64.h"

namespace bloomsample {

namespace {

constexpr char kForestTag[4] = {'B', 'S', 'F', '1'};
constexpr uint32_t kForestVersion = 1;

Result<std::shared_ptr<const HashFamily>> ForestFamilyFor(
    const TreeConfig& config) {
  return MakeHashFamily(config.hash_kind, static_cast<size_t>(config.k),
                        config.m, config.seed, config.namespace_size);
}

}  // namespace

Status ForestConfig::Validate() const {
  const Status st = tree.Validate();
  if (!st.ok()) return st;
  if (shards == 0) return Status::InvalidArgument("forest needs >= 1 shard");
  if (shards > tree.namespace_size) {
    return Status::InvalidArgument("more shards than namespace elements");
  }
  if (shards > 65536) {
    return Status::InvalidArgument("shard count out of range (max 65536)");
  }
  return Status::OK();
}

Result<BloomSampleForest> BloomSampleForest::BuildShards(
    const ForestConfig& config, std::vector<uint64_t> occupied,
    const std::vector<size_t>& splits, bool pruned) {
  auto family = ForestFamilyFor(config.tree);
  if (!family.ok()) return family.status();

  const uint32_t shard_count = config.shards;
  const uint64_t width =
      (config.tree.namespace_size + shard_count - 1) / shard_count;

  // Outer fan-out: one lane per shard up to the total build budget; each
  // in-flight shard gets an equal slice of the remaining threads for its
  // own internal (leaf-fill / union) parallelism.
  const size_t total_threads = ResolveThreadCount(config.tree.build_threads);
  size_t outer = total_threads < shard_count ? total_threads : shard_count;
  if (outer == 0) outer = 1;
  TreeConfig shard_config = config.tree;
  shard_config.build_threads =
      static_cast<uint32_t>((total_threads + outer - 1) / outer);

  std::vector<std::optional<BloomSampleTree>> built(shard_count);
  std::vector<Status> statuses(shard_count, Status::OK());
  ThreadPool pool(outer);
  pool.ParallelFor(0, shard_count, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t s = lo; s < hi; ++s) {
      // Pin to the shard's CPU band before the build touches its arena:
      // first-touch then places the shard's slab pages on the band's
      // memory node (no-op on unsupported platforms or tiny hosts).
      ScopedThreadAffinity pin(static_cast<size_t>(s) % outer, outer);
      std::vector<uint64_t> slice;
      if (splits.empty()) {
        // Complete mode: the shard's full namespace slice.
        const uint64_t slice_lo = s * width;
        uint64_t slice_hi = slice_lo + width;
        if (slice_hi > config.tree.namespace_size) {
          slice_hi = config.tree.namespace_size;
        }
        slice.reserve(static_cast<size_t>(slice_hi - slice_lo));
        for (uint64_t x = slice_lo; x < slice_hi; ++x) slice.push_back(x);
      } else {
        slice.assign(occupied.begin() + static_cast<ptrdiff_t>(splits[s]),
                     occupied.begin() + static_cast<ptrdiff_t>(splits[s + 1]));
      }
      auto tree = BloomSampleTree::BuildPruned(shard_config, std::move(slice),
                                               family.value());
      if (tree.ok()) {
        built[static_cast<size_t>(s)] = std::move(tree).value();
      } else {
        statuses[static_cast<size_t>(s)] = tree.status();
      }
    }
  });

  std::vector<BloomSampleTree> shards;
  shards.reserve(shard_count);
  for (uint32_t s = 0; s < shard_count; ++s) {
    if (!statuses[s].ok()) return statuses[s];
    shards.push_back(std::move(*built[s]));
  }
  return BloomSampleForest(config, width, std::move(family).value(), pruned,
                           std::move(shards));
}

Result<BloomSampleForest> BloomSampleForest::BuildComplete(
    const ForestConfig& config) {
  const Status st = config.Validate();
  if (!st.ok()) return st;
  // Every shard materializes its full slice as a pruned tree: the shard
  // trees share the global node geometry, each storing exactly its slice —
  // the sharded equivalent of Definition 5.1's complete tree.
  return BuildShards(config, {}, {}, /*pruned=*/false);
}

Result<BloomSampleForest> BloomSampleForest::BuildPruned(
    const ForestConfig& config, std::vector<uint64_t> occupied) {
  const Status st = config.Validate();
  if (!st.ok()) return st;
  for (size_t i = 0; i < occupied.size(); ++i) {
    if (occupied[i] >= config.tree.namespace_size) {
      return Status::InvalidArgument("occupied id outside the namespace");
    }
    if (i > 0 && occupied[i] <= occupied[i - 1]) {
      return Status::InvalidArgument("occupied ids must be sorted and unique");
    }
  }
  const uint64_t width =
      (config.tree.namespace_size + config.shards - 1) / config.shards;
  std::vector<size_t> splits(config.shards + 1);
  for (uint32_t s = 0; s <= config.shards; ++s) {
    const uint64_t bound = s * width;
    splits[s] = static_cast<size_t>(
        std::lower_bound(occupied.begin(), occupied.end(), bound) -
        occupied.begin());
  }
  return BuildShards(config, std::move(occupied), splits, /*pruned=*/true);
}

BloomFilter BloomSampleForest::MakeQueryFilter(
    const std::vector<uint64_t>& keys) const {
  BloomFilter filter(family_);
  filter.InsertBatch(keys);
  return filter;
}

size_t BloomSampleForest::node_count() const {
  size_t total = 0;
  for (const BloomSampleTree& shard : shards_) total += shard.node_count();
  return total;
}

size_t BloomSampleForest::MemoryBytes() const {
  size_t total = 0;
  for (const BloomSampleTree& shard : shards_) total += shard.MemoryBytes();
  return total;
}

uint64_t BloomSampleForest::occupied_count() const {
  uint64_t total = 0;
  for (const BloomSampleTree& shard : shards_) {
    total += shard.occupied().size();
  }
  return total;
}

void BloomSampleForest::set_intersection_threshold(double threshold) {
  for (BloomSampleTree& shard : shards_) {
    shard.set_intersection_threshold(threshold);
  }
}

void BloomSampleForest::set_query_threads(uint32_t threads) {
  for (BloomSampleTree& shard : shards_) shard.set_query_threads(threads);
}

void BloomSampleForest::set_min_parallel_work(uint64_t work) {
  for (BloomSampleTree& shard : shards_) shard.set_min_parallel_work(work);
}

ForestQueryContext::ForestQueryContext(const BloomSampleForest& forest,
                                       const BloomFilter& query)
    : forest_(&forest) {
  contexts_.reserve(forest.shard_count());
  for (uint32_t s = 0; s < forest.shard_count(); ++s) {
    contexts_.push_back(
        std::make_unique<QueryContext>(forest.shard(s), query));
  }
}

double ForestQueryContext::RootWeight(uint32_t s,
                                      OpCounters* counters) const {
  const BloomSampleTree& tree = forest_->shard(s);
  const int64_t root = tree.root();
  if (root == BloomSampleTree::kNoNode) return 0.0;
  const QueryContext& ctx = *contexts_[s];
  if (ctx.query_bits() == 0) return 0.0;
  // ChildEstimate's arithmetic, applied to the shard root: the virtual
  // S-ary super-root weighs its children exactly as a binary descent step
  // weighs a pair — same lossless t∧ < k cut, same Papapetrou correction,
  // same optional threshold and 0.5 noise floor.
  const BloomSampleTree::Node& node = tree.node(root);
  const uint64_t t_and = ctx.AndPopcount(root, counters);
  if (t_and < node.filter.k()) return 0.0;
  const double estimate = EstimateIntersectionFromBits(
      node.set_bits, ctx.query_bits(), t_and, node.filter.m(),
      node.filter.k());
  const double threshold = tree.config().intersection_threshold;
  if (threshold > 0.0 && estimate < threshold) return 0.0;
  return estimate > 0.5 ? estimate : 0.5;
}

const FenwickTree& ForestQueryContext::ShardWeights(
    OpCounters* counters) const {
  std::call_once(weights_once_, [&] {
    std::vector<double> weights(forest_->shard_count());
    for (uint32_t s = 0; s < forest_->shard_count(); ++s) {
      weights[s] = RootWeight(s, counters);
    }
    weights_ = FenwickTree::FromValues(weights);
  });
  return *weights_;
}

ForestSampler::ForestSampler(const BloomSampleForest* forest)
    : forest_(forest) {
  BSR_CHECK(forest != nullptr, "ForestSampler needs a forest");
  samplers_.reserve(forest->shard_count());
  for (uint32_t s = 0; s < forest->shard_count(); ++s) {
    samplers_.emplace_back(&forest->shard(s));
  }
}

std::optional<uint64_t> ForestSampler::Sample(ForestQueryContext* ctx,
                                              Rng* rng,
                                              OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "ForestSampler::Sample: null context");
  BSR_CHECK(&ctx->forest() == forest_,
            "forest context built for a different forest");
  if (ctx->query_bits() == 0) {
    CountNullSample(counters);
    return std::nullopt;
  }
  const FenwickTree& weights = ctx->ShardWeights(counters);
  const double total = weights.Total();
  if (total <= 0.0) {
    CountNullSample(counters);
    return std::nullopt;
  }
  // The stream's first double is the shard coin; the in-shard descent
  // continues on the same stream — one virtual super-root descent step.
  const uint32_t s =
      static_cast<uint32_t>(weights.FindPrefix(rng->NextDouble() * total));
  return samplers_[s].Sample(ctx->shard_ctx(s), rng, counters);
}

std::vector<std::optional<uint64_t>> ForestSampler::SampleBatch(
    ForestQueryContext* ctx, size_t r, uint64_t seed,
    OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "ForestSampler::SampleBatch: null context");
  BSR_CHECK(&ctx->forest() == forest_,
            "forest context built for a different forest");
  BSR_CHECK(r < (1ULL << 32), "SampleBatch: batch size must fit in 32 bits");
  std::vector<std::optional<uint64_t>> out(r);
  if (r == 0) return out;
  if (ctx->query_bits() == 0) {
    CountNullSample(counters, r);
    return out;
  }
  const FenwickTree& weights = ctx->ShardWeights(counters);
  const double total = weights.Total();
  if (total <= 0.0) {
    CountNullSample(counters, r);
    return out;
  }

  // Serial pre-pass: spend each stream's shard coin and bucket the draw,
  // so every shard receives its whole share of the batch as ONE frontier.
  std::vector<std::vector<BstSampler::PreparedDraw>> buckets(
      forest_->shard_count());
  for (uint64_t i = 0; i < r; ++i) {
    Rng rng = Rng::ForStream(seed, i);
    const uint32_t s =
        static_cast<uint32_t>(weights.FindPrefix(rng.NextDouble() * total));
    buckets[s].push_back(
        BstSampler::PreparedDraw{static_cast<uint32_t>(i), rng});
  }
  std::vector<uint32_t> active;
  for (uint32_t s = 0; s < forest_->shard_count(); ++s) {
    if (!buckets[s].empty()) active.push_back(s);
  }

  const TreeConfig& config = forest_->config().tree;
  size_t lanes = ResolveThreadCount(config.query_threads);
  if (lanes > active.size()) lanes = active.size();
  if (lanes > 1 && config.min_parallel_work > 0) {
    // Same work model as the tree-level batch gate (draws × descent
    // steps), with shards as the unit of dispatch.
    const size_t hw = ResolveThreadCount(0);
    const uint64_t steps =
        static_cast<uint64_t>(r) * (static_cast<uint64_t>(config.depth) + 1);
    const size_t amortizing = lanes < hw ? lanes : hw;
    if (hw <= 1 || steps < config.min_parallel_work * amortizing) lanes = 1;
  }

  if (lanes <= 1) {
    for (uint32_t s : active) {
      samplers_[s].SampleBatchPrepared(ctx->shard_ctx(s),
                                       std::move(buckets[s]), counters, &out);
    }
    return out;
  }

  // Shards write disjoint output slots on disjoint contexts; per-shard
  // counters merge in shard order, so totals match the serial pass.
  std::vector<OpCounters> shard_counters(
      counters != nullptr ? active.size() : 0);
  pool_.Acquire(lanes)->ParallelFor(
      0, active.size(), 1, [&](uint64_t lo, uint64_t hi) {
        for (uint64_t a = lo; a < hi; ++a) {
          const uint32_t s = active[static_cast<size_t>(a)];
          OpCounters* chunk =
              counters != nullptr ? &shard_counters[static_cast<size_t>(a)]
                                  : nullptr;
          samplers_[s].SampleBatchPrepared(ctx->shard_ctx(s),
                                           std::move(buckets[s]), chunk,
                                           &out);
        }
      });
  for (const OpCounters& chunk : shard_counters) *counters += chunk;
  return out;
}

ForestReconstructor::ForestReconstructor(const BloomSampleForest* forest)
    : forest_(forest) {
  BSR_CHECK(forest != nullptr, "ForestReconstructor needs a forest");
  recons_.reserve(forest->shard_count());
  for (uint32_t s = 0; s < forest->shard_count(); ++s) {
    recons_.emplace_back(&forest->shard(s));
  }
}

std::vector<uint64_t> ForestReconstructor::Reconstruct(
    const ForestQueryContext& ctx, OpCounters* counters,
    BstReconstructor::PruningMode mode) const {
  BSR_CHECK(&ctx.forest() == forest_,
            "forest context built for a different forest");
  const uint32_t shard_count = forest_->shard_count();
  std::vector<std::vector<uint64_t>> parts(shard_count);

  const TreeConfig& config = forest_->config().tree;
  size_t lanes = ResolveThreadCount(config.query_threads);
  if (lanes > shard_count) lanes = shard_count;
  if (lanes > 1 && config.min_parallel_work > 0) {
    const size_t hw = ResolveThreadCount(0);
    uint64_t candidates = 0;
    for (uint32_t s = 0; s < shard_count; ++s) {
      const BloomSampleTree& tree = forest_->shard(s);
      if (tree.root() != BloomSampleTree::kNoNode) {
        candidates += tree.SubtreeCandidateCount(tree.root());
      }
    }
    const size_t amortizing = lanes < hw ? lanes : hw;
    if (hw <= 1 || candidates < config.min_parallel_work * amortizing) {
      lanes = 1;
    }
  }

  std::vector<OpCounters> shard_counters(
      counters != nullptr && lanes > 1 ? shard_count : 0);
  const auto run_shard = [&](uint32_t s, OpCounters* c) {
    parts[s] = recons_[s].Reconstruct(ctx.shard_ctx(s), c, mode);
  };
  if (lanes <= 1) {
    for (uint32_t s = 0; s < shard_count; ++s) run_shard(s, counters);
  } else {
    pool_.Acquire(lanes)->ParallelFor(
        0, shard_count, 1, [&](uint64_t lo, uint64_t hi) {
          for (uint64_t s = lo; s < hi; ++s) {
            run_shard(static_cast<uint32_t>(s),
                      counters != nullptr
                          ? &shard_counters[static_cast<size_t>(s)]
                          : nullptr);
          }
        });
    for (const OpCounters& chunk : shard_counters) *counters += chunk;
  }

  // Shard ranges are disjoint and ascending, each part is ascending —
  // concatenation in shard order IS the sorted merge.
  size_t total = 0;
  for (const std::vector<uint64_t>& part : parts) total += part.size();
  std::vector<uint64_t> out;
  out.reserve(total);
  for (const std::vector<uint64_t>& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::string ForestShardPath(const std::string& path, uint32_t s) {
  return path + ".shard" + std::to_string(s);
}

Status SaveForestToFile(const BloomSampleForest& forest,
                        const std::string& path) {
  return SaveForestToFile(forest, path, SaveOptions{});
}

namespace {

/// Stages the manifest in memory (it is tiny, and one trailing XXH64 must
/// cover every byte before it), then lands it durably: temp file, fsync,
/// rename over `path`, directory fsync.
Status WriteManifestDurable(const BloomSampleForest& forest,
                            const std::string& path, FileSystem* fs) {
  std::ostringstream buf;
  BinaryWriter writer(&buf);
  writer.WriteTag(kForestTag);
  writer.WriteU32(kForestVersion);
  writer.WriteU32(forest.pruned() ? 1u : 0u);
  writer.WriteU32(forest.shard_count());
  const TreeConfig& config = forest.config().tree;
  writer.WriteU32(static_cast<uint32_t>(config.hash_kind));
  writer.WriteU32(config.depth);
  writer.WriteU64(config.namespace_size);
  writer.WriteU64(config.m);
  writer.WriteU64(config.k);
  writer.WriteU64(config.seed);
  writer.WriteDouble(config.intersection_threshold);
  writer.WriteU64(forest.shard_width());
  for (uint32_t s = 0; s < forest.shard_count(); ++s) {
    writer.WriteU64(forest.shard(s).node_count());
    writer.WriteU64(forest.shard(s).occupied().size());
  }
  const uint64_t digest = XxHash64::Hash(buf.str().data(), buf.str().size());
  BinaryWriter tail(&buf);
  tail.WriteU64(digest);
  if (!writer.ok() || !tail.ok()) {
    return Status::Internal("stream write failed");
  }
  const std::string bytes = buf.str();

  const std::string tmp = path + ".tmp";
  auto file = fs->NewWritableFile(tmp, WriteMode::kTruncate);
  if (!file.ok()) return file.status();
  Status st = file.value()->Append(bytes.data(), bytes.size());
  if (st.ok()) st = file.value()->Sync();
  const Status closed = file.value()->Close();
  if (st.ok()) st = closed;
  if (st.ok()) st = fs->Rename(tmp, path);
  if (!st.ok()) {
    (void)fs->RemoveFile(tmp);
    return st;
  }
  return fs->SyncDirOf(path);
}

}  // namespace

Status SaveForestToFile(const BloomSampleForest& forest,
                        const std::string& path, const SaveOptions& options) {
  for (uint32_t s = 0; s < forest.shard_count(); ++s) {
    const Status st =
        SaveTreeToFile(forest.shard(s), ForestShardPath(path, s), options);
    if (!st.ok()) return st;
  }
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();
  return WriteManifestDurable(forest, path, fs);
}

bool IsForestManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  char tag[4];
  in.read(tag, 4);
  return in.good() && std::memcmp(tag, kForestTag, 4) == 0;
}

Result<BloomSampleForest> LoadForestFromFile(const std::string& path) {
  return LoadForestFromFile(path, LoadOptions::FromEnv());
}

Result<BloomSampleForest> LoadForestFromFile(const std::string& path,
                                             const LoadOptions& options,
                                             ForestLoadInfo* info) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  std::ostringstream whole;
  whole << in.rdbuf();
  const std::string bytes = whole.str();
  if (bytes.size() < 4 + sizeof(uint64_t) ||
      std::memcmp(bytes.data(), kForestTag, 4) != 0) {
    return Status::InvalidArgument("bad magic tag; expected 'BSF1'");
  }
  const size_t body_bytes = bytes.size() - sizeof(uint64_t);
  uint64_t recorded = 0;
  std::memcpy(&recorded, bytes.data() + body_bytes, sizeof(recorded));
  if (XxHash64::Hash(bytes.data(), body_bytes) != recorded) {
    return Status::InvalidArgument("forest manifest checksum mismatch");
  }

  std::istringstream body(bytes.substr(4, body_bytes - 4));
  BinaryReader reader(&body);
#define BSR_READ_OR_RETURN(field, expr)             \
  do {                                              \
    auto result_ = (expr);                          \
    if (!result_.ok()) return result_.status();     \
    field = std::move(result_).value();             \
  } while (0)

  uint32_t version, pruned_flag;
  ForestConfig config;
  BSR_READ_OR_RETURN(version, reader.ReadU32());
  if (version != kForestVersion) {
    return Status::Unsupported("unknown forest manifest version");
  }
  BSR_READ_OR_RETURN(pruned_flag, reader.ReadU32());
  if (pruned_flag > 1) {
    return Status::InvalidArgument("bad forest pruned flag");
  }
  BSR_READ_OR_RETURN(config.shards, reader.ReadU32());
  uint32_t kind_raw;
  BSR_READ_OR_RETURN(kind_raw, reader.ReadU32());
  if (kind_raw > static_cast<uint32_t>(HashFamilyKind::kMd5)) {
    return Status::InvalidArgument("unknown hash family kind in manifest");
  }
  config.tree.hash_kind = static_cast<HashFamilyKind>(kind_raw);
  BSR_READ_OR_RETURN(config.tree.depth, reader.ReadU32());
  BSR_READ_OR_RETURN(config.tree.namespace_size, reader.ReadU64());
  BSR_READ_OR_RETURN(config.tree.m, reader.ReadU64());
  BSR_READ_OR_RETURN(config.tree.k, reader.ReadU64());
  BSR_READ_OR_RETURN(config.tree.seed, reader.ReadU64());
  BSR_READ_OR_RETURN(config.tree.intersection_threshold,
                     reader.ReadDouble());
  const Status cst = config.Validate();
  if (!cst.ok()) return cst;
  uint64_t width;
  BSR_READ_OR_RETURN(width, reader.ReadU64());
  if (width !=
      (config.tree.namespace_size + config.shards - 1) / config.shards) {
    return Status::InvalidArgument("forest shard width mismatch");
  }
  std::vector<uint64_t> node_counts(config.shards);
  std::vector<uint64_t> occupied_counts(config.shards);
  for (uint32_t s = 0; s < config.shards; ++s) {
    BSR_READ_OR_RETURN(node_counts[s], reader.ReadU64());
    BSR_READ_OR_RETURN(occupied_counts[s], reader.ReadU64());
  }
#undef BSR_READ_OR_RETURN

  // One family for the whole forest: every shard image loads around it,
  // so one query filter serves every shard (pointer-identity
  // compatibility).
  auto family = ForestFamilyFor(config.tree);
  if (!family.ok()) return family.status();
  LoadOptions shard_options = options;
  shard_options.family = family.value();

  // Local info so replay results are known even when the caller passed no
  // out-param — the shape cross-check below must see them.
  ForestLoadInfo local_info;
  if (info == nullptr) info = &local_info;
  info->shards.assign(config.shards, TreeLoadInfo{});
  std::vector<BloomSampleTree> shards;
  shards.reserve(config.shards);
  for (uint32_t s = 0; s < config.shards; ++s) {
    auto tree = LoadTreeFromFile(ForestShardPath(path, s), shard_options,
                                 &info->shards[s]);
    if (!tree.ok()) return tree.status();
    const TreeConfig& tc = tree.value().config();
    if (tc.namespace_size != config.tree.namespace_size ||
        tc.m != config.tree.m || tc.k != config.tree.k ||
        tc.seed != config.tree.seed || tc.depth != config.tree.depth ||
        tc.hash_kind != config.tree.hash_kind) {
      return Status::InvalidArgument(
          "shard snapshot config disagrees with the forest manifest");
    }
    // A shard with a sidecar WAL is dynamic: replay legitimately grows it
    // past the manifest's counts, and around a crash the manifest may be
    // newer OR older than the image (see CompactForest's ordering
    // argument). The shape cross-check therefore only binds for static
    // shards — no log present.
    if (!info->shards[s].wal_present &&
        (tree.value().node_count() != node_counts[s] ||
         tree.value().occupied().size() != occupied_counts[s])) {
      return Status::InvalidArgument(
          "shard snapshot shape disagrees with the forest manifest");
    }
    const std::vector<uint64_t>& occ = tree.value().occupied();
    if (!occ.empty() && (occ.front() < s * width ||
                         occ.back() >= (s + 1) * width)) {
      return Status::InvalidArgument(
          "shard snapshot holds keys outside its namespace slice");
    }
    shards.push_back(std::move(tree).value());
  }
  return BloomSampleForest(config, width, std::move(family).value(),
                           pruned_flag == 1, std::move(shards));
}

Status BloomSampleForest::Insert(uint64_t x) {
  if (x >= config_.tree.namespace_size) {
    return Status::OutOfRange("id beyond namespace");
  }
  return shards_[ShardOf(x)].Insert(x);
}

Status BloomSampleForest::Remove(uint64_t x) {
  if (x >= config_.tree.namespace_size) {
    return Status::OutOfRange("id beyond namespace");
  }
  return shards_[ShardOf(x)].Remove(x);
}

Status BloomSampleForest::EnableCountingLeaves() {
  for (BloomSampleTree& shard : shards_) {
    const Status st = shard.EnableCountingLeaves();
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status AttachForestWals(BloomSampleForest* forest, const std::string& path,
                        const WalOptions& wal_options,
                        const ForestLoadInfo* info) {
  BSR_CHECK(forest != nullptr, "AttachForestWals: null forest");
  const uint64_t fingerprint = WalConfigFingerprint(forest->config().tree);
  for (uint32_t s = 0; s < forest->shard_count(); ++s) {
    const uint64_t replayed =
        info != nullptr && s < info->shards.size()
            ? info->shards[s].wal_records_replayed
            : 0;
    auto writer = WalWriter::Open(WalPathFor(ForestShardPath(path, s)),
                                  fingerprint, replayed + 1, wal_options);
    if (!writer.ok()) return writer.status();
    forest->mutable_shard(s)->AttachWal(std::move(writer).value());
  }
  return Status::OK();
}

Status CompactForest(BloomSampleForest* forest, const std::string& path) {
  return CompactForest(forest, path, SaveOptions());
}

Status CompactForest(BloomSampleForest* forest, const std::string& path,
                     const SaveOptions& options) {
  BSR_CHECK(forest != nullptr, "CompactForest: null forest");
  // Manifest first — see the header comment for why this ordering keeps
  // every kill point loadable.
  FileSystem* fs = options.fs != nullptr ? options.fs : FileSystem::Default();
  Status st = WriteManifestDurable(*forest, path, fs);
  if (!st.ok()) return st;
  for (uint32_t s = 0; s < forest->shard_count(); ++s) {
    st = CompactTree(forest->mutable_shard(s), ForestShardPath(path, s),
                     options);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

}  // namespace bloomsample
