// The BloomSampleTree (Definition 5.1) and its pruned variant (Section 5.2).
//
// A complete binary tree over the namespace [0, M): the node at level ℓ,
// offset j owns the dyadic range [j·L·2^{D−ℓ}, (j+1)·L·2^{D−ℓ}) ∩ [0, M),
// where D is the depth and L = ceil(M / 2^D) the leaf range width. Every
// node carries a Bloom filter — same (m, H) as the query filters — storing
// the elements of its range.
//
// Two build modes:
//   * Complete (Definition 5.1): every node exists; node filters store the
//     whole range. Built bottom-up: leaves are populated by insertion, and
//     each parent is the bitwise OR of its children (Bloom union over a
//     shared family is exact), so construction costs M insertions plus
//     O(#nodes · m/64) word ORs.
//   * Pruned (Section 5.2): given the occupied subset M′ ⊆ [0, M), only
//     nodes whose range intersects M′ exist, and filters store only
//     occupied elements. Leaf scans then enumerate occupied elements only,
//     which is where the accuracy gain of Figure 15 comes from. Supports
//     dynamic Insert() of newly occupied ids (creates nodes on demand).
//
// The tree is the shared, build-once index: one tree serves every query
// Bloom filter over the same namespace/parameters.
#ifndef BLOOMSAMPLE_CORE_BLOOM_SAMPLE_TREE_H_
#define BLOOMSAMPLE_CORE_BLOOM_SAMPLE_TREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/bloom/counting_bloom.h"
#include "src/core/tree_config.h"
#include "src/core/wal.h"
#include "src/util/filter_arena.h"
#include "src/util/op_counters.h"
#include "src/util/status.h"

namespace bloomsample {

/// Physical placement of node filter blocks within the arena (and within a
/// v2 snapshot's slab). Logical node ids never change — the layout is a
/// pure permutation of block storage, keyed through an id→block index.
///   * kIdOrder — blocks in node-id order (the builders' natural order:
///     heap order for complete trees, DFS preorder for pruned ones).
///   * kDescent — descent-aware blocking: the top levels of the tree
///     BFS-grouped at the front (every descent touches them, so they share
///     a handful of pages), then each subtree hanging below laid out in
///     van-Emde-Boas order, so a root-to-leaf walk inside a subtree stays
///     within O(log) block clusters instead of striding level-by-level
///     across the whole slab.
enum class NodeLayout : uint32_t { kIdOrder = 0, kDescent = 1 };

/// "id-order" / "descent".
const char* NodeLayoutName(NodeLayout layout);

class BloomSampleTree {
 public:
  static constexpr int64_t kNoNode = -1;

  struct Node {
    uint64_t lo = 0;  ///< range start (inclusive)
    uint64_t hi = 0;  ///< range end (exclusive), clipped to M
    uint32_t level = 0;
    int64_t left = kNoNode;
    int64_t right = kNoNode;
    /// Cached filter popcount (t1 in the estimator); kept in sync by the
    /// builders and Insert so samplers avoid an O(m) recount per visit.
    uint64_t set_bits = 0;
    BloomFilter filter;

    /// Legacy owning flavor: the filter allocates its own bit payload.
    Node(uint64_t lo_in, uint64_t hi_in, uint32_t level_in,
         std::shared_ptr<const HashFamily> family)
        : lo(lo_in), hi(hi_in), level(level_in), filter(std::move(family)) {}

    /// Arena flavor: the filter's payload is a block of `arena`, so node
    /// filters built in sequence pack contiguously. All builders use this.
    Node(uint64_t lo_in, uint64_t hi_in, uint32_t level_in,
         std::shared_ptr<const HashFamily> family, FilterArena* arena)
        : lo(lo_in),
          hi(hi_in),
          level(level_in),
          filter(std::move(family), arena) {}

    /// Snapshot flavor: the filter adopts an already-filled span (a block
    /// of a loaded or mmap'ed slab), so loaders can place node payloads at
    /// arbitrary blocks of the arena image — the descent layout's id→block
    /// permutation — without copying or re-hashing.
    Node(uint64_t lo_in, uint64_t hi_in, uint32_t level_in,
         std::shared_ptr<const HashFamily> family, BitVector bits)
        : lo(lo_in),
          hi(hi_in),
          level(level_in),
          filter(std::move(family), std::move(bits)) {}
  };

  /// Builds the complete tree of Definition 5.1.
  static Result<BloomSampleTree> BuildComplete(const TreeConfig& config);

  /// Shared-family flavor: builds with `family` instead of a freshly
  /// created instance. Filter compatibility across the library is pointer
  /// identity on the family, so several trees built this way (a forest's
  /// shards) can all serve one query filter / QueryContext. `family` must
  /// match the config's (kind, k, m, seed).
  static Result<BloomSampleTree> BuildComplete(
      const TreeConfig& config, std::shared_ptr<const HashFamily> family);

  /// Builds the pruned tree of Section 5.2 over the occupied ids
  /// `occupied` (must be sorted, unique, all < config.namespace_size).
  static Result<BloomSampleTree> BuildPruned(const TreeConfig& config,
                                             std::vector<uint64_t> occupied);

  /// Shared-family flavor of BuildPruned (see BuildComplete above).
  static Result<BloomSampleTree> BuildPruned(
      const TreeConfig& config, std::vector<uint64_t> occupied,
      std::shared_ptr<const HashFamily> family);

  const TreeConfig& config() const { return config_; }
  /// Adjusts the Section 5.6 estimate-threshold at query time (it is a
  /// traversal policy, not a build-time property; node filters are
  /// threshold-independent).
  void set_intersection_threshold(double threshold) {
    BSR_CHECK(threshold >= 0.0, "threshold must be >= 0");
    config_.intersection_threshold = threshold;
  }
  /// Adjusts the reconstruction fan-out width at query time (0 = hardware
  /// concurrency, 1 = serial; like intersection_threshold it is traversal
  /// policy, not tree identity, and is not serialized). Like
  /// set_intersection_threshold this is a plain field write: do not call
  /// it while queries are in flight on other threads — quiesce first.
  void set_query_threads(uint32_t threads) {
    config_.query_threads = threads;
  }
  /// Adjusts the fan-out workload gate at query time (see
  /// TreeConfig::min_parallel_work; 0 = always fan out). Same caveats as
  /// set_query_threads: plain field write, quiesce queries first.
  void set_min_parallel_work(uint64_t work) {
    config_.min_parallel_work = work;
  }
  const std::shared_ptr<const HashFamily>& family_ptr() const {
    return family_;
  }
  bool pruned() const { return pruned_; }
  /// Occupied universe (empty vector for complete trees).
  const std::vector<uint64_t>& occupied() const { return occupied_; }

  int64_t root() const { return nodes_.empty() ? kNoNode : 0; }
  const Node& node(int64_t id) const {
    BSR_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size(),
              "node id out of range");
    return nodes_[static_cast<size_t>(id)];
  }
  size_t node_count() const { return nodes_.size(); }
  bool IsLeaf(int64_t id) const { return node(id).level == config_.depth; }

  /// Number of candidate elements a leaf scan at `id` will touch.
  uint64_t LeafCandidateCount(int64_t id) const;

  /// Candidate elements below node `id`: the occupied ids in its range for
  /// pruned trees, the whole (clipped) range otherwise. An upper bound on
  /// the membership queries a traversal of the subtree can issue — the
  /// workload estimate behind the min_parallel_work fan-out gate.
  uint64_t SubtreeCandidateCount(int64_t id) const;

  /// Calls fn(x) for each element the leaf scan at `id` must test: the
  /// occupied ids in the leaf range for pruned trees, the whole range
  /// otherwise.
  template <typename Fn>
  void ForEachLeafCandidate(int64_t id, Fn&& fn) const {
    const Node& leaf = node(id);
    if (pruned_) {
      auto it = std::lower_bound(occupied_.begin(), occupied_.end(), leaf.lo);
      for (; it != occupied_.end() && *it < leaf.hi; ++it) fn(*it);
    } else {
      for (uint64_t x = leaf.lo; x < leaf.hi; ++x) fn(x);
    }
  }

  /// Runs the batched membership scan of leaf `id`'s candidates against
  /// `query`, appending the positives to *out in ascending order and
  /// counting one membership query per candidate. The shared leaf-scan
  /// pipeline of BstSampler and BstReconstructor: candidates are gathered
  /// into kHashBlock-sized blocks and run through FilterContained — one
  /// virtual hash call per block instead of one per candidate.
  void ScanLeafCandidates(int64_t id, const BloomFilter& query,
                          OpCounters* counters,
                          std::vector<uint64_t>* out) const;

  /// Dynamically marks `x` as occupied (pruned trees only): inserts x into
  /// every filter on its root-to-leaf path, creating missing nodes, and
  /// updates the occupied list. O(depth · m-bit ops + |M′|) per call; batch
  /// rebuilds are preferable for bulk loads. With a WAL attached the
  /// record is appended (and synced per policy) BEFORE any in-memory
  /// mutation, so an acknowledged insert is exactly one that recovery will
  /// replay; a failed append leaves the tree untouched.
  Status Insert(uint64_t x);

  /// Opt-in delete support — the counting-bloom leaf backend. Builds one
  /// exact CountingBloomFilter per leaf from the occupied set (each id was
  /// inserted exactly once, so the counters are true collision counts and
  /// Remove's decrements are safe). Idempotent; pruned trees only. The
  /// backend is an in-memory maintenance structure: snapshots do not
  /// persist it, so re-enable after loading (WAL replay does this
  /// automatically on the first kRemove record).
  Status EnableCountingLeaves();
  bool counting_leaves() const { return counting_leaves_; }

  /// Dynamically removes `x` (pruned trees with counting leaves only):
  /// logs a kRemove record (WAL attached ⇒ log-before-mutate, same
  /// discipline as Insert), drops x from the occupied list, decrements the
  /// leaf's counters and rewrites its bit filter from the positive-counter
  /// pattern, then rebuilds each ancestor on the path as the exact union
  /// of its children. Removing an absent id is a no-op (mirrors Insert's
  /// idempotence). Without EnableCountingLeaves() the call is refused with
  /// kUnsupported — plain Bloom leaves cannot unset bits.
  Status Remove(uint64_t x);

  /// Attaches a write-ahead log: subsequent Inserts are logged before they
  /// mutate. Attach AFTER replay (replayed records must not be re-logged).
  /// Pass nullptr to detach. The tree owns the writer.
  void AttachWal(std::unique_ptr<WalWriter> wal) { wal_ = std::move(wal); }
  /// The attached log writer, or nullptr (e.g. for flushing: wal()->Sync()).
  WalWriter* wal() const { return wal_.get(); }
  /// Releases the writer without closing it (compaction re-seats it).
  std::unique_ptr<WalWriter> DetachWal() { return std::move(wal_); }

  /// Best-effort software prefetch of node `id`'s filter payload, issued a
  /// node ahead of the intersection that will read it so the arena block's
  /// leading lines (dense kernel) or the words a sparse query will gather
  /// are in flight while the sibling's estimate computes. No-op for
  /// kNoNode; never changes results.
  void PrefetchFilter(int64_t id, const BloomQueryView& view) const {
    if (id == kNoNode) return;
    const BitVector& bits = nodes_[static_cast<size_t>(id)].filter.bits();
    const uint64_t* words = bits.word_data();
    if (view.sparse()) {
      const BitVector::SparseView& sv = view.sparse_view();
      const size_t limit =
          sv.word_index.size() < kPrefetchSparseWords ? sv.word_index.size()
                                                      : kPrefetchSparseWords;
      for (size_t i = 0; i < limit; ++i) {
        __builtin_prefetch(&words[sv.word_index[i]], 0, 1);
      }
      return;
    }
    const size_t lines = (bits.word_count() + 7) / 8;
    const size_t limit = lines < kPrefetchDenseLines ? lines : kPrefetchDenseLines;
    for (size_t i = 0; i < limit; ++i) {
      __builtin_prefetch(words + 8 * i, 0, 1);
    }
  }

  /// Prefetches both children's filter blocks of an internal node —
  /// the shared descend-step idiom of BstSampler and BstReconstructor,
  /// issued before the first estimate reads either child. Under the
  /// kDescent layout siblings are adjacent blocks (and near their
  /// parent), so the two prefetch runs land on the same pages/lines a
  /// cold (or freshly mmap'ed) descent is about to fault in anyway.
  void PrefetchChildren(const Node& node, const BloomQueryView& view) const {
    PrefetchFilter(node.left, view);
    PrefetchFilter(node.right, view);
  }

  /// Convenience: a fresh empty query filter compatible with this tree.
  BloomFilter MakeQueryFilter() const { return BloomFilter(family_); }
  /// Convenience: a query filter holding `keys`.
  BloomFilter MakeQueryFilter(const std::vector<uint64_t>& keys) const;

  /// Total bit-payload memory of all node filters, in bytes (the metric of
  /// Tables 2/3 and Figure 14).
  size_t MemoryBytes() const;

  /// Payload bytes of the filter arena, including reserved-but-unused
  /// growth headroom (MemoryBytes() counts only live node payloads).
  size_t ArenaMemoryBytes() const { return arena_.MemoryBytes(); }
  /// True when every node filter sits in one contiguous slab (bulk-built
  /// trees; dynamic inserts may append further chunks).
  bool ArenaContiguous() const { return arena_.contiguous(); }

  /// Physical block layout of this tree's node filters. Builders always
  /// produce kIdOrder; the snapshot loaders materialize whatever layout
  /// the file was saved with. Pure storage placement — logical ids,
  /// traversal order, and every query result are layout-independent.
  NodeLayout node_layout() const { return node_layout_; }

  /// Computes the kDescent id→block permutation for this tree's current
  /// structure: block_of[id] is the slab block node `id`'s filter occupies.
  /// Top kDescentBfsLevels levels in BFS order at the front, then each
  /// subtree below in recursive van-Emde-Boas order (left to right).
  /// Deterministic — a pure function of the tree shape. Used by the v2
  /// snapshot writer; returned by value so callers (benches, tests) can
  /// inspect it.
  std::vector<uint32_t> ComputeDescentOrder() const;

 private:
  friend class TreeSerializer;  // persistence (see core/tree_io.h)

  /// Prefetch depth caps: 8 leading cache lines of a dense operand, 32
  /// gathered words of a sparse one — enough to hide the first misses
  /// without flooding the load queue (past that, the kernels' own streaming
  /// loads / 8-wide gathers supply the memory-level parallelism).
  static constexpr size_t kPrefetchDenseLines = 8;
  static constexpr size_t kPrefetchSparseWords = 32;

  /// Levels of the tree grouped in BFS order at the front of the kDescent
  /// layout: 4 levels = 15 blocks, the prefix every single descent walks.
  static constexpr uint32_t kDescentBfsLevels = 4;

  /// Recursive van-Emde-Boas assignment over the subtree at `root`,
  /// restricted to its first `levels` levels; blocks number from *next.
  void AssignVebBlocks(int64_t root, uint32_t levels, uint32_t* next,
                       std::vector<uint32_t>* block_of) const;

  /// Appends (in left-to-right order) the existing descendants exactly
  /// `levels_below` levels under `root`.
  void CollectDescendantsAt(int64_t root, uint32_t levels_below,
                            std::vector<int64_t>* out) const;

  BloomSampleTree(TreeConfig config, std::shared_ptr<const HashFamily> family,
                  bool pruned)
      : config_(config), family_(std::move(family)), pruned_(pruned) {
    arena_.Configure((config_.m + 63) / 64, 0);
  }

  /// Width of an (unclipped) range at `level`.
  uint64_t RangeWidthAtLevel(uint32_t level) const {
    return config_.LeafRangeSize() << (config_.depth - level);
  }

  /// A leaf's slice of the sorted occupied_ array, recorded during the
  /// structure pass of BuildPruned and filled (possibly in parallel)
  /// afterwards.
  struct LeafFill {
    int64_t id;
    size_t begin;
    size_t end;
  };

  /// Recursive pruned construction over occupied_[begin, end). Builds the
  /// node *structure* only — filters stay empty; each leaf's occupied
  /// slice is appended to *leaf_fills for the subsequent fill pass.
  int64_t BuildPrunedSubtree(uint32_t level, uint64_t lo, uint64_t hi,
                             size_t begin, size_t end,
                             std::vector<LeafFill>* leaf_fills);

  /// The occupied_ index where a node's range splits between its children
  /// — the one piece of shape logic CountPrunedNodes and BuildPrunedSubtree
  /// must share so the counting pre-pass stays in lockstep with the build
  /// (BuildPruned checks the two agree after the structure pass).
  uint64_t PrunedSplitPoint(uint32_t level, uint64_t lo, size_t begin,
                            size_t end) const;

  /// Counts the nodes BuildPrunedSubtree would create over
  /// occupied_[begin, end), so the arena can reserve exactly once.
  uint64_t CountPrunedNodes(uint32_t level, uint64_t lo, uint64_t hi,
                            size_t begin, size_t end) const;

  TreeConfig config_;
  std::shared_ptr<const HashFamily> family_;
  bool pruned_;
  /// Backing store for every node filter's bit payload; declared before
  /// nodes_ so the spans' storage is constructed first. Blocks are
  /// address-stable, so moving the tree keeps the spans valid (the tree is
  /// move-only — the arena cannot be copied).
  FilterArena arena_;
  std::vector<Node> nodes_;
  std::vector<uint64_t> occupied_;
  /// Physical placement of the filter blocks (see node_layout()). Set by
  /// the snapshot loaders; freshly built trees are id-ordered.
  NodeLayout node_layout_ = NodeLayout::kIdOrder;
  /// Write-ahead logging of Inserts; nullptr = not logging (the default —
  /// bulk builds and read-only query serving never pay for it).
  std::unique_ptr<WalWriter> wal_;
  /// The counting-bloom leaf backend (EnableCountingLeaves): node id of a
  /// leaf → its maintenance counters. Node ids are stable (nodes are never
  /// erased), so the map survives Insert's node creation.
  std::unordered_map<int64_t, CountingBloomFilter> leaf_counters_;
  bool counting_leaves_ = false;

  /// Rewrites leaf `leaf_id`'s bit filter as the positive-counter pattern
  /// of its counting backend (bit i set ⟺ counter i > 0).
  void RebuildLeafFromCounters(int64_t leaf_id);
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_BLOOM_SAMPLE_TREE_H_
