#include "src/core/group_commit.h"

#include <thread>

namespace bloomsample {

GroupCommitWal::GroupCommitWal(std::unique_ptr<WalWriter> wal,
                               GroupCommitOptions options)
    : wal_(std::move(wal)), options_(options) {
  BSR_CHECK(wal_ != nullptr, "GroupCommitWal requires an opened writer");
}

Status GroupCommitWal::Commit(const std::vector<WalMutation>& muts) {
  if (muts.empty()) return Status::OK();
  return CommitInternal(&muts, /*force_sync=*/false);
}

Status GroupCommitWal::CommitOne(WalOp op, uint64_t id) {
  std::vector<WalMutation> one(1);
  one[0].op = op;
  one[0].id = id;
  return CommitInternal(&one, /*force_sync=*/false);
}

Status GroupCommitWal::Fence() {
  static const std::vector<WalMutation> kEmpty;
  return CommitInternal(&kEmpty, /*force_sync=*/true);
}

Status GroupCommitWal::Rotate(const std::string& rotated_path) {
  std::unique_lock<std::mutex> lock(mu_);
  // Wait out the active leader only — queued committers have not touched
  // the file yet and will open the next group on the fresh log. Holding
  // mu_ for the whole rotation keeps new leaders from starting.
  cv_.wait(lock, [&] { return !leader_active_; });
  if (!latch_.ok()) return latch_;

  FileSystem* fs = wal_->options().fs;
  const std::string path = wal_->path();
  const uint64_t fingerprint = wal_->fingerprint();
  const WalOptions options = wal_->options();

  Status st = wal_->Sync();  // fence the unsynced tail into the old epoch
  if (st.ok()) st = wal_->Close();
  if (st.ok()) st = fs->Rename(path, rotated_path);
  if (st.ok()) st = fs->SyncDirOf(path);
  if (st.ok()) {
    auto fresh = WalWriter::Open(path, fingerprint, /*next_seq=*/1, options);
    if (fresh.ok()) {
      wal_ = std::move(fresh).value();
    } else {
      st = fresh.status();
    }
  }
  if (!st.ok()) {
    latch_ = Status::ReadOnly("log rotation failed, latching read-only: " +
                              st.ToString());
    latch_cause_ = st;
    // Mid-rotation state is ambiguous (the log may be half-renamed);
    // TryRecover refuses it regardless of what errno says.
    rotation_latched_ = true;
    lock.unlock();
    cv_.notify_all();
    return st;
  }
  return Status::OK();
}

void GroupCommitWal::ReplaceWal(std::unique_ptr<WalWriter> wal) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !leader_active_; });
  // Close the old writer best-effort: its records were either fenced (in
  // which case the reload just replayed them) or NACKed under a latch the
  // fresh writer supersedes — a close failure here has nothing to latch.
  if (wal_ != nullptr) (void)wal_->Close();
  wal_ = std::move(wal);
  latch_ = Status::OK();
  latch_cause_ = Status::OK();
  rotation_latched_ = false;
  pending_discard_records_ = 0;
  lock.unlock();
  cv_.notify_all();
}

bool GroupCommitWal::read_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !latch_.ok();
}

Status GroupCommitWal::read_only_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latch_;
}

Status GroupCommitWal::latch_cause() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latch_cause_;
}

uint64_t GroupCommitWal::recover_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recover_count_;
}

Status GroupCommitWal::TryRecover() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !leader_active_; });
  if (latch_.ok()) return Status::OK();
  if (rotation_latched_) {
    return Status::Internal(
        "latched mid-rotation: the log's location is ambiguous, refusing "
        "automatic recovery (" + latch_cause_.ToString() + ")");
  }
  if (wal_ == nullptr) return latch_;  // writer detached; nothing to probe
  // mu_ held throughout: no leader can start (CommitInternal fails fast on
  // latch_, and a pre-latch queued waiter needs mu_ to become leader), so
  // the writer is exclusively ours — same discipline as Rotate.
  if (wal_->dead()) {
    Status st = wal_->DropUnsyncedTailRecords(pending_discard_records_);
    if (!st.ok()) return st;
    pending_discard_records_ = 0;
    st = wal_->Repair();
    if (!st.ok()) return st;
  }
  // The repaired descriptor is not trusted until a probe record round-
  // trips through append AND fsync — fsyncgate taught us a reported
  // success is the only acceptable evidence, and only for a fresh fd.
  Status st = wal_->AppendNoSync(WalOp::kNoop, 0);
  if (st.ok()) st = wal_->Sync();
  if (!st.ok()) return st;  // writer is dead again; the latch stays
  latch_ = Status::OK();
  latch_cause_ = Status::OK();
  ++recover_count_;
  lock.unlock();
  cv_.notify_all();
  return Status::OK();
}

uint64_t GroupCommitWal::commit_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commit_count_;
}

uint64_t GroupCommitWal::group_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_count_;
}

uint64_t GroupCommitWal::fsync_count() const {
  // mu_ pins wal_ itself (Rotate swaps it under mu_); the count is an
  // atomic inside WalWriter because the active leader advances it with
  // mu_ released — Stats() pollers read it during live ingest.
  std::lock_guard<std::mutex> lock(mu_);
  return wal_->sync_count();
}

Status GroupCommitWal::CommitInternal(const std::vector<WalMutation>* muts,
                                      bool force_sync) {
  Batch me;
  me.muts = muts;
  me.force_sync = force_sync;

  std::unique_lock<std::mutex> lock(mu_);
  if (!latch_.ok()) return latch_;
  queue_.push_back(&me);
  // Follower until done, or leader once the slot frees up and we are the
  // oldest waiter.
  cv_.wait(lock, [&] {
    return me.done ||
           (!leader_active_ && !queue_.empty() && queue_.front() == &me);
  });
  if (me.done) return me.result;

  // Leader: this round's group is everything queued so far. Later
  // arrivals queue behind and form the next group.
  leader_active_ = true;
  ++group_count_;
  std::vector<Batch*> group(queue_.begin(), queue_.end());
  queue_.clear();
  lock.unlock();

  // The writer is exclusively ours while leader_active_; no lock held
  // across the appends/fsyncs so new committers can keep queueing.
  const Status round = RunGroup(&group);

  lock.lock();
  if (!round.ok() && latch_.ok()) {
    latch_ = Status::ReadOnly(
        "wal latched read-only after unrecoverable I/O failure: " +
        round.ToString());
    latch_cause_ = round;
  }
  const bool policy_fences =
      wal_ != nullptr &&
      wal_->options().policy == WalSyncPolicy::kEveryRecord;
  for (Batch* b : group) {
    if (round.ok()) {
      b->result = Status::OK();
    } else {
      // Latched mid-round: a batch is still acknowledged if its records
      // met the policy's acknowledgement rule before the failure — fenced
      // under kEveryRecord/force, appended otherwise. Exactly the records
      // recovery can replay.
      const bool needs_fence = b->force_sync || policy_fences;
      const bool acked =
          needs_fence ? b->fenced : b->appended == b->muts->size();
      b->result = acked ? Status::OK() : latch_;
    }
    if (b->result.ok()) ++commit_count_;
    b->done = true;
  }
  if (!round.ok()) {
    // Count the trailing run of NACKed appended records still buffered in
    // the writer's unsynced tail. TryRecover drops exactly these before
    // repairing: their committers were told "failed", so re-logging them
    // would make replay diverge from the acknowledged state. The scan
    // stops at the last acked batch with bytes in the file — records
    // before it are spoken for and must be re-appended verbatim.
    for (auto it = group.rbegin(); it != group.rend(); ++it) {
      Batch* b = *it;
      if (!b->result.ok()) {
        pending_discard_records_ += b->appended;
      } else if (b->appended > 0) {
        break;
      }
    }
  }
  leader_active_ = false;
  lock.unlock();
  cv_.notify_all();
  return me.result;
}

Status GroupCommitWal::RunGroup(std::vector<Batch*>* group) {
  uint64_t attempts = 0;

  // Append phase: every batch in arrival order, resuming through repairs
  // (a failed append consumes no sequence number, so the retry re-encodes
  // the identical record).
  for (size_t bi = 0; bi < group->size();) {
    Batch* b = (*group)[bi];
    if (b->appended == b->muts->size()) {
      ++bi;
      continue;
    }
    const WalMutation& mut = (*b->muts)[b->appended];
    const Status st = wal_->AppendNoSync(mut.op, mut.id);
    if (st.ok()) {
      ++b->appended;
      continue;
    }
    const Status repaired = RepairWithBackoff(&attempts, group);
    if (!repaired.ok()) return st;  // surface the original failure
  }

  // Fence phase: one fsync covers the whole group (the entire point).
  bool force = false;
  for (const Batch* b : *group) force = force || b->force_sync;
  const uint64_t before = wal_->sync_count();
  const Status st = force ? wal_->Sync() : wal_->MaybeSync();
  if (st.ok()) {
    if (wal_->sync_count() > before) {
      for (Batch* b : *group) b->fenced = true;
    }
    return Status::OK();
  }
  const Status repaired = RepairWithBackoff(&attempts, group);
  if (!repaired.ok()) return st;
  // A successful Repair re-appended and fsynced everything — it IS the
  // fence for this group.
  return Status::OK();
}

Status GroupCommitWal::RepairWithBackoff(uint64_t* attempts,
                                         std::vector<Batch*>* group) {
  while (*attempts < options_.max_repair_attempts) {
    ++*attempts;
    const uint64_t shift = *attempts - 1 < 10 ? *attempts - 1 : 10;
    std::this_thread::sleep_for(options_.backoff_base * (1ull << shift));
    const Status st = wal_->Repair();
    if (st.ok()) {
      // Repair fsynced the full appended content: every fully appended
      // batch is now durable.
      for (Batch* b : *group) {
        if (b->appended == b->muts->size()) b->fenced = true;
      }
      return Status::OK();
    }
  }
  return Status::ResourceExhausted("wal repair retry budget exhausted");
}

}  // namespace bloomsample
