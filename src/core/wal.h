// Write-ahead delta log for dynamic inserts (and, with counting-bloom
// leaves, removes).
//
// A v2 snapshot is an immutable bulk artifact: rewriting the whole image
// on every Insert would turn an O(depth · m) operation into an O(file)
// one. Instead, each snapshot `<path>` may carry a sidecar log at
// `<path>.wal` holding the mutations applied since the image was written.
// Recovery is replay: LoadTreeFromFile opens the image, then re-applies
// the log's records in order — Insert is idempotent (inserting a present
// id is a no-op), so replaying an already-applied prefix is harmless and
// the recovered tree is bit-identical to one that never crashed.
//
// On-disk layout (little-endian throughout):
//
//   header (32 B):  'BSTW' u32 | version u32 | config fingerprint u64 |
//                   reserved u64 | XXH64(first 24 B) u64
//   record (32 B):  payload length u32 (= 20) |
//                   payload { seq u64 | op u32 | id u64 } |
//                   XXH64(payload) u64
//
// The fingerprint hashes the tree-identity fields of TreeConfig, so a log
// can never replay into a tree with different geometry. Sequence numbers
// are dense (1, 2, 3, …): a gap, a checksum mismatch, a bad length, or a
// torn tail all mark the FIRST invalid record, and replay amputates the
// file there — everything before it is intact by construction (records
// are appended in order and fsync is a prefix fence).
//
// Online compaction rotates the log instead of truncating it: the live
// `<path>.wal` is renamed to `<path>.wal.old` (sequence space frozen) and
// a fresh `<path>.wal` starts at seq 1. A loader replays `.wal.old` first,
// then `.wal`; compaction deletes `.wal.old` only after the image that
// absorbed it is durable, so every crash point leaves image ∪ logs
// complete.
//
// Sync policy is the durability/throughput dial (bench/micro_ingest.cpp
// measures it): kEveryRecord fsyncs per append (no acknowledged insert is
// ever lost), kInterval fsyncs every N appends (bounded loss window),
// kNone never fsyncs (crash loses the OS-buffered tail; the tree still
// recovers to a consistent prefix).
//
// Failure handling is fsyncgate-aware: after ANY failed append or fsync
// the writer latches dead — it never re-fsyncs a descriptor whose dirty
// pages the kernel may already have dropped. Repair() recovers the honest
// way: truncate the file back to the last provably durable byte, reopen
// the descriptor, re-append the records the failed fence did not cover
// (identical bytes — sequence numbers are preserved), and fence again.
#ifndef BLOOMSAMPLE_CORE_WAL_H_
#define BLOOMSAMPLE_CORE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/core/tree_config.h"
#include "src/util/file_system.h"
#include "src/util/status.h"

namespace bloomsample {

/// Logged mutation kinds. kRemove records replay only into trees whose
/// leaves use the counting-bloom backend (plain Bloom filters cannot
/// unset bits); replay surfaces a clear error otherwise. kNoop records
/// mutate nothing — lane recovery appends one and fsyncs it to prove a
/// reopened descriptor round-trips before un-latching; replay consumes
/// the sequence number and moves on.
enum class WalOp : uint32_t { kInsert = 1, kRemove = 2, kNoop = 3 };

struct WalRecord {
  uint64_t seq = 0;  ///< dense, 1-based
  WalOp op = WalOp::kInsert;
  uint64_t id = 0;  ///< the namespace element
};

/// An unsequenced mutation — what callers hand to the commit paths; the
/// writer assigns the sequence number at append time.
struct WalMutation {
  WalOp op = WalOp::kInsert;
  uint64_t id = 0;
};

enum class WalSyncPolicy : uint32_t {
  kEveryRecord = 0,  ///< fsync after every append
  kInterval = 1,     ///< fsync every sync_interval appends
  kNone = 2,         ///< never fsync (OS decides)
};

/// "every" / "interval" / "none".
const char* WalSyncPolicyName(WalSyncPolicy policy);

struct WalOptions {
  WalSyncPolicy policy = WalSyncPolicy::kEveryRecord;
  uint64_t sync_interval = 64;  ///< for kInterval
  /// File system the writer appends through; nullptr = FileSystem::Default().
  FileSystem* fs = nullptr;
};

/// `<snapshot path>.wal` — the sidecar convention shared by the writer,
/// replay, the loaders, and compaction.
std::string WalPathFor(const std::string& snapshot_path);

/// `<snapshot path>.wal.old` — the rotated-out log a background compaction
/// is folding into the next image. Loaders replay it BEFORE the live log.
std::string OldWalPathFor(const std::string& snapshot_path);

/// XXH64 over the tree-identity fields of `config` (namespace_size, m, k,
/// hash_kind, seed, depth). Runtime policy knobs (threads, thresholds) are
/// excluded — they never change what a record means.
uint64_t WalConfigFingerprint(const TreeConfig& config);

/// Appends checksummed records to a log file. Single writer per log, NOT
/// thread-safe — the tree owns its writer (BloomSampleTree::AttachWal);
/// concurrent committers go through GroupCommitWal, which funnels every
/// append through one leader at a time.
class WalWriter {
 public:
  /// Opens `path` for appending. A missing or header-less file is created
  /// fresh (header written and fsynced, creation fenced with a directory
  /// sync); an existing log must carry a valid header with a matching
  /// fingerprint. `next_seq` is the first sequence number this writer will
  /// emit — pass WalReplayStats::next_seq after replay, 1 for a new log.
  static Result<std::unique_ptr<WalWriter>> Open(const std::string& path,
                                                 uint64_t fingerprint,
                                                 uint64_t next_seq,
                                                 const WalOptions& options);

  /// Appends one record (assigning it the next sequence number) and syncs
  /// per policy. On error the log tail is suspect: the writer latches dead
  /// and every later Append fails until Repair() — but the on-disk prefix
  /// up to the last successful sync remains replayable regardless.
  Status Append(WalOp op, uint64_t id);

  /// Appends without the policy sync — the group-commit building block:
  /// the leader appends a whole batch, then fences once with MaybeSync().
  Status AppendNoSync(WalOp op, uint64_t id);

  /// The policy's sync decision for the current unsynced tail: kEveryRecord
  /// always fences, kInterval fences when the interval is due, kNone never.
  Status MaybeSync();

  /// Explicit durability fence, regardless of policy. A FAILED fence
  /// latches the writer dead: per fsyncgate, the kernel may have dropped
  /// the dirty pages, so retrying fsync on the same descriptor and
  /// believing its success would silently lose records.
  Status Sync();

  /// Recovers a dead writer without trusting a poisoned descriptor:
  /// truncates the file to the last provably durable byte, reopens it, re-
  /// appends every record the failed fence left uncovered (same bytes,
  /// same seqs — the writer buffers its unsynced tail for exactly this),
  /// and fences. On success the writer is alive again and nothing was
  /// lost; on failure it stays dead and Repair may be retried (each step
  /// is idempotent). No-op on a healthy writer.
  Status Repair();

  /// Drops the LAST `n` buffered unsynced records before a Repair — the
  /// un-latch path uses this to forget records whose commits were already
  /// NACKed (re-logging them would make replay diverge from the
  /// acknowledged state). Rewinds the sequence counter to match, so the
  /// repaired log stays dense. Only meaningful on a dead writer; the
  /// records must still be in the unsynced tail.
  Status DropUnsyncedTailRecords(uint64_t n);

  /// Empties the log back to its 32-byte header (the post-compaction
  /// reset): truncate + fsync, sequence numbers restart at 1.
  Status Reset();

  Status Close();

  bool dead() const { return dead_; }
  const WalOptions& options() const { return options_; }
  /// The config fingerprint this log was opened with (rotation reopens
  /// the fresh log under the same identity).
  uint64_t fingerprint() const { return fingerprint_; }
  uint64_t next_seq() const { return next_seq_; }
  /// Records appended through this writer (not counting replayed ones).
  uint64_t appended() const { return appended_; }
  /// Successful fsyncs issued by this writer (bench: group-commit
  /// factor). Atomic so stats pollers (GroupCommitWal::fsync_count) can
  /// read it while a commit leader is mid-sync.
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, std::unique_ptr<WritableFile> file,
            const WalOptions& options, uint64_t fingerprint,
            uint64_t next_seq, uint64_t base_bytes)
      : path_(std::move(path)),
        file_(std::move(file)),
        options_(options),
        fingerprint_(fingerprint),
        next_seq_(next_seq),
        durable_bytes_(base_bytes) {}

  std::string path_;
  std::unique_ptr<WritableFile> file_;
  WalOptions options_;
  uint64_t fingerprint_;
  uint64_t next_seq_;
  uint64_t appended_ = 0;
  uint64_t unsynced_ = 0;  ///< appends since the last fsync
  std::atomic<uint64_t> sync_count_{0};
  bool dead_ = false;  ///< failed append/fsync poisons the tail until Repair
  /// Byte length of the file prefix known durable (content at open +
  /// successfully fenced appends). Repair truncates here.
  uint64_t durable_bytes_;
  /// Encoded records appended but not yet covered by a successful fsync —
  /// the bytes Repair re-appends after truncating.
  std::string unsynced_tail_;
};

/// What replay found (and fixed) in a log.
struct WalReplayStats {
  bool present = false;             ///< a log file existed
  uint64_t records_replayed = 0;    ///< valid records consumed, in order
                                    ///< (kNoop probes count: they hold seqs)
  bool recovered_corruption = false;  ///< a torn/corrupt tail was cut off
  uint64_t next_seq = 1;            ///< first seq a writer should emit
};

/// Replays `path` in order, calling `apply` for each valid record. Stops
/// at the first invalid one — bad length, checksum mismatch, sequence gap,
/// torn tail, unknown op — and truncates the physical file there, so a
/// later writer appends onto a clean prefix. A missing file is not an
/// error (fresh tree). A mismatched config fingerprint IS an error: that
/// log belongs to a different tree. Errors from `apply` abort the replay
/// unchanged (a kRemove hitting a plain-Bloom tree surfaces here).
Result<WalReplayStats> ReplayWal(
    const std::string& path, uint64_t fingerprint,
    const std::function<Status(const WalRecord&)>& apply,
    FileSystem* fs = nullptr);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_WAL_H_
