// BSTSample (Algorithm 1, Sections 5.3–5.6): sampling from a query Bloom
// filter with a BloomSampleTree.
//
// Descent rules at an internal node:
//   * estimate |left ∩ b| and |right ∩ b| with the Papapetrou estimator,
//     treating estimates below the configured threshold as empty (Sec 5.6);
//   * both empty  → this path was a false-set-overlap, return NULL;
//   * one side    → follow it;
//   * both        → follow one child with probability proportional to its
//     estimate; if that subtree comes back NULL, backtrack into the other.
// At a leaf the range (occupied ids only, for pruned trees) is scanned with
// membership queries and a reservoir picks uniformly among positives.
//
// SampleMany implements the single-pass multi-sampling of Section 5.3: r
// paths descend together, splitting at each node by independent biased
// coin flips, and each visited leaf is scanned once regardless of how many
// paths land on it.
//
// Every descent runs on a QueryContext: the query's sparse view and cached
// set-bit count make each internal node cost one O(nnz-words) AND-popcount
// (dense queries fall back to the dense kernel — the kernels are
// bit-identical, so samples match the historical dense path draw for
// draw), and the context's scratch buffers make steady-state descents
// allocation-free. The BloomFilter overloads build a throwaway context;
// callers issuing many operations against one query should build the
// context once and reuse it.
#ifndef BLOOMSAMPLE_CORE_BST_SAMPLER_H_
#define BLOOMSAMPLE_CORE_BST_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"
#include "src/core/query_context.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"

namespace bloomsample {

class BstSampler {
 public:
  /// How to pick a child when both intersections are non-empty. The paper
  /// weights by estimated intersection size (kProportional), which is what
  /// makes the samples near-uniform; kUniformSplit (50/50) exists as an
  /// ablation — it biases toward sparsely populated subtrees.
  enum class BranchPolicy { kProportional, kUniformSplit };

  /// The tree must outlive the sampler.
  explicit BstSampler(const BloomSampleTree* tree,
                      BranchPolicy policy = BranchPolicy::kProportional)
      : tree_(tree), policy_(policy) {
    BSR_CHECK(tree != nullptr, "BstSampler needs a tree");
  }

  /// One (near-)uniform sample from S ∪ S(B), or nullopt when every path
  /// died on false-set-overlaps (or the filter is empty). The query filter
  /// must share the tree's hash family.
  std::optional<uint64_t> Sample(const BloomFilter& query, Rng* rng,
                                 OpCounters* counters = nullptr) const;

  /// Reusable-context flavor: `ctx` must have been built for this tree.
  std::optional<uint64_t> Sample(QueryContext* ctx, Rng* rng,
                                 OpCounters* counters = nullptr) const;

  /// r samples in one descent. With `with_replacement` false (default) the
  /// result has no duplicates and may be shorter than r; with true, each
  /// path draws independently at its leaf.
  std::vector<uint64_t> SampleMany(const BloomFilter& query, size_t r,
                                   Rng* rng, bool with_replacement = false,
                                   OpCounters* counters = nullptr) const;

  /// Reusable-context flavor: `ctx` must have been built for this tree.
  std::vector<uint64_t> SampleMany(QueryContext* ctx, size_t r, Rng* rng,
                                   bool with_replacement = false,
                                   OpCounters* counters = nullptr) const;

  const BloomSampleTree& tree() const { return *tree_; }

 private:
  /// Estimated |child ∩ query|, with the Section 5.6 threshold applied;
  /// 0.0 for absent children. Counts one intersection per present child.
  double ChildEstimate(int64_t child, const QueryContext& ctx,
                       OpCounters* counters) const;

  std::optional<uint64_t> SampleNode(int64_t id, QueryContext* ctx, Rng* rng,
                                     OpCounters* counters) const;

  void SampleManyNode(int64_t id, size_t r, QueryContext* ctx, Rng* rng,
                      bool with_replacement, OpCounters* counters,
                      std::vector<uint64_t>* out) const;

  /// Scans a leaf and appends up to r uniform picks among positives.
  void SampleLeaf(int64_t id, size_t r, QueryContext* ctx, Rng* rng,
                  bool with_replacement, OpCounters* counters,
                  std::vector<uint64_t>* out) const;

  /// Probability of descending left given both children are viable.
  double LeftProbability(double left_est, double right_est) const {
    return policy_ == BranchPolicy::kProportional
               ? left_est / (left_est + right_est)
               : 0.5;
  }

  const BloomSampleTree* tree_;
  BranchPolicy policy_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_BST_SAMPLER_H_
