// BSTSample (Algorithm 1, Sections 5.3–5.6): sampling from a query Bloom
// filter with a BloomSampleTree.
//
// Descent rules at an internal node:
//   * estimate |left ∩ b| and |right ∩ b| with the Papapetrou estimator,
//     treating estimates below the configured threshold as empty (Sec 5.6);
//   * both empty  → this path was a false-set-overlap, backtrack (NULL at
//     the root);
//   * one side    → follow it;
//   * both        → follow one child with probability proportional to its
//     estimate; if that subtree comes back NULL, backtrack into the other.
// At a leaf the range (occupied ids only, for pruned trees) is scanned with
// membership queries and a uniform pick is made among positives.
//
// Execution model: every descent runs on a QueryContext. The context's
// EstimateCache memoizes t∧ per node and its leaf cache records each
// leaf's positives, so against a warm context a descent costs O(depth)
// with zero kernel invocations and zero membership queries — the
// amortized regime the multi-draw workloads (figures 3–6, the multisample
// ablation) actually run in. The BloomFilter overloads build a throwaway
// context; callers issuing many operations against one query should build
// the context once and reuse it.
//
// Two multi-draw entry points:
//   * SampleMany — the paper's single-pass multi-sampling (Section 5.3):
//     r paths descend together sharing one RNG, splitting at each node by
//     independent biased coin flips; supports without-replacement
//     semantics. Output depends on r (the paths interleave RNG use).
//   * SampleBatch — the batched multi-draw engine: draw i runs on the
//     counter-based stream Rng::ForStream(seed, i), so the batch is
//     draw-for-draw bit-identical to r serial Sample calls on those
//     streams — for every batch size, every TreeConfig::query_threads
//     value (draws are partitioned across the thread pool in contiguous
//     chunks), and every SIMD tier. The descent is level-synchronous:
//     pending draws travel down the tree as one frontier, each node's
//     estimate is resolved once per batch (and once per *context*
//     lifetime, via the cache) and its draws split between the children
//     by their own coin flips; paths that die backtrack individually on
//     the cached state.
#ifndef BLOOMSAMPLE_CORE_BST_SAMPLER_H_
#define BLOOMSAMPLE_CORE_BST_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"
#include "src/core/query_context.h"
#include "src/util/op_counters.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace bloomsample {

class BstSampler {
 public:
  /// How to pick a child when both intersections are non-empty. The paper
  /// weights by estimated intersection size (kProportional), which is what
  /// makes the samples near-uniform; kUniformSplit (50/50) exists as an
  /// ablation — it biases toward sparsely populated subtrees.
  enum class BranchPolicy { kProportional, kUniformSplit };

  /// The tree must outlive the sampler.
  explicit BstSampler(const BloomSampleTree* tree,
                      BranchPolicy policy = BranchPolicy::kProportional)
      : tree_(tree), policy_(policy) {
    BSR_CHECK(tree != nullptr, "BstSampler needs a tree");
  }

  /// One (near-)uniform sample from S ∪ S(B), or nullopt when every path
  /// died on false-set-overlaps (or the filter is empty). The query filter
  /// must share the tree's hash family.
  std::optional<uint64_t> Sample(const BloomFilter& query, Rng* rng,
                                 OpCounters* counters = nullptr) const;

  /// Reusable-context flavor: `ctx` must have been built for this tree.
  std::optional<uint64_t> Sample(QueryContext* ctx, Rng* rng,
                                 OpCounters* counters = nullptr) const;

  /// r samples in one descent. With `with_replacement` false (default) the
  /// result has no duplicates and may be shorter than r; with true, each
  /// path draws independently at its leaf.
  std::vector<uint64_t> SampleMany(const BloomFilter& query, size_t r,
                                   Rng* rng, bool with_replacement = false,
                                   OpCounters* counters = nullptr) const;

  /// Reusable-context flavor: `ctx` must have been built for this tree.
  std::vector<uint64_t> SampleMany(QueryContext* ctx, size_t r, Rng* rng,
                                   bool with_replacement = false,
                                   OpCounters* counters = nullptr) const;

  /// r independent draws (with replacement), one per counter-based RNG
  /// stream: entry i equals Sample(ctx, Rng::ForStream(seed, i)) bit for
  /// bit (nullopt = that draw's every path died on false overlaps). The
  /// batch is partitioned across TreeConfig::query_threads when the
  /// workload clears the min_parallel_work gate; output never depends on
  /// the thread count or batch size. Parallel execution requires a caching
  /// context (the caches are the thread-safe shared state); a non-caching
  /// context falls back to a serial — still grouped — descent.
  std::vector<std::optional<uint64_t>> SampleBatch(
      QueryContext* ctx, size_t r, uint64_t seed,
      OpCounters* counters = nullptr) const;

  /// Throwaway-context flavor of SampleBatch.
  std::vector<std::optional<uint64_t>> SampleBatch(
      const BloomFilter& query, size_t r, uint64_t seed,
      OpCounters* counters = nullptr) const;

  /// One pre-routed draw for SampleBatchPrepared: its slot in the caller's
  /// output vector, and its RNG stream positioned exactly where the serial
  /// protocol would have it on arrival at this tree's root (the caller has
  /// already consumed any routing randomness).
  struct PreparedDraw {
    uint32_t index;
    Rng rng;
  };

  /// Batched descent over caller-prepared draws. The forest layer
  /// partitions a batch across shards in a single pass and hands each
  /// shard tree exactly one frontier through this entry point. Serial by
  /// design — the caller owns the parallelism axis (one call per shard),
  /// and each draw writes only (*out)[draw.index], so concurrent calls
  /// with disjoint index sets on distinct contexts are safe. An empty
  /// tree or empty query records nullopt for every draw.
  void SampleBatchPrepared(QueryContext* ctx, std::vector<PreparedDraw> draws,
                           OpCounters* counters,
                           std::vector<std::optional<uint64_t>>* out) const;

  const BloomSampleTree& tree() const { return *tree_; }

 private:
  /// One pending draw of a batch: its slot in the output, its private RNG
  /// stream, and the untried siblings of every both-viable node on its
  /// path (LIFO — the backtracking order of the serial descent).
  struct BatchDraw {
    uint32_t index;
    Rng rng;
    std::vector<int64_t> alts;
  };

  /// Estimated |child ∩ query|, with the Section 5.6 threshold applied;
  /// 0.0 for absent children. Served from the context's EstimateCache —
  /// one kernel invocation per (node, context), ever.
  double ChildEstimate(int64_t child, const QueryContext& ctx,
                       OpCounters* counters) const;

  /// The serial descent core: walks from `id` to a sample, consuming `rng`
  /// exactly as Algorithm 1 does (one coin per both-viable node, one pick
  /// per multi-positive leaf) and backtracking through `alts`. Both
  /// Sample and the batch engine's failure path run on this one routine —
  /// that is what makes batched output bit-identical to serial by
  /// construction.
  std::optional<uint64_t> DescendFrom(int64_t id, QueryContext* ctx, Rng* rng,
                                      std::vector<int64_t>* alts,
                                      OpCounters* counters) const;

  /// Level-synchronous batched descent: resolves node `id` once and routes
  /// every pending draw in `draws` toward its leaf. Draws whose paths die
  /// finish individually via DescendFrom on the cached state.
  void BatchDescend(int64_t id, std::vector<BatchDraw> draws,
                    QueryContext* ctx, OpCounters* counters,
                    std::vector<std::optional<uint64_t>>* out) const;

  /// Finishes a draw whose current path died: backtracks into its deepest
  /// untried sibling (or records nullopt).
  void FinishFailedDraw(BatchDraw* draw, QueryContext* ctx,
                        OpCounters* counters,
                        std::vector<std::optional<uint64_t>>* out) const;

  void SampleManyNode(int64_t id, size_t r, QueryContext* ctx, Rng* rng,
                      bool with_replacement, OpCounters* counters,
                      std::vector<uint64_t>* out) const;

  /// Scans a leaf (through the context's leaf cache) and appends up to r
  /// uniform picks among positives.
  void SampleLeaf(int64_t id, size_t r, QueryContext* ctx, Rng* rng,
                  bool with_replacement, OpCounters* counters,
                  std::vector<uint64_t>* out) const;

  /// Probability of descending left given both children are viable.
  double LeftProbability(double left_est, double right_est) const {
    return policy_ == BranchPolicy::kProportional
               ? left_est / (left_est + right_est)
               : 0.5;
  }

  const BloomSampleTree* tree_;
  BranchPolicy policy_;
  LazyThreadPool pool_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_BST_SAMPLER_H_
