// Set reconstruction with a BloomSampleTree (Section 6).
//
// Recursive traversal: at each node intersect the node's filter with the
// query filter; an (estimated-)empty intersection prunes the subtree, a
// leaf with a non-empty intersection is brute-force scanned, and internal
// results are unioned. With the intersection threshold at 0 the pruning
// test is the exact "AND has no set bit", and the output is *guaranteed*
// to be exactly S ∪ S(B) (every true or false positive x has all its k
// bits set in every ancestor's filter, so no pruning step can drop it).
// With a positive threshold the traversal is cheaper but inherits the
// Section 5.6 caveat.
#ifndef BLOOMSAMPLE_CORE_BST_RECONSTRUCTOR_H_
#define BLOOMSAMPLE_CORE_BST_RECONSTRUCTOR_H_

#include <cstdint>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"
#include "src/util/op_counters.h"

namespace bloomsample {

class BstReconstructor {
 public:
  enum class PruningMode {
    /// Prune a subtree only when the bitwise AND with the query is all
    /// zero. Guaranteed-exact output (= DictionaryAttack), the default.
    kExact,
    /// Additionally prune sparse nodes whose estimated intersection falls
    /// below the tree's configured threshold (the paper's Section 5.6
    /// heuristic). Faster, but may drop elements whose signal is buried in
    /// estimator noise — the ablation_threshold bench quantifies the loss.
    kThresholded,
  };

  /// The tree must outlive the reconstructor.
  explicit BstReconstructor(const BloomSampleTree* tree) : tree_(tree) {
    BSR_CHECK(tree != nullptr, "BstReconstructor needs a tree");
  }

  /// Returns S ∪ S(B), ascending. The query filter must share the tree's
  /// hash family.
  ///
  /// The default is the paper's thresholded traversal: with correctly
  /// sized filters we measure zero lost elements at the default threshold
  /// (see bench/ablation_threshold), and it is the mode that actually
  /// beats DictionaryAttack. Callers that need a hard completeness
  /// guarantee (e.g. forensics) pass kExact and pay roughly
  /// DictionaryAttack cost in membership queries when the stored set
  /// touches most leaves.
  std::vector<uint64_t> Reconstruct(
      const BloomFilter& query, OpCounters* counters = nullptr,
      PruningMode mode = PruningMode::kThresholded) const;

  const BloomSampleTree& tree() const { return *tree_; }

 private:
  void ReconstructNode(int64_t id, const BloomFilter& query,
                       uint64_t query_bits, PruningMode mode,
                       OpCounters* counters, std::vector<uint64_t>* out) const;

  const BloomSampleTree* tree_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_BST_RECONSTRUCTOR_H_
