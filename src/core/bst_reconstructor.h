// Set reconstruction with a BloomSampleTree (Section 6).
//
// Recursive traversal: at each node intersect the node's filter with the
// query filter; an (estimated-)empty intersection prunes the subtree, a
// leaf with a non-empty intersection is brute-force scanned, and internal
// results are unioned. With the intersection threshold at 0 the pruning
// test is the exact "AND has no set bit", and the output is *guaranteed*
// to be exactly S ∪ S(B) (every true or false positive x has all its k
// bits set in every ancestor's filter, so no pruning step can drop it).
// With a positive threshold the traversal is cheaper but inherits the
// Section 5.6 caveat.
//
// Execution model: node tests run through the query's BloomQueryView
// (sparse AND-popcount for sparse queries) and the QueryContext's
// EstimateCache — the same per-(node, query) t∧ memo BstSampler fills, so
// a context warmed by either algorithm serves the other, and a repeated
// Reconstruct on one context performs zero intersection kernels and zero
// membership queries (cache hits are surfaced in OpCounters).
//
// The traversal fans out across TreeConfig::query_threads (0 = hardware
// concurrency, 1 = serial): the top of the tree is expanded serially into
// a frontier of surviving subtree roots; when the frontier is wide enough
// AND the candidate workload below it clears the min_parallel_work gate
// (per amortizing lane; fan-out is declined outright on single-hardware-
// thread hosts, where extra lanes are pure scheduling overhead), the
// disjoint subtrees are traversed in parallel and their outputs
// concatenated in frontier order — which is left-to-right dyadic order, so
// the merged result is ascending and *identical for every thread count and
// gate setting* (node tests depend only on node + query bits, never on
// scheduling).
#ifndef BLOOMSAMPLE_CORE_BST_RECONSTRUCTOR_H_
#define BLOOMSAMPLE_CORE_BST_RECONSTRUCTOR_H_

#include <cstdint>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"
#include "src/core/query_context.h"
#include "src/util/op_counters.h"
#include "src/util/thread_pool.h"

namespace bloomsample {

class BstReconstructor {
 public:
  enum class PruningMode {
    /// Prune a subtree only when fewer than k bits are shared with the
    /// query. Guaranteed-exact output (= DictionaryAttack), the default.
    kExact,
    /// Additionally prune sparse nodes whose estimated intersection falls
    /// below the tree's configured threshold (the paper's Section 5.6
    /// heuristic). Faster, but may drop elements whose signal is buried in
    /// estimator noise — the ablation_threshold bench quantifies the loss.
    kThresholded,
  };

  /// The tree must outlive the reconstructor. Reconstruct is safe to call
  /// concurrently on one shared instance (the lazily-created thread pool
  /// is handled by LazyThreadPool; all per-call state is local) —
  /// provided the tree's query-time knobs (set_intersection_threshold,
  /// set_query_threads, set_min_parallel_work) are not being mutated at
  /// the same time.
  explicit BstReconstructor(const BloomSampleTree* tree) : tree_(tree) {
    BSR_CHECK(tree != nullptr, "BstReconstructor needs a tree");
  }

  /// Returns S ∪ S(B), ascending. The query filter must share the tree's
  /// hash family.
  ///
  /// The default is the paper's thresholded traversal: with correctly
  /// sized filters we measure zero lost elements at the default threshold
  /// (see bench/ablation_threshold), and it is the mode that actually
  /// beats DictionaryAttack. Callers that need a hard completeness
  /// guarantee (e.g. forensics) pass kExact and pay roughly
  /// DictionaryAttack cost in membership queries when the stored set
  /// touches most leaves.
  std::vector<uint64_t> Reconstruct(
      const BloomFilter& query, OpCounters* counters = nullptr,
      PruningMode mode = PruningMode::kThresholded) const;

  /// Reusable-context flavor: `ctx` must have been built for this tree.
  /// Reusing one (caching) context across calls — or across this and
  /// BstSampler — is what amortizes the per-node kernels away.
  std::vector<uint64_t> Reconstruct(
      const QueryContext& ctx, OpCounters* counters = nullptr,
      PruningMode mode = PruningMode::kThresholded) const;

  const BloomSampleTree& tree() const { return *tree_; }

 private:
  /// Tests one node (visit + intersection accounting, through the
  /// context's EstimateCache): true when its subtree survives pruning.
  bool NodePasses(int64_t id, const QueryContext& ctx, PruningMode mode,
                  OpCounters* counters) const;

  /// Traverses below a node that already passed NodePasses: scans it if it
  /// is a leaf, else tests-and-recurses into both children.
  void TraverseSubtree(int64_t id, const QueryContext& ctx, PruningMode mode,
                       OpCounters* counters, std::vector<uint64_t>* out) const;

  /// NodePasses + TraverseSubtree — the classic recursive step.
  void ReconstructNode(int64_t id, const QueryContext& ctx, PruningMode mode,
                       OpCounters* counters, std::vector<uint64_t>* out) const;

  const BloomSampleTree* tree_;
  LazyThreadPool pool_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_CORE_BST_RECONSTRUCTOR_H_
