#include "src/core/bst_sampler.h"

#include <algorithm>

#include "src/bloom/cardinality.h"

namespace bloomsample {

double BstSampler::ChildEstimate(int64_t child, const QueryContext& ctx,
                                 OpCounters* counters) const {
  if (child == BloomSampleTree::kNoNode) return 0.0;
  const BloomSampleTree::Node& node = tree_->node(child);
  // Node t1 comes from the builder-maintained cache, query t2 from the
  // view, t∧ from the context's EstimateCache — against a warm context
  // this whole function touches no filter words at all.
  const uint64_t t_and = ctx.AndPopcount(child, counters);

  // Lossless emptiness test: any element of S ∪ S(B) inside this node's
  // range has all k of its bits set in BOTH filters, so a subtree that can
  // still produce a sample always shows t∧ >= k. Pruning below k shared
  // bits can never starve a real positive — it strictly dominates the
  // naive "AND is all-zero" test. (Empirically, thresholding on the
  // *estimated* intersection size instead loses elements wholesale at the
  // paper's default parameters; see bench/ablation_threshold.)
  if (t_and < node.filter.k()) return 0.0;

  const double estimate = EstimateIntersectionFromBits(
      node.set_bits, ctx.query_bits(), t_and, node.filter.m(),
      node.filter.k());

  // Opt-in Section 5.6 thresholding (lossy, off by default). Applied after
  // the cache, so the memoized t∧ stays valid across threshold changes.
  const double threshold = tree_->config().intersection_threshold;
  if (threshold > 0.0 && estimate < threshold) return 0.0;

  // Branch weight: the corrected estimate, floored at half an element so
  // noise-dominated (dense) nodes are never starved — a floor of ~one
  // potential element is exactly the mass such a subtree might hide.
  return estimate > 0.5 ? estimate : 0.5;
}

std::optional<uint64_t> BstSampler::DescendFrom(int64_t id, QueryContext* ctx,
                                                Rng* rng,
                                                std::vector<int64_t>* alts,
                                                OpCounters* counters) const {
  for (;;) {
    CountNodeVisit(counters);
    if (tree_->IsLeaf(id)) {
      const std::vector<uint64_t>& positives = ctx->LeafPositives(id, counters);
      if (!positives.empty()) {
        // A single-positive leaf consumes no randomness (there is nothing
        // to choose), matching the r=1 without-replacement leaf pick.
        if (positives.size() == 1) return positives.front();
        return positives[static_cast<size_t>(rng->Below(positives.size()))];
      }
      // Fall through to backtracking: this leaf was a false-set-overlap.
    } else {
      const BloomSampleTree::Node& node = tree_->node(id);
      // Start both children's filter blocks toward cache before the first
      // estimate reads either — unless both estimates are already
      // memoized, in which case no filter word will be read at all.
      if (!ctx->EstimateCached(node.left) ||
          !ctx->EstimateCached(node.right)) {
        tree_->PrefetchChildren(node, ctx->view());
      }
      const double left_est = ChildEstimate(node.left, *ctx, counters);
      const double right_est = ChildEstimate(node.right, *ctx, counters);
      if (left_est > 0.0 && right_est > 0.0) {
        const bool go_left =
            rng->NextDouble() < LeftProbability(left_est, right_est);
        alts->push_back(go_left ? node.right : node.left);
        id = go_left ? node.left : node.right;
        continue;
      }
      if (left_est > 0.0) {
        id = node.left;
        continue;
      }
      if (right_est > 0.0) {
        id = node.right;
        continue;
      }
      // Both intersections (estimated) empty: we got here on a false path.
    }
    if (alts->empty()) return std::nullopt;
    CountBacktrack(counters);
    id = alts->back();
    alts->pop_back();
  }
}

std::optional<uint64_t> BstSampler::Sample(QueryContext* ctx, Rng* rng,
                                           OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "Sample: null query context");
  BSR_CHECK(&ctx->tree() == tree_, "query context built for a different tree");
  if (tree_->root() == BloomSampleTree::kNoNode || ctx->query_bits() == 0) {
    CountNullSample(counters);
    return std::nullopt;
  }
  std::vector<int64_t>& alts = ctx->alts_;
  alts.clear();
  const auto sample = DescendFrom(tree_->root(), ctx, rng, &alts, counters);
  if (!sample.has_value()) CountNullSample(counters);
  return sample;
}

std::optional<uint64_t> BstSampler::Sample(const BloomFilter& query, Rng* rng,
                                           OpCounters* counters) const {
  // A single descent touches every node at most once, so a throwaway
  // cache could never hit — skip its allocation.
  QueryContext ctx(*tree_, query, IntersectKernel::kAuto,
                   /*cache_estimates=*/false);
  return Sample(&ctx, rng, counters);
}

void BstSampler::SampleLeaf(int64_t id, size_t r, QueryContext* ctx, Rng* rng,
                            bool with_replacement, OpCounters* counters,
                            std::vector<uint64_t>* out) const {
  // One scan of the leaf's candidates serves all r paths that landed here
  // (the "single pass" economy of Section 5.3) — and, through the
  // context's leaf cache, every later descent that lands here too.
  const std::vector<uint64_t>& positives = ctx->LeafPositives(id, counters);
  if (positives.empty()) return;

  if (with_replacement) {
    for (size_t i = 0; i < r; ++i) {
      out->push_back(positives[rng->Below(positives.size())]);
    }
    return;
  }
  // Without replacement: uniform subset of size min(r, positives).
  if (positives.size() <= r) {
    out->insert(out->end(), positives.begin(), positives.end());
    return;
  }
  // Partial Fisher-Yates over a scratch copy (the cached positives are
  // shared between draws and must stay ascending).
  std::vector<uint64_t>& perm = ctx->scratch_;
  perm.assign(positives.begin(), positives.end());
  for (size_t i = 0; i < r; ++i) {
    const size_t j = i + static_cast<size_t>(rng->Below(perm.size() - i));
    std::swap(perm[i], perm[j]);
    out->push_back(perm[i]);
  }
}

void BstSampler::SampleManyNode(int64_t id, size_t r, QueryContext* ctx,
                                Rng* rng, bool with_replacement,
                                OpCounters* counters,
                                std::vector<uint64_t>* out) const {
  if (r == 0) return;
  CountNodeVisit(counters);
  if (tree_->IsLeaf(id)) {
    SampleLeaf(id, r, ctx, rng, with_replacement, counters, out);
    return;
  }

  const BloomSampleTree::Node& node = tree_->node(id);
  if (!ctx->EstimateCached(node.left) || !ctx->EstimateCached(node.right)) {
    tree_->PrefetchChildren(node, ctx->view());
  }
  const double left_est = ChildEstimate(node.left, *ctx, counters);
  const double right_est = ChildEstimate(node.right, *ctx, counters);
  if (left_est <= 0.0 && right_est <= 0.0) return;

  size_t to_left = 0;
  if (right_est <= 0.0) {
    to_left = r;
  } else if (left_est > 0.0) {
    const double p = LeftProbability(left_est, right_est);
    for (size_t i = 0; i < r; ++i) {
      if (rng->NextDouble() < p) ++to_left;
    }
  }

  const size_t before_left = out->size();
  if (to_left > 0) {
    SampleManyNode(node.left, to_left, ctx, rng, with_replacement, counters,
                   out);
  }
  const size_t got_left = out->size() - before_left;

  const size_t before_right = out->size();
  if (r - to_left > 0) {
    SampleManyNode(node.right, r - to_left, ctx, rng, with_replacement,
                   counters, out);
  }
  const size_t got_right = out->size() - before_right;

  // Backtracking, multi-path flavour: paths that died in one subtree are
  // re-routed into the other (once), mirroring the single-sample algorithm.
  const size_t left_deficit = to_left - got_left;
  if (left_deficit > 0 && right_est > 0.0) {
    CountBacktrack(counters, left_deficit);
    SampleManyNode(node.right, left_deficit, ctx, rng, with_replacement,
                   counters, out);
  }
  const size_t right_deficit = (r - to_left) - got_right;
  if (right_deficit > 0 && left_est > 0.0) {
    CountBacktrack(counters, right_deficit);
    SampleManyNode(node.left, right_deficit, ctx, rng, with_replacement,
                   counters, out);
  }
}

std::vector<uint64_t> BstSampler::SampleMany(QueryContext* ctx, size_t r,
                                             Rng* rng, bool with_replacement,
                                             OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "SampleMany: null query context");
  BSR_CHECK(&ctx->tree() == tree_, "query context built for a different tree");
  std::vector<uint64_t> out;
  if (tree_->root() == BloomSampleTree::kNoNode || ctx->query_bits() == 0 ||
      r == 0) {
    CountNullSample(counters, r);
    return out;
  }
  SampleManyNode(tree_->root(), r, ctx, rng, with_replacement, counters, &out);
  if (out.size() < r) CountNullSample(counters, r - out.size());
  if (!with_replacement) {
    // Deficit re-routing can revisit a leaf; enforce the no-duplicates
    // contract (the result may then be shorter than r).
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    std::shuffle(out.begin(), out.end(), *rng);
    if (out.size() > r) out.resize(r);
  }
  return out;
}

std::vector<uint64_t> BstSampler::SampleMany(const BloomFilter& query,
                                             size_t r, Rng* rng,
                                             bool with_replacement,
                                             OpCounters* counters) const {
  QueryContext ctx(*tree_, query);
  return SampleMany(&ctx, r, rng, with_replacement, counters);
}

void BstSampler::FinishFailedDraw(BatchDraw* draw, QueryContext* ctx,
                                  OpCounters* counters,
                                  std::vector<std::optional<uint64_t>>* out)
    const {
  std::optional<uint64_t> result;
  if (!draw->alts.empty()) {
    CountBacktrack(counters);
    const int64_t resume = draw->alts.back();
    draw->alts.pop_back();
    result = DescendFrom(resume, ctx, &draw->rng, &draw->alts, counters);
  }
  if (!result.has_value()) CountNullSample(counters);
  (*out)[draw->index] = result;
}

void BstSampler::BatchDescend(int64_t id, std::vector<BatchDraw> draws,
                              QueryContext* ctx, OpCounters* counters,
                              std::vector<std::optional<uint64_t>>* out) const {
  // Every pending draw logically visits this node, exactly as its serial
  // descent would.
  CountNodeVisit(counters, draws.size());
  if (tree_->IsLeaf(id)) {
    const std::vector<uint64_t>& positives = ctx->LeafPositives(id, counters);
    if (positives.empty()) {
      // The reference to a non-caching context's scratch is dead once the
      // failure path scans another leaf — but it is only read when
      // non-empty, and failures only happen on the empty branch.
      for (BatchDraw& draw : draws) {
        FinishFailedDraw(&draw, ctx, counters, out);
      }
      return;
    }
    for (BatchDraw& draw : draws) {
      (*out)[draw.index] =
          positives.size() == 1
              ? positives.front()
              : positives[static_cast<size_t>(
                    draw.rng.Below(positives.size()))];
    }
    return;
  }

  const BloomSampleTree::Node& node = tree_->node(id);
  if (!ctx->EstimateCached(node.left) || !ctx->EstimateCached(node.right)) {
    tree_->PrefetchChildren(node, ctx->view());
  }
  // One estimate per node per batch — the level-synchronous economy; the
  // context's cache extends it to one per node per *context*.
  const double left_est = ChildEstimate(node.left, *ctx, counters);
  const double right_est = ChildEstimate(node.right, *ctx, counters);
  if (left_est <= 0.0 && right_est <= 0.0) {
    for (BatchDraw& draw : draws) {
      FinishFailedDraw(&draw, ctx, counters, out);
    }
    return;
  }
  if (right_est <= 0.0) {
    BatchDescend(node.left, std::move(draws), ctx, counters, out);
    return;
  }
  if (left_est <= 0.0) {
    BatchDescend(node.right, std::move(draws), ctx, counters, out);
    return;
  }

  // Both viable: each draw flips its own biased coin (its private stream,
  // so the split is the multinomial the serial draws would realize) and
  // remembers the sibling for backtracking.
  const double p = LeftProbability(left_est, right_est);
  std::vector<BatchDraw> left_draws;
  std::vector<BatchDraw> right_draws;
  left_draws.reserve(draws.size());
  right_draws.reserve(draws.size());
  for (BatchDraw& draw : draws) {
    const bool go_left = draw.rng.NextDouble() < p;
    draw.alts.push_back(go_left ? node.right : node.left);
    (go_left ? left_draws : right_draws).push_back(std::move(draw));
  }
  draws.clear();
  if (!left_draws.empty()) {
    BatchDescend(node.left, std::move(left_draws), ctx, counters, out);
  }
  if (!right_draws.empty()) {
    BatchDescend(node.right, std::move(right_draws), ctx, counters, out);
  }
}

std::vector<std::optional<uint64_t>> BstSampler::SampleBatch(
    QueryContext* ctx, size_t r, uint64_t seed, OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "SampleBatch: null query context");
  BSR_CHECK(&ctx->tree() == tree_, "query context built for a different tree");
  BSR_CHECK(r < (1ULL << 32), "SampleBatch: batch size must fit in 32 bits");
  std::vector<std::optional<uint64_t>> out(r);
  if (tree_->root() == BloomSampleTree::kNoNode || ctx->query_bits() == 0 ||
      r == 0) {
    CountNullSample(counters, r);
    return out;
  }

  const TreeConfig& config = tree_->config();
  size_t lanes = ResolveThreadCount(config.query_threads);
  if (lanes > r) lanes = r;
  // The shared caches are the only thread-safe state; without them the
  // grouped descent leans on the context's scratch and must stay serial.
  if (lanes > 1 && !ctx->caching()) lanes = 1;
  if (lanes > 1 && config.min_parallel_work > 0) {
    // Work model: a warm draw costs ~depth+1 descent steps. Engage the
    // pool only when every amortizing lane gets min_parallel_work of it —
    // and never on a single-hardware-thread host, where extra lanes are
    // pure scheduling overhead.
    const size_t hw = ResolveThreadCount(0);
    const uint64_t steps =
        static_cast<uint64_t>(r) * (static_cast<uint64_t>(config.depth) + 1);
    const size_t amortizing = lanes < hw ? lanes : hw;
    if (hw <= 1 || steps < config.min_parallel_work * amortizing) lanes = 1;
  }

  const auto make_draws = [&](uint64_t lo, uint64_t hi) {
    std::vector<BatchDraw> draws;
    draws.reserve(static_cast<size_t>(hi - lo));
    for (uint64_t i = lo; i < hi; ++i) {
      draws.push_back(
          BatchDraw{static_cast<uint32_t>(i), Rng::ForStream(seed, i), {}});
    }
    return draws;
  };

  if (lanes <= 1) {
    BatchDescend(tree_->root(), make_draws(0, r), ctx, counters, &out);
    return out;
  }

  // Contiguous draw chunks across the pool: each chunk writes disjoint
  // output slots and its own counters; the shared context caches make the
  // cross-chunk work overlap free instead of redundant.
  const uint64_t grain = (r + lanes - 1) / lanes;
  const uint64_t chunks = (r + grain - 1) / grain;
  std::vector<OpCounters> chunk_counters(
      counters != nullptr ? static_cast<size_t>(chunks) : 0);
  pool_.Acquire(lanes)->ParallelFor(
      0, r, grain, [&](uint64_t lo, uint64_t hi) {
        OpCounters* chunk =
            counters != nullptr
                ? &chunk_counters[static_cast<size_t>(lo / grain)]
                : nullptr;
        BatchDescend(tree_->root(), make_draws(lo, hi), ctx, chunk, &out);
      });
  for (const OpCounters& chunk : chunk_counters) *counters += chunk;
  return out;
}

std::vector<std::optional<uint64_t>> BstSampler::SampleBatch(
    const BloomFilter& query, size_t r, uint64_t seed,
    OpCounters* counters) const {
  QueryContext ctx(*tree_, query);
  return SampleBatch(&ctx, r, seed, counters);
}

void BstSampler::SampleBatchPrepared(
    QueryContext* ctx, std::vector<PreparedDraw> draws, OpCounters* counters,
    std::vector<std::optional<uint64_t>>* out) const {
  BSR_CHECK(ctx != nullptr, "SampleBatchPrepared: null query context");
  BSR_CHECK(&ctx->tree() == tree_, "query context built for a different tree");
  BSR_CHECK(out != nullptr, "SampleBatchPrepared: null output vector");
  if (draws.empty()) return;
  if (tree_->root() == BloomSampleTree::kNoNode || ctx->query_bits() == 0) {
    for (const PreparedDraw& draw : draws) (*out)[draw.index] = std::nullopt;
    CountNullSample(counters, draws.size());
    return;
  }
  std::vector<BatchDraw> batch;
  batch.reserve(draws.size());
  for (PreparedDraw& draw : draws) {
    batch.push_back(BatchDraw{draw.index, draw.rng, {}});
  }
  BatchDescend(tree_->root(), std::move(batch), ctx, counters, out);
}

}  // namespace bloomsample
