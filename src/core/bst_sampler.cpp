#include "src/core/bst_sampler.h"

#include <algorithm>

#include "src/bloom/cardinality.h"
#include "src/sampling/reservoir.h"

namespace bloomsample {

double BstSampler::ChildEstimate(int64_t child, const QueryContext& ctx,
                                 OpCounters* counters) const {
  if (child == BloomSampleTree::kNoNode) return 0.0;
  const BloomSampleTree::Node& node = tree_->node(child);
  CountIntersectionKernel(counters, ctx.view().sparse(), 1,
                          ctx.view().words_touched());
  // Node t1 comes from the builder-maintained cache, query t2 from the
  // view; the AND-popcount below is the only per-node word work, and it
  // touches just the query's nonzero words on the sparse path.
  const uint64_t t_and = node.filter.AndPopcount(ctx.view());

  // Lossless emptiness test: any element of S ∪ S(B) inside this node's
  // range has all k of its bits set in BOTH filters, so a subtree that can
  // still produce a sample always shows t∧ >= k. Pruning below k shared
  // bits can never starve a real positive — it strictly dominates the
  // naive "AND is all-zero" test. (Empirically, thresholding on the
  // *estimated* intersection size instead loses elements wholesale at the
  // paper's default parameters; see bench/ablation_threshold.)
  if (t_and < node.filter.k()) return 0.0;

  const double estimate = EstimateIntersectionFromBits(
      node.set_bits, ctx.query_bits(), t_and, node.filter.m(),
      node.filter.k());

  // Opt-in Section 5.6 thresholding (lossy, off by default).
  const double threshold = tree_->config().intersection_threshold;
  if (threshold > 0.0 && estimate < threshold) return 0.0;

  // Branch weight: the corrected estimate, floored at half an element so
  // noise-dominated (dense) nodes are never starved — a floor of ~one
  // potential element is exactly the mass such a subtree might hide.
  return estimate > 0.5 ? estimate : 0.5;
}

std::optional<uint64_t> BstSampler::SampleNode(int64_t id, QueryContext* ctx,
                                               Rng* rng,
                                               OpCounters* counters) const {
  CountNodeVisit(counters);
  if (tree_->IsLeaf(id)) {
    std::vector<uint64_t>& picked = ctx->picked_;
    picked.clear();
    SampleLeaf(id, 1, ctx, rng, /*with_replacement=*/false, counters, &picked);
    if (picked.empty()) return std::nullopt;
    return picked.front();
  }

  const BloomSampleTree::Node& node = tree_->node(id);
  // Start both children's filter blocks toward cache before the first
  // estimate reads either — the right child's words load while the left
  // child's AND-popcount runs.
  tree_->PrefetchFilter(node.left, ctx->view());
  tree_->PrefetchFilter(node.right, ctx->view());
  const double left_est = ChildEstimate(node.left, *ctx, counters);
  const double right_est = ChildEstimate(node.right, *ctx, counters);
  if (left_est <= 0.0 && right_est <= 0.0) {
    // Both intersections (estimated) empty: we got here on a false path.
    return std::nullopt;
  }
  if (left_est <= 0.0) {
    return SampleNode(node.right, ctx, rng, counters);
  }
  if (right_est <= 0.0) {
    return SampleNode(node.left, ctx, rng, counters);
  }

  const bool go_left =
      rng->NextDouble() < LeftProbability(left_est, right_est);
  const int64_t first = go_left ? node.left : node.right;
  const int64_t second = go_left ? node.right : node.left;
  auto sample = SampleNode(first, ctx, rng, counters);
  if (!sample.has_value()) {
    CountBacktrack(counters);
    sample = SampleNode(second, ctx, rng, counters);
  }
  return sample;
}

std::optional<uint64_t> BstSampler::Sample(QueryContext* ctx, Rng* rng,
                                           OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "Sample: null query context");
  BSR_CHECK(&ctx->tree() == tree_, "query context built for a different tree");
  if (tree_->root() == BloomSampleTree::kNoNode || ctx->query_bits() == 0) {
    CountNullSample(counters);
    return std::nullopt;
  }
  const auto sample = SampleNode(tree_->root(), ctx, rng, counters);
  if (!sample.has_value()) CountNullSample(counters);
  return sample;
}

std::optional<uint64_t> BstSampler::Sample(const BloomFilter& query, Rng* rng,
                                           OpCounters* counters) const {
  QueryContext ctx(*tree_, query);
  return Sample(&ctx, rng, counters);
}

void BstSampler::SampleLeaf(int64_t id, size_t r, QueryContext* ctx, Rng* rng,
                            bool with_replacement, OpCounters* counters,
                            std::vector<uint64_t>* out) const {
  // One scan of the leaf's candidates serves all r paths that landed here
  // (the "single pass" economy of Section 5.3), through the tree's shared
  // batched membership pipeline. The positives buffer lives in the
  // context, so repeated descents reuse its capacity instead of
  // allocating per leaf.
  std::vector<uint64_t>& positives = ctx->positives_;
  positives.clear();
  tree_->ScanLeafCandidates(id, ctx->query(), counters, &positives);
  if (positives.empty()) return;

  if (with_replacement) {
    for (size_t i = 0; i < r; ++i) {
      out->push_back(positives[rng->Below(positives.size())]);
    }
    return;
  }
  // Without replacement: uniform subset of size min(r, positives).
  if (positives.size() <= r) {
    out->insert(out->end(), positives.begin(), positives.end());
    return;
  }
  // Partial Fisher-Yates for the first r slots.
  for (size_t i = 0; i < r; ++i) {
    const size_t j = i + static_cast<size_t>(rng->Below(positives.size() - i));
    std::swap(positives[i], positives[j]);
    out->push_back(positives[i]);
  }
}

void BstSampler::SampleManyNode(int64_t id, size_t r, QueryContext* ctx,
                                Rng* rng, bool with_replacement,
                                OpCounters* counters,
                                std::vector<uint64_t>* out) const {
  if (r == 0) return;
  CountNodeVisit(counters);
  if (tree_->IsLeaf(id)) {
    SampleLeaf(id, r, ctx, rng, with_replacement, counters, out);
    return;
  }

  const BloomSampleTree::Node& node = tree_->node(id);
  tree_->PrefetchFilter(node.left, ctx->view());
  tree_->PrefetchFilter(node.right, ctx->view());
  const double left_est = ChildEstimate(node.left, *ctx, counters);
  const double right_est = ChildEstimate(node.right, *ctx, counters);
  if (left_est <= 0.0 && right_est <= 0.0) return;

  size_t to_left = 0;
  if (right_est <= 0.0) {
    to_left = r;
  } else if (left_est > 0.0) {
    const double p = LeftProbability(left_est, right_est);
    for (size_t i = 0; i < r; ++i) {
      if (rng->NextDouble() < p) ++to_left;
    }
  }

  const size_t before_left = out->size();
  if (to_left > 0) {
    SampleManyNode(node.left, to_left, ctx, rng, with_replacement, counters,
                   out);
  }
  const size_t got_left = out->size() - before_left;

  const size_t before_right = out->size();
  if (r - to_left > 0) {
    SampleManyNode(node.right, r - to_left, ctx, rng, with_replacement,
                   counters, out);
  }
  const size_t got_right = out->size() - before_right;

  // Backtracking, multi-path flavour: paths that died in one subtree are
  // re-routed into the other (once), mirroring the single-sample algorithm.
  const size_t left_deficit = to_left - got_left;
  if (left_deficit > 0 && right_est > 0.0) {
    CountBacktrack(counters, left_deficit);
    SampleManyNode(node.right, left_deficit, ctx, rng, with_replacement,
                   counters, out);
  }
  const size_t right_deficit = (r - to_left) - got_right;
  if (right_deficit > 0 && left_est > 0.0) {
    CountBacktrack(counters, right_deficit);
    SampleManyNode(node.left, right_deficit, ctx, rng, with_replacement,
                   counters, out);
  }
}

std::vector<uint64_t> BstSampler::SampleMany(QueryContext* ctx, size_t r,
                                             Rng* rng, bool with_replacement,
                                             OpCounters* counters) const {
  BSR_CHECK(ctx != nullptr, "SampleMany: null query context");
  BSR_CHECK(&ctx->tree() == tree_, "query context built for a different tree");
  std::vector<uint64_t> out;
  if (tree_->root() == BloomSampleTree::kNoNode || ctx->query_bits() == 0 ||
      r == 0) {
    CountNullSample(counters, r);
    return out;
  }
  SampleManyNode(tree_->root(), r, ctx, rng, with_replacement, counters, &out);
  if (out.size() < r) CountNullSample(counters, r - out.size());
  if (!with_replacement) {
    // Deficit re-routing can revisit a leaf; enforce the no-duplicates
    // contract (the result may then be shorter than r).
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    std::shuffle(out.begin(), out.end(), *rng);
    if (out.size() > r) out.resize(r);
  }
  return out;
}

std::vector<uint64_t> BstSampler::SampleMany(const BloomFilter& query,
                                             size_t r, Rng* rng,
                                             bool with_replacement,
                                             OpCounters* counters) const {
  QueryContext ctx(*tree_, query);
  return SampleMany(&ctx, r, rng, with_replacement, counters);
}

}  // namespace bloomsample
