// The paper's "Simple" hash family, implemented as standard universal
// hashing: h_i(x) = ((a_i·x + b_i) mod p) mod m, with one shared prime
// p > max(universe, m) and per-function coefficients a_i ∈ [1, p),
// b_i ∈ [0, p).
//
// Why the intermediate prime matters: the naive form (a·x + b) mod m makes
// every pair x ≡ y (mod m) collide under ALL k functions simultaneously —
// each such y is then automatically a false positive, and the measured
// accuracy collapses by a factor of about M/m below the design target
// (we verified this empirically; see DESIGN.md §6). Reducing through p
// first removes the shared congruence structure while keeping the family
// weakly invertible (Section 4 of the paper): the preimages of a bit s
// under h_i are x = a_i⁻¹(t − b_i) mod p for t ∈ {s, s+m, s+2m, …} ∩ [0,p),
// about p/m ≈ M/m candidates — the same inversion cost the paper analyzes.
#ifndef BLOOMSAMPLE_HASH_SIMPLE_HASH_H_
#define BLOOMSAMPLE_HASH_SIMPLE_HASH_H_

#include <vector>

#include "src/hash/hash_family.h"
#include "src/util/math_util.h"

namespace bloomsample {

class SimpleHashFamily : public HashFamily {
 public:
  /// `universe` is the intended key range [0, universe): the prime is
  /// chosen just above max(universe, m), which keeps Preimages() cost at
  /// O(universe/m). Pass 0 when the key range is unknown — the prime then
  /// defaults to just above max(2^32, m), trading inversion speed for
  /// safety with arbitrary keys.
  SimpleHashFamily(size_t k, uint64_t m, uint64_t seed, uint64_t universe = 0);

  uint64_t Hash(size_t i, uint64_t key) const override;
  void HashAll(uint64_t key, uint64_t* out) const override;
  void HashBatch(const uint64_t* keys, size_t n,
                 uint64_t* out) const override;
  bool IsInvertible() const override { return true; }
  /// Appends the preimages of `bit` within [0, namespace_size). Output is
  /// NOT sorted. namespace_size must not exceed the universe the family
  /// was built for (keys beyond the prime would alias).
  Status Preimages(size_t i, uint64_t bit, uint64_t namespace_size,
                   std::vector<uint64_t>* out) const override;
  std::string Name() const override { return "simple"; }

  /// Parameters, exposed for tests.
  uint64_t p() const { return p_; }
  uint64_t a(size_t i) const { return a_[i]; }
  uint64_t b(size_t i) const { return b_[i]; }

 private:
  /// Devirtualized kernel shared by Hash/HashAll/HashBatch: `reduced` is
  /// key % p, already computed once per key by the batched callers.
  uint64_t HashReduced(size_t i, uint64_t reduced) const;

  /// key % p, skipping the reduction when the key is already < p (always
  /// true for tree builds, whose keys come from [0, M) ⊆ [0, p)).
  uint64_t ReduceKey(uint64_t key) const {
    if (key < p_) return key;
    return fast_ ? fm_p_.Mod(key) : key % p_;
  }

  uint64_t p_;
  /// p <= 2^32 (always, for realistic universes): a·x + b fits in 64 bits
  /// because (p-1)·p < 2^64, and both % p and % m run division-free
  /// through FastMod. The fallback __int128 path is only for universes
  /// beyond 2^32.
  bool fast_ = false;
  FastMod fm_p_;
  FastMod fm_m_;
  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
  std::vector<uint64_t> a_inv_;  // a_i^{-1} mod p, precomputed
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_HASH_SIMPLE_HASH_H_
