#include "src/hash/md5.h"

#include <cstring>

namespace bloomsample {

namespace {

// Per-round shift amounts (RFC 1321, Section 3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * abs(sin(i + 1))).
constexpr uint32_t kSineTable[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

inline uint32_t Rotl32(uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

}  // namespace

void Md5::Reset() {
  state_[0] = 0x67452301u;
  state_[1] = 0xefcdab89u;
  state_[2] = 0x98badcfeu;
  state_[3] = 0x10325476u;
  length_bits_ = 0;
  buffer_len_ = 0;
}

void Md5::ProcessBlock(const uint8_t* block) {
  uint32_t w[16];
  for (int i = 0; i < 16; ++i) {
    std::memcpy(&w[i], block + i * 4, 4);  // little-endian load
  }

  uint32_t a = state_[0];
  uint32_t b = state_[1];
  uint32_t c = state_[2];
  uint32_t d = state_[3];

  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const uint32_t tmp = d;
    d = c;
    c = b;
    b = b + Rotl32(a + f + kSineTable[i] + w[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::Update(const void* data, size_t len) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  length_bits_ += static_cast<uint64_t>(len) * 8;

  if (buffer_len_ > 0) {
    const size_t need = 64 - buffer_len_;
    const size_t take = len < need ? len : need;
    std::memcpy(buffer_ + buffer_len_, bytes, take);
    buffer_len_ += take;
    bytes += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
  while (len >= 64) {
    ProcessBlock(bytes);
    bytes += 64;
    len -= 64;
  }
  if (len > 0) {
    std::memcpy(buffer_, bytes, len);
    buffer_len_ = len;
  }
}

std::array<uint8_t, 16> Md5::Finish() {
  // Padding: a single 0x80 byte, zeros, then the 64-bit message length.
  const uint64_t length_bits = length_bits_;
  const uint8_t pad_byte = 0x80;
  Update(&pad_byte, 1);
  const uint8_t zero = 0x00;
  while (buffer_len_ != 56) Update(&zero, 1);

  uint8_t length_le[8];
  for (int i = 0; i < 8; ++i) {
    length_le[i] = static_cast<uint8_t>(length_bits >> (8 * i));
  }
  Update(length_le, 8);
  BSR_CHECK(buffer_len_ == 0, "MD5 padding did not align to a block");

  std::array<uint8_t, 16> digest;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      digest[i * 4 + j] = static_cast<uint8_t>(state_[i] >> (8 * j));
    }
  }
  return digest;
}

std::array<uint8_t, 16> Md5::Digest(const void* data, size_t len) {
  Md5 ctx;
  ctx.Update(data, len);
  return ctx.Finish();
}

std::string Md5::HexDigest(const std::string& data) {
  const auto digest = Digest(data.data(), data.size());
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

uint64_t Md5Key64(uint64_t key, uint64_t seed) {
  uint8_t buf[16];
  std::memcpy(buf, &seed, 8);
  std::memcpy(buf + 8, &key, 8);
  const auto digest = Md5::Digest(buf, sizeof(buf));
  uint64_t out;
  std::memcpy(&out, digest.data(), 8);
  return out;
}

}  // namespace bloomsample
