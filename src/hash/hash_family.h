// Hash family abstraction for Bloom filters.
//
// A HashFamily is k functions h_0..h_{k-1}, each mapping a 64-bit key to a
// bit position in [0, m). The paper (Table 1) evaluates three families:
//
//   * Simple  — h_i(x) = (a_i·x + b_i) mod m. Weakly invertible: given a bit
//               position one can enumerate all keys in the namespace that
//               map to it, which is what the HashInvert baseline needs.
//   * Murmur3 — MurmurHash3 x64-128, one seed per function.
//   * MD5     — RFC 1321 MD5 over (key, seed), first 8 digest bytes mod m.
//
// Families are immutable after construction and shared (shared_ptr) between
// the query Bloom filters and every node of a BloomSampleTree — the paper
// requires all of them to use identical (m, H).
#ifndef BLOOMSAMPLE_HASH_HASH_FAMILY_H_
#define BLOOMSAMPLE_HASH_HASH_FAMILY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/math_util.h"
#include "src/util/status.h"

namespace bloomsample {

class HashFamily {
 public:
  virtual ~HashFamily() = default;

  /// Number of hash functions.
  size_t k() const { return k_; }
  /// Output range: every hash value is in [0, m).
  uint64_t m() const { return m_; }
  /// Seed the family was constructed with (for provenance / cloning).
  uint64_t seed() const { return seed_; }

  /// Value of h_i(key), in [0, m). i must be < k().
  virtual uint64_t Hash(size_t i, uint64_t key) const = 0;

  /// Fills out[0..k) with h_0(key)..h_{k-1}(key). Default loops over Hash;
  /// families override when a batched computation is cheaper.
  virtual void HashAll(uint64_t key, uint64_t* out) const {
    for (size_t i = 0; i < k_; ++i) out[i] = Hash(i, key);
  }

  /// Hashes a batch of keys: fills out[j*k + i] = h_i(keys[j]) for
  /// j in [0, n), i in [0, k). This is the hot-path entry point — one
  /// virtual dispatch for the whole batch, with each family running a
  /// devirtualized inner loop. The default forwards to HashAll per key so
  /// third-party families stay correct without overriding.
  virtual void HashBatch(const uint64_t* keys, size_t n, uint64_t* out) const {
    for (size_t j = 0; j < n; ++j) HashAll(keys[j], out + j * k_);
  }

  /// True when Preimages() is supported (the "weakly invertible" property
  /// of Section 4 of the paper).
  virtual bool IsInvertible() const { return false; }

  /// Appends to *out every key x in [0, namespace_size) with
  /// h_i(x) == bit. Only meaningful when IsInvertible().
  virtual Status Preimages(size_t i, uint64_t bit, uint64_t namespace_size,
                           std::vector<uint64_t>* out) const {
    (void)i;
    (void)bit;
    (void)namespace_size;
    (void)out;
    return Status::Unsupported("hash family '" + Name() +
                               "' is not invertible");
  }

  /// Family name for reports ("simple", "murmur3", "md5").
  virtual std::string Name() const = 0;

 protected:
  HashFamily(size_t k, uint64_t m, uint64_t seed)
      : k_(k), m_(m), seed_(seed) {
    BSR_CHECK(k_ > 0, "hash family needs k >= 1");
    BSR_CHECK(m_ > 0, "hash family needs m >= 1");
  }

  const size_t k_;
  const uint64_t m_;
  const uint64_t seed_;
};

/// CRTP base for families of the shape h_i(key) = Kernel(key, seed_i) % m
/// with per-function seeds seed_i = seed + φ·(i+1) (Murmur3, MD5).
/// Precomputes the seeds and the division-free % m reduction, and supplies
/// the devirtualized HashAll/HashBatch loops so each family only provides
/// `static uint64_t HashKey(uint64_t key, uint64_t seed)` and Name().
template <typename Derived>
class SeededKeyHashFamily : public HashFamily {
 public:
  SeededKeyHashFamily(size_t k, uint64_t m, uint64_t seed)
      : HashFamily(k, m, seed) {
    seeds_.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      seeds_.push_back(seed + 0x9e3779b97f4a7c15ULL * (i + 1));
    }
    if (m <= (1ULL << 32)) {
      fast_ = true;
      fm_m_ = FastMod(m);
    }
  }

  uint64_t Hash(size_t i, uint64_t key) const override {
    BSR_CHECK(i < k_, "hash index out of range");
    return ReduceM(Derived::HashKey(key, seeds_[i]));
  }

  void HashAll(uint64_t key, uint64_t* out) const override {
    for (size_t i = 0; i < k_; ++i) {
      out[i] = ReduceM(Derived::HashKey(key, seeds_[i]));
    }
  }

  void HashBatch(const uint64_t* keys, size_t n,
                 uint64_t* out) const override {
    for (size_t j = 0; j < n; ++j) {
      uint64_t* dst = out + j * k_;
      for (size_t i = 0; i < k_; ++i) {
        dst[i] = ReduceM(Derived::HashKey(keys[j], seeds_[i]));
      }
    }
  }

 private:
  uint64_t ReduceM(uint64_t h) const { return fast_ ? fm_m_.Mod(h) : h % m_; }

  std::vector<uint64_t> seeds_;
  bool fast_ = false;
  FastMod fm_m_;
};

enum class HashFamilyKind { kSimple, kMurmur3, kMd5 };

/// Parses "simple" / "murmur3" / "md5" (case-sensitive).
Result<HashFamilyKind> ParseHashFamilyKind(const std::string& name);
std::string HashFamilyKindName(HashFamilyKind kind);

/// Factory. Validates arguments (k >= 1, m >= 1). `universe` is the key
/// range [0, universe) the family will be used with; it only affects the
/// simple family (prime-modulus choice / inversion cost — see
/// simple_hash.h) and may be 0 when unknown.
Result<std::shared_ptr<const HashFamily>> MakeHashFamily(HashFamilyKind kind,
                                                         size_t k, uint64_t m,
                                                         uint64_t seed,
                                                         uint64_t universe = 0);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_HASH_HASH_FAMILY_H_
