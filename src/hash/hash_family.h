// Hash family abstraction for Bloom filters.
//
// A HashFamily is k functions h_0..h_{k-1}, each mapping a 64-bit key to a
// bit position in [0, m). The paper (Table 1) evaluates three families:
//
//   * Simple  — h_i(x) = (a_i·x + b_i) mod m. Weakly invertible: given a bit
//               position one can enumerate all keys in the namespace that
//               map to it, which is what the HashInvert baseline needs.
//   * Murmur3 — MurmurHash3 x64-128, one seed per function.
//   * MD5     — RFC 1321 MD5 over (key, seed), first 8 digest bytes mod m.
//
// Families are immutable after construction and shared (shared_ptr) between
// the query Bloom filters and every node of a BloomSampleTree — the paper
// requires all of them to use identical (m, H).
#ifndef BLOOMSAMPLE_HASH_HASH_FAMILY_H_
#define BLOOMSAMPLE_HASH_HASH_FAMILY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace bloomsample {

class HashFamily {
 public:
  virtual ~HashFamily() = default;

  /// Number of hash functions.
  size_t k() const { return k_; }
  /// Output range: every hash value is in [0, m).
  uint64_t m() const { return m_; }
  /// Seed the family was constructed with (for provenance / cloning).
  uint64_t seed() const { return seed_; }

  /// Value of h_i(key), in [0, m). i must be < k().
  virtual uint64_t Hash(size_t i, uint64_t key) const = 0;

  /// Fills out[0..k) with h_0(key)..h_{k-1}(key). Default loops over Hash;
  /// families override when a batched computation is cheaper.
  virtual void HashAll(uint64_t key, uint64_t* out) const {
    for (size_t i = 0; i < k_; ++i) out[i] = Hash(i, key);
  }

  /// True when Preimages() is supported (the "weakly invertible" property
  /// of Section 4 of the paper).
  virtual bool IsInvertible() const { return false; }

  /// Appends to *out every key x in [0, namespace_size) with
  /// h_i(x) == bit. Only meaningful when IsInvertible().
  virtual Status Preimages(size_t i, uint64_t bit, uint64_t namespace_size,
                           std::vector<uint64_t>* out) const {
    (void)i;
    (void)bit;
    (void)namespace_size;
    (void)out;
    return Status::Unsupported("hash family '" + Name() +
                               "' is not invertible");
  }

  /// Family name for reports ("simple", "murmur3", "md5").
  virtual std::string Name() const = 0;

 protected:
  HashFamily(size_t k, uint64_t m, uint64_t seed)
      : k_(k), m_(m), seed_(seed) {
    BSR_CHECK(k_ > 0, "hash family needs k >= 1");
    BSR_CHECK(m_ > 0, "hash family needs m >= 1");
  }

  const size_t k_;
  const uint64_t m_;
  const uint64_t seed_;
};

enum class HashFamilyKind { kSimple, kMurmur3, kMd5 };

/// Parses "simple" / "murmur3" / "md5" (case-sensitive).
Result<HashFamilyKind> ParseHashFamilyKind(const std::string& name);
std::string HashFamilyKindName(HashFamilyKind kind);

/// Factory. Validates arguments (k >= 1, m >= 1). `universe` is the key
/// range [0, universe) the family will be used with; it only affects the
/// simple family (prime-modulus choice / inversion cost — see
/// simple_hash.h) and may be 0 when unknown.
Result<std::shared_ptr<const HashFamily>> MakeHashFamily(HashFamilyKind kind,
                                                         size_t k, uint64_t m,
                                                         uint64_t seed,
                                                         uint64_t universe = 0);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_HASH_HASH_FAMILY_H_
