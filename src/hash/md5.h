// MD5 (RFC 1321) implemented from scratch, plus a HashFamily adapter.
//
// MD5 is the paper's "expensive hash" in the Figure 7 comparison: it costs
// roughly an order of magnitude more per call than Murmur3 or the simple
// linear family, which is exactly the effect that figure demonstrates.
// MD5 is used here only as a hash-cost datapoint, never for security.
#ifndef BLOOMSAMPLE_HASH_MD5_H_
#define BLOOMSAMPLE_HASH_MD5_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/hash/hash_family.h"

namespace bloomsample {

/// Incremental MD5 context.
class Md5 {
 public:
  Md5() { Reset(); }

  void Reset();
  void Update(const void* data, size_t len);
  /// Finalizes and returns the 16-byte digest. The context must be Reset()
  /// before reuse.
  std::array<uint8_t, 16> Finish();

  /// One-shot digest.
  static std::array<uint8_t, 16> Digest(const void* data, size_t len);
  /// One-shot digest rendered as 32 lowercase hex characters.
  static std::string HexDigest(const std::string& data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[4];
  uint64_t length_bits_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// First 8 digest bytes of MD5(seed || key), as a little-endian u64.
uint64_t Md5Key64(uint64_t key, uint64_t seed);

class Md5HashFamily : public SeededKeyHashFamily<Md5HashFamily> {
 public:
  Md5HashFamily(size_t k, uint64_t m, uint64_t seed)
      : SeededKeyHashFamily(k, m, seed) {}

  static uint64_t HashKey(uint64_t key, uint64_t seed) {
    return Md5Key64(key, seed);
  }

  std::string Name() const override { return "md5"; }
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_HASH_MD5_H_
