#include "src/hash/simple_hash.h"

#include <algorithm>

#include "src/util/math_util.h"
#include "src/util/rng.h"

namespace bloomsample {

SimpleHashFamily::SimpleHashFamily(size_t k, uint64_t m, uint64_t seed,
                                   uint64_t universe)
    : HashFamily(k, m, seed) {
  const uint64_t default_universe = 1ULL << 32;
  const uint64_t floor = std::max(universe == 0 ? default_universe : universe,
                                  m);
  p_ = NextPrimeAtLeast(floor + 1);

  a_.reserve(k);
  b_.reserve(k);
  a_inv_.reserve(k);
  Rng rng(seed);
  for (size_t i = 0; i < k; ++i) {
    const uint64_t a = rng.Range(1, p_);  // any nonzero value is a unit mod p
    a_.push_back(a);
    b_.push_back(rng.Below(p_));
    a_inv_.push_back(ModInverse(a, p_));
    BSR_CHECK(a_inv_.back() != 0, "prime modulus must make a invertible");
  }
  if (p_ <= (1ULL << 32)) {
    fast_ = true;
    fm_p_ = FastMod(p_);
    fm_m_ = FastMod(m);  // m <= p by the prime-floor choice
  }
}

uint64_t SimpleHashFamily::HashReduced(size_t i, uint64_t reduced) const {
  if (fast_) {
    // a, b, reduced < p with p <= 2^32, so a·reduced + b <= (p-1)·p
    // < 2^64 — the whole evaluation stays in one 64-bit lane, and both
    // reductions are division-free. Identical values to the __int128 path.
    const uint64_t v = fm_p_.Mod(a_[i] * reduced + b_[i]);
    return fm_m_.Mod(v);
  }
  const uint64_t v = AddMod(MulMod(a_[i], reduced, p_), b_[i], p_);
  return v % m_;
}

uint64_t SimpleHashFamily::Hash(size_t i, uint64_t key) const {
  BSR_CHECK(i < k_, "SimpleHashFamily::Hash index out of range");
  return HashReduced(i, ReduceKey(key));
}

void SimpleHashFamily::HashAll(uint64_t key, uint64_t* out) const {
  const uint64_t reduced = ReduceKey(key);
  for (size_t i = 0; i < k_; ++i) out[i] = HashReduced(i, reduced);
}

void SimpleHashFamily::HashBatch(const uint64_t* keys, size_t n,
                                 uint64_t* out) const {
  for (size_t j = 0; j < n; ++j) {
    const uint64_t reduced = ReduceKey(keys[j]);
    uint64_t* dst = out + j * k_;
    for (size_t i = 0; i < k_; ++i) dst[i] = HashReduced(i, reduced);
  }
}

Status SimpleHashFamily::Preimages(size_t i, uint64_t bit,
                                   uint64_t namespace_size,
                                   std::vector<uint64_t>* out) const {
  if (i >= k_) {
    return Status::InvalidArgument("hash index out of range");
  }
  if (bit >= m_) {
    return Status::OutOfRange("bit position beyond filter size");
  }
  if (namespace_size > p_) {
    return Status::InvalidArgument(
        "namespace exceeds the hash family's universe (keys >= p alias)");
  }
  // h_i(x) = bit  <=>  (a_i·x + b_i) mod p = t for some t ≡ bit (mod m),
  // i.e. x = a_i^{-1}(t − b_i) mod p for t ∈ {bit, bit + m, …} ∩ [0, p).
  for (uint64_t t = bit; t < p_; t += m_) {
    const uint64_t diff = t >= b_[i] ? t - b_[i] : t + p_ - b_[i];
    const uint64_t x = MulMod(a_inv_[i], diff, p_);
    if (x < namespace_size) out->push_back(x);
    if (t > t + m_) break;  // overflow guard for pathological m near 2^64
  }
  return Status::OK();
}

}  // namespace bloomsample
