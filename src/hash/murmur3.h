// MurmurHash3 implemented from scratch (x86_32 and x64_128 variants), plus
// a HashFamily adapter that hashes the 8-byte little-endian encoding of a
// key with one seed per hash function.
//
// Murmur3 is the paper's "fast modern hash" family (Figure 7 compares it
// against MD5 and the simple linear family).
#ifndef BLOOMSAMPLE_HASH_MURMUR3_H_
#define BLOOMSAMPLE_HASH_MURMUR3_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/hash/hash_family.h"

namespace bloomsample {

/// MurmurHash3_x86_32 of an arbitrary byte buffer.
uint32_t Murmur3x86_32(const void* data, size_t len, uint32_t seed);

/// MurmurHash3_x64_128 of an arbitrary byte buffer; returns {h1, h2}.
std::array<uint64_t, 2> Murmur3x64_128(const void* data, size_t len,
                                       uint64_t seed);

/// Convenience: 64-bit Murmur3 of a 64-bit key (first half of x64_128).
uint64_t Murmur3Key64(uint64_t key, uint64_t seed);

class Murmur3HashFamily : public SeededKeyHashFamily<Murmur3HashFamily> {
 public:
  Murmur3HashFamily(size_t k, uint64_t m, uint64_t seed)
      : SeededKeyHashFamily(k, m, seed) {}

  static uint64_t HashKey(uint64_t key, uint64_t seed) {
    return Murmur3Key64(key, seed);
  }

  std::string Name() const override { return "murmur3"; }
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_HASH_MURMUR3_H_
