#include "src/hash/hash_family.h"

#include "src/hash/md5.h"
#include "src/hash/murmur3.h"
#include "src/hash/simple_hash.h"

namespace bloomsample {

Result<HashFamilyKind> ParseHashFamilyKind(const std::string& name) {
  if (name == "simple") return HashFamilyKind::kSimple;
  if (name == "murmur3") return HashFamilyKind::kMurmur3;
  if (name == "md5") return HashFamilyKind::kMd5;
  return Status::InvalidArgument("unknown hash family '" + name +
                                 "' (expected simple|murmur3|md5)");
}

std::string HashFamilyKindName(HashFamilyKind kind) {
  switch (kind) {
    case HashFamilyKind::kSimple: return "simple";
    case HashFamilyKind::kMurmur3: return "murmur3";
    case HashFamilyKind::kMd5: return "md5";
  }
  return "unknown";
}

Result<std::shared_ptr<const HashFamily>> MakeHashFamily(HashFamilyKind kind,
                                                         size_t k, uint64_t m,
                                                         uint64_t seed,
                                                         uint64_t universe) {
  if (k == 0) return Status::InvalidArgument("hash family needs k >= 1");
  if (m == 0) return Status::InvalidArgument("hash family needs m >= 1");
  switch (kind) {
    case HashFamilyKind::kSimple:
      return std::shared_ptr<const HashFamily>(
          std::make_shared<SimpleHashFamily>(k, m, seed, universe));
    case HashFamilyKind::kMurmur3:
      return std::shared_ptr<const HashFamily>(
          std::make_shared<Murmur3HashFamily>(k, m, seed));
    case HashFamilyKind::kMd5:
      return std::shared_ptr<const HashFamily>(
          std::make_shared<Md5HashFamily>(k, m, seed));
  }
  return Status::InvalidArgument("unknown hash family kind");
}

}  // namespace bloomsample
