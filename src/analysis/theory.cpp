#include "src/analysis/theory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/bloom/bloom_params.h"
#include "src/util/status.h"

namespace bloomsample {

double SampleBiasEpsilon(uint64_t n, uint64_t k, uint64_t m) {
  BSR_CHECK(n > 0 && k > 0 && m > 1, "epsilon needs n, k >= 1, m >= 2");
  const double md = static_cast<double>(m);
  const double logm = std::log(md);
  const double numerator = 2.0 * static_cast<double>(n) *
                           static_cast<double>(k) *
                           (logm + std::log(logm) +
                            std::log(static_cast<double>(n)));
  return std::sqrt(numerator / md);
}

double SampleBiasPathExponent(uint64_t n, uint64_t k, uint64_t m,
                              uint64_t namespace_size, uint64_t leaf_size) {
  BSR_CHECK(leaf_size > 0 && namespace_size >= leaf_size,
            "need 0 < M_bot <= M");
  const double levels = std::log2(static_cast<double>(namespace_size) /
                                  static_cast<double>(leaf_size));
  return 2.0 * SampleBiasEpsilon(n, k, m) * std::max(levels, 0.0);
}

double CriticalDepth(uint64_t namespace_size, uint64_t k, uint64_t n,
                     uint64_t m) {
  BSR_CHECK(m > 0, "critical depth needs m >= 1");
  const double value = static_cast<double>(namespace_size) *
                       static_cast<double>(k) * static_cast<double>(k) *
                       static_cast<double>(n) /
                       (static_cast<double>(m) * std::log(2.0));
  return value <= 1.0 ? 0.0 : std::log2(value);
}

double ExpectedSampleNodesVisited(uint64_t namespace_size, uint64_t leaf_size,
                                  uint64_t k, uint64_t n, uint64_t m) {
  BSR_CHECK(leaf_size > 0 && namespace_size >= leaf_size,
            "need 0 < M_bot <= M");
  const double height = std::max(
      std::log2(static_cast<double>(namespace_size) /
                static_cast<double>(leaf_size)),
      0.0);
  const double d_star = CriticalDepth(namespace_size, k, n, m);
  // The proof visits every node above d*: 2^{d*+1} − 1 of them.
  return height + std::pow(2.0, d_star + 1.0);
}

double ExpectedReconstructionNodesVisited(uint64_t namespace_size,
                                          uint64_t leaf_size, uint64_t k,
                                          uint64_t n, uint64_t m) {
  BSR_CHECK(leaf_size > 0 && namespace_size >= leaf_size,
            "need 0 < M_bot <= M");
  BSR_CHECK(m > 0, "need m >= 1");
  const double height = std::max(
      std::log2(static_cast<double>(namespace_size) /
                static_cast<double>(leaf_size)),
      0.0);
  const double overlap_term = static_cast<double>(leaf_size) *
                              static_cast<double>(k) *
                              static_cast<double>(k) /
                              static_cast<double>(m);
  return static_cast<double>(n) * (height + overlap_term);
}

double ExpectedFalsePathNodes(double alpha) {
  BSR_CHECK(alpha >= 0.0 && alpha <= 1.0, "alpha must be a probability");
  if (alpha >= 0.5) return std::numeric_limits<double>::infinity();
  return 2.0 * alpha / (1.0 - 2.0 * alpha);
}

double FalseOverlapProbabilityAtDepth(uint64_t namespace_size, uint32_t depth,
                                      uint64_t k, uint64_t n, uint64_t m) {
  const double names_at_depth = static_cast<double>(namespace_size) /
                                std::pow(2.0, static_cast<double>(depth));
  // Reuse Eq. 1 with |S1| = n, |S2| = names at this depth.
  return FalseSetOverlapProbability(
      m, k, n, static_cast<uint64_t>(std::max(names_at_depth, 1.0)));
}

}  // namespace bloomsample
