// Closed forms from the paper's analysis, as executable functions.
//
// These are used three ways: (a) the EXPERIMENTS.md paper-vs-measured
// comparisons, (b) property tests that check measured behaviour against
// the bounds, and (c) a worked-example calculator for users sizing their
// own deployments.
#ifndef BLOOMSAMPLE_ANALYSIS_THEORY_H_
#define BLOOMSAMPLE_ANALYSIS_THEORY_H_

#include <cstdint>

namespace bloomsample {

/// ε(m) from Proposition 5.2:
///   ε(m) = sqrt(2·n·k·(log m + log log m + log n) / m).
/// The sampling probability of a leaf holding ℓ of the n set elements is
/// within (1 ± ε)·ℓ/n factors (w.h.p.). Natural logarithms.
double SampleBiasEpsilon(uint64_t n, uint64_t k, uint64_t m);

/// f(m) = 2·ε(m)·log(M/M⊥): the Proposition 5.2 condition requires
/// f(m) → 0; the end-to-end multiplicative bias over a root-to-leaf path
/// is between e^{−f/…} and e^{4ε·log(M/M⊥)} (see the proof).
double SampleBiasPathExponent(uint64_t n, uint64_t k, uint64_t m,
                              uint64_t namespace_size, uint64_t leaf_size);

/// d* from Proposition 5.3: the depth below which false-set-overlap
/// branches die out as a subcritical branching process,
///   d* = log2( M·k²·n / (m·ln 2) ), clamped to [0, ∞).
double CriticalDepth(uint64_t namespace_size, uint64_t k, uint64_t n,
                     uint64_t m);

/// Proposition 5.3 expected visited-node count (up to constants):
///   log2(M/M⊥) + 2^{d*+1}.
double ExpectedSampleNodesVisited(uint64_t namespace_size, uint64_t leaf_size,
                                  uint64_t k, uint64_t n, uint64_t m);

/// Section 6 expected reconstruction node count (up to constants):
///   n · ( log2(M/M⊥) + M⊥·k²/m ).
double ExpectedReconstructionNodesVisited(uint64_t namespace_size,
                                          uint64_t leaf_size, uint64_t k,
                                          uint64_t n, uint64_t m);

/// Claim 5.4 expected extra nodes below a false-overlap node at depth d,
///   E[L(d)] = Σ_{i>=1} (2·α)^i = 2α/(1−2α) for α < 1/2, +inf otherwise,
/// where α = αS(d) is the false-set-overlap probability at that depth.
double ExpectedFalsePathNodes(double alpha);

/// αS(d): the false-set-overlap probability between a query of size n and
/// a tree node at depth d (which stores M/2^d names),
///   αS(d) = 1 − (1 − 1/m)^{k²·n·M/2^d}.
double FalseOverlapProbabilityAtDepth(uint64_t namespace_size, uint32_t depth,
                                      uint64_t k, uint64_t n, uint64_t m);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_ANALYSIS_THEORY_H_
