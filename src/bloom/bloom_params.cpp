#include "src/bloom/bloom_params.h"

#include <cmath>

namespace bloomsample {

double BloomFalsePositiveRate(uint64_t m, uint64_t n, uint64_t k) {
  if (m == 0) return 1.0;
  if (n == 0) return 0.0;
  const double exponent = -static_cast<double>(k) * static_cast<double>(n) /
                          static_cast<double>(m);
  return std::pow(1.0 - std::exp(exponent), static_cast<double>(k));
}

double SamplingAccuracy(uint64_t m, uint64_t n, uint64_t k,
                        uint64_t namespace_size) {
  if (n == 0) return 0.0;
  const double fp = BloomFalsePositiveRate(m, n, k);
  const double others =
      static_cast<double>(namespace_size > n ? namespace_size - n : 0);
  return static_cast<double>(n) / (static_cast<double>(n) + others * fp);
}

double FalseSetOverlapProbability(uint64_t m, uint64_t k, uint64_t n1,
                                  uint64_t n2) {
  if (m == 0) return 1.0;
  if (n1 == 0 || n2 == 0) return 0.0;
  // (1 − 1/m)^{k²·n1·n2} computed in log space to avoid underflow for the
  // enormous exponents that arise near the tree root.
  const double log_base = std::log1p(-1.0 / static_cast<double>(m));
  const double exponent = static_cast<double>(k) * static_cast<double>(k) *
                          static_cast<double>(n1) * static_cast<double>(n2);
  return 1.0 - std::exp(exponent * log_base);
}

Result<double> TargetFalsePositiveRate(double accuracy, uint64_t n,
                                       uint64_t namespace_size) {
  if (!(accuracy > 0.0) || accuracy > 1.0) {
    return Status::InvalidArgument("accuracy must be in (0, 1]");
  }
  if (n == 0) return Status::InvalidArgument("set size n must be positive");
  if (namespace_size <= n) {
    return Status::InvalidArgument(
        "namespace must be strictly larger than the set");
  }
  const double others = static_cast<double>(namespace_size - n);
  if (accuracy == 1.0) {
    // Exact accuracy 1.0 needs FP = 0 (m → ∞). The paper's Tables 2/3 list
    // finite m for "1.0" that back-solve to an effective accuracy of 0.99
    // (m = 137236 predicted vs 137230 printed for M = 1e6, 297486 vs 297485
    // for M = 1e7), so we reproduce that convention. See DESIGN.md §4.
    accuracy = 0.99;
  }
  const double fp =
      static_cast<double>(n) * (1.0 - accuracy) / (accuracy * others);
  // Dense sets can make any m sufficient: e.g. n = M/2 at accuracy 0.5 is
  // met even by FP = 1. Clamp to 0.5 so the solved filter stays functional
  // (half-full at worst); the achieved accuracy then exceeds the request.
  return fp < 0.5 ? fp : 0.5;
}

Result<uint64_t> SolveBitsForFalsePositiveRate(double fp, uint64_t n,
                                               uint64_t k) {
  if (!(fp > 0.0) || fp >= 1.0) {
    return Status::InvalidArgument("false-positive rate must be in (0, 1)");
  }
  if (n == 0) return Status::InvalidArgument("set size n must be positive");
  if (k == 0) return Status::InvalidArgument("k must be positive");
  // Invert (1 − e^{−kn/m})^k = fp for m.
  const double root = std::pow(fp, 1.0 / static_cast<double>(k));
  const double denom = -std::log1p(-root);  // = −ln(1 − fp^{1/k}) > 0
  const double m = static_cast<double>(k) * static_cast<double>(n) / denom;
  return static_cast<uint64_t>(std::ceil(m));
}

Result<uint64_t> SolveBitsForAccuracy(double accuracy, uint64_t n, uint64_t k,
                                      uint64_t namespace_size) {
  Result<double> fp = TargetFalsePositiveRate(accuracy, n, namespace_size);
  if (!fp.ok()) return fp.status();
  return SolveBitsForFalsePositiveRate(fp.value(), n, k);
}

}  // namespace bloomsample
