// Cardinality estimation from Bloom filter bit counts.
//
// Two estimators the paper relies on:
//
//  * Swamidass–Baldi single-filter estimate from the number of set bits t:
//        n̂(t) = ln(1 − t/m) / (k·ln(1 − 1/m))
//    (equivalently −(m/k)·ln(1 − t/m) in the Poisson approximation).
//
//  * Papapetrou et al. intersection estimate (Section 5.3), which corrects
//    for bits that are set in both filters by coincidence rather than by a
//    shared element:
//        Ŝ∧(t1,t2,t∧) = [ln(m − (t∧·m − t1·t2)/(m − t1 − t2 + t∧)) − ln m]
//                        / (k·ln(1 − 1/m)).
//
// BSTSample uses the intersection estimator both to weight its branch
// choices and (with a threshold, Section 5.6) to declare intersections
// empty.
#ifndef BLOOMSAMPLE_BLOOM_CARDINALITY_H_
#define BLOOMSAMPLE_BLOOM_CARDINALITY_H_

#include <cstdint>

#include "src/bloom/bloom_filter.h"

namespace bloomsample {

/// Swamidass–Baldi estimate of the number of distinct inserted elements
/// given t set bits in an (m, k) filter. Returns +inf for a saturated
/// filter (t == m).
double EstimateCardinalityFromBits(uint64_t t, uint64_t m, uint64_t k);

/// Estimate of |A| from B(A)'s set-bit count.
double EstimateCardinality(const BloomFilter& filter);

/// Papapetrou intersection-size estimate from raw bit counts.
/// t1, t2: set bits in each filter; t_and: set bits in their AND.
/// Returns 0 when the corrected interior term is non-positive (the
/// estimator's own signal that the overlap is explainable by chance).
double EstimateIntersectionFromBits(uint64_t t1, uint64_t t2, uint64_t t_and,
                                    uint64_t m, uint64_t k);

/// Estimate of |A ∩ B| from B(A) and B(B). Filters must be compatible.
/// Both set-bit counts come from the filters' memoized caches; only the
/// AND-popcount does fresh word work.
double EstimateIntersection(const BloomFilter& a, const BloomFilter& b);

/// Cached-count convenience overload: `a_bits` is the caller's
/// already-known popcount of `a` (e.g. a tree node's cached `set_bits`)
/// and the query view carries its own cached t2 and resolved intersection
/// kernel, so the only per-call word work is one sparse/dense AND-popcount.
/// (The tree descents themselves need the raw t∧ for their k-shared-bits
/// pruning test, so they call AndPopcount + EstimateIntersectionFromBits
/// directly; this wrapper serves external callers estimating against a
/// prepared query view.)
double EstimateIntersection(const BloomFilter& a, uint64_t a_bits,
                            const BloomQueryView& query);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BLOOM_CARDINALITY_H_
