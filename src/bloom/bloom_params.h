// Probability math and parameter sizing (Sections 3.1, 5.4, Eq. 1).
//
// The paper's experimental protocol is: pick a desired sampling accuracy
// `acc`, then size the Bloom filters so that
//
//     acc = n / (n + (M − n) · FP(m, n, k))
//
// where FP(m,n,k) = (1 − e^{−kn/m})^k is the classic false-positive rate.
// SolveBitsForAccuracy inverts this for m, reproducing the m column of
// Tables 2 and 3.
#ifndef BLOOMSAMPLE_BLOOM_BLOOM_PARAMS_H_
#define BLOOMSAMPLE_BLOOM_BLOOM_PARAMS_H_

#include <cstdint>

#include "src/util/status.h"

namespace bloomsample {

/// False-positive probability of an m-bit, k-hash Bloom filter holding n
/// elements: (1 − e^{−kn/m})^k.
double BloomFalsePositiveRate(uint64_t m, uint64_t n, uint64_t k);

/// The paper's accuracy measure (Section 5.4):
///   acc = n / (n + (M − n)·FP).
/// Fraction of positive-answering namespace elements that are true members.
double SamplingAccuracy(uint64_t m, uint64_t n, uint64_t k,
                        uint64_t namespace_size);

/// False-set-overlap probability (Eq. 1): the chance the intersection of
/// two disjoint sets' filters is non-empty,
///   P[FSO] = 1 − (1 − 1/m)^{k²·n1·n2}.
double FalseSetOverlapProbability(uint64_t m, uint64_t k, uint64_t n1,
                                  uint64_t n2);

/// Target false-positive rate implied by a desired accuracy:
///   FP* = n(1 − acc) / (acc·(M − n)).
/// For accuracy == 1.0 the exact target is 0 (infinite m); following the
/// paper's finite Table 2/3 entries we substitute FP* = 1/(2(M − n)), i.e.
/// less than half an expected false positive across the whole namespace.
Result<double> TargetFalsePositiveRate(double accuracy, uint64_t n,
                                       uint64_t namespace_size);

/// Smallest m such that an (m, k) filter holding n elements achieves the
/// desired sampling accuracy over a namespace of the given size:
///   m = ceil( −k·n / ln(1 − FP*^{1/k}) ).
/// accuracy must be in (0, 1]; requires 0 < n < namespace_size.
Result<uint64_t> SolveBitsForAccuracy(double accuracy, uint64_t n, uint64_t k,
                                      uint64_t namespace_size);

/// Classic optimal m for a target raw false-positive rate fp:
///   m = ceil( −k·n / ln(1 − fp^{1/k}) ).  fp must be in (0, 1).
Result<uint64_t> SolveBitsForFalsePositiveRate(double fp, uint64_t n,
                                               uint64_t k);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BLOOM_BLOOM_PARAMS_H_
