// Bloom filter over 64-bit keys (Section 3.1 of the paper).
//
// A filter is an m-bit vector plus a shared hash family of k functions.
// Union and intersection are bitwise OR/AND and are only meaningful between
// filters built with the *same* (m, H) — the same shared_ptr<HashFamily> —
// which is exactly the invariant the BloomSampleTree relies on. Operations
// between incompatible filters abort (library-bug class of error).
#ifndef BLOOMSAMPLE_BLOOM_BLOOM_FILTER_H_
#define BLOOMSAMPLE_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/hash/hash_family.h"
#include "src/util/bitvector.h"

namespace bloomsample {

class BloomFilter {
 public:
  /// Maximum k this library supports; keeps per-query hash buffers on the
  /// stack. The paper uses k = 3 throughout.
  static constexpr size_t kMaxK = 16;

  /// Creates an empty filter. `family` must be non-null with family->m()
  /// bits of output range; the filter allocates exactly that many bits.
  explicit BloomFilter(std::shared_ptr<const HashFamily> family);

  /// Keys per block in the batched insert/query paths: the hash buffer
  /// (kHashBlock * k u64s) stays comfortably inside L1.
  static constexpr size_t kHashBlock = 256;

  /// Inserts a key: sets the k bits h_0(key)..h_{k-1}(key).
  void Insert(uint64_t key);

  /// Inserts keys[0..n): hashes cache-friendly blocks through one virtual
  /// HashBatch call each, then sets the resulting bits. Equivalent to
  /// calling Insert per key; faster because the hash work is batched and
  /// devirtualized.
  void InsertBatch(const uint64_t* keys, size_t n);
  void InsertBatch(const std::vector<uint64_t>& keys) {
    InsertBatch(keys.data(), keys.size());
  }

  /// Inserts every key in the range [lo, hi).
  void InsertRange(uint64_t lo, uint64_t hi);

  /// Membership query: true iff all k bits for `key` are set. May return
  /// false positives, never false negatives.
  bool Contains(uint64_t key) const;

  /// Appends to *out every key of keys[0..n) the filter Contains, in input
  /// order. Batched flavor of Contains for leaf scans: one virtual hash
  /// call per block instead of one per key.
  void FilterContained(const uint64_t* keys, size_t n,
                       std::vector<uint64_t>* out) const;

  /// True iff no bit is set (the canonical empty-set representation).
  bool IsEmpty() const { return bits_.None(); }

  /// Number of set bits (t in the paper's estimator notation).
  size_t SetBitCount() const { return bits_.Popcount(); }

  /// Fill fraction: SetBitCount() / m.
  double FillFraction() const {
    return static_cast<double>(SetBitCount()) / static_cast<double>(m());
  }

  /// this := this ∪ other (bitwise OR). Filters must be compatible.
  void UnionWith(const BloomFilter& other);
  /// this := this ∩ other (bitwise AND). Filters must be compatible.
  void IntersectWith(const BloomFilter& other);

  /// Popcount of the bitwise AND with `other`, without materializing it
  /// (t∧ in the Papapetrou estimator). Filters must be compatible.
  size_t AndPopcount(const BloomFilter& other) const {
    CheckCompatible(other);
    return bits_.AndPopcount(other.bits_);
  }

  /// True iff the bitwise AND with `other` is all-zero.
  bool AndIsZero(const BloomFilter& other) const {
    CheckCompatible(other);
    return bits_.AndIsZero(other.bits_);
  }

  /// Removes every bit. The filter represents the empty set afterwards.
  void Clear() { bits_.Reset(); }

  uint64_t m() const { return family_->m(); }
  size_t k() const { return family_->k(); }
  const HashFamily& family() const { return *family_; }
  const std::shared_ptr<const HashFamily>& family_ptr() const {
    return family_;
  }
  const BitVector& bits() const { return bits_; }
  BitVector& mutable_bits() { return bits_; }

  /// Two filters are compatible when they share the same hash family object
  /// (hence identical m, k, and coefficients).
  bool CompatibleWith(const BloomFilter& other) const {
    return family_ == other.family_;
  }

  /// Payload memory in bytes.
  size_t MemoryBytes() const { return bits_.MemoryBytes(); }

  bool operator==(const BloomFilter& other) const {
    return family_ == other.family_ && bits_ == other.bits_;
  }

 private:
  void CheckCompatible(const BloomFilter& other) const {
    BSR_CHECK(CompatibleWith(other),
              "BloomFilter operation between incompatible filters");
  }

  std::shared_ptr<const HashFamily> family_;
  BitVector bits_;
};

/// a ∪ b as a new filter. Filters must be compatible.
BloomFilter UnionOf(const BloomFilter& a, const BloomFilter& b);
/// a ∩ b as a new filter. Filters must be compatible.
BloomFilter IntersectionOf(const BloomFilter& a, const BloomFilter& b);

/// Builds a filter containing every key in `keys`.
BloomFilter MakeFilter(std::shared_ptr<const HashFamily> family,
                       const std::vector<uint64_t>& keys);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BLOOM_BLOOM_FILTER_H_
