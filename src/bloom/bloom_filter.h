// Bloom filter over 64-bit keys (Section 3.1 of the paper).
//
// A filter is an m-bit vector plus a shared hash family of k functions.
// Union and intersection are bitwise OR/AND and are only meaningful between
// filters built with the *same* (m, H) — the same shared_ptr<HashFamily> —
// which is exactly the invariant the BloomSampleTree relies on. Operations
// between incompatible filters abort (library-bug class of error).
#ifndef BLOOMSAMPLE_BLOOM_BLOOM_FILTER_H_
#define BLOOMSAMPLE_BLOOM_BLOOM_FILTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/hash/hash_family.h"
#include "src/util/bitvector.h"
#include "src/util/filter_arena.h"

namespace bloomsample {

class BloomQueryView;

/// Which intersection kernel a query view dispatches to.
///   * kDense — the classic O(m/64)-word AND-popcount.
///   * kSparse — the O(nnz-words) kernel over the view's nonzero words.
///   * kAuto — sparse when the query's nonzero words fill at most half the
///     filter (the regime where indirection beats the straight scan), dense
///     otherwise. Both kernels are bit-identical; this is purely a speed
///     dispatch.
enum class IntersectKernel { kAuto, kDense, kSparse };

class BloomFilter {
 public:
  /// Maximum k this library supports; keeps per-query hash buffers on the
  /// stack. The paper uses k = 3 throughout.
  static constexpr size_t kMaxK = 16;

  /// Creates an empty filter. `family` must be non-null with family->m()
  /// bits of output range; the filter allocates exactly that many bits.
  explicit BloomFilter(std::shared_ptr<const HashFamily> family);

  /// Creates an empty filter whose bit payload is a block allocated from
  /// `arena` (which must be configured for this family's word count and
  /// outlive the filter). Behaviorally identical to the owning flavor —
  /// the BloomSampleTree uses this so node filters pack contiguously.
  BloomFilter(std::shared_ptr<const HashFamily> family, FilterArena* arena);

  /// Adopts `bits` — typically a span over a snapshot slab the caller
  /// already filled — as the filter's payload. bits.size() must equal
  /// family->m(); the storage behind a span must outlive the filter. The
  /// snapshot loaders use this to point node filters straight into a
  /// loaded (or mmap'ed) arena image without re-inserting a single key.
  BloomFilter(std::shared_ptr<const HashFamily> family, BitVector bits);

  // The memoized set-bit count lives in a std::atomic (so concurrent
  // readers of a logically-const filter are race-free), which is not
  // copyable — spell out the value semantics, carrying the cache along.
  BloomFilter(const BloomFilter& other)
      : family_(other.family_),
        bits_(other.bits_),
        cached_set_bits_(
            other.cached_set_bits_.load(std::memory_order_relaxed)) {}
  BloomFilter(BloomFilter&& other) noexcept
      : family_(std::move(other.family_)),
        bits_(std::move(other.bits_)),
        cached_set_bits_(
            other.cached_set_bits_.load(std::memory_order_relaxed)) {
    other.cached_set_bits_.store(kSetBitsUnknown, std::memory_order_relaxed);
  }
  BloomFilter& operator=(const BloomFilter& other) {
    family_ = other.family_;
    bits_ = other.bits_;
    cached_set_bits_.store(
        other.cached_set_bits_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    return *this;
  }
  BloomFilter& operator=(BloomFilter&& other) noexcept {
    family_ = std::move(other.family_);
    bits_ = std::move(other.bits_);
    cached_set_bits_.store(
        other.cached_set_bits_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    other.cached_set_bits_.store(kSetBitsUnknown, std::memory_order_relaxed);
    return *this;
  }

  /// Keys per block in the batched insert/query paths: the hash buffer
  /// (kHashBlock * k u64s) stays comfortably inside L1.
  static constexpr size_t kHashBlock = 256;

  /// Inserts a key: sets the k bits h_0(key)..h_{k-1}(key).
  void Insert(uint64_t key);

  /// Inserts keys[0..n): hashes cache-friendly blocks through one virtual
  /// HashBatch call each, then sets the resulting bits. Equivalent to
  /// calling Insert per key; faster because the hash work is batched and
  /// devirtualized.
  void InsertBatch(const uint64_t* keys, size_t n);
  void InsertBatch(const std::vector<uint64_t>& keys) {
    InsertBatch(keys.data(), keys.size());
  }

  /// Inserts every key in the range [lo, hi).
  void InsertRange(uint64_t lo, uint64_t hi);

  /// Membership query: true iff all k bits for `key` are set. May return
  /// false positives, never false negatives.
  bool Contains(uint64_t key) const;

  /// Appends to *out every key of keys[0..n) the filter Contains, in input
  /// order. Batched flavor of Contains for leaf scans: one virtual hash
  /// call per block instead of one per key.
  void FilterContained(const uint64_t* keys, size_t n,
                       std::vector<uint64_t>* out) const;

  /// True iff no bit is set (the canonical empty-set representation).
  bool IsEmpty() const { return bits_.None(); }

  /// Number of set bits (t in the paper's estimator notation). Memoized:
  /// the first call after a mutation popcounts the whole vector, later
  /// calls return the cached value. Every mutating member (Insert*,
  /// UnionWith, IntersectWith, Clear, mutable_bits — which deserializers
  /// write through) invalidates the cache. Concurrent calls on a filter no
  /// thread is mutating are race-free (the cache is an atomic; racing
  /// recomputes store the same value).
  size_t SetBitCount() const {
    uint64_t cached = cached_set_bits_.load(std::memory_order_relaxed);
    if (cached == kSetBitsUnknown) {
      cached = bits_.Popcount();
      cached_set_bits_.store(cached, std::memory_order_relaxed);
    }
    return static_cast<size_t>(cached);
  }

  /// Fill fraction: SetBitCount() / m.
  double FillFraction() const {
    return static_cast<double>(SetBitCount()) / static_cast<double>(m());
  }

  /// this := this ∪ other (bitwise OR). Filters must be compatible.
  void UnionWith(const BloomFilter& other);
  /// this := this ∩ other (bitwise AND). Filters must be compatible.
  void IntersectWith(const BloomFilter& other);

  /// Popcount of the bitwise AND with `other`, without materializing it
  /// (t∧ in the Papapetrou estimator). Filters must be compatible.
  size_t AndPopcount(const BloomFilter& other) const {
    CheckCompatible(other);
    return bits_.AndPopcount(other.bits_);
  }

  /// True iff the bitwise AND with `other` is all-zero.
  bool AndIsZero(const BloomFilter& other) const {
    CheckCompatible(other);
    return bits_.AndIsZero(other.bits_);
  }

  /// Kernel-dispatching flavors: identical results to the BloomFilter
  /// overloads above, but routed through the view's resolved kernel so a
  /// sparse query pays O(nnz words) per call. The view's source filter
  /// must be compatible with this one.
  size_t AndPopcount(const BloomQueryView& query) const;
  bool AndIsZero(const BloomQueryView& query) const;

  /// Seeds the memoized set-bit count with a value the caller already
  /// knows — snapshot loaders persist each node's popcount, so reloading a
  /// tree needn't touch (or, for mmap'ed payloads, even page in) a single
  /// payload word. `count` must equal the payload's true popcount; a wrong
  /// value skews estimates but cannot cause memory unsafety.
  void SeedSetBitCount(size_t count) {
    cached_set_bits_.store(static_cast<uint64_t>(count),
                           std::memory_order_relaxed);
  }

  /// Removes every bit. The filter represents the empty set afterwards.
  void Clear() {
    bits_.Reset();
    cached_set_bits_.store(0, std::memory_order_relaxed);
  }

  uint64_t m() const { return family_->m(); }
  size_t k() const { return family_->k(); }
  const HashFamily& family() const { return *family_; }
  const std::shared_ptr<const HashFamily>& family_ptr() const {
    return family_;
  }
  const BitVector& bits() const { return bits_; }
  /// Grants raw write access to the bit payload (deserializers, counting
  /// filters). Invalidates the memoized set-bit count up front; callers
  /// must not keep mutating through the returned reference after a later
  /// SetBitCount() call, or the cache goes stale.
  BitVector& mutable_bits() {
    InvalidateSetBitCount();
    return bits_;
  }

  /// Two filters are compatible when they share the same hash family object
  /// (hence identical m, k, and coefficients).
  bool CompatibleWith(const BloomFilter& other) const {
    return family_ == other.family_;
  }

  /// Payload memory in bytes.
  size_t MemoryBytes() const { return bits_.MemoryBytes(); }

  bool operator==(const BloomFilter& other) const {
    return family_ == other.family_ && bits_ == other.bits_;
  }

 private:
  static constexpr uint64_t kSetBitsUnknown = ~0ULL;

  void CheckCompatible(const BloomFilter& other) const {
    BSR_CHECK(CompatibleWith(other),
              "BloomFilter operation between incompatible filters");
  }

  void InvalidateSetBitCount() {
    cached_set_bits_.store(kSetBitsUnknown, std::memory_order_relaxed);
  }

  std::shared_ptr<const HashFamily> family_;
  BitVector bits_;
  /// Memoized Popcount() of bits_, kSetBitsUnknown when stale.
  mutable std::atomic<uint64_t> cached_set_bits_{kSetBitsUnknown};
};

/// Read-only snapshot of a query filter prepared for many intersections:
/// the sparse word view, the memoized set-bit count (t2 in the estimator),
/// and the resolved kernel choice. Build one per query filter and reuse it
/// across every tree-node intersection of a descent/traversal — each node
/// then costs O(nnz words) with zero redundant popcounts. The view
/// snapshots the filter's bits: mutating the filter afterwards leaves the
/// view stale (rebuild it).
class BloomQueryView {
 public:
  explicit BloomQueryView(const BloomFilter& filter,
                          IntersectKernel kernel = IntersectKernel::kAuto);

  const BloomFilter& filter() const { return *filter_; }
  /// Cached popcount of the query's bits (t2).
  uint64_t set_bits() const { return set_bits_; }
  /// True when intersections against this view run the sparse kernel.
  bool sparse() const { return sparse_; }
  /// The nonzero-word snapshot; only materialized when sparse() is true
  /// (dense dispatch reads the filter's own bits instead).
  const BitVector::SparseView& sparse_view() const { return view_; }

  /// Words one intersection against this view reads from each operand:
  /// nnz for the sparse kernel, the full word count for the dense one.
  /// The basis of the bytes-touched accounting in OpCounters.
  size_t words_touched() const {
    return sparse_ ? view_.word_index.size() : filter_->bits().word_count();
  }

 private:
  const BloomFilter* filter_;
  BitVector::SparseView view_;
  uint64_t set_bits_ = 0;
  bool sparse_ = false;
};

/// a ∪ b as a new filter. Filters must be compatible.
BloomFilter UnionOf(const BloomFilter& a, const BloomFilter& b);
/// a ∩ b as a new filter. Filters must be compatible.
BloomFilter IntersectionOf(const BloomFilter& a, const BloomFilter& b);

/// Builds a filter containing every key in `keys`.
BloomFilter MakeFilter(std::shared_ptr<const HashFamily> family,
                       const std::vector<uint64_t>& keys);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BLOOM_BLOOM_FILTER_H_
