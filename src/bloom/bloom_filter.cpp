#include "src/bloom/bloom_filter.h"

namespace bloomsample {

BloomFilter::BloomFilter(std::shared_ptr<const HashFamily> family)
    : family_(std::move(family)), bits_(0) {
  BSR_CHECK(family_ != nullptr, "BloomFilter requires a hash family");
  BSR_CHECK(family_->k() <= kMaxK, "hash family k exceeds kMaxK");
  bits_ = BitVector(family_->m());
}

BloomFilter::BloomFilter(std::shared_ptr<const HashFamily> family,
                         FilterArena* arena)
    : family_(std::move(family)), bits_(0) {
  BSR_CHECK(family_ != nullptr, "BloomFilter requires a hash family");
  BSR_CHECK(family_->k() <= kMaxK, "hash family k exceeds kMaxK");
  BSR_CHECK(arena != nullptr, "BloomFilter arena flavor requires an arena");
  BSR_CHECK(arena->words_per_block() == (family_->m() + 63) / 64,
            "arena block width does not match the filter's word count");
  bits_ = BitVector::SpanOf(arena->Allocate(), family_->m());
}

BloomFilter::BloomFilter(std::shared_ptr<const HashFamily> family,
                         BitVector bits)
    : family_(std::move(family)), bits_(std::move(bits)) {
  BSR_CHECK(family_ != nullptr, "BloomFilter requires a hash family");
  BSR_CHECK(family_->k() <= kMaxK, "hash family k exceeds kMaxK");
  BSR_CHECK(bits_.size() == family_->m(),
            "adopted payload size does not match the family's m");
}

void BloomFilter::Insert(uint64_t key) {
  InvalidateSetBitCount();
  uint64_t h[kMaxK];
  family_->HashAll(key, h);
  const size_t k = family_->k();
  // Hash outputs are < m == bits_.size() by the family contract, so the
  // hot loop can skip the per-bit range check.
  for (size_t i = 0; i < k; ++i) bits_.SetUnchecked(h[i]);
}

void BloomFilter::InsertBatch(const uint64_t* keys, size_t n) {
  BSR_CHECK(keys != nullptr || n == 0, "InsertBatch: null keys");
  if (n > 0) InvalidateSetBitCount();
  const size_t k = family_->k();
  uint64_t hashes[kHashBlock * kMaxK];
  for (size_t base = 0; base < n; base += kHashBlock) {
    const size_t block = n - base < kHashBlock ? n - base : kHashBlock;
    family_->HashBatch(keys + base, block, hashes);
    const uint64_t* h = hashes;
    for (size_t j = 0; j < block; ++j, h += k) {
      for (size_t i = 0; i < k; ++i) {
        bits_.SetWordMask(h[i] >> 6, 1ULL << (h[i] & 63));
      }
    }
  }
}

void BloomFilter::InsertRange(uint64_t lo, uint64_t hi) {
  BSR_CHECK(lo <= hi, "InsertRange: lo must be <= hi");
  uint64_t keys[kHashBlock];
  uint64_t base = lo;
  while (base < hi) {
    const uint64_t block =
        hi - base < kHashBlock ? hi - base : uint64_t{kHashBlock};
    for (uint64_t j = 0; j < block; ++j) keys[j] = base + j;
    InsertBatch(keys, static_cast<size_t>(block));
    base += block;  // block <= hi - base, so this can never wrap past hi
  }
}

bool BloomFilter::Contains(uint64_t key) const {
  // One virtual call computes all k hashes up front; the probe loop still
  // exits at the first unset bit. Trade-off: negatives no longer skip the
  // remaining hash *computations* the old lazy per-hash path avoided, but
  // they drop k-1 virtual dispatches — a clear win for the cheap families
  // that dominate production use (simple, murmur3).
  uint64_t h[kMaxK];
  family_->HashAll(key, h);
  const size_t k = family_->k();
  for (size_t i = 0; i < k; ++i) {
    if (!bits_.GetUnchecked(h[i])) return false;
  }
  return true;
}

void BloomFilter::FilterContained(const uint64_t* keys, size_t n,
                                  std::vector<uint64_t>* out) const {
  BSR_CHECK(keys != nullptr || n == 0, "FilterContained: null keys");
  BSR_CHECK(out != nullptr, "FilterContained: null output");
  const size_t k = family_->k();
  uint64_t hashes[kHashBlock * kMaxK];
  for (size_t base = 0; base < n; base += kHashBlock) {
    const size_t block = n - base < kHashBlock ? n - base : kHashBlock;
    family_->HashBatch(keys + base, block, hashes);
    const uint64_t* h = hashes;
    for (size_t j = 0; j < block; ++j, h += k) {
      bool hit = true;
      for (size_t i = 0; i < k; ++i) {
        if (!bits_.GetUnchecked(h[i])) {
          hit = false;
          break;
        }
      }
      if (hit) out->push_back(keys[base + j]);
    }
  }
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  CheckCompatible(other);
  InvalidateSetBitCount();
  bits_.OrWith(other.bits_);
}

void BloomFilter::IntersectWith(const BloomFilter& other) {
  CheckCompatible(other);
  InvalidateSetBitCount();
  bits_.AndWith(other.bits_);
}

size_t BloomFilter::AndPopcount(const BloomQueryView& query) const {
  CheckCompatible(query.filter());
  if (query.sparse()) return bits_.AndPopcountSparse(query.sparse_view());
  return bits_.AndPopcount(query.filter().bits());
}

bool BloomFilter::AndIsZero(const BloomQueryView& query) const {
  CheckCompatible(query.filter());
  if (query.sparse()) return bits_.AndAllZeroSparse(query.sparse_view());
  return bits_.AndIsZero(query.filter().bits());
}

BloomQueryView::BloomQueryView(const BloomFilter& filter,
                               IntersectKernel kernel)
    : filter_(&filter) {
  // One pass over the words resolves the cached t2, the kernel, and (when
  // the sparse kernel will read it) the nonzero-word snapshot. Under
  // kAuto, materialization is abandoned the moment the nonzero count
  // crosses the sparse/dense break-even (half the words — past that the
  // dense kernel's linear scan beats the indirected walk), so a dense
  // query costs one count-only pass and a sparse query exactly one
  // materializing pass.
  const uint64_t* words = filter.bits().word_data();
  const size_t word_count = filter.bits().word_count();
  // INT32_MAX bound: sparse-view word indices feed sign-extended 32-bit
  // SIMD gathers (see BitVector::ToSparseView).
  BSR_CHECK(word_count <= INT32_MAX, "filter too wide for a query view");
  bool materialize = kernel != IntersectKernel::kDense;
  const size_t abandon_above =
      kernel == IntersectKernel::kAuto ? word_count / 2 : word_count;
  size_t nnz = 0;
  uint64_t pop = 0;
  for (size_t w = 0; w < word_count; ++w) {
    const uint64_t word = words[w];
    if (word == 0) continue;
    ++nnz;
    pop += static_cast<uint64_t>(__builtin_popcountll(word));
    if (materialize) {
      if (nnz > abandon_above) {
        materialize = false;
        view_.word_index = {};
        view_.word_value = {};
      } else {
        view_.word_index.push_back(static_cast<uint32_t>(w));
        view_.word_value.push_back(word);
      }
    }
  }
  set_bits_ = pop;
  switch (kernel) {
    case IntersectKernel::kDense:
      sparse_ = false;
      break;
    case IntersectKernel::kSparse:
      sparse_ = true;
      break;
    case IntersectKernel::kAuto:
      sparse_ = 2 * nnz <= word_count;
      break;
  }
  if (sparse_) {
    view_.bit_size = filter.bits().size();
    view_.set_bits = static_cast<size_t>(pop);
  }
  // Dense dispatch reads the filter's own bits; view_ stays empty then.
}

BloomFilter UnionOf(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter out = a;
  out.UnionWith(b);
  return out;
}

BloomFilter IntersectionOf(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter out = a;
  out.IntersectWith(b);
  return out;
}

BloomFilter MakeFilter(std::shared_ptr<const HashFamily> family,
                       const std::vector<uint64_t>& keys) {
  BloomFilter filter(std::move(family));
  filter.InsertBatch(keys);
  return filter;
}

}  // namespace bloomsample
