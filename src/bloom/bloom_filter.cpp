#include "src/bloom/bloom_filter.h"

namespace bloomsample {

BloomFilter::BloomFilter(std::shared_ptr<const HashFamily> family)
    : family_(std::move(family)), bits_(0) {
  BSR_CHECK(family_ != nullptr, "BloomFilter requires a hash family");
  BSR_CHECK(family_->k() <= kMaxK, "hash family k exceeds kMaxK");
  bits_ = BitVector(family_->m());
}

void BloomFilter::Insert(uint64_t key) {
  uint64_t h[kMaxK];
  family_->HashAll(key, h);
  const size_t k = family_->k();
  // Hash outputs are < m == bits_.size() by the family contract, so the
  // hot loop can skip the per-bit range check.
  for (size_t i = 0; i < k; ++i) bits_.SetUnchecked(h[i]);
}

void BloomFilter::InsertBatch(const uint64_t* keys, size_t n) {
  BSR_CHECK(keys != nullptr || n == 0, "InsertBatch: null keys");
  const size_t k = family_->k();
  uint64_t hashes[kHashBlock * kMaxK];
  for (size_t base = 0; base < n; base += kHashBlock) {
    const size_t block = n - base < kHashBlock ? n - base : kHashBlock;
    family_->HashBatch(keys + base, block, hashes);
    const uint64_t* h = hashes;
    for (size_t j = 0; j < block; ++j, h += k) {
      for (size_t i = 0; i < k; ++i) {
        bits_.SetWordMask(h[i] >> 6, 1ULL << (h[i] & 63));
      }
    }
  }
}

void BloomFilter::InsertRange(uint64_t lo, uint64_t hi) {
  BSR_CHECK(lo <= hi, "InsertRange: lo must be <= hi");
  uint64_t keys[kHashBlock];
  uint64_t base = lo;
  while (base < hi) {
    const uint64_t block =
        hi - base < kHashBlock ? hi - base : uint64_t{kHashBlock};
    for (uint64_t j = 0; j < block; ++j) keys[j] = base + j;
    InsertBatch(keys, static_cast<size_t>(block));
    base += block;  // block <= hi - base, so this can never wrap past hi
  }
}

bool BloomFilter::Contains(uint64_t key) const {
  // One virtual call computes all k hashes up front; the probe loop still
  // exits at the first unset bit. Trade-off: negatives no longer skip the
  // remaining hash *computations* the old lazy per-hash path avoided, but
  // they drop k-1 virtual dispatches — a clear win for the cheap families
  // that dominate production use (simple, murmur3).
  uint64_t h[kMaxK];
  family_->HashAll(key, h);
  const size_t k = family_->k();
  for (size_t i = 0; i < k; ++i) {
    if (!bits_.GetUnchecked(h[i])) return false;
  }
  return true;
}

void BloomFilter::FilterContained(const uint64_t* keys, size_t n,
                                  std::vector<uint64_t>* out) const {
  BSR_CHECK(keys != nullptr || n == 0, "FilterContained: null keys");
  BSR_CHECK(out != nullptr, "FilterContained: null output");
  const size_t k = family_->k();
  uint64_t hashes[kHashBlock * kMaxK];
  for (size_t base = 0; base < n; base += kHashBlock) {
    const size_t block = n - base < kHashBlock ? n - base : kHashBlock;
    family_->HashBatch(keys + base, block, hashes);
    const uint64_t* h = hashes;
    for (size_t j = 0; j < block; ++j, h += k) {
      bool hit = true;
      for (size_t i = 0; i < k; ++i) {
        if (!bits_.GetUnchecked(h[i])) {
          hit = false;
          break;
        }
      }
      if (hit) out->push_back(keys[base + j]);
    }
  }
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  CheckCompatible(other);
  bits_.OrWith(other.bits_);
}

void BloomFilter::IntersectWith(const BloomFilter& other) {
  CheckCompatible(other);
  bits_.AndWith(other.bits_);
}

BloomFilter UnionOf(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter out = a;
  out.UnionWith(b);
  return out;
}

BloomFilter IntersectionOf(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter out = a;
  out.IntersectWith(b);
  return out;
}

BloomFilter MakeFilter(std::shared_ptr<const HashFamily> family,
                       const std::vector<uint64_t>& keys) {
  BloomFilter filter(std::move(family));
  filter.InsertBatch(keys);
  return filter;
}

}  // namespace bloomsample
