#include "src/bloom/bloom_filter.h"

namespace bloomsample {

BloomFilter::BloomFilter(std::shared_ptr<const HashFamily> family)
    : family_(std::move(family)), bits_(0) {
  BSR_CHECK(family_ != nullptr, "BloomFilter requires a hash family");
  BSR_CHECK(family_->k() <= kMaxK, "hash family k exceeds kMaxK");
  bits_ = BitVector(family_->m());
}

void BloomFilter::Insert(uint64_t key) {
  uint64_t h[kMaxK];
  family_->HashAll(key, h);
  const size_t k = family_->k();
  for (size_t i = 0; i < k; ++i) bits_.Set(h[i]);
}

void BloomFilter::InsertRange(uint64_t lo, uint64_t hi) {
  for (uint64_t x = lo; x < hi; ++x) Insert(x);
}

bool BloomFilter::Contains(uint64_t key) const {
  const size_t k = family_->k();
  for (size_t i = 0; i < k; ++i) {
    if (!bits_.Get(family_->Hash(i, key))) return false;
  }
  return true;
}

void BloomFilter::UnionWith(const BloomFilter& other) {
  CheckCompatible(other);
  bits_.OrWith(other.bits_);
}

void BloomFilter::IntersectWith(const BloomFilter& other) {
  CheckCompatible(other);
  bits_.AndWith(other.bits_);
}

BloomFilter UnionOf(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter out = a;
  out.UnionWith(b);
  return out;
}

BloomFilter IntersectionOf(const BloomFilter& a, const BloomFilter& b) {
  BloomFilter out = a;
  out.IntersectWith(b);
  return out;
}

BloomFilter MakeFilter(std::shared_ptr<const HashFamily> family,
                       const std::vector<uint64_t>& keys) {
  BloomFilter filter(std::move(family));
  for (uint64_t key : keys) filter.Insert(key);
  return filter;
}

}  // namespace bloomsample
