#include "src/bloom/bloom_io.h"

#include "src/util/serialize.h"

namespace bloomsample {

namespace {
constexpr char kFilterTag[4] = {'B', 'S', 'B', 'F'};
constexpr uint32_t kFilterVersion = 1;
}  // namespace

Status SerializeBloomFilter(const BloomFilter& filter, std::ostream* out) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  BinaryWriter writer(out);
  writer.WriteTag(kFilterTag);
  writer.WriteU32(kFilterVersion);
  writer.WriteU64(filter.m());
  writer.WriteU64(filter.k());
  writer.WriteU64(filter.family().seed());
  // Family name as a fixed 8-byte field (padded with zeros).
  char name[8] = {0};
  const std::string family_name = filter.family().Name();
  for (size_t i = 0; i < family_name.size() && i < 8; ++i) {
    name[i] = family_name[i];
  }
  out->write(name, 8);
  writer.WriteU64Array(filter.bits().word_data(), filter.bits().word_count());
  return writer.ok() ? Status::OK() : Status::Internal("stream write failed");
}

Result<BloomFilter> DeserializeBloomFilter(
    std::istream* in, std::shared_ptr<const HashFamily> family) {
  if (in == nullptr) return Status::InvalidArgument("null input stream");
  if (family == nullptr) return Status::InvalidArgument("null hash family");
  BinaryReader reader(in);
  Status st = reader.ExpectTag(kFilterTag);
  if (!st.ok()) return st;
  Result<uint32_t> version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (version.value() != kFilterVersion) {
    return Status::Unsupported("unknown Bloom filter format version");
  }
  Result<uint64_t> m = reader.ReadU64();
  if (!m.ok()) return m.status();
  Result<uint64_t> k = reader.ReadU64();
  if (!k.ok()) return k.status();
  Result<uint64_t> seed = reader.ReadU64();
  if (!seed.ok()) return seed.status();
  char name[8];
  in->read(name, 8);
  if (!in->good()) return Status::OutOfRange("truncated stream (name)");

  if (m.value() != family->m() || k.value() != family->k() ||
      seed.value() != family->seed() ||
      std::string(name, strnlen(name, 8)) != family->Name()) {
    return Status::InvalidArgument(
        "stored filter fingerprint does not match the supplied hash family");
  }

  Result<std::vector<uint64_t>> words =
      reader.ReadU64Vector(/*max_size=*/(family->m() + 63) / 64);
  if (!words.ok()) return words.status();
  if (words.value().size() != (family->m() + 63) / 64) {
    return Status::InvalidArgument("bit payload has wrong word count");
  }

  BloomFilter filter(std::move(family));
  BitVector& bits = filter.mutable_bits();
  // Reconstruct via word-level OR of the payload.
  const std::vector<uint64_t>& payload = words.value();
  for (size_t w = 0; w < payload.size(); ++w) {
    uint64_t word = payload[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      const size_t index = w * 64 + static_cast<size_t>(bit);
      if (index >= bits.size()) {
        return Status::InvalidArgument("bit payload has stray trailing bits");
      }
      bits.Set(index);
      word &= word - 1;
    }
  }
  return filter;
}

}  // namespace bloomsample
