// Counting Bloom filter — the deletion-capable extension.
//
// The paper's motivating applications (Section 1: dynamic online
// communities) need sets that shrink as well as grow, which a plain
// Bloom filter cannot do. The classic fix (Fan et al.'s summary cache)
// replaces each bit with a small saturating counter: Insert increments,
// Remove decrements, and the plain-filter view "bit i set ⟺ counter i
// > 0" is exactly the Bloom filter of the current multiset — so a
// CountingBloomFilter can serve as the *maintenance* representation
// while ToBloomFilter() exports a query filter compatible with a
// BloomSampleTree built on the same hash family.
//
// Counters saturate at 15 (4 bits of logical width, stored as bytes for
// simplicity: maintenance filters are per-set, not per-tree-node, so the
// 8x memory of the bit version is usually irrelevant). A saturated
// counter never decrements (the standard safety rule: decrementing a
// saturated counter could create false negatives).
#ifndef BLOOMSAMPLE_BLOOM_COUNTING_BLOOM_H_
#define BLOOMSAMPLE_BLOOM_COUNTING_BLOOM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/hash/hash_family.h"
#include "src/util/status.h"

namespace bloomsample {

class CountingBloomFilter {
 public:
  static constexpr uint8_t kMaxCount = 15;

  explicit CountingBloomFilter(std::shared_ptr<const HashFamily> family);

  /// Increments the k counters for `key` (saturating at kMaxCount).
  void Insert(uint64_t key);

  /// Decrements the k counters for `key`. Returns InvalidArgument when
  /// any counter is already zero (removing a key that was never inserted
  /// — the filter is left unchanged in that case). Saturated counters
  /// stay saturated.
  Status Remove(uint64_t key);

  /// True iff all k counters for `key` are positive. Same false-positive
  /// behaviour as the plain filter; false negatives cannot occur as long
  /// as Remove is only called for previously inserted keys.
  bool Contains(uint64_t key) const;

  /// Exports the positive-counter bit pattern as a plain BloomFilter
  /// sharing this filter's hash family — a valid query filter for any
  /// tree built on that family.
  BloomFilter ToBloomFilter() const;

  /// Number of positive counters (t in estimator notation).
  size_t PositiveCounters() const;

  /// True iff every counter is zero.
  bool IsEmpty() const;

  uint64_t m() const { return family_->m(); }
  size_t k() const { return family_->k(); }
  const std::shared_ptr<const HashFamily>& family_ptr() const {
    return family_;
  }
  uint8_t counter(uint64_t index) const {
    BSR_CHECK(index < counters_.size(), "counter index out of range");
    return counters_[static_cast<size_t>(index)];
  }

  /// Payload memory in bytes.
  size_t MemoryBytes() const { return counters_.size(); }

 private:
  std::shared_ptr<const HashFamily> family_;
  std::vector<uint8_t> counters_;
};

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BLOOM_COUNTING_BLOOM_H_
