// Bloom filter persistence.
//
// A filter's bits are meaningless without its hash family, and two filters
// only interoperate when they share the same family OBJECT. Query filters
// are therefore serialized as bits-plus-parameter-fingerprint and
// deserialized AGAINST an existing family (usually the tree's): the
// fingerprint (m, k, seed, family name) is validated so a filter saved
// under different parameters is rejected instead of silently misread.
#ifndef BLOOMSAMPLE_BLOOM_BLOOM_IO_H_
#define BLOOMSAMPLE_BLOOM_BLOOM_IO_H_

#include <istream>
#include <ostream>

#include "src/bloom/bloom_filter.h"
#include "src/util/status.h"

namespace bloomsample {

/// Writes `filter` (parameter fingerprint + bit payload) to `out`.
Status SerializeBloomFilter(const BloomFilter& filter, std::ostream* out);

/// Reads a filter written by SerializeBloomFilter, binding it to `family`.
/// Fails if the stored fingerprint does not match the family.
Result<BloomFilter> DeserializeBloomFilter(
    std::istream* in, std::shared_ptr<const HashFamily> family);

}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BLOOM_BLOOM_IO_H_
