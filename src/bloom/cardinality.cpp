#include "src/bloom/cardinality.h"

#include <cmath>
#include <limits>

namespace bloomsample {

double EstimateCardinalityFromBits(uint64_t t, uint64_t m, uint64_t k) {
  BSR_CHECK(m > 0 && k > 0, "estimator needs m, k >= 1");
  BSR_CHECK(t <= m, "set-bit count exceeds filter size");
  if (t == 0) return 0.0;
  if (t == m) return std::numeric_limits<double>::infinity();
  const double md = static_cast<double>(m);
  const double numer = std::log1p(-static_cast<double>(t) / md);
  const double denom = static_cast<double>(k) * std::log1p(-1.0 / md);
  return numer / denom;
}

double EstimateCardinality(const BloomFilter& filter) {
  return EstimateCardinalityFromBits(filter.SetBitCount(), filter.m(),
                                     filter.k());
}

double EstimateIntersectionFromBits(uint64_t t1, uint64_t t2, uint64_t t_and,
                                    uint64_t m, uint64_t k) {
  BSR_CHECK(m > 0 && k > 0, "estimator needs m, k >= 1");
  BSR_CHECK(t1 <= m && t2 <= m && t_and <= m, "bit counts exceed m");
  if (t_and == 0) return 0.0;
  const double md = static_cast<double>(m);
  const double t1d = static_cast<double>(t1);
  const double t2d = static_cast<double>(t2);
  const double tad = static_cast<double>(t_and);

  // Both filters saturated (or jointly covering every bit): the corrective
  // denominator m − t1 − t2 + t∧ hits zero; fall back to the single-filter
  // estimate on the AND, which is the estimator's limiting behaviour.
  const double denom_corr = md - t1d - t2d + tad;
  if (denom_corr <= 0.0) {
    return EstimateCardinalityFromBits(t_and, m, k);
  }

  // Interior = m − (t∧·m − t1·t2)/(m − t1 − t2 + t∧). When t∧·m ≤ t1·t2 the
  // observed overlap is at or below the chance level, so the estimate is 0.
  const double interior = md - (tad * md - t1d * t2d) / denom_corr;
  if (interior >= md) return 0.0;
  if (interior <= 0.0) {
    // Overlap so strong the correction underflows; treat as "everything
    // shared": estimate with the AND's own bit count.
    return EstimateCardinalityFromBits(t_and, m, k);
  }
  const double numer = std::log(interior) - std::log(md);
  const double denom = static_cast<double>(k) * std::log1p(-1.0 / md);
  const double estimate = numer / denom;
  return estimate < 0.0 ? 0.0 : estimate;
}

double EstimateIntersection(const BloomFilter& a, const BloomFilter& b) {
  BSR_CHECK(a.CompatibleWith(b), "EstimateIntersection: incompatible filters");
  return EstimateIntersectionFromBits(a.SetBitCount(), b.SetBitCount(),
                                      a.AndPopcount(b), a.m(), a.k());
}

double EstimateIntersection(const BloomFilter& a, uint64_t a_bits,
                            const BloomQueryView& query) {
  return EstimateIntersectionFromBits(a_bits, query.set_bits(),
                                      a.AndPopcount(query), a.m(), a.k());
}

}  // namespace bloomsample
