#include "src/bloom/counting_bloom.h"

namespace bloomsample {

CountingBloomFilter::CountingBloomFilter(
    std::shared_ptr<const HashFamily> family)
    : family_(std::move(family)) {
  BSR_CHECK(family_ != nullptr, "CountingBloomFilter requires a hash family");
  BSR_CHECK(family_->k() <= BloomFilter::kMaxK, "hash family k exceeds kMaxK");
  counters_.assign(static_cast<size_t>(family_->m()), 0);
}

void CountingBloomFilter::Insert(uint64_t key) {
  uint64_t h[BloomFilter::kMaxK];
  family_->HashAll(key, h);
  for (size_t i = 0; i < family_->k(); ++i) {
    uint8_t& counter = counters_[static_cast<size_t>(h[i])];
    if (counter < kMaxCount) ++counter;
  }
}

Status CountingBloomFilter::Remove(uint64_t key) {
  uint64_t h[BloomFilter::kMaxK];
  family_->HashAll(key, h);
  // Validate first so a failed Remove leaves the filter untouched.
  for (size_t i = 0; i < family_->k(); ++i) {
    if (counters_[static_cast<size_t>(h[i])] == 0) {
      return Status::InvalidArgument(
          "removing a key whose counters are already zero (was it ever "
          "inserted?)");
    }
  }
  for (size_t i = 0; i < family_->k(); ++i) {
    uint8_t& counter = counters_[static_cast<size_t>(h[i])];
    // The saturation rule: a counter that ever hit kMaxCount has lost
    // its true count and must never decrement, or a still-present key
    // sharing the counter could turn falsely negative.
    if (counter < kMaxCount) --counter;
  }
  return Status::OK();
}

bool CountingBloomFilter::Contains(uint64_t key) const {
  for (size_t i = 0; i < family_->k(); ++i) {
    if (counters_[static_cast<size_t>(family_->Hash(i, key))] == 0) {
      return false;
    }
  }
  return true;
}

BloomFilter CountingBloomFilter::ToBloomFilter() const {
  BloomFilter filter(family_);
  BitVector& bits = filter.mutable_bits();
  for (size_t i = 0; i < counters_.size(); ++i) {
    if (counters_[i] > 0) bits.Set(i);
  }
  return filter;
}

size_t CountingBloomFilter::PositiveCounters() const {
  size_t count = 0;
  for (uint8_t counter : counters_) count += (counter > 0);
  return count;
}

bool CountingBloomFilter::IsEmpty() const {
  for (uint8_t counter : counters_) {
    if (counter != 0) return false;
  }
  return true;
}

}  // namespace bloomsample
