// Figure 12 (a, b): reconstruction wall-clock time at M = 1e7 for
// n ∈ {100, 10000}.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunReconstructionTimeFigure("Figure 12: reconstruction time, M = 1e7",
                              10000000, env);
  return 0;
}
