// Table 3: BloomSampleTree parameter settings for n = 1000, M = 1e7.
//
// Paper rows (m / depth / M⊥ / MB): 0.5: 63120/13/1220/61.6,
// 0.6: 72475/13/1220/70.8, 0.7: 84215/13/1220/82.2, 0.8: 101090/13/1220/98.7,
// 0.9: 132933/12/2441/64.9, 1.0: 297485/10/9765/36.3.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunParameterTable("Table 3: parameter settings, n = 1000, M = 1e7", 10000000,
                    env);
  return 0;
}
