// Ablation (Section 5.3, "Sampling multiple items"): r samples via the
// single-pass multi-path descent vs r independent BSTSample descents vs
// the batched multi-draw engine (SampleBatch: per-draw RNG streams over a
// fresh caching context per batch).
//
// Paper claim: the single pass shares intersections and leaf scans between
// paths, so it beats r independent runs — increasingly so as r grows past
// the number of distinct leaves the set occupies. The batch engine keeps
// that sharing and adds the EstimateCache, so repeated work disappears
// entirely: its per-batch intersections converge on the number of unique
// nodes the r paths touch.
#include "bench/bench_common.h"

#include "src/core/bst_sampler.h"
#include "src/core/query_context.h"
#include "src/util/timer.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  const uint64_t namespace_size = env.full ? 10000000 : 1000000;
  const uint64_t n = 1000;
  PrintBanner("Ablation: single-pass multi-sampling vs repeated descents vs "
              "batched engine, M = " + std::to_string(namespace_size) +
              ", n = 1000, acc 0.9",
              env);
  const uint64_t repetitions = env.Rounds(/*quick=*/50, /*full=*/500);

  Rng root_rng(env.seed);
  Rng set_rng = root_rng.Fork();
  const std::vector<uint64_t> query_set =
      MakeQuerySet(namespace_size, n, /*clustered=*/false, &set_rng);
  TreeBundle bundle = BuildPaperTree(0.9, n, namespace_size,
                                     HashFamilyKind::kSimple, env.seed);
  const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
  BstSampler sampler(bundle.tree.get());

  Table table({"r", "multi ms/batch", "repeated ms/batch", "batch ms/batch",
               "batch speedup", "multi inter./batch", "repeated inter./batch",
               "batch inter./batch", "batch hits/batch"});
  for (size_t r : {2, 4, 8, 16, 32, 64, 128}) {
    Rng rng_a = root_rng.Fork();
    OpCounters multi_counters;
    Timer timer;
    for (uint64_t rep = 0; rep < repetitions; ++rep) {
      (void)sampler.SampleMany(query, r, &rng_a, /*with_replacement=*/true,
                               &multi_counters);
    }
    const double multi_ms =
        timer.ElapsedMillis() / static_cast<double>(repetitions);

    Rng rng_b = root_rng.Fork();
    OpCounters repeat_counters;
    timer.Restart();
    for (uint64_t rep = 0; rep < repetitions; ++rep) {
      for (size_t i = 0; i < r; ++i) {
        (void)sampler.Sample(query, &rng_b, &repeat_counters);
      }
    }
    const double repeat_ms =
        timer.ElapsedMillis() / static_cast<double>(repetitions);

    // Batched engine: a cold caching context per batch, like a serving
    // process answering one multi-draw request per query.
    OpCounters batch_counters;
    timer.Restart();
    for (uint64_t rep = 0; rep < repetitions; ++rep) {
      QueryContext ctx(*bundle.tree, query);
      (void)sampler.SampleBatch(&ctx, r, env.seed ^ rep, &batch_counters);
    }
    const double batch_ms =
        timer.ElapsedMillis() / static_cast<double>(repetitions);

    const double denom = static_cast<double>(repetitions);
    table.AddRow(
        {std::to_string(r), FormatDouble(multi_ms, 3),
         FormatDouble(repeat_ms, 3), FormatDouble(batch_ms, 3),
         FormatDouble(batch_ms > 0 ? repeat_ms / batch_ms : 0.0, 2),
         FormatDouble(static_cast<double>(multi_counters.intersections) /
                          denom, 1),
         FormatDouble(static_cast<double>(repeat_counters.intersections) /
                          denom, 1),
         FormatDouble(static_cast<double>(batch_counters.intersections) /
                          denom, 1),
         FormatDouble(static_cast<double>(
                          batch_counters.estimate_cache_hits) / denom, 1)});
  }
  table.Print();
  return 0;
}
