// Table 6: measured sampling accuracy for uniform query sets of size
// n = 1000 — the fraction of BSTSample outputs that are true members of
// the stored set, per namespace size and designed accuracy.
//
// Paper rows: measured accuracy tracks the design target within a few
// percent at every (M, accuracy) cell (e.g. design 0.9 -> measured
// 0.906-0.921). The "1.0" design rows measure ~0.95-0.997 because the
// paper's accuracy-1.0 sizing is effectively 0.99 (see bloom_params.h).
#include "bench/bench_common.h"

#include <unordered_set>

#include "src/core/bst_sampler.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  PrintBanner("Table 6: measured sampling accuracy, uniform sets, n = 1000",
              env);
  const uint64_t rounds = env.Rounds(/*quick=*/3000, /*full=*/20000);
  const uint64_t n = 1000;

  Table table({"accuracy (design)", "M", "samples", "true hits",
               "accuracy (measured)"});
  Rng root_rng(env.seed);
  for (double accuracy : PaperAccuracies()) {
    for (uint64_t namespace_size : PaperNamespaceSizes()) {
      TreeBundle bundle = BuildPaperTree(accuracy, n, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      Rng set_rng = root_rng.Fork();
      const std::vector<uint64_t> query_set =
          MakeQuerySet(namespace_size, n, /*clustered=*/false, &set_rng);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
      const std::unordered_set<uint64_t> truth(query_set.begin(),
                                               query_set.end());

      BstSampler sampler(bundle.tree.get());
      Rng sample_rng = root_rng.Fork();
      uint64_t samples = 0;
      uint64_t hits = 0;
      for (uint64_t r = 0; r < rounds; ++r) {
        const auto sample = sampler.Sample(query, &sample_rng);
        if (!sample.has_value()) continue;
        ++samples;
        hits += truth.count(*sample);
      }
      table.AddRow(
          {FormatDouble(accuracy, 1),
           FormatCount(static_cast<double>(namespace_size)),
           std::to_string(samples), std::to_string(hits),
           FormatDouble(samples == 0 ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(samples),
                        3)});
    }
  }
  table.Print();
  return 0;
}
