#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "src/baselines/dictionary_attack.h"
#include "src/baselines/hash_invert.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/util/timer.h"
#include "src/workload/set_generators.h"

namespace bloomsample {
namespace bench {

Env Env::FromEnv() {
  Env env;
  const char* full = std::getenv("BSR_BENCH_FULL");
  env.full = full != nullptr && std::strcmp(full, "0") != 0 &&
             std::strcmp(full, "") != 0;
  if (const char* seed = std::getenv("BSR_BENCH_SEED")) {
    env.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* rounds = std::getenv("BSR_BENCH_ROUNDS")) {
    env.rounds_override = std::strtoull(rounds, nullptr, 10);
  }
  return env;
}

void PrintBanner(const std::string& title, const Env& env) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("mode=%s seed=%llu%s\n", env.full ? "FULL (paper scale)" : "quick",
              static_cast<unsigned long long>(env.seed),
              env.rounds_override != 0 ? " (rounds overridden)" : "");
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  BSR_CHECK(cells.size() == headers_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&widths](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t c = 0; c < cells.size(); ++c) {
      std::printf(" %-*s |", static_cast<int>(widths[c]), cells[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::printf("|");
  for (size_t c = 0; c < widths.size(); ++c) {
    for (size_t i = 0; i < widths[c] + 2; ++i) std::printf("-");
    std::printf("|");
  }
  std::printf("\n");
  for (const auto& row : rows_) print_row(row);
  std::printf("\n");
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatCount(double value) {
  char buf[64];
  if (value >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
  } else if (value >= 1e4) {
    std::snprintf(buf, sizeof(buf), "%.1fK", value / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", value);
  }
  return buf;
}

std::vector<double> PaperAccuracies() { return {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}; }

std::vector<uint64_t> PaperSetSizes() { return {100, 1000, 10000, 50000}; }

std::vector<uint64_t> PaperNamespaceSizes() {
  return {100000, 1000000, 10000000};
}

std::vector<uint64_t> MakeQuerySet(uint64_t namespace_size, uint64_t n,
                                   bool clustered, Rng* rng) {
  Result<std::vector<uint64_t>> set =
      clustered ? GenerateClusteredSet(namespace_size, n, rng)
                : GenerateUniformSet(namespace_size, n, rng);
  BSR_CHECK(set.ok(), "query set generation failed");
  return std::move(set).value();
}

TreeBundle BuildPaperTree(double accuracy, uint64_t n, uint64_t namespace_size,
                          HashFamilyKind kind, uint64_t seed) {
  Result<TreeConfig> config =
      MakeConfigForAccuracy(accuracy, n, /*k=*/3, namespace_size, kind, seed);
  BSR_CHECK(config.ok(), "tree config derivation failed");
  TreeBundle bundle;
  bundle.config = config.value();
  Timer timer;
  Result<BloomSampleTree> tree = BloomSampleTree::BuildComplete(bundle.config);
  BSR_CHECK(tree.ok(), "tree build failed");
  bundle.build_seconds = timer.ElapsedSeconds();
  bundle.tree = std::make_unique<BloomSampleTree>(std::move(tree).value());
  return bundle;
}

// ---------------------------------------------------------------------------
// Figures 3 / 4 — sampling operation counts.
// ---------------------------------------------------------------------------

void RunSamplingOpsFigure(const std::string& title, uint64_t namespace_size,
                          bool clustered, const Env& env) {
  PrintBanner(title, env);
  const uint64_t rounds = env.Rounds(/*quick=*/200, /*full=*/10000);
  std::printf("rounds per configuration: %llu; DA row is analytic (always M "
              "membership queries, 0 intersections)\n\n",
              static_cast<unsigned long long>(rounds));

  Table table({"n", "accuracy", "BST intersections/round",
               "BST memberships/round", "BST null-rate", "DA memberships"});
  Rng root_rng(env.seed);
  for (uint64_t n : PaperSetSizes()) {
    if (n >= namespace_size) continue;
    Rng set_rng = root_rng.Fork();
    const std::vector<uint64_t> query_set =
        MakeQuerySet(namespace_size, n, clustered, &set_rng);
    for (double accuracy : PaperAccuracies()) {
      TreeBundle bundle = BuildPaperTree(accuracy, n, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
      BstSampler sampler(bundle.tree.get());
      OpCounters counters;
      Rng sample_rng = root_rng.Fork();
      uint64_t nulls = 0;
      for (uint64_t r = 0; r < rounds; ++r) {
        if (!sampler.Sample(query, &sample_rng, &counters).has_value()) {
          ++nulls;
        }
      }
      const double denom = static_cast<double>(rounds);
      table.AddRow(
          {FormatCount(static_cast<double>(n)), FormatDouble(accuracy, 1),
           FormatDouble(static_cast<double>(counters.intersections) / denom, 1),
           FormatCount(static_cast<double>(counters.membership_queries) /
                       denom),
           FormatDouble(static_cast<double>(nulls) / denom, 4),
           FormatCount(static_cast<double>(namespace_size))});
    }
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Figures 5 / 6 — sampling wall-clock time.
// ---------------------------------------------------------------------------

namespace {

void RunSamplingTimeSubtable(const char* flavor, uint64_t namespace_size,
                             bool clustered, const Env& env) {
  const uint64_t rounds = env.Rounds(/*quick=*/200, /*full=*/10000);
  const uint64_t da_rounds =
      env.rounds_override != 0 ? env.rounds_override : (env.full ? 20 : 2);
  std::printf("-- %s query sets (BST rounds=%llu, DA rounds=%llu) --\n",
              flavor, static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(da_rounds));

  Table table({"n", "accuracy", "BST ms/sample", "DA ms/sample"});
  Rng root_rng(env.seed);
  DictionaryAttack attack(namespace_size);
  for (uint64_t n : PaperSetSizes()) {
    if (n >= namespace_size) continue;
    Rng set_rng = root_rng.Fork();
    const std::vector<uint64_t> query_set =
        MakeQuerySet(namespace_size, n, clustered, &set_rng);
    for (double accuracy : PaperAccuracies()) {
      TreeBundle bundle = BuildPaperTree(accuracy, n, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
      BstSampler sampler(bundle.tree.get());
      Rng sample_rng = root_rng.Fork();

      Timer timer;
      for (uint64_t r = 0; r < rounds; ++r) {
        (void)sampler.Sample(query, &sample_rng);
      }
      const double bst_ms = timer.ElapsedMillis() / static_cast<double>(rounds);

      timer.Restart();
      for (uint64_t r = 0; r < da_rounds; ++r) {
        (void)attack.Sample(query, &sample_rng);
      }
      const double da_ms =
          timer.ElapsedMillis() / static_cast<double>(da_rounds);

      table.AddRow({FormatCount(static_cast<double>(n)),
                    FormatDouble(accuracy, 1), FormatDouble(bst_ms, 3),
                    FormatDouble(da_ms, 3)});
    }
  }
  table.Print();
}

}  // namespace

void RunSamplingTimeFigure(const std::string& title, uint64_t namespace_size,
                           const Env& env) {
  PrintBanner(title, env);
  RunSamplingTimeSubtable("uniform", namespace_size, /*clustered=*/false, env);
  RunSamplingTimeSubtable("clustered", namespace_size, /*clustered=*/true, env);
}

// ---------------------------------------------------------------------------
// Figures 8 / 9 / 10 — reconstruction operation counts.
// ---------------------------------------------------------------------------

namespace {

void RunReconstructionOpsSubtable(const char* flavor, uint64_t namespace_size,
                                  bool clustered, const Env& env) {
  const uint64_t rounds = env.Rounds(/*quick=*/2, /*full=*/20);
  std::printf("-- %s query sets (rounds=%llu); DA row analytic; BST uses the "
              "paper's thresholded pruning (tau = 0.5) --\n",
              flavor, static_cast<unsigned long long>(rounds));

  // BST intersections are split by kernel (dense m/64-word scan vs sparse
  // nonzero-word walk) so the figure attributes the work the query path
  // actually did; their sum is the paper's intersection count. The MB/query
  // column is the filter-payload traffic those intersections read (16 bytes
  // per touched word position) — the metric where the arena layout and
  // sparse dispatch wins show even when op counts are unchanged. The cold
  // columns use a fresh QueryContext per round (the paper's independent-
  // query cost); the "warm" columns repeat the query on one reused context,
  // where the EstimateCache turns every node test into a hit — the
  // amortized cost of serving the same query filter again.
  Table table({"n", "accuracy", "BST inter. (dense)", "BST inter. (sparse)",
               "BST MB/query", "BST member.", "warm inter.", "warm hits",
               "HI inversions", "HI member.", "DA member."});
  Rng root_rng(env.seed);
  HashInvert inverter(namespace_size);
  for (uint64_t n : PaperSetSizes()) {
    if (n >= namespace_size) continue;
    Rng set_rng = root_rng.Fork();
    const std::vector<uint64_t> query_set =
        MakeQuerySet(namespace_size, n, clustered, &set_rng);
    for (double accuracy : PaperAccuracies()) {
      TreeBundle bundle = BuildPaperTree(accuracy, n, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      bundle.tree->set_intersection_threshold(0.5);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
      BstReconstructor reconstructor(bundle.tree.get());

      OpCounters bst_counters;
      for (uint64_t r = 0; r < rounds; ++r) {
        (void)reconstructor.Reconstruct(
            query, &bst_counters, BstReconstructor::PruningMode::kThresholded);
      }
      // Warm repeat: fill one context, then measure the second pass.
      OpCounters warm_counters;
      {
        const QueryContext ctx(*bundle.tree, query);
        (void)reconstructor.Reconstruct(
            ctx, nullptr, BstReconstructor::PruningMode::kThresholded);
        (void)reconstructor.Reconstruct(
            ctx, &warm_counters, BstReconstructor::PruningMode::kThresholded);
      }
      OpCounters hi_counters;
      for (uint64_t r = 0; r < rounds; ++r) {
        const auto result = inverter.Reconstruct(
            query, HashInvert::ReconstructMode::kAuto, &hi_counters);
        BSR_CHECK(result.ok(), "HashInvert reconstruction failed");
      }
      const double denom = static_cast<double>(rounds);
      table.AddRow(
          {FormatCount(static_cast<double>(n)), FormatDouble(accuracy, 1),
           FormatDouble(static_cast<double>(bst_counters.dense_intersections) /
                            denom, 1),
           FormatDouble(
               static_cast<double>(bst_counters.sparse_intersections) / denom,
               1),
           FormatDouble(static_cast<double>(bst_counters.intersection_bytes) /
                            denom / 1e6,
                        2),
           FormatCount(static_cast<double>(bst_counters.membership_queries) /
                       denom),
           FormatDouble(static_cast<double>(warm_counters.intersections), 1),
           FormatDouble(
               static_cast<double>(warm_counters.estimate_cache_hits), 1),
           FormatCount(static_cast<double>(hi_counters.inversions) / denom),
           FormatCount(static_cast<double>(hi_counters.membership_queries) /
                       denom),
           FormatCount(static_cast<double>(namespace_size))});
    }
  }
  table.Print();
}

void RunReconstructionTimeSubtable(const char* flavor, uint64_t namespace_size,
                                   bool clustered, const Env& env) {
  const uint64_t rounds = env.Rounds(/*quick=*/2, /*full=*/20);
  // Figures 11/12 plot n = 100 and n = 10000 only.
  const std::vector<uint64_t> set_sizes = {100, 10000};
  std::printf("-- %s query sets (rounds=%llu) --\n", flavor,
              static_cast<unsigned long long>(rounds));

  // BST MB/query comes from one counted pass outside the timers (the
  // traversal is deterministic, so the byte count is the same every round).
  // "BST ms (warm)" re-runs the query on one reused QueryContext: every
  // node test is an EstimateCache hit and every leaf scan is served from
  // the leaf cache — the steady-state cost of repeated identical queries.
  Table table({"n", "accuracy", "BST ms", "BST ms (warm)", "BST MB/query",
               "HI ms", "DA ms"});
  Rng root_rng(env.seed);
  HashInvert inverter(namespace_size);
  DictionaryAttack attack(namespace_size);
  for (uint64_t n : set_sizes) {
    if (n >= namespace_size) continue;
    Rng set_rng = root_rng.Fork();
    const std::vector<uint64_t> query_set =
        MakeQuerySet(namespace_size, n, clustered, &set_rng);
    for (double accuracy : PaperAccuracies()) {
      TreeBundle bundle = BuildPaperTree(accuracy, n, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      bundle.tree->set_intersection_threshold(0.5);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
      BstReconstructor reconstructor(bundle.tree.get());

      OpCounters bst_counters;
      (void)reconstructor.Reconstruct(
          query, &bst_counters, BstReconstructor::PruningMode::kThresholded);

      Timer timer;
      for (uint64_t r = 0; r < rounds; ++r) {
        (void)reconstructor.Reconstruct(
            query, nullptr, BstReconstructor::PruningMode::kThresholded);
      }
      const double bst_ms = timer.ElapsedMillis() / static_cast<double>(rounds);

      const QueryContext warm_ctx(*bundle.tree, query);
      (void)reconstructor.Reconstruct(
          warm_ctx, nullptr, BstReconstructor::PruningMode::kThresholded);
      timer.Restart();
      for (uint64_t r = 0; r < rounds; ++r) {
        (void)reconstructor.Reconstruct(
            warm_ctx, nullptr, BstReconstructor::PruningMode::kThresholded);
      }
      const double bst_warm_ms =
          timer.ElapsedMillis() / static_cast<double>(rounds);

      timer.Restart();
      for (uint64_t r = 0; r < rounds; ++r) {
        const auto result = inverter.Reconstruct(query);
        BSR_CHECK(result.ok(), "HashInvert reconstruction failed");
      }
      const double hi_ms = timer.ElapsedMillis() / static_cast<double>(rounds);

      timer.Restart();
      for (uint64_t r = 0; r < rounds; ++r) {
        (void)attack.Reconstruct(query);
      }
      const double da_ms = timer.ElapsedMillis() / static_cast<double>(rounds);

      table.AddRow(
          {FormatCount(static_cast<double>(n)), FormatDouble(accuracy, 1),
           FormatDouble(bst_ms, 2), FormatDouble(bst_warm_ms, 2),
           FormatDouble(
               static_cast<double>(bst_counters.intersection_bytes) / 1e6, 2),
           FormatDouble(hi_ms, 2), FormatDouble(da_ms, 2)});
    }
  }
  table.Print();
}

}  // namespace

void RunReconstructionOpsFigure(const std::string& title,
                                uint64_t namespace_size, const Env& env) {
  PrintBanner(title, env);
  RunReconstructionOpsSubtable("uniform", namespace_size, /*clustered=*/false,
                               env);
  RunReconstructionOpsSubtable("clustered", namespace_size, /*clustered=*/true,
                               env);
}

void RunReconstructionTimeFigure(const std::string& title,
                                 uint64_t namespace_size, const Env& env) {
  PrintBanner(title, env);
  RunReconstructionTimeSubtable("uniform", namespace_size, /*clustered=*/false,
                                env);
  RunReconstructionTimeSubtable("clustered", namespace_size,
                                /*clustered=*/true, env);
}

// ---------------------------------------------------------------------------
// Tables 2 / 3 — parameter settings.
// ---------------------------------------------------------------------------

void RunParameterTable(const std::string& title, uint64_t namespace_size,
                       const Env& env) {
  PrintBanner(title, env);
  std::printf("n = 1000, k = 3, analytic cost model "
              "(icost = m/64 words, mcost = k+1 units)\n\n");
  Table table({"accuracy", "m (bits)", "depth", "leaf size M_bot", "#nodes",
               "memory (MB)"});
  for (double accuracy : PaperAccuracies()) {
    Result<TreeConfig> config = MakeConfigForAccuracy(
        accuracy, /*n=*/1000, /*k=*/3, namespace_size,
        HashFamilyKind::kSimple, env.seed);
    BSR_CHECK(config.ok(), "config derivation failed");
    const TreeConfig& c = config.value();
    const double memory_mb = static_cast<double>(c.m) *
                             static_cast<double>(c.CompleteNodeCount()) /
                             (8.0 * 1024.0 * 1024.0);
    table.AddRow({FormatDouble(accuracy, 1), std::to_string(c.m),
                  std::to_string(c.depth), std::to_string(c.LeafRangeSize()),
                  std::to_string(c.CompleteNodeCount()),
                  FormatDouble(memory_mb, 2)});
  }
  table.Print();
}

}  // namespace bench
}  // namespace bloomsample
