// google-benchmark microbenchmarks for the three hash families of Table 1.
// The per-call gap (simple ≈ murmur3 ≪ md5) is the entire mechanism behind
// Figure 7's DictionaryAttack collapse under MD5.
#include <benchmark/benchmark.h>

#include "src/hash/hash_family.h"
#include "src/hash/md5.h"
#include "src/hash/murmur3.h"

namespace {

using bloomsample::HashFamilyKind;
using bloomsample::MakeHashFamily;

void BM_HashFamily(benchmark::State& state, HashFamilyKind kind) {
  const uint64_t m = 60870;
  auto family = MakeHashFamily(kind, 3, m, 42).value();
  uint64_t key = 0;
  uint64_t out[3];
  for (auto _ : state) {
    family->HashAll(key++, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3);
}
BENCHMARK_CAPTURE(BM_HashFamily, simple, HashFamilyKind::kSimple);
BENCHMARK_CAPTURE(BM_HashFamily, murmur3, HashFamilyKind::kMurmur3);
BENCHMARK_CAPTURE(BM_HashFamily, md5, HashFamilyKind::kMd5);

void BM_Murmur3Raw(benchmark::State& state) {
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloomsample::Murmur3Key64(key++, 1));
  }
}
BENCHMARK(BM_Murmur3Raw);

void BM_Md5Raw(benchmark::State& state) {
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloomsample::Md5Key64(key++, 1));
  }
}
BENCHMARK(BM_Md5Raw);

void BM_Md5LongMessage(benchmark::State& state) {
  const std::string message(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bloomsample::Md5::Digest(message.data(), message.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5LongMessage)->Arg(64)->Arg(4096);

}  // namespace
