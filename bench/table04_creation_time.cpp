// Table 4: wall-clock time to create the BloomSampleTree for each
// namespace size and desired accuracy (n = 1000 sizing).
//
// Paper shape: creation is sub-second up to M = 1e6 and a couple of
// seconds at M = 1e7 / accuracy 0.9; higher accuracy can *reduce* creation
// time when the larger m flips the cost model to a shallower tree. The
// paper's build inserts every element at every level; ours inserts only at
// the leaves and ORs filters upward (an exact identity for Bloom unions),
// so absolute times land below the paper's.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  PrintBanner("Table 4: BloomSampleTree creation time (n = 1000 sizing)", env);

  Table table({"accuracy", "M", "m (bits)", "depth", "#nodes", "build (ms)"});
  for (double accuracy : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    for (uint64_t namespace_size : PaperNamespaceSizes()) {
      TreeBundle bundle = BuildPaperTree(accuracy, /*n=*/1000, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      table.AddRow({FormatDouble(accuracy, 1),
                    FormatCount(static_cast<double>(namespace_size)),
                    std::to_string(bundle.config.m),
                    std::to_string(bundle.config.depth),
                    std::to_string(bundle.tree->node_count()),
                    FormatDouble(bundle.build_seconds * 1e3, 1)});
    }
  }
  table.Print();
  return 0;
}
