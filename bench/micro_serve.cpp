// Microbenchmark for the bsrd serving daemon: where is the knee?
//
// A closed-loop load generator (C client threads, each firing its next
// SAMPLE the instant the previous answer lands) sweeps concurrency
// against an in-process server on a unix socket. Per concurrency level
// the row reports achieved QPS, p50/p99 request latency, and the SHED
// RATE — the fraction of requests answered OVERLOADED by admission
// control instead of being queued past their usefulness. The server is
// deliberately provisioned small (2 workers, an 8-deep admission queue)
// so the sweep walks through the knee: flat latency while capacity
// holds, then shedding instead of collapse.
//
// Output: a JSON array on stdout; one record per concurrency level:
//   {"bench": "micro_serve", "clients": C, "requests": <n>,
//    "qps": <double>, "p50_us": <double>, "p99_us": <double>,
//    "ok": <n>, "shed": <n>, "shed_rate": <double>}
//
// BSR_BENCH_ROUNDS overrides the per-client request count (default 400
// quick / 2000 full).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/bloom/bloom_io.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/tree_io.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();
  const uint64_t per_client = env.Rounds(/*quick_default=*/400,
                                         /*full_default=*/2000);

  TreeConfig config;
  config.namespace_size = 1 << 16;
  config.m = 100000;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = env.seed;
  config.depth = 6;

  std::vector<uint64_t> occupied;
  for (uint64_t x = 3; x < config.namespace_size; x += 17) {
    occupied.push_back(x);
  }
  auto built = BloomSampleTree::BuildPruned(config, occupied);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }

  const std::string path = "/tmp/bsr_micro_serve_" +
                           std::to_string(static_cast<long>(getpid())) +
                           ".bst";
  if (!SaveTreeToFile(built.value(), path).ok()) return 1;
  auto loaded = LoadTreeFromFile(path, LoadOptions{});
  if (!loaded.ok()) return 1;
  auto tree = std::make_shared<BloomSampleTree>(std::move(loaded).value());
  auto pipeline =
      IngestPipeline::OpenTree(tree, path, IngestPipelineOptions(), 1);
  if (!pipeline.ok()) return 1;

  server::ServerOptions options;
  options.listen = "unix:" + path + ".sock";
  options.workers = 2;
  options.queue_capacity = 8;  // small on purpose: the sweep finds the knee
  auto server = server::BsrServer::Start(pipeline.value().get(), options);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // One shared query filter (the coalescing fast path — the realistic
  // hot-set shape for a serving tier).
  std::vector<uint64_t> query_ids;
  for (uint64_t x = 3; x < 2000; x += 17) query_ids.push_back(x);
  BloomFilter query(tree->family_ptr());
  query.InsertBatch(query_ids);
  std::ostringstream filter_stream;
  if (!SerializeBloomFilter(query, &filter_stream).ok()) return 1;
  const std::string filter_str = filter_stream.str();
  const std::vector<uint8_t> filter_bytes(filter_str.begin(),
                                          filter_str.end());

  std::printf("[\n");
  bool first = true;
  for (const int clients : {1, 2, 4, 8, 16}) {
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> shed{0};
    std::vector<std::vector<double>> latencies(clients);
    Timer wall;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        server::ClientOptions coptions;
        coptions.max_retries = 0;  // count every shed, don't mask it
        auto client =
            server::BsrClient::Connect(server.value()->address(), coptions);
        if (!client.ok()) return;
        latencies[c].reserve(per_client);
        for (uint64_t i = 0; i < per_client; ++i) {
          Timer t;
          auto draws = client.value()->Sample(filter_bytes, 8,
                                              /*seed=*/c * 100003 + i);
          latencies[c].push_back(t.ElapsedMillis() * 1000.0);
          if (draws.ok()) {
            ++ok;
          } else {
            ++shed;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_ms = wall.ElapsedMillis();

    std::vector<double> all;
    for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    const uint64_t total = ok.load() + shed.load();
    std::printf(
        "%s  {\"bench\": \"micro_serve\", \"clients\": %d, "
        "\"requests\": %llu, \"qps\": %.0f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"ok\": %llu, \"shed\": %llu, "
        "\"shed_rate\": %.4f}",
        first ? "" : ",\n", clients,
        static_cast<unsigned long long>(total),
        total / (wall_ms / 1000.0), Percentile(all, 0.5),
        Percentile(all, 0.99), static_cast<unsigned long long>(ok.load()),
        static_cast<unsigned long long>(shed.load()),
        total == 0 ? 0.0 : static_cast<double>(shed.load()) / total);
    first = false;
  }
  std::printf("\n]\n");

  server.value()->RequestDrain();
  (void)server.value()->Wait();
  server.value().reset();
  (void)pipeline.value()->Close();
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  return 0;
}
