// google-benchmark microbenchmarks for the Bloom-filter primitives that
// the cost model (Section 5.4) trades off: membership queries vs
// intersections, across filter sizes, plus insert and the cardinality
// estimators.
#include <benchmark/benchmark.h>

#include "src/bloom/bloom_filter.h"
#include "src/bloom/cardinality.h"
#include "src/util/rng.h"

namespace {

using bloomsample::BloomFilter;
using bloomsample::HashFamilyKind;
using bloomsample::MakeHashFamily;
using bloomsample::Rng;

BloomFilter MakeHalfFullFilter(uint64_t m, uint64_t seed) {
  auto family = MakeHashFamily(HashFamilyKind::kSimple, 3, m, seed).value();
  BloomFilter filter(family);
  Rng rng(seed);
  const uint64_t inserts = m / 6;  // ~ half the bits set with k = 3
  for (uint64_t i = 0; i < inserts; ++i) filter.Insert(rng.Next());
  return filter;
}

void BM_BloomInsert(benchmark::State& state) {
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  auto family = MakeHashFamily(HashFamilyKind::kSimple, 3, m, 1).value();
  BloomFilter filter(family);
  uint64_t key = 0;
  for (auto _ : state) {
    filter.Insert(key++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomInsert)->Arg(28465)->Arg(60870)->Arg(132933);

void BM_BloomContains(benchmark::State& state) {
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  const BloomFilter filter = MakeHalfFullFilter(m, 2);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.Contains(key++));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomContains)->Arg(28465)->Arg(60870)->Arg(132933);

void BM_BloomAndPopcount(benchmark::State& state) {
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  const BloomFilter a = MakeHalfFullFilter(m, 3);
  auto b = BloomFilter(a.family_ptr());
  Rng rng(4);
  for (uint64_t i = 0; i < m / 6; ++i) b.Insert(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndPopcount(b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomAndPopcount)->Arg(28465)->Arg(60870)->Arg(132933);

void BM_EstimateIntersection(benchmark::State& state) {
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  const BloomFilter a = MakeHalfFullFilter(m, 5);
  auto b = BloomFilter(a.family_ptr());
  Rng rng(6);
  for (uint64_t i = 0; i < m / 6; ++i) b.Insert(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(bloomsample::EstimateIntersection(a, b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EstimateIntersection)->Arg(28465)->Arg(132933);

void BM_BloomUnionWith(benchmark::State& state) {
  const uint64_t m = static_cast<uint64_t>(state.range(0));
  const BloomFilter a = MakeHalfFullFilter(m, 7);
  BloomFilter b(a.family_ptr());  // must share a's family to combine
  Rng rng(8);
  for (uint64_t i = 0; i < m / 6; ++i) b.Insert(rng.Next());
  for (auto _ : state) {
    b.UnionWith(a);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BloomUnionWith)->Arg(28465)->Arg(132933);

}  // namespace
