// Microbenchmark for the sharded forest: build / batched-sampling /
// reconstruction wall time as a function of the shard count, against the
// bare single-tree engines on the identical occupied set. This is the
// scaling record behind the "sharded forest" README section: shard builds
// and reconstructions are embarrassingly parallel (one FilterArena slab
// per shard, first-touch on a pinned thread), so on a P-core host the
// expectation is build/recon wall time ~ 1/min(S, P) of the bare tree,
// while S = 1 must sit within noise of the bare tree (the forest layer
// adds one Fenwick draw per sample and nothing else).
//
// Output: a JSON array on stdout; one record per (engine, variant, S):
//   {"bench": "micro_forest", "engine": "forest" | "tree",
//    "variant": "build" | "sample_batch" | "recon",
//    "shards": <S>, "threads": <resolved hw budget>, "simd": <tier>,
//    "m": <bits>, "namespace": <M>, "occupied": <n>, "nodes": <total>,
//    "draws": <r> | "elements": <recon size>, "ms": <double>}
//
// "tree" records are the bare BloomSampleTree / BstSampler /
// BstReconstructor baseline (shards reported as 1). Shard counts are
// {1, 2, 4, hardware_concurrency}, deduplicated — on a 1-core host the
// hw entry collapses into S = 1 and the S > 1 rows measure the pure
// sharding overhead, not parallel speedup.
//
// Quick mode runs m = 1e7; BSR_BENCH_FULL=1 adds an m = 1e8 shape at a
// shallower depth (node filters are m bits each, so the full shape is
// multi-hundred-MB resident — opt-in by design).
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bloom_sample_forest.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/query_context.h"
#include "src/util/simd.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

constexpr int kReps = 3;

void PrintRecord(bool first, const char* engine, const char* variant,
                 uint32_t shards, uint32_t threads, uint64_t m,
                 uint64_t namespace_size, uint64_t occupied, size_t nodes,
                 const char* extra_key, uint64_t extra_value, double ms) {
  std::printf(
      "%s  {\"bench\": \"micro_forest\", \"engine\": \"%s\", \"variant\": "
      "\"%s\", \"shards\": %u, \"threads\": %u, \"simd\": \"%s\", \"m\": "
      "%" PRIu64 ", \"namespace\": %" PRIu64 ", \"occupied\": %" PRIu64
      ", \"nodes\": %zu, \"%s\": %" PRIu64 ", \"ms\": %.3f}",
      first ? "" : ",\n", engine, variant, shards, threads,
      simd::LevelName(simd::ActiveLevel()), m, namespace_size, occupied,
      nodes, extra_key, extra_value, ms);
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  const uint64_t namespace_size = 1000000;
  const uint64_t occupied_n = 100000;
  const uint32_t hw = ResolveThreadCount(0);

  struct Shape {
    uint64_t m;
    uint32_t depth;
  };
  std::vector<Shape> shapes = {{10000000, 6}};
  if (env.full) shapes.push_back({100000000, 4});

  std::vector<uint32_t> shard_counts = {1, 2, 4, hw};
  std::sort(shard_counts.begin(), shard_counts.end());
  shard_counts.erase(
      std::unique(shard_counts.begin(), shard_counts.end()),
      shard_counts.end());

  // One occupied set for every configuration: a fixed-seed uniform draw
  // over the namespace, deduplicated ascending (what BuildPruned wants).
  Rng pop_rng(env.seed);
  std::vector<uint64_t> occupied;
  occupied.reserve(occupied_n);
  while (occupied.size() < occupied_n) {
    occupied.push_back(pop_rng.Below(namespace_size));
    if (occupied.size() == occupied_n) {
      std::sort(occupied.begin(), occupied.end());
      occupied.erase(std::unique(occupied.begin(), occupied.end()),
                     occupied.end());
    }
  }
  // Query = every 100th occupied key: all hits, spread across all shards.
  std::vector<uint64_t> members;
  for (size_t i = 0; i < occupied.size(); i += 100) {
    members.push_back(occupied[i]);
  }

  const uint64_t draws = env.Rounds(512, 4096);

  std::printf("[\n");
  bool first = true;
  for (const Shape& shape : shapes) {
    TreeConfig config;
    config.namespace_size = namespace_size;
    config.m = shape.m;
    config.k = 3;
    config.hash_kind = HashFamilyKind::kSimple;
    config.seed = env.seed;
    config.depth = shape.depth;
    config.build_threads = 0;  // full hardware budget
    config.query_threads = 0;

    // --- bare-tree baseline ---
    {
      double build_best = 1e300;
      size_t nodes = 0;
      std::optional<BloomSampleTree> tree;
      for (int rep = 0; rep < kReps; ++rep) {
        Timer timer;
        auto built = BloomSampleTree::BuildPruned(config, occupied);
        const double ms = timer.ElapsedMillis();
        BSR_CHECK(built.ok(), "micro_forest: bare build failed");
        if (ms < build_best) build_best = ms;
        nodes = built.value().node_count();
        tree.emplace(std::move(built).value());
      }
      PrintRecord(first, "tree", "build", 1, hw, shape.m, namespace_size,
                  occupied.size(), nodes, "reps", kReps, build_best);
      first = false;

      const BloomFilter query = tree->MakeQueryFilter(members);
      const BstSampler sampler(&*tree);
      const BstReconstructor reconstructor(&*tree);
      double sample_best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        QueryContext ctx(*tree, query);
        Timer timer;
        const auto out = sampler.SampleBatch(&ctx, draws, env.seed);
        const double ms = timer.ElapsedMillis();
        BSR_CHECK(out.size() == draws, "micro_forest: short batch");
        if (ms < sample_best) sample_best = ms;
      }
      PrintRecord(false, "tree", "sample_batch", 1, hw, shape.m,
                  namespace_size, occupied.size(), nodes, "draws", draws,
                  sample_best);

      double recon_best = 1e300;
      size_t elements = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        Timer timer;
        const auto ids = reconstructor.Reconstruct(query);
        const double ms = timer.ElapsedMillis();
        elements = ids.size();
        if (ms < recon_best) recon_best = ms;
      }
      PrintRecord(false, "tree", "recon", 1, hw, shape.m, namespace_size,
                  occupied.size(), nodes, "elements", elements, recon_best);
    }

    // --- forest, per shard count ---
    for (uint32_t shards : shard_counts) {
      ForestConfig fconfig;
      fconfig.tree = config;
      fconfig.shards = shards;

      double build_best = 1e300;
      size_t nodes = 0;
      std::optional<BloomSampleForest> forest;
      for (int rep = 0; rep < kReps; ++rep) {
        Timer timer;
        auto built = BloomSampleForest::BuildPruned(fconfig, occupied);
        const double ms = timer.ElapsedMillis();
        BSR_CHECK(built.ok(), "micro_forest: forest build failed");
        if (ms < build_best) build_best = ms;
        nodes = built.value().node_count();
        forest.emplace(std::move(built).value());
      }
      PrintRecord(false, "forest", "build", shards, hw, shape.m,
                  namespace_size, occupied.size(), nodes, "reps", kReps,
                  build_best);

      const BloomFilter query = forest->MakeQueryFilter(members);
      const ForestSampler sampler(&*forest);
      const ForestReconstructor reconstructor(&*forest);
      double sample_best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        ForestQueryContext ctx(*forest, query);
        Timer timer;
        const auto out = sampler.SampleBatch(&ctx, draws, env.seed);
        const double ms = timer.ElapsedMillis();
        BSR_CHECK(out.size() == draws, "micro_forest: short batch");
        if (ms < sample_best) sample_best = ms;
      }
      PrintRecord(false, "forest", "sample_batch", shards, hw, shape.m,
                  namespace_size, occupied.size(), nodes, "draws", draws,
                  sample_best);

      double recon_best = 1e300;
      size_t elements = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        ForestQueryContext ctx(*forest, query);
        Timer timer;
        const auto ids = reconstructor.Reconstruct(ctx);
        const double ms = timer.ElapsedMillis();
        elements = ids.size();
        if (ms < recon_best) recon_best = ms;
      }
      PrintRecord(false, "forest", "recon", shards, hw, shape.m,
                  namespace_size, occupied.size(), nodes, "elements",
                  elements, recon_best);
    }
  }
  std::printf("\n]\n");
  return 0;
}
