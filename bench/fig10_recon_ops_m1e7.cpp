// Figure 10 (a, b): reconstruction operation counts at M = 1e7.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunReconstructionOpsFigure("Figure 10: reconstruction op counts, M = 1e7",
                             10000000, env);
  return 0;
}
