// Microbenchmark for the online scrubber (core/scrubber.h): what does
// integrity scanning cost, and does the token bucket actually keep it out
// of sampler tail latency?
//
// Section 1 — offline scrub throughput. One paced pass over a multi-MB
// snapshot per rate-limit setting:
//   {"bench": "micro_scrub", "variant": "throughput",
//    "rate_limit_mb_s": <0 = unthrottled>, "slab_mb": <double>,
//    "chunks": <N>, "ms": <double>, "scrub_mb_per_sec": <double>}
// Unthrottled measures the pread+XXH64 ceiling; the limited rows should
// land within a few percent of their configured rate — that gap is the
// pacer's accuracy.
//
// Section 2 — sampler latency under a live scrubber. A pipeline serves
// SampleBatch draws on the main thread while the background scrubber
// re-walks the same file continuously (rescan_interval 0):
//   {"bench": "micro_scrub", "variant": "sampler_latency",
//    "scrub": "off" | "paced" | "unthrottled", "rate_limit_mb_s": <N>,
//    "draws": <N>, "p50_us": <double>, "p99_us": <double>,
//    "scrub_passes": <N>}
// The paced row is the product claim: p99 with a rate-limited scrubber
// should sit on top of the scrub-off row, while unthrottled shows what
// the limit is protecting against.
//
// BSR_BENCH_FULL=1 raises the draw count; quick mode finishes in seconds.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bst_sampler.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_context.h"
#include "src/core/scrubber.h"
#include "src/core/tree_io.h"
#include "src/core/wal.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  // Same shape as micro_ingest: depth 6 caps the pruned tree at 127
  // nodes, so m = 1e6 bits/node yields a slab in the tens of MB — enough
  // chunks for the pacer to matter, small enough for quick mode.
  const uint64_t namespace_size = 1000000;
  TreeConfig config;
  config.namespace_size = namespace_size;
  config.m = 1000000;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = env.seed;
  config.depth = 6;

  std::vector<uint64_t> base;
  for (uint64_t x = 0; x < namespace_size; x += 100) base.push_back(x);

  auto built = BloomSampleTree::BuildPruned(config, base);
  BSR_CHECK(built.ok(), "micro_scrub: BuildPruned failed");

  const std::string path = "/tmp/bsr_micro_scrub.bst";
  std::remove(path.c_str());
  std::remove(WalPathFor(path).c_str());
  std::remove(QuarantinePathFor(path).c_str());
  BSR_CHECK(SaveTreeToFile(built.value(), path).ok(), "micro_scrub: save");

  auto info = ReadSnapshotChunkInfo(path);
  BSR_CHECK(info.ok(), "micro_scrub: chunk info");
  const double slab_mb =
      static_cast<double>(info.value().slab_bytes) / (1024.0 * 1024.0);
  const uint64_t chunk_count =
      (info.value().slab_bytes + info.value().chunk_bytes - 1) /
      info.value().chunk_bytes;

  std::printf("[\n");
  bool first = true;

  // ---- section 1: offline throughput per rate limit --------------------
  const std::vector<uint64_t> rates_mb = {0, 256, 64, 16};
  for (uint64_t rate_mb : rates_mb) {
    ScrubOptions options;
    options.rate_limit_bytes_per_sec = rate_mb * 1024 * 1024;

    // Warm the page cache once so the unthrottled row measures hash +
    // pread, not first-touch disk latency.
    if (first) {
      ScrubFileReport warm;
      BSR_CHECK(ScrubSnapshotFileOnce(path, ScrubOptions{}, &warm).ok(),
                "micro_scrub: warmup pass");
    }

    Timer timer;
    ScrubFileReport report;
    BSR_CHECK(ScrubSnapshotFileOnce(path, options, &report).ok(),
              "micro_scrub: scrub pass");
    const double ms = timer.ElapsedMillis();
    BSR_CHECK(report.chunks_scanned == chunk_count,
              "micro_scrub: short scan");

    std::printf("%s  {\"bench\": \"micro_scrub\", \"variant\": "
                "\"throughput\", \"rate_limit_mb_s\": %" PRIu64
                ", \"slab_mb\": %.2f, \"chunks\": %" PRIu64
                ", \"ms\": %.3f, \"scrub_mb_per_sec\": %.1f}",
                first ? "" : ",\n", rate_mb, slab_mb, chunk_count, ms,
                slab_mb / (ms / 1e3));
    first = false;
  }

  // ---- section 2: sampler tail latency with the scrubber live ----------
  const uint64_t draws = env.Rounds(/*quick_default=*/400,
                                    /*full_default=*/4000);
  struct ScrubMode {
    const char* name;
    bool enabled;
    uint64_t rate_mb;
  };
  const std::vector<ScrubMode> modes = {
      {"off", false, 0},
      {"paced", true, 16},
      {"unthrottled", true, 0},
  };

  std::vector<uint64_t> members;
  for (uint64_t x = 0; x < namespace_size && members.size() < 40; x += 2500) {
    members.push_back(x);
  }

  for (const ScrubMode& mode : modes) {
    LoadOptions heap;
    heap.mode = LoadMode::kHeap;
    auto loaded = LoadTreeFromFile(path, heap);
    BSR_CHECK(loaded.ok(), "micro_scrub: load");
    auto tree = std::make_shared<BloomSampleTree>(std::move(loaded).value());

    IngestPipelineOptions options;
    auto opened = IngestPipeline::OpenTree(tree, path, options);
    BSR_CHECK(opened.ok(), "micro_scrub: pipeline open");
    std::unique_ptr<IngestPipeline> pipeline = std::move(opened).value();

    ScrubOptions scrub;
    scrub.rate_limit_bytes_per_sec = mode.rate_mb * 1024 * 1024;
    scrub.rescan_interval = std::chrono::milliseconds(0);
    Scrubber scrubber(pipeline.get(), scrub);
    if (mode.enabled) scrubber.Start();

    std::vector<double> latencies_us;
    latencies_us.reserve(draws);
    for (uint64_t i = 0; i < draws; ++i) {
      Timer timer;
      auto guard = pipeline->AcquireRead();
      const BloomFilter query = guard.tree().MakeQueryFilter(members);
      QueryContext ctx(guard.tree(), query);
      BstSampler sampler(&guard.tree());
      (void)sampler.SampleBatch(&ctx, 8, /*seed=*/i + 1);
      latencies_us.push_back(timer.ElapsedMillis() * 1e3);
    }

    scrubber.Stop();
    const ScrubStats stats = scrubber.stats();
    BSR_CHECK(pipeline->Close().ok(), "micro_scrub: pipeline close");

    std::sort(latencies_us.begin(), latencies_us.end());
    std::printf(",\n  {\"bench\": \"micro_scrub\", \"variant\": "
                "\"sampler_latency\", \"scrub\": \"%s\", "
                "\"rate_limit_mb_s\": %" PRIu64 ", \"draws\": %" PRIu64
                ", \"p50_us\": %.1f, \"p99_us\": %.1f, "
                "\"scrub_passes\": %" PRIu64 "}",
                mode.name, mode.rate_mb, draws,
                Percentile(latencies_us, 0.50),
                Percentile(latencies_us, 0.99), stats.passes);
  }

  std::printf("\n]\n");
  std::remove(path.c_str());
  std::remove(WalPathFor(path).c_str());
  return 0;
}
