// Figure 3 (a, b, c): number of Bloom-filter intersections and membership
// queries per sampling round for uniformly random query sets, BST vs
// DictionaryAttack, at M = 1e5 / 1e6 / 1e7.
//
// Paper shape to reproduce: BST needs a few dozen intersections and a few
// thousand membership queries per sample, versus DA's flat M membership
// queries; BST membership cost tracks the leaf size M⊥, which grows with
// accuracy (larger m makes intersections pricier, so the tree gets
// shallower).
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  for (uint64_t namespace_size : PaperNamespaceSizes()) {
    RunSamplingOpsFigure(
        "Figure 3: sampling op counts, uniform query sets, M = " +
            std::to_string(namespace_size),
        namespace_size, /*clustered=*/false, env);
  }
  return 0;
}
