// Table 2: BloomSampleTree parameter settings for n = 1000, M = 1e6 —
// the derived m, tree depth, leaf size M⊥, and total memory per desired
// accuracy.
//
// Paper rows for comparison (m / depth / M⊥ / MB): 0.5: 28465/10/976/3.5,
// 0.6: 32808/10/976/4.0, 0.7: 38259/10/976/2.3, 0.8: 46000/9/1953/2.7,
// 0.9: 60870/9/1953/3.7, 1.0: 137230/6/15625/1.03. Our m matches within
// rounding; depth/M⊥ match where the analytic cost model agrees with the
// authors' measured op costs (the paper's own machine-specific ratio).
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunParameterTable("Table 2: parameter settings, n = 1000, M = 1e6", 1000000,
                    env);
  return 0;
}
