// Figure 4 (a, b, c): sampling operation counts for clustered query sets
// (the pdf-splitting generator with p = 10%), BST vs DictionaryAttack.
//
// Paper shape: clustered sets concentrate in few subtrees, so BST visits
// slightly fewer distinct leaves per sample but follows more false-overlap
// branches near the cluster; intersection counts run a bit above the
// uniform case while membership counts stay comparable.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  for (uint64_t namespace_size : PaperNamespaceSizes()) {
    RunSamplingOpsFigure(
        "Figure 4: sampling op counts, clustered query sets, M = " +
            std::to_string(namespace_size),
        namespace_size, /*clustered=*/true, env);
  }
  return 0;
}
