#include "bench/fraction_common.h"

#include <algorithm>

#include "src/bloom/bloom_params.h"
#include "src/util/timer.h"

namespace bloomsample {
namespace bench {

FractionSetup MakeFractionSetup(const Env& env) {
  TwitterCrawlConfig crawl_config;
  crawl_config.seed = env.seed;
  if (env.full) {
    // Scaled toward the paper's crawl (7.2M users / 2.2B ids / 24K tags);
    // user count is capped so the run stays in laptop memory.
    crawl_config.namespace_size = 1ULL << 31;
    crawl_config.num_users = 2'000'000;
    crawl_config.num_hashtags = 24'000;
    crawl_config.num_tweets = 40'000'000;
    crawl_config.min_hashtag_users = 100;
  }
  Result<TwitterCrawl> crawl = GenerateTwitterCrawl(crawl_config);
  BSR_CHECK(crawl.ok(), "synthetic crawl generation failed");

  FractionSetup setup;
  setup.crawl = std::move(crawl).value();
  setup.fractions = env.full
                        ? std::vector<double>{0.05, 0.1, 0.2, 0.3, 0.4, 0.5,
                                              0.6, 0.7, 0.8, 0.9}
                        : std::vector<double>{0.05, 0.1, 0.2, 0.3, 0.5, 0.7,
                                              0.9};
  setup.sampling_rounds = env.Rounds(/*quick=*/300, /*full=*/1000);

  // Median hashtag set size stands in for the paper's sizing n.
  std::vector<size_t> sizes;
  sizes.reserve(setup.crawl.hashtag_users.size());
  for (const auto& users : setup.crawl.hashtag_users) {
    sizes.push_back(users.size());
  }
  std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2,
                   sizes.end());
  const uint64_t typical_n = std::max<uint64_t>(sizes[sizes.size() / 2], 10);

  Result<uint64_t> m = SolveBitsForAccuracy(
      0.8, typical_n, /*k=*/3, crawl_config.namespace_size);
  BSR_CHECK(m.ok(), "m sizing failed");

  TreeConfig tree_config;
  tree_config.namespace_size = crawl_config.namespace_size;
  tree_config.m = m.value();
  tree_config.k = 3;
  tree_config.hash_kind = HashFamilyKind::kSimple;
  tree_config.seed = env.seed;
  // Paper: 256 leaves over the full id space regardless of occupancy.
  tree_config.depth = 8;
  BSR_CHECK(tree_config.Validate().ok(), "fraction tree config invalid");
  setup.tree_config = tree_config;
  return setup;
}

FractionInstance MakeFractionInstance(const FractionSetup& setup,
                                      double fraction, SelectionMode mode,
                                      Rng* rng) {
  Result<std::vector<IdRange>> ranges =
      SelectLeafRanges(setup.tree_config.namespace_size,
                       /*leaf_count=*/1ULL << setup.tree_config.depth,
                       fraction, mode, rng);
  BSR_CHECK(ranges.ok(), "leaf range selection failed");

  FractionInstance instance;
  instance.restricted = setup.crawl.RestrictTo(ranges.value());

  Timer timer;
  Result<BloomSampleTree> tree = BloomSampleTree::BuildPruned(
      setup.tree_config, instance.restricted.user_ids);
  BSR_CHECK(tree.ok(), "pruned tree build failed");
  instance.build_seconds = timer.ElapsedSeconds();
  instance.tree = std::make_unique<BloomSampleTree>(std::move(tree).value());
  return instance;
}

}  // namespace bench
}  // namespace bloomsample
