// Figure 14: memory of the Pruned-BloomSampleTree at varying namespace
// fractions, against the complete tree over the full namespace.
//
// Paper shape: pruned memory grows with the fraction; at fraction 0.5 the
// uniform selection costs ~70% of the full tree while the clustered one
// costs ~20-25% (shared ancestors), both far below the complete tree.
#include "bench/fraction_common.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  PrintBanner("Figure 14: Pruned-BST memory vs namespace fraction (Twitter)",
              env);
  FractionSetup setup = MakeFractionSetup(env);
  const double full_mb =
      static_cast<double>(setup.tree_config.m) *
      static_cast<double>(setup.tree_config.CompleteNodeCount()) /
      (8.0 * 1024.0 * 1024.0);
  std::printf("complete tree over the full namespace: %.2f MB "
              "(%llu nodes x %llu bits)\n\n",
              full_mb,
              static_cast<unsigned long long>(
                  setup.tree_config.CompleteNodeCount()),
              static_cast<unsigned long long>(setup.tree_config.m));

  Table table({"fraction", "mode", "nodes", "memory (MB)", "% of complete",
               "build (s)"});
  Rng root_rng(env.seed ^ 0xf14f14f14ULL);
  for (const SelectionMode mode :
       {SelectionMode::kUniform, SelectionMode::kClustered}) {
    const char* mode_name =
        mode == SelectionMode::kUniform ? "uniform" : "clustered";
    for (double fraction : setup.fractions) {
      Rng mode_rng = root_rng.Fork();
      FractionInstance instance =
          MakeFractionInstance(setup, fraction, mode, &mode_rng);
      const double mb = static_cast<double>(instance.tree->MemoryBytes()) /
                        (1024.0 * 1024.0);
      table.AddRow({FormatDouble(fraction, 2), mode_name,
                    std::to_string(instance.tree->node_count()),
                    FormatDouble(mb, 2),
                    FormatDouble(100.0 * mb / full_mb, 1),
                    FormatDouble(instance.build_seconds, 2)});
    }
  }
  table.Print();
  return 0;
}
