// Shared infrastructure for the paper-reproduction benchmark harness.
//
// Every binary in bench/ regenerates one table or figure from the paper.
// Output is a titled ASCII table whose rows mirror the paper's series.
//
// Scale control (environment variables):
//   BSR_BENCH_FULL=1    — paper-scale runs (10,000 sampling rounds, all
//                         namespace sizes, full chi-squared protocol).
//   BSR_BENCH_ROUNDS=N  — override the per-configuration round count.
//   BSR_BENCH_SEED=N    — root RNG seed (default 20170313).
// Defaults are laptop-quick: every binary finishes in seconds to a couple
// of minutes while preserving the paper's qualitative shape.
#ifndef BLOOMSAMPLE_BENCH_BENCH_COMMON_H_
#define BLOOMSAMPLE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/bloom_sample_tree.h"
#include "src/core/tree_config.h"
#include "src/util/rng.h"

namespace bloomsample {
namespace bench {

struct Env {
  bool full = false;
  uint64_t seed = 20170313;
  uint64_t rounds_override = 0;

  static Env FromEnv();

  /// Round count for a configuration: the override if set, else the
  /// full/quick default.
  uint64_t Rounds(uint64_t quick_default, uint64_t full_default) const {
    if (rounds_override != 0) return rounds_override;
    return full ? full_default : quick_default;
  }
};

/// Prints "=== <title> ===" plus the run mode, so bench_output.txt is
/// self-describing.
void PrintBanner(const std::string& title, const Env& env);

/// Minimal fixed-width table writer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string FormatDouble(double value, int precision = 2);
std::string FormatCount(double value);

/// The paper's parameter grids (Table 1).
std::vector<double> PaperAccuracies();          // 0.5 … 1.0
std::vector<uint64_t> PaperSetSizes();          // 100, 1K, 10K, 50K
std::vector<uint64_t> PaperNamespaceSizes();    // 1e5, 1e6, 1e7

/// Builds the query set: uniform or clustered (Section 7.1, p = 10%).
std::vector<uint64_t> MakeQuerySet(uint64_t namespace_size, uint64_t n,
                                   bool clustered, Rng* rng);

struct TreeBundle {
  TreeConfig config;
  std::unique_ptr<BloomSampleTree> tree;
  double build_seconds = 0.0;
};

/// Builds the complete tree the paper's experiments use: m sized from
/// (accuracy, n, M), depth from the analytic cost model.
TreeBundle BuildPaperTree(double accuracy, uint64_t n, uint64_t namespace_size,
                          HashFamilyKind kind, uint64_t seed);

// ---------------------------------------------------------------------------
// Shared figure runners (each used by 2-3 binaries that differ only in M or
// in the query-set flavour).
// ---------------------------------------------------------------------------

/// Figures 3 / 4: average #intersections and #membership queries per
/// sampling round, BST vs DictionaryAttack.
void RunSamplingOpsFigure(const std::string& title, uint64_t namespace_size,
                          bool clustered, const Env& env);

/// Figures 5 / 6: average sampling wall-clock time, BST vs DA, uniform and
/// clustered subtables.
void RunSamplingTimeFigure(const std::string& title, uint64_t namespace_size,
                           const Env& env);

/// Figures 8 / 9 / 10: reconstruction operation counts, BST vs HashInvert
/// vs DA, uniform and clustered subtables.
void RunReconstructionOpsFigure(const std::string& title,
                                uint64_t namespace_size, const Env& env);

/// Figures 11 / 12: reconstruction wall-clock time.
void RunReconstructionTimeFigure(const std::string& title,
                                 uint64_t namespace_size, const Env& env);

/// Tables 2 / 3: m, depth, M⊥ and memory per accuracy, n = 1000.
void RunParameterTable(const std::string& title, uint64_t namespace_size,
                       const Env& env);

}  // namespace bench
}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BENCH_BENCH_COMMON_H_
