// Figure 13: average time to draw a sample from hashtag query filters at
// varying namespace fractions (uniform vs clustered leaf selection), on
// the synthetic Twitter crawl with a Pruned-BloomSampleTree.
//
// Paper shape: sampling time grows with the occupied fraction and is an
// order of magnitude smaller below fraction 0.1 than at full occupancy;
// clustered namespaces sample faster than uniform ones (fewer distinct
// root-to-leaf paths). DictionaryAttack, measured once as a reference,
// needs seconds-to-minutes per sample on this namespace and is omitted
// from the table, as in the paper.
#include "bench/fraction_common.h"

#include "src/baselines/dictionary_attack.h"
#include "src/core/bst_sampler.h"
#include "src/util/timer.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  PrintBanner("Figure 13: sampling time vs namespace fraction (Twitter)", env);
  FractionSetup setup = MakeFractionSetup(env);
  std::printf("crawl: %zu users, %zu hashtag query sets, namespace = %llu; "
              "m = %llu bits, depth = %u, rounds = %llu\n\n",
              setup.crawl.user_ids.size(), setup.crawl.hashtag_users.size(),
              static_cast<unsigned long long>(
                  setup.tree_config.namespace_size),
              static_cast<unsigned long long>(setup.tree_config.m),
              setup.tree_config.depth,
              static_cast<unsigned long long>(setup.sampling_rounds));

  Table table({"fraction", "mode", "users kept", "BST ms/sample",
               "null-rate"});
  Rng root_rng(env.seed ^ 0xf13f13f13ULL);
  for (const SelectionMode mode :
       {SelectionMode::kUniform, SelectionMode::kClustered}) {
    const char* mode_name =
        mode == SelectionMode::kUniform ? "uniform" : "clustered";
    for (double fraction : setup.fractions) {
      Rng mode_rng = root_rng.Fork();
      FractionInstance instance =
          MakeFractionInstance(setup, fraction, mode, &mode_rng);
      if (instance.restricted.hashtag_users.empty()) continue;

      // Pre-build one query filter per hashtag.
      std::vector<BloomFilter> queries;
      queries.reserve(instance.restricted.hashtag_users.size());
      for (const auto& users : instance.restricted.hashtag_users) {
        queries.push_back(instance.tree->MakeQueryFilter(users));
      }

      BstSampler sampler(instance.tree.get());
      Rng sample_rng = mode_rng.Fork();
      uint64_t nulls = 0;
      Timer timer;
      for (uint64_t r = 0; r < setup.sampling_rounds; ++r) {
        const auto& query = queries[sample_rng.Below(queries.size())];
        if (!sampler.Sample(query, &sample_rng).has_value()) ++nulls;
      }
      const double ms = timer.ElapsedMillis() /
                        static_cast<double>(setup.sampling_rounds);
      table.AddRow(
          {FormatDouble(fraction, 2), mode_name,
           std::to_string(instance.restricted.user_ids.size()),
           FormatDouble(ms, 3),
           FormatDouble(static_cast<double>(nulls) /
                            static_cast<double>(setup.sampling_rounds),
                        4)});
    }
  }
  table.Print();

  // One DictionaryAttack reference point over the full namespace.
  {
    Rng rng(env.seed ^ 0xdadadaULL);
    FractionInstance instance =
        MakeFractionInstance(setup, 0.5, SelectionMode::kUniform, &rng);
    const BloomFilter query = instance.tree->MakeQueryFilter(
        instance.restricted.hashtag_users.front());
    DictionaryAttack attack(setup.tree_config.namespace_size);
    Timer timer;
    (void)attack.Sample(query, &rng);
    std::printf("DictionaryAttack reference (1 sample, full namespace): "
                "%.1f ms\n\n",
                timer.ElapsedMillis());
  }
  return 0;
}
