// Figure 11 (a, b): reconstruction wall-clock time at M = 1e6 for
// n ∈ {100, 10000} — BST vs HashInvert vs DictionaryAttack.
//
// Paper shape: HashInvert is the slowest overall despite issuing fewer
// membership queries than DA (it iterates preimage lists per set/unset
// bit, worst when the filter is near half-full, the HI-10K case); BST is
// fastest throughout.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunReconstructionTimeFigure("Figure 11: reconstruction time, M = 1e6",
                              1000000, env);
  return 0;
}
