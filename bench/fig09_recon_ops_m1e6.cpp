// Figure 9 (a, b): reconstruction operation counts at M = 1e6.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunReconstructionOpsFigure("Figure 9: reconstruction op counts, M = 1e6",
                             1000000, env);
  return 0;
}
