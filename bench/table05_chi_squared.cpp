// Table 5: chi-squared p-values for BSTSample uniformity at M = 1e6.
//
// Protocol (Section 7.2): draw T = 130·n samples from a stored set of
// size n, tally per-element counts, and compute the p-value of the
// Pearson statistic against χ²(n−1). Every p-value above the paper's 0.08
// significance level fails to reject uniformity — the paper's Table 5 has
// all 24 cells above 0.08 and so should this table (up to sampling noise;
// ~8% of cells are *expected* to dip below any 0.08 threshold by
// definition of the significance level).
//
// The tallies are over the full positive set S ∪ S(B) (samples that are
// false positives are legitimate outcomes of the sampler, Section 3.2).
// Quick mode caps T for the larger sets; BSR_BENCH_FULL=1 runs the exact
// 130·n protocol.
//
// MEASURED FINDING (see EXPERIMENTS.md): at parameter cells where sets are
// sparse relative to the leaves (few elements per occupied leaf), the
// descent's branch estimates carry almost no signal — one element is worth
// ~k·(1−fill) shared bits against a chance-overlap noise of σ ≈ √(t1·t2/m)
// bits — so BSTSample's p-values collapse there. Proposition 5.2 only
// promises near-uniformity when f(m) = 2ε(m)·log(M/M⊥) → 0, a precondition
// the paper's own default parameters do not satisfy; the table prints
// f(m) per cell so the correlation is visible. The "control p" column
// draws exactly-uniform samples from the reconstructed set and shows the
// test itself is calibrated.
#include "bench/bench_common.h"

#include <algorithm>

#include "src/analysis/theory.h"
#include "src/baselines/dictionary_attack.h"
#include "src/core/bst_sampler.h"
#include "src/stats/chi_squared.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  const uint64_t namespace_size = 1000000;
  PrintBanner("Table 5: chi-squared p-values for sample uniformity, M = 1e6",
              env);
  // The chi-squared protocol needs T = 130·n rounds to be valid (T must
  // exceed the degrees of freedom), which makes the n >= 10K cells cost
  // billions of membership queries; quick mode therefore runs the n = 100
  // and n = 1000 columns only.
  std::vector<uint64_t> set_sizes = PaperSetSizes();
  if (!env.full) {
    set_sizes = {100, 1000};
    std::printf("quick mode: n limited to {100, 1000}; set BSR_BENCH_FULL=1 "
                "for the paper's full n grid\n");
  }

  Table table({"accuracy", "n", "population", "T (rounds)", "elems/leaf",
               "f(m)", "BST p-value", "BST uniform?", "control p"});
  Rng root_rng(env.seed);
  DictionaryAttack attack(namespace_size);
  for (double accuracy : PaperAccuracies()) {
    for (uint64_t n : set_sizes) {
      TreeBundle bundle = BuildPaperTree(accuracy, n, namespace_size,
                                         HashFamilyKind::kSimple, env.seed);
      Rng set_rng = root_rng.Fork();
      const std::vector<uint64_t> query_set =
          MakeQuerySet(namespace_size, n, /*clustered=*/false, &set_rng);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);

      // Categories = the sampler's whole outcome space S ∪ S(B).
      const std::vector<uint64_t> population = attack.Reconstruct(query);

      uint64_t rounds = RecommendedSampleRounds(population.size());
      if (env.rounds_override != 0) rounds = env.rounds_override;

      BstSampler sampler(bundle.tree.get());
      Rng sample_rng = root_rng.Fork();
      std::vector<uint64_t> samples;
      samples.reserve(rounds);
      for (uint64_t r = 0; r < rounds; ++r) {
        const auto sample = sampler.Sample(query, &sample_rng);
        if (sample.has_value()) samples.push_back(*sample);
      }
      const Result<ChiSquaredResult> test =
          ChiSquaredUniformTest(population, samples);
      BSR_CHECK(test.ok(), "chi-squared test setup failed");

      // Control: exactly uniform draws from the same population, same T.
      std::vector<uint64_t> control;
      control.reserve(rounds);
      for (uint64_t r = 0; r < rounds; ++r) {
        control.push_back(population[sample_rng.Below(population.size())]);
      }
      const Result<ChiSquaredResult> control_test =
          ChiSquaredUniformTest(population, control);
      BSR_CHECK(control_test.ok(), "control test setup failed");

      const double elems_per_leaf =
          static_cast<double>(n) /
          static_cast<double>(uint64_t{1} << bundle.config.depth);
      const double f_m = SampleBiasPathExponent(
          n, bundle.config.k, bundle.config.m, namespace_size,
          bundle.config.LeafRangeSize());
      table.AddRow(
          {FormatDouble(accuracy, 1), FormatCount(static_cast<double>(n)),
           std::to_string(population.size()), std::to_string(rounds),
           FormatDouble(elems_per_leaf, 2), FormatDouble(f_m, 1),
           FormatDouble(test.value().p_value, 4),
           test.value().RejectsUniformity(0.08) ? "REJECT" : "yes",
           FormatDouble(control_test.value().p_value, 4)});
    }
  }
  table.Print();
  return 0;
}
