// Ablation (Section 5.6): the empty-intersection threshold τ.
//
// The Papapetrou estimator never returns exactly zero for a non-empty AND,
// so BSTSample needs a cutoff below which an intersection is declared
// empty. This sweep shows the tradeoff: τ = 0 (exact AND-is-zero pruning
// only) explores every false-overlap branch — more intersections, slower —
// while large τ risks declaring real intersections empty (lost samples /
// lost elements on reconstruction). The paper's claim is that a moderate
// threshold loses nothing in practice; the "lost elements" column checks
// exactly that against DictionaryAttack ground truth.
#include "bench/bench_common.h"

#include <algorithm>

#include "src/baselines/dictionary_attack.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/util/timer.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  const uint64_t namespace_size = env.full ? 10000000 : 1000000;
  const uint64_t n = 1000;
  PrintBanner("Ablation: empty-intersection threshold (Sec 5.6), M = " +
                  std::to_string(namespace_size) + ", n = 1000, acc = 0.9",
              env);
  const uint64_t rounds = env.Rounds(/*quick=*/500, /*full=*/10000);

  Rng root_rng(env.seed);
  Rng set_rng = root_rng.Fork();
  const std::vector<uint64_t> query_set =
      MakeQuerySet(namespace_size, n, /*clustered=*/false, &set_rng);

  Table table({"threshold", "intersections/sample", "ms/sample", "null-rate",
               "recon lost elements", "recon extra visits vs tau=0"});
  double baseline_visits = 0.0;
  TreeBundle bundle = BuildPaperTree(0.9, n, namespace_size,
                                     HashFamilyKind::kSimple, env.seed);
  BloomSampleTree& tree_ref = *bundle.tree;
  const BloomFilter query = tree_ref.MakeQueryFilter(query_set);
  DictionaryAttack attack(namespace_size);
  const std::vector<uint64_t> truth = attack.Reconstruct(query);
  for (double threshold : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0}) {
    tree_ref.set_intersection_threshold(threshold);

    BstSampler sampler(&tree_ref);
    OpCounters counters;
    Rng sample_rng = root_rng.Fork();
    uint64_t nulls = 0;
    Timer timer;
    for (uint64_t r = 0; r < rounds; ++r) {
      if (!sampler.Sample(query, &sample_rng, &counters).has_value()) ++nulls;
    }
    const double ms = timer.ElapsedMillis() / static_cast<double>(rounds);

    // Reconstruction completeness vs DictionaryAttack ground truth.
    BstReconstructor reconstructor(&tree_ref);
    OpCounters recon_counters;
    const std::vector<uint64_t> recon = reconstructor.Reconstruct(
        query, &recon_counters, BstReconstructor::PruningMode::kThresholded);
    std::vector<uint64_t> missing;
    std::set_difference(truth.begin(), truth.end(), recon.begin(), recon.end(),
                        std::back_inserter(missing));
    if (threshold == 0.0) {
      baseline_visits = static_cast<double>(recon_counters.nodes_visited);
    }

    table.AddRow(
        {FormatDouble(threshold, 2),
         FormatDouble(static_cast<double>(counters.intersections) /
                          static_cast<double>(rounds), 1),
         FormatDouble(ms, 3),
         FormatDouble(static_cast<double>(nulls) / static_cast<double>(rounds),
                      4),
         std::to_string(missing.size()),
         FormatDouble(static_cast<double>(recon_counters.nodes_visited) -
                          baseline_visits, 0)});
  }
  table.Print();
  return 0;
}
