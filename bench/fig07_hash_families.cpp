// Figure 7: effect of the hash-function family on sampling time, BST vs
// DictionaryAttack, Murmur3 vs MD5 (plus the simple linear family for
// reference).
//
// Paper shape: DA degrades by about an order of magnitude under MD5
// because it pays M·k hash evaluations per sample, while BST barely moves
// — it defers membership queries to one leaf, after the tree (pure bit
// operations) has pruned everything else.
#include "bench/bench_common.h"

#include "src/baselines/dictionary_attack.h"
#include "src/core/bst_sampler.h"
#include "src/util/timer.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  const uint64_t namespace_size = env.full ? 10000000 : 1000000;
  PrintBanner("Figure 7: hash-family effect on sampling time, M = " +
                  std::to_string(namespace_size) + ", n = 1000",
              env);
  const uint64_t rounds = env.Rounds(/*quick=*/200, /*full=*/10000);
  const uint64_t da_rounds =
      env.rounds_override != 0 ? env.rounds_override : (env.full ? 10 : 2);
  const uint64_t n = 1000;

  Table table({"family", "accuracy", "BST ms/sample", "DA ms/sample"});
  Rng root_rng(env.seed);
  Rng set_rng = root_rng.Fork();
  const std::vector<uint64_t> query_set =
      MakeQuerySet(namespace_size, n, /*clustered=*/false, &set_rng);
  DictionaryAttack attack(namespace_size);

  const std::pair<HashFamilyKind, const char*> kFamilies[] = {
      {HashFamilyKind::kSimple, "simple"},
      {HashFamilyKind::kMurmur3, "murmur3"},
      {HashFamilyKind::kMd5, "md5"},
  };
  for (const auto& [kind, name] : kFamilies) {
    for (double accuracy : PaperAccuracies()) {
      TreeBundle bundle =
          BuildPaperTree(accuracy, n, namespace_size, kind, env.seed);
      const BloomFilter query = bundle.tree->MakeQueryFilter(query_set);
      BstSampler sampler(bundle.tree.get());
      Rng sample_rng = root_rng.Fork();

      Timer timer;
      for (uint64_t r = 0; r < rounds; ++r) {
        (void)sampler.Sample(query, &sample_rng);
      }
      const double bst_ms = timer.ElapsedMillis() / static_cast<double>(rounds);

      timer.Restart();
      for (uint64_t r = 0; r < da_rounds; ++r) {
        (void)attack.Sample(query, &sample_rng);
      }
      const double da_ms =
          timer.ElapsedMillis() / static_cast<double>(da_rounds);

      table.AddRow({name, FormatDouble(accuracy, 1), FormatDouble(bst_ms, 3),
                    FormatDouble(da_ms, 3)});
    }
  }
  table.Print();
  return 0;
}
