// Microbenchmark for tree persistence: cold-open time per load path and
// the latency of the first queries against a freshly opened tree. This is
// the "build once, query forever" economics of Section 5 made measurable:
// the build is paid once, so what matters in production is how fast a
// process can come back up — and how much the first (cache-cold) queries
// pay on each load path / slab layout.
//
// Output: a JSON array on stdout; one record per configuration:
//   {"bench": "micro_load", "variant": "open" | "first_draws" | "recon",
//    "path": "stream-v1" | "heap-v2" | "mmap-v2" | "mmap-v2-prewarm",
//    "layout": "id-order" | "descent", "m": <bits>, "namespace": <M>,
//    "nodes": <n>, "file_mb": <double>,
//    "open_ms": <double>                     (variant "open")
//    "draws": 100, "ms": <double>            (variant "first_draws")
//    "elements": <n>, "ms": <double>}        (variant "recon")
//
// Variants:
//   * open — LoadTreeFromFile wall time, best of kReps. stream-v1 re-pays
//     the full O(m·n) parse; heap-v2 is one bulk slab read; mmap-v2 is
//     O(metadata) — the slab is not touched at all.
//   * first_draws — a fresh 100-draw SampleBatch right after the open, on
//     a cold context: for mmap this is where page faults surface, and
//     where the descent layout's page grouping pays (or at least must not
//     cost) against id-order.
//   * recon — one exact Reconstruct after open (the heaviest cold sweep:
//     it touches every surviving node block once).
//
// Each (open → query) round runs on a freshly loaded tree, so the numbers
// compose: total time-to-first-result = open + first_draws. File pages
// stay in the OS page cache between reps — all paths share that benefit,
// so the comparison is load-path mechanics, not disk speed. Pass --cold
// to measure the other regime: before every timed open the snapshot's
// pages are evicted with posix_fadvise(POSIX_FADV_DONTNEED) (after an
// fsync, so no dirty page survives the eviction), which is the
// process-restart-after-reboot story — mmap's deferred faults now hit
// storage instead of the page cache. Records carry "cache": "warm"|"cold".
//
// BSR_BENCH_FULL=1 raises the draw rounds; the quick default finishes in
// under a minute.
#include <fcntl.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/query_context.h"
#include "src/core/tree_io.h"
#include "src/util/simd.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

constexpr int kReps = 5;
constexpr uint64_t kFirstDraws = 100;

struct PathSpec {
  const char* name;
  const char* file;  // which saved artifact it opens
  LoadOptions options;
};

// Cache mode for the run: warm (default) leaves the snapshot in the OS
// page cache between reps; cold evicts it before every timed open.
bool g_cold = false;

// Evicts `path` from the page cache. fsync first: DONTNEED silently skips
// dirty pages, and the artifact was written moments ago.
void EvictFromPageCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

double FileMb(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0.0;
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  return static_cast<double>(bytes) / 1e6;
}

void PrintRecord(bool first, const char* variant, const char* path,
                 const char* layout, uint64_t m, uint64_t namespace_size,
                 size_t nodes, double file_mb, const char* extra_key,
                 uint64_t extra_value, double ms) {
  std::printf(
      "%s  {\"bench\": \"micro_load\", \"variant\": \"%s\", \"path\": "
      "\"%s\", \"layout\": \"%s\", \"cache\": \"%s\", \"simd\": \"%s\", "
      "\"m\": %" PRIu64 ", \"namespace\": %" PRIu64
      ", \"nodes\": %zu, \"file_mb\": %.2f"
      ", \"%s\": %" PRIu64 ", \"ms\": %.3f}",
      first ? "" : ",\n", variant, path, layout, g_cold ? "cold" : "warm",
      simd::LevelName(simd::ActiveLevel()), m, namespace_size, nodes,
      file_mb, extra_key, extra_value, ms);
}

}  // namespace

int main(int argc, char** argv) {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cold") == 0) g_cold = true;
  }

  // Three tree shapes over M = 1e6:
  //   * m=1e5, depth=12 — a deep tree of small blocks (8191 nodes of
  //     12.5 KB): many node blocks per page group, the regime where the
  //     descent layout's physical grouping can actually show up in cold
  //     walks;
  //   * m=1e6 / m=1e7, depth=6 — the micro_query shapes (127 nodes of
  //     1.25–12.5 MB): a single block spans hundreds of pages, so layout
  //     is expected to be neutral and the interesting axis is open time
  //     (~16 MB and ~160 MB slabs).
  const uint64_t namespace_size = 1000000;
  const uint64_t query_size = 1000;
  struct Shape {
    uint64_t m;
    uint32_t depth;
  };
  const std::vector<Shape> shapes = {
      {100000, 12}, {1000000, 6}, {10000000, 6}};

  std::printf("[\n");
  bool first = true;
  for (const Shape& shape : shapes) {
    const uint64_t m = shape.m;
    TreeConfig config;
    config.namespace_size = namespace_size;
    config.m = m;
    config.k = 3;
    config.hash_kind = HashFamilyKind::kSimple;
    config.seed = env.seed;
    config.depth = shape.depth;

    auto tree_result = BloomSampleTree::BuildComplete(config);
    BSR_CHECK(tree_result.ok(), "micro_load: BuildComplete failed");
    const BloomSampleTree tree = std::move(tree_result).value();
    const size_t nodes = tree.node_count();

    Rng rng(env.seed ^ m);
    const std::vector<uint64_t> members = bloomsample::bench::MakeQuerySet(
        namespace_size, query_size, /*clustered=*/false, &rng);

    // Save every artifact once per m.
    const std::string base = "/tmp/bsr_micro_load_" + std::to_string(m);
    const std::string v1_path = base + "_v1.bst";
    const std::string v2_id_path = base + "_v2_id.bst";
    const std::string v2_descent_path = base + "_v2_descent.bst";
    {
      SaveOptions save;
      save.version = 1;
      BSR_CHECK(SaveTreeToFile(tree, v1_path, save).ok(), "save v1");
      save = SaveOptions();
      save.layout = NodeLayout::kIdOrder;
      BSR_CHECK(SaveTreeToFile(tree, v2_id_path, save).ok(), "save v2 id");
      save.layout = NodeLayout::kDescent;
      BSR_CHECK(SaveTreeToFile(tree, v2_descent_path, save).ok(),
                "save v2 descent");
    }

    LoadOptions heap;
    heap.mode = LoadMode::kHeap;
    LoadOptions mmap_opts;
    mmap_opts.mode = LoadMode::kMmap;
    LoadOptions mmap_prewarm = mmap_opts;
    mmap_prewarm.prewarm = true;
    const std::vector<PathSpec> paths = {
        {"stream-v1", v1_path.c_str(), heap},
        {"heap-v2", v2_id_path.c_str(), heap},
        {"mmap-v2", v2_id_path.c_str(), mmap_opts},
        {"mmap-v2-prewarm", v2_id_path.c_str(), mmap_prewarm},
        {"heap-v2-descent", v2_descent_path.c_str(), heap},
        {"mmap-v2-descent", v2_descent_path.c_str(), mmap_opts},
    };

    for (const PathSpec& spec : paths) {
      const char* layout =
          std::string(spec.name).find("descent") != std::string::npos
              ? "descent"
              : "id-order";
      const double file_mb = FileMb(spec.file);

      // --- open: best-of-reps wall time for LoadTreeFromFile ---
      double open_best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        if (g_cold) EvictFromPageCache(spec.file);
        Timer timer;
        auto loaded = LoadTreeFromFile(spec.file, spec.options);
        const double ms = timer.ElapsedMillis();
        BSR_CHECK(loaded.ok(), "micro_load: open failed");
        if (ms < open_best) open_best = ms;
      }
      PrintRecord(first, "open", spec.name, layout, m, namespace_size,
                  nodes, file_mb, "reps", kReps, open_best);
      first = false;

      // --- first_draws: a cold 100-draw batch on a fresh load ---
      double draws_best = 1e300;
      for (int rep = 0; rep < kReps; ++rep) {
        if (g_cold) EvictFromPageCache(spec.file);
        auto loaded = LoadTreeFromFile(spec.file, spec.options);
        BSR_CHECK(loaded.ok(), "micro_load: open failed");
        const BloomFilter query = loaded.value().MakeQueryFilter(members);
        const BstSampler sampler(&loaded.value());
        QueryContext ctx(loaded.value(), query);
        Timer timer;
        const auto draws = sampler.SampleBatch(&ctx, kFirstDraws, env.seed);
        const double ms = timer.ElapsedMillis();
        BSR_CHECK(draws.size() == kFirstDraws, "micro_load: short batch");
        if (ms < draws_best) draws_best = ms;
      }
      PrintRecord(false, "first_draws", spec.name, layout, m, namespace_size,
                  nodes, file_mb, "draws", kFirstDraws, draws_best);

      // --- recon: one exact reconstruction on a fresh load ---
      double recon_best = 1e300;
      size_t elements = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        if (g_cold) EvictFromPageCache(spec.file);
        auto loaded = LoadTreeFromFile(spec.file, spec.options);
        BSR_CHECK(loaded.ok(), "micro_load: open failed");
        const BloomFilter query = loaded.value().MakeQueryFilter(members);
        const BstReconstructor reconstructor(&loaded.value());
        Timer timer;
        const auto ids = reconstructor.Reconstruct(
            query, nullptr, BstReconstructor::PruningMode::kExact);
        const double ms = timer.ElapsedMillis();
        elements = ids.size();
        if (ms < recon_best) recon_best = ms;
      }
      PrintRecord(false, "recon", spec.name, layout, m, namespace_size,
                  nodes, file_mb, "elements", elements, recon_best);
    }

    std::remove(v1_path.c_str());
    std::remove(v2_id_path.c_str());
    std::remove(v2_descent_path.c_str());
  }
  std::printf("\n]\n");
  return 0;
}
