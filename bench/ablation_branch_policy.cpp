// Ablation: estimate-proportional branching (the paper's policy) vs a
// naive 50/50 split at internal nodes.
//
// The comparison only makes sense where the intersection estimates carry
// signal (Proposition 5.2's f(m) → 0 regime): we use a small namespace
// with a deliberately oversized filter and a heavily skewed set (90% of
// the elements packed into the first 1/16 of the namespace). There the
// proportional policy passes the chi-squared uniformity test while the
// 50/50 split oversamples the sparse subtrees and fails it by orders of
// magnitude — the empirical justification for weighting branches by the
// estimated intersection size.
#include "bench/bench_common.h"

#include <algorithm>

#include "src/baselines/dictionary_attack.h"
#include "src/core/bst_sampler.h"
#include "src/stats/chi_squared.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  PrintBanner("Ablation: branch policy (proportional vs 50/50), "
              "information-rich regime",
              env);

  // Information-rich configuration: m huge relative to n·k, few levels,
  // hundreds of elements per leaf.
  TreeConfig config;
  config.namespace_size = 4096;
  config.m = 300000;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = env.seed;
  config.depth = 3;
  const auto tree = BloomSampleTree::BuildComplete(config).value();

  // Skewed set: ~85% of elements in the first 1/16 of the namespace.
  Rng root_rng(env.seed);
  std::vector<uint64_t> query_set;
  {
    Rng set_rng = root_rng.Fork();
    const auto dense =
        MakeQuerySet(4096 / 16, 220, /*clustered=*/false, &set_rng);
    query_set.insert(query_set.end(), dense.begin(), dense.end());
    for (uint64_t x : MakeQuerySet(4096, 40, /*clustered=*/false, &set_rng)) {
      query_set.push_back(x);
    }
    std::sort(query_set.begin(), query_set.end());
    query_set.erase(std::unique(query_set.begin(), query_set.end()),
                    query_set.end());
  }
  const BloomFilter query = tree.MakeQueryFilter(query_set);
  DictionaryAttack attack(config.namespace_size);
  const std::vector<uint64_t> population = attack.Reconstruct(query);
  const uint64_t rounds = env.Rounds(
      /*quick=*/60 * population.size(),
      /*full=*/RecommendedSampleRounds(population.size()));
  std::printf("skewed set: %zu elements (90%% in the first 1/16), "
              "population %zu, rounds %llu\n\n",
              query_set.size(), population.size(),
              static_cast<unsigned long long>(rounds));

  Table table({"policy", "chi2 stat", "dof", "p-value", "uniform at 0.08?"});
  for (const auto policy : {BstSampler::BranchPolicy::kProportional,
                            BstSampler::BranchPolicy::kUniformSplit}) {
    BstSampler sampler(&tree, policy);
    Rng sample_rng = root_rng.Fork();
    std::vector<uint64_t> samples;
    samples.reserve(rounds);
    for (uint64_t r = 0; r < rounds; ++r) {
      const auto sample = sampler.Sample(query, &sample_rng);
      if (sample.has_value()) samples.push_back(*sample);
    }
    const auto test = ChiSquaredUniformTest(population, samples);
    BSR_CHECK(test.ok(), "chi-squared setup failed");
    table.AddRow(
        {policy == BstSampler::BranchPolicy::kProportional ? "proportional"
                                                           : "50/50",
         FormatDouble(test.value().statistic, 1),
         FormatDouble(test.value().dof, 0),
         FormatDouble(test.value().p_value, 4),
         test.value().RejectsUniformity(0.08) ? "REJECT" : "yes"});
  }
  table.Print();
  return 0;
}
