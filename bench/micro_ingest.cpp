// Microbenchmark for crash-safe ingest: what does durability cost per
// insert? Dynamic inserts append to the sidecar write-ahead log before
// mutating the tree (core/wal.h), and the WalSyncPolicy decides how often
// the log is fsynced — the whole acknowledged-equals-durable spectrum:
//
//   * no-wal    — in-memory Insert only, nothing logged (the upper bound;
//                 a crash loses everything since the last snapshot)
//   * none      — log appends ride the page cache, never fsynced by the
//                 writer (a crash loses the unsynced suffix)
//   * interval  — fsync every 64 records (bounded loss window)
//   * every     — fsync per record: Insert returns only after its record
//                 is on stable storage (the paper-grade guarantee; the
//                 fsync dominates, so this is really a disk benchmark)
//
// Output: a JSON array on stdout; one record per (policy, variant):
//   {"bench": "micro_ingest", "variant": "ingest", "policy": "...",
//    "inserts": <K>, "ms": <double>, "inserts_per_sec": <double>, ...}
//   {"bench": "micro_ingest", "variant": "reopen", "policy": "...",
//    "replayed": <K>, "open_ms": <double>, ...}
//
// The "reopen" variant times LoadTreeFromFile on the artifact the ingest
// left behind — for WAL policies that includes replaying all K records,
// i.e. the crash-recovery cost the log defers to the next open.
//
// A second section benchmarks CONCURRENT ingest through the
// IngestPipeline (core/ingest_pipeline.h): T writer threads call the
// synchronous Insert path, which logs through leader–follower group
// commit — concurrent committers share one fsync. Rows:
//   {"bench": "micro_ingest", "variant": "concurrent", "policy": "...",
//    "threads": T, "readers": R, "inserts": <K>, "ms": <double>,
//    "inserts_per_sec": <double>, "commit_groups": <g>, "fsyncs": <f>}
// Under "every", inserts_per_sec should grow with T while fsyncs stays
// well below inserts — that gap IS group commit. The readers>0 rows add
// sampler threads hammering AcquireRead to show ingest under query load.
//
// BSR_BENCH_FULL=1 raises the insert count; the quick default finishes in
// seconds (fsync-per-record is the slow leg by design).
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bst_sampler.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/query_context.h"
#include "src/core/tree_io.h"
#include "src/core/wal.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

struct PolicySpec {
  const char* name;
  bool use_wal;
  WalSyncPolicy policy;
};

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  const uint64_t namespace_size = 1000000;
  const uint64_t inserts = env.Rounds(/*quick_default=*/1000,
                                      /*full_default=*/10000);

  TreeConfig config;
  config.namespace_size = namespace_size;
  config.m = 1000000;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = env.seed;
  config.depth = 6;

  // Base set: every 100th id. Ingested ids sit at offset 1 of each
  // stride, so they are fresh (never already-present fast-path hits).
  std::vector<uint64_t> base;
  for (uint64_t x = 0; x < namespace_size; x += 100) base.push_back(x);
  std::vector<uint64_t> fresh;
  for (uint64_t i = 0; i < inserts; ++i) {
    fresh.push_back((1 + 100 * i) % namespace_size);
  }

  auto built = BloomSampleTree::BuildPruned(config, base);
  BSR_CHECK(built.ok(), "micro_ingest: BuildPruned failed");
  const BloomSampleTree& reference = built.value();

  const std::vector<PolicySpec> specs = {
      {"no-wal", false, WalSyncPolicy::kNone},
      {"none", true, WalSyncPolicy::kNone},
      {"interval", true, WalSyncPolicy::kInterval},
      {"every", true, WalSyncPolicy::kEveryRecord},
  };

  std::printf("[\n");
  bool first = true;
  for (const PolicySpec& spec : specs) {
    const std::string path =
        std::string("/tmp/bsr_micro_ingest_") + spec.name + ".bst";
    std::remove(path.c_str());
    std::remove(WalPathFor(path).c_str());
    BSR_CHECK(SaveTreeToFile(reference, path).ok(), "micro_ingest: save");

    LoadOptions heap;
    heap.mode = LoadMode::kHeap;
    auto loaded = LoadTreeFromFile(path, heap);
    BSR_CHECK(loaded.ok(), "micro_ingest: load");
    BloomSampleTree tree = std::move(loaded).value();
    if (spec.use_wal) {
      WalOptions wal_options;
      wal_options.policy = spec.policy;
      BSR_CHECK(AttachTreeWal(&tree, path, wal_options).ok(),
                "micro_ingest: attach wal");
    }

    Timer timer;
    for (uint64_t id : fresh) {
      BSR_CHECK(tree.Insert(id).ok(), "micro_ingest: insert");
    }
    if (tree.wal() != nullptr) {
      BSR_CHECK(tree.wal()->Sync().ok(), "micro_ingest: final sync");
    }
    const double ingest_ms = timer.ElapsedMillis();

    std::printf("%s  {\"bench\": \"micro_ingest\", \"variant\": \"ingest\", "
                "\"policy\": \"%s\", \"inserts\": %" PRIu64
                ", \"ms\": %.3f, \"inserts_per_sec\": %.0f, \"m\": %" PRIu64
                ", \"namespace\": %" PRIu64 "}",
                first ? "" : ",\n", spec.name, inserts, ingest_ms,
                static_cast<double>(inserts) / (ingest_ms / 1e3), config.m,
                namespace_size);
    first = false;

    // Reopen cost: for WAL policies this replays every record — the
    // recovery work the log pushes to the next open.
    Timer open_timer;
    TreeLoadInfo info;
    auto reopened = LoadTreeFromFile(path, heap, &info);
    const double open_ms = open_timer.ElapsedMillis();
    BSR_CHECK(reopened.ok(), "micro_ingest: reopen");
    BSR_CHECK(reopened.value().occupied().size() ==
                  base.size() + (spec.use_wal ? inserts : 0),
              "micro_ingest: reopen lost records");
    std::printf(",\n  {\"bench\": \"micro_ingest\", \"variant\": \"reopen\", "
                "\"policy\": \"%s\", \"replayed\": %" PRIu64
                ", \"open_ms\": %.3f, \"m\": %" PRIu64
                ", \"namespace\": %" PRIu64 "}",
                spec.name, info.wal_records_replayed, open_ms, config.m,
                namespace_size);

    std::remove(path.c_str());
    std::remove(WalPathFor(path).c_str());
  }

  // ---- concurrent ingest through the pipeline (group commit) ----------
  struct ConcurrentSpec {
    const char* policy_name;
    WalSyncPolicy policy;
    int threads;
    int readers;
  };
  const std::vector<ConcurrentSpec> concurrent = {
      {"every", WalSyncPolicy::kEveryRecord, 1, 0},
      {"every", WalSyncPolicy::kEveryRecord, 2, 0},
      {"every", WalSyncPolicy::kEveryRecord, 4, 0},
      {"every", WalSyncPolicy::kEveryRecord, 8, 0},
      {"every", WalSyncPolicy::kEveryRecord, 4, 2},
      {"interval", WalSyncPolicy::kInterval, 4, 0},
      {"none", WalSyncPolicy::kNone, 4, 0},
  };
  for (const ConcurrentSpec& spec : concurrent) {
    const std::string path = std::string("/tmp/bsr_micro_ingest_mt_") +
                             spec.policy_name + "_t" +
                             std::to_string(spec.threads) + "_r" +
                             std::to_string(spec.readers) + ".bst";
    std::remove(path.c_str());
    std::remove(WalPathFor(path).c_str());
    std::remove(OldWalPathFor(path).c_str());
    BSR_CHECK(SaveTreeToFile(reference, path).ok(), "micro_ingest: save");

    LoadOptions heap;
    heap.mode = LoadMode::kHeap;
    auto loaded = LoadTreeFromFile(path, heap);
    BSR_CHECK(loaded.ok(), "micro_ingest: load");
    auto tree =
        std::make_shared<BloomSampleTree>(std::move(loaded).value());

    IngestPipelineOptions options;
    options.wal.policy = spec.policy;
    auto opened = IngestPipeline::OpenTree(tree, path, options);
    BSR_CHECK(opened.ok(), "micro_ingest: pipeline open");
    std::unique_ptr<IngestPipeline> pipeline = std::move(opened).value();

    std::atomic<bool> stop{false};
    std::vector<std::thread> reader_threads;
    for (int r = 0; r < spec.readers; ++r) {
      reader_threads.emplace_back([&pipeline, &stop] {
        const std::vector<uint64_t> members = {100, 10000, 200000, 999900};
        while (!stop.load(std::memory_order_relaxed)) {
          auto guard = pipeline->AcquireRead();
          const BloomFilter query = guard.tree().MakeQueryFilter(members);
          QueryContext ctx(guard.tree(), query);
          BstSampler sampler(&guard.tree());
          (void)sampler.SampleBatch(&ctx, 8, /*seed=*/7);
        }
      });
    }

    const uint64_t per_thread = inserts / spec.threads;
    const uint64_t total = per_thread * spec.threads;
    Timer timer;
    std::vector<std::thread> writers;
    for (int t = 0; t < spec.threads; ++t) {
      writers.emplace_back([&pipeline, &fresh, per_thread, t] {
        for (uint64_t i = 0; i < per_thread; ++i) {
          const uint64_t id = fresh[t * per_thread + i];
          BSR_CHECK(pipeline->Insert(id).ok(), "micro_ingest: mt insert");
        }
      });
    }
    for (auto& w : writers) w.join();
    const double ingest_ms = timer.ElapsedMillis();
    stop.store(true);
    for (auto& r : reader_threads) r.join();

    const IngestPipelineStats stats = pipeline->Stats();
    BSR_CHECK(pipeline->Close().ok(), "micro_ingest: pipeline close");

    TreeLoadInfo info;
    auto reopened = LoadTreeFromFile(path, heap, &info);
    BSR_CHECK(reopened.ok(), "micro_ingest: mt reopen");
    BSR_CHECK(reopened.value().occupied().size() == base.size() + total,
              "micro_ingest: mt reopen lost records");

    std::printf(",\n  {\"bench\": \"micro_ingest\", \"variant\": "
                "\"concurrent\", \"policy\": \"%s\", \"threads\": %d, "
                "\"readers\": %d, \"inserts\": %" PRIu64
                ", \"ms\": %.3f, \"inserts_per_sec\": %.0f, "
                "\"commit_groups\": %" PRIu64 ", \"fsyncs\": %" PRIu64 "}",
                spec.policy_name, spec.threads, spec.readers, total,
                ingest_ms,
                static_cast<double>(total) / (ingest_ms / 1e3),
                stats.commit_groups, stats.fsyncs);

    std::remove(path.c_str());
    std::remove(WalPathFor(path).c_str());
  }
  std::printf("\n]\n");
  return 0;
}
