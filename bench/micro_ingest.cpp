// Microbenchmark for crash-safe ingest: what does durability cost per
// insert? Dynamic inserts append to the sidecar write-ahead log before
// mutating the tree (core/wal.h), and the WalSyncPolicy decides how often
// the log is fsynced — the whole acknowledged-equals-durable spectrum:
//
//   * no-wal    — in-memory Insert only, nothing logged (the upper bound;
//                 a crash loses everything since the last snapshot)
//   * none      — log appends ride the page cache, never fsynced by the
//                 writer (a crash loses the unsynced suffix)
//   * interval  — fsync every 64 records (bounded loss window)
//   * every     — fsync per record: Insert returns only after its record
//                 is on stable storage (the paper-grade guarantee; the
//                 fsync dominates, so this is really a disk benchmark)
//
// Output: a JSON array on stdout; one record per (policy, variant):
//   {"bench": "micro_ingest", "variant": "ingest", "policy": "...",
//    "inserts": <K>, "ms": <double>, "inserts_per_sec": <double>, ...}
//   {"bench": "micro_ingest", "variant": "reopen", "policy": "...",
//    "replayed": <K>, "open_ms": <double>, ...}
//
// The "reopen" variant times LoadTreeFromFile on the artifact the ingest
// left behind — for WAL policies that includes replaying all K records,
// i.e. the crash-recovery cost the log defers to the next open.
//
// BSR_BENCH_FULL=1 raises the insert count; the quick default finishes in
// seconds (fsync-per-record is the slow leg by design).
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/tree_io.h"
#include "src/core/wal.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

struct PolicySpec {
  const char* name;
  bool use_wal;
  WalSyncPolicy policy;
};

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  const uint64_t namespace_size = 1000000;
  const uint64_t inserts = env.Rounds(/*quick_default=*/1000,
                                      /*full_default=*/10000);

  TreeConfig config;
  config.namespace_size = namespace_size;
  config.m = 1000000;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = env.seed;
  config.depth = 6;

  // Base set: every 100th id. Ingested ids sit at offset 1 of each
  // stride, so they are fresh (never already-present fast-path hits).
  std::vector<uint64_t> base;
  for (uint64_t x = 0; x < namespace_size; x += 100) base.push_back(x);
  std::vector<uint64_t> fresh;
  for (uint64_t i = 0; i < inserts; ++i) {
    fresh.push_back((1 + 100 * i) % namespace_size);
  }

  auto built = BloomSampleTree::BuildPruned(config, base);
  BSR_CHECK(built.ok(), "micro_ingest: BuildPruned failed");
  const BloomSampleTree& reference = built.value();

  const std::vector<PolicySpec> specs = {
      {"no-wal", false, WalSyncPolicy::kNone},
      {"none", true, WalSyncPolicy::kNone},
      {"interval", true, WalSyncPolicy::kInterval},
      {"every", true, WalSyncPolicy::kEveryRecord},
  };

  std::printf("[\n");
  bool first = true;
  for (const PolicySpec& spec : specs) {
    const std::string path =
        std::string("/tmp/bsr_micro_ingest_") + spec.name + ".bst";
    std::remove(path.c_str());
    std::remove(WalPathFor(path).c_str());
    BSR_CHECK(SaveTreeToFile(reference, path).ok(), "micro_ingest: save");

    LoadOptions heap;
    heap.mode = LoadMode::kHeap;
    auto loaded = LoadTreeFromFile(path, heap);
    BSR_CHECK(loaded.ok(), "micro_ingest: load");
    BloomSampleTree tree = std::move(loaded).value();
    if (spec.use_wal) {
      WalOptions wal_options;
      wal_options.policy = spec.policy;
      BSR_CHECK(AttachTreeWal(&tree, path, wal_options).ok(),
                "micro_ingest: attach wal");
    }

    Timer timer;
    for (uint64_t id : fresh) {
      BSR_CHECK(tree.Insert(id).ok(), "micro_ingest: insert");
    }
    if (tree.wal() != nullptr) {
      BSR_CHECK(tree.wal()->Sync().ok(), "micro_ingest: final sync");
    }
    const double ingest_ms = timer.ElapsedMillis();

    std::printf("%s  {\"bench\": \"micro_ingest\", \"variant\": \"ingest\", "
                "\"policy\": \"%s\", \"inserts\": %" PRIu64
                ", \"ms\": %.3f, \"inserts_per_sec\": %.0f, \"m\": %" PRIu64
                ", \"namespace\": %" PRIu64 "}",
                first ? "" : ",\n", spec.name, inserts, ingest_ms,
                static_cast<double>(inserts) / (ingest_ms / 1e3), config.m,
                namespace_size);
    first = false;

    // Reopen cost: for WAL policies this replays every record — the
    // recovery work the log pushes to the next open.
    Timer open_timer;
    TreeLoadInfo info;
    auto reopened = LoadTreeFromFile(path, heap, &info);
    const double open_ms = open_timer.ElapsedMillis();
    BSR_CHECK(reopened.ok(), "micro_ingest: reopen");
    BSR_CHECK(reopened.value().occupied().size() ==
                  base.size() + (spec.use_wal ? inserts : 0),
              "micro_ingest: reopen lost records");
    std::printf(",\n  {\"bench\": \"micro_ingest\", \"variant\": \"reopen\", "
                "\"policy\": \"%s\", \"replayed\": %" PRIu64
                ", \"open_ms\": %.3f, \"m\": %" PRIu64
                ", \"namespace\": %" PRIu64 "}",
                spec.name, info.wal_records_replayed, open_ms, config.m,
                namespace_size);

    std::remove(path.c_str());
    std::remove(WalPathFor(path).c_str());
  }
  std::printf("\n]\n");
  return 0;
}
