// Figure 15: measured sampling accuracy at varying namespace fractions.
//
// The Bloom filters were sized for accuracy 0.8 over the FULL namespace;
// because the pruned tree only ever proposes occupied ids, the effective
// candidate pool shrinks with the fraction and measured accuracy is
// uniformly above the 0.8 design point — approaching 1.0 at low
// occupancy. That is the paper's headline result for Section 8.
#include "bench/fraction_common.h"

#include <algorithm>

#include "src/core/bst_sampler.h"

int main() {
  using namespace bloomsample;
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  PrintBanner("Figure 15: sampling accuracy vs namespace fraction (Twitter)",
              env);
  FractionSetup setup = MakeFractionSetup(env);
  std::printf("design accuracy: 0.8 over the full namespace\n\n");

  Table table({"fraction", "mode", "samples", "true hits", "accuracy"});
  Rng root_rng(env.seed ^ 0xf15f15f15ULL);
  for (const SelectionMode mode :
       {SelectionMode::kUniform, SelectionMode::kClustered}) {
    const char* mode_name =
        mode == SelectionMode::kUniform ? "uniform" : "clustered";
    for (double fraction : setup.fractions) {
      Rng mode_rng = root_rng.Fork();
      FractionInstance instance =
          MakeFractionInstance(setup, fraction, mode, &mode_rng);
      if (instance.restricted.hashtag_users.empty()) continue;

      std::vector<BloomFilter> queries;
      queries.reserve(instance.restricted.hashtag_users.size());
      for (const auto& users : instance.restricted.hashtag_users) {
        queries.push_back(instance.tree->MakeQueryFilter(users));
      }

      BstSampler sampler(instance.tree.get());
      Rng sample_rng = mode_rng.Fork();
      uint64_t samples = 0;
      uint64_t hits = 0;
      for (uint64_t r = 0; r < setup.sampling_rounds; ++r) {
        const size_t tag = sample_rng.Below(queries.size());
        const auto sample = sampler.Sample(queries[tag], &sample_rng);
        if (!sample.has_value()) continue;
        ++samples;
        const auto& truth = instance.restricted.hashtag_users[tag];
        hits += std::binary_search(truth.begin(), truth.end(), *sample);
      }
      table.AddRow({FormatDouble(fraction, 2), mode_name,
                    std::to_string(samples), std::to_string(hits),
                    FormatDouble(samples == 0
                                     ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(samples),
                                 3)});
    }
  }
  table.Print();
  return 0;
}
