// Microbenchmark for the word-level bit kernels behind every query and
// build hot path, emitting machine-readable JSON so BENCH_*.json trajectory
// tracking can diff runs across PRs.
//
// Output: a JSON array on stdout; one record per configuration:
//   {"bench": "micro_kernels", "kernel": "and_popcount" | "and_all_zero" |
//    "popcount" | "or_into" | "and_popcount_sparse", "level": "scalar" |
//    "avx2" | "avx512", "m": <bits>, "storage": "owned" | "arena",
//    "gib_per_s": <double>, "speedup_vs_scalar": <double>, ...}
//
// Three comparisons, matching the tentpole's claims:
//   * scalar vs each supported SIMD tier on the dense kernels, per m
//     (throughput in GiB/s of filter payload read; speedup_vs_scalar is
//     the acceptance gate — the dispatched AND-popcount must be >= 2x
//     scalar at m >= 1e6 on AVX2-capable hardware);
//   * dense vs sparse AND-popcount at a paper-shaped query density (a
//     1000-key, k=3 query against the same m);
//   * owned vs arena storage on a descent-shaped walk: AND-popcount of one
//     query block against 128 node filters laid out per-node on the heap
//     vs densely packed in one FilterArena slab.
//
// BSR_BENCH_FULL=1 raises the repetition counts; the quick default
// finishes in a few seconds.
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/filter_arena.h"
#include "src/util/rng.h"
#include "src/util/simd.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

constexpr int kReps = 5;

std::vector<uint64_t> RandomWords(size_t n, double bit_density, Rng* rng) {
  std::vector<uint64_t> words(n);
  for (uint64_t& w : words) {
    uint64_t word = 0;
    for (int b = 0; b < 64; ++b) {
      if (rng->NextDouble() < bit_density) word |= 1ULL << b;
    }
    w = word;
  }
  return words;
}

/// Fastest-of-kReps wall time of `fn` run `iters` times; `sink` defeats
/// dead-code elimination.
template <typename Fn>
double BestSeconds(uint64_t iters, uint64_t* sink, Fn&& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    for (uint64_t i = 0; i < iters; ++i) *sink += fn();
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) best = seconds;
  }
  return best;
}

void PrintRecord(bool first, const char* kernel, const char* level,
                 uint64_t m, const char* storage, double bytes_per_call,
                 double seconds_per_call, double speedup_vs_scalar) {
  std::printf(
      "%s  {\"bench\": \"micro_kernels\", \"kernel\": \"%s\", "
      "\"level\": \"%s\", \"m\": %" PRIu64 ", \"storage\": \"%s\", "
      "\"ns_per_call\": %.1f, \"gib_per_s\": %.2f, "
      "\"speedup_vs_scalar\": %.2f}",
      first ? "" : ",\n", kernel, level, m, storage,
      seconds_per_call * 1e9,
      bytes_per_call / seconds_per_call / (1024.0 * 1024.0 * 1024.0),
      speedup_vs_scalar);
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();
  Rng rng(env.seed);
  uint64_t sink = 0;
  bool first = true;
  // The per-tier loops below pin levels with ForceLevel; remember the
  // startup dispatch (which honors a BSR_SIMD pin) to restore afterwards.
  const simd::Level startup_level = simd::ActiveLevel();
  std::printf("[\n");

  std::vector<simd::Level> levels;
  for (simd::Level level : {simd::Level::kScalar, simd::Level::kAvx2,
                            simd::Level::kAvx512}) {
    if (simd::LevelSupported(level)) levels.push_back(level);
  }

  // --- Dense kernels: scalar vs SIMD tiers across filter sizes. ---------
  for (uint64_t m : std::vector<uint64_t>{100000, 1000000, 10000000}) {
    const size_t words = (m + 63) / 64;
    // Tree-node-shaped operands: a fairly dense node filter against a
    // half-full second operand.
    const std::vector<uint64_t> a = RandomWords(words, 0.3, &rng);
    const std::vector<uint64_t> b = RandomWords(words, 0.5, &rng);
    // Disjoint operand for the emptiness kernel: with random overlapping
    // words AndAllZero exits on word 0 and times nothing. a & ~a == 0
    // forces the full scan — the cost a query pays for an actually-empty
    // intersection, which is when the answer matters.
    std::vector<uint64_t> disjoint(words);
    for (size_t w = 0; w < words; ++w) disjoint[w] = ~a[w];
    std::vector<uint64_t> dst = a;
    const uint64_t iters =
        env.Rounds(/*quick=*/1, /*full=*/4) * (m >= 10000000 ? 20 : 200);
    const double dense_bytes = 16.0 * static_cast<double>(words);

    double scalar_and_popcount = 0.0;
    double scalar_all_zero = 0.0;
    double scalar_popcount = 0.0;
    double scalar_or = 0.0;
    for (simd::Level level : levels) {
      simd::ForceLevel(level);
      const char* name = simd::LevelName(level);

      double seconds = BestSeconds(iters, &sink, [&] {
                         return simd::AndPopcount(a.data(), b.data(), words);
                       }) /
                       static_cast<double>(iters);
      if (level == simd::Level::kScalar) scalar_and_popcount = seconds;
      PrintRecord(first, "and_popcount", name, m, "owned", dense_bytes,
                  seconds, scalar_and_popcount / seconds);
      first = false;

      seconds = BestSeconds(iters, &sink, [&] {
                  return simd::AndAllZero(a.data(), disjoint.data(), words)
                             ? 1u
                             : 0u;
                }) /
                static_cast<double>(iters);
      if (level == simd::Level::kScalar) scalar_all_zero = seconds;
      PrintRecord(false, "and_all_zero", name, m, "owned", dense_bytes,
                  seconds, scalar_all_zero / seconds);

      seconds = BestSeconds(iters, &sink, [&] {
                  return simd::Popcount(a.data(), words);
                }) /
                static_cast<double>(iters);
      if (level == simd::Level::kScalar) scalar_popcount = seconds;
      PrintRecord(false, "popcount", name, m, "owned",
                  8.0 * static_cast<double>(words), seconds,
                  scalar_popcount / seconds);

      seconds = BestSeconds(iters, &sink, [&] {
                  simd::OrInto(dst.data(), b.data(), words);
                  return 0u;
                }) /
                static_cast<double>(iters);
      if (level == simd::Level::kScalar) scalar_or = seconds;
      PrintRecord(false, "or_into", name, m, "owned", 24.0 * words, seconds,
                  scalar_or / seconds);
    }

    // --- Sparse AND-popcount at paper query density (1000 keys, k=3). ---
    const size_t nnz = 3000 < words ? 3000 : words;
    std::vector<uint32_t> idx(nnz);
    std::vector<uint64_t> val(nnz);
    const size_t stride = words / nnz == 0 ? 1 : words / nnz;
    for (size_t i = 0; i < nnz; ++i) {
      idx[i] = static_cast<uint32_t>(i * stride);
      uint64_t v = 0;
      for (int b = 0; b < 3; ++b) v |= 1ULL << (rng.Next() & 63);
      val[i] = v;
    }
    const uint64_t sparse_iters = iters * 16;
    const double sparse_bytes = 16.0 * static_cast<double>(nnz);
    double scalar_sparse = 0.0;
    for (simd::Level level : levels) {
      simd::ForceLevel(level);
      const double seconds =
          BestSeconds(sparse_iters, &sink, [&] {
            return simd::AndPopcountSparse(a.data(), idx.data(), val.data(),
                                           nnz);
          }) /
          static_cast<double>(sparse_iters);
      if (level == simd::Level::kScalar) scalar_sparse = seconds;
      PrintRecord(false, "and_popcount_sparse", simd::LevelName(level), m,
                  "owned", sparse_bytes, seconds, scalar_sparse / seconds);
    }
  }
  simd::ForceLevel(startup_level);  // the owned-vs-arena pass runs at the
                                    // tier the operator actually selected

  // --- Owned vs arena storage on a descent-shaped walk. -----------------
  // 128 node filters ANDed in sequence against one query block — the
  // access pattern of a whole-tree pass — with per-node heap vectors vs
  // one packed slab.
  {
    const uint64_t m = 1000000;
    const size_t words = (m + 63) / 64;
    const size_t node_count = 128;
    const std::vector<uint64_t> query = RandomWords(words, 0.05, &rng);

    std::vector<std::vector<uint64_t>> owned_nodes;
    owned_nodes.reserve(node_count);
    FilterArena arena;
    arena.Configure(words, node_count);
    std::vector<uint64_t*> arena_nodes;
    for (size_t i = 0; i < node_count; ++i) {
      owned_nodes.push_back(RandomWords(words, 0.3, &rng));
      uint64_t* block = arena.Allocate();
      for (size_t w = 0; w < words; ++w) block[w] = owned_nodes.back()[w];
      arena_nodes.push_back(block);
    }

    const uint64_t iters = env.Rounds(/*quick=*/3, /*full=*/10);
    const double pass_bytes =
        16.0 * static_cast<double>(words) * static_cast<double>(node_count);
    const double owned_seconds =
        BestSeconds(iters, &sink, [&] {
          uint64_t total = 0;
          for (size_t i = 0; i < node_count; ++i) {
            total += simd::AndPopcount(owned_nodes[i].data(), query.data(),
                                       words);
          }
          return total;
        }) /
        static_cast<double>(iters);
    PrintRecord(false, "tree_pass_and_popcount",
                simd::LevelName(simd::ActiveLevel()), m, "owned", pass_bytes,
                owned_seconds, 1.0);
    const double arena_seconds =
        BestSeconds(iters, &sink, [&] {
          uint64_t total = 0;
          for (size_t i = 0; i < node_count; ++i) {
            total += simd::AndPopcount(arena_nodes[i], query.data(), words);
          }
          return total;
        }) /
        static_cast<double>(iters);
    PrintRecord(false, "tree_pass_and_popcount",
                simd::LevelName(simd::ActiveLevel()), m, "arena", pass_bytes,
                arena_seconds, owned_seconds / arena_seconds);
  }

  std::printf("\n]\n");
  // The sink must escape the optimizer but not the JSON parser.
  std::fprintf(stderr, "sink=%" PRIu64 "\n", sink);
  return 0;
}
