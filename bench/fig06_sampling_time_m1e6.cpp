// Figure 6 (a, b): average wall-clock time per sample at M = 1e6, BST vs
// DictionaryAttack, uniform and clustered query sets.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunSamplingTimeFigure("Figure 6: avg sampling time, M = 1e6", 1000000, env);
  return 0;
}
