// Microbenchmark for the query hot path, emitting machine-readable JSON so
// BENCH_*.json trajectory tracking can diff runs across PRs.
//
// Output: a JSON array on stdout; one record per configuration:
//   {"bench": "micro_query", "variant": "sample" | "reconstruct",
//    "kernel": "dense" | "sparse", "m": <filter bits>, "namespace": <M>,
//    "threads": <n>, "ns_per_sample" | "ns_per_element": <double>,
//    "dense_intersections": <n>, "sparse_intersections": <n>, ...}
//
// Variants:
//   * sample — BstSampler::Sample through a QueryContext pinned to the
//     dense or the sparse kernel (the tentpole comparison: a sparse query
//     touches O(nnz) words per node instead of O(m/64)). The "identical"
//     field records that both kernels drew the same sample sequence.
//   * reconstruct — BstReconstructor::Reconstruct (kExact) at
//     query_threads 1 and hardware concurrency, ns per element
//     reconstructed; "identical" records output equality across thread
//     counts and with the serial dense-kernel run.
//
// BSR_BENCH_FULL=1 raises the round counts; the quick default finishes in
// well under a minute.
#include <cinttypes>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/query_context.h"
#include "src/util/simd.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

constexpr int kReps = 3;

struct SampleResult {
  double ns_per_sample = 0.0;
  std::vector<uint64_t> draws;  // for the cross-kernel identity check
  OpCounters counters;
};

SampleResult TimeSampling(const BloomSampleTree& tree,
                          const BloomFilter& query, IntersectKernel kernel,
                          uint64_t rounds, uint64_t seed) {
  const BstSampler sampler(&tree);
  SampleResult result;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    QueryContext ctx(tree, query, kernel);
    Rng rng(seed);  // same seed every rep/kernel: identical descents
    std::vector<uint64_t> draws;
    draws.reserve(rounds);
    OpCounters counters;
    Timer timer;
    for (uint64_t i = 0; i < rounds; ++i) {
      const auto sample = sampler.Sample(&ctx, &rng, &counters);
      draws.push_back(sample.has_value() ? *sample : ~0ULL);
    }
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) {
      best = seconds;
      result.draws = std::move(draws);
      result.counters = counters;
    }
  }
  result.ns_per_sample = best * 1e9 / static_cast<double>(rounds);
  return result;
}

struct ReconResult {
  double ns_per_element = 0.0;
  size_t elements = 0;
  std::vector<uint64_t> output;
  OpCounters counters;
};

ReconResult TimeReconstruction(BloomSampleTree& tree,
                               const BloomFilter& query,
                               IntersectKernel kernel, uint32_t threads) {
  tree.set_query_threads(threads);
  const BstReconstructor reconstructor(&tree);
  const QueryContext ctx(tree, query, kernel);
  ReconResult result;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    OpCounters counters;
    Timer timer;
    auto output = reconstructor.Reconstruct(
        ctx, &counters, BstReconstructor::PruningMode::kExact);
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) {
      best = seconds;
      result.output = std::move(output);
      result.counters = counters;
    }
  }
  result.elements = result.output.size();
  result.ns_per_element =
      best * 1e9 /
      static_cast<double>(result.elements == 0 ? 1 : result.elements);
  return result;
}

void PrintSampleRecord(bool first, const char* kernel, uint64_t m,
                       uint64_t namespace_size, uint64_t rounds,
                       const SampleResult& r, bool identical) {
  std::printf(
      "%s  {\"bench\": \"micro_query\", \"variant\": \"sample\", "
      "\"kernel\": \"%s\", \"simd\": \"%s\", \"m\": %" PRIu64
      ", \"namespace\": %" PRIu64 ", \"threads\": 1, \"rounds\": %" PRIu64
      ", \"ns_per_sample\": %.1f, \"dense_intersections\": %" PRIu64
      ", \"sparse_intersections\": %" PRIu64
      ", \"intersection_bytes\": %" PRIu64 ", \"identical\": %s}",
      first ? "" : ",\n", kernel, simd::LevelName(simd::ActiveLevel()), m,
      namespace_size, rounds, r.ns_per_sample,
      r.counters.dense_intersections, r.counters.sparse_intersections,
      r.counters.intersection_bytes, identical ? "true" : "false");
}

void PrintReconRecord(const char* kernel, uint64_t m, uint64_t namespace_size,
                      uint64_t threads, const ReconResult& r, bool identical) {
  std::printf(
      ",\n  {\"bench\": \"micro_query\", \"variant\": \"reconstruct\", "
      "\"kernel\": \"%s\", \"simd\": \"%s\", \"m\": %" PRIu64
      ", \"namespace\": %" PRIu64 ", \"threads\": %" PRIu64
      ", \"elements\": %zu"
      ", \"ns_per_element\": %.1f, \"dense_intersections\": %" PRIu64
      ", \"sparse_intersections\": %" PRIu64
      ", \"intersection_bytes\": %" PRIu64 ", \"identical\": %s}",
      kernel, simd::LevelName(simd::ActiveLevel()), m, namespace_size,
      threads, r.elements, r.ns_per_element,
      r.counters.dense_intersections, r.counters.sparse_intersections,
      r.counters.intersection_bytes, identical ? "true" : "false");
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  uint64_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // On a single-core box still drive the parallel traversal with 2 lanes:
  // the point of the N-thread row is the fan-out path (and its
  // output-identity check), not just the speedup.
  const uint64_t parallel_threads = hw > 1 ? hw : 2;

  // The paper's sparse-query regime: a 1000-element query filter against
  // trees with m = 1e6 and m = 1e7 bit filters (the query's ~3k nonzero
  // words fill <2% of the 1e7-bit filters' words).
  const uint64_t namespace_size = 1000000;
  const uint64_t query_size = 1000;
  const uint64_t sample_rounds = env.Rounds(/*quick=*/1000, /*full=*/10000);

  std::printf("[\n");
  bool first = true;
  for (uint64_t m : std::vector<uint64_t>{1000000, 10000000}) {
    TreeConfig config;
    config.namespace_size = namespace_size;
    config.m = m;
    config.k = 3;
    config.hash_kind = HashFamilyKind::kSimple;
    config.seed = env.seed;
    config.depth = 6;  // 127 nodes: 1.25 MB/filter at m=1e7 stays in RAM

    auto tree_result = BloomSampleTree::BuildComplete(config);
    BSR_CHECK(tree_result.ok(), "micro_query: BuildComplete failed");
    BloomSampleTree tree = std::move(tree_result).value();

    Rng rng(env.seed ^ m);
    const std::vector<uint64_t> members = bloomsample::bench::MakeQuerySet(
        namespace_size, query_size, /*clustered=*/false, &rng);
    const BloomFilter query = tree.MakeQueryFilter(members);

    const SampleResult dense = TimeSampling(tree, query,
                                            IntersectKernel::kDense,
                                            sample_rounds, env.seed);
    const SampleResult sparse = TimeSampling(tree, query,
                                             IntersectKernel::kSparse,
                                             sample_rounds, env.seed);
    const bool sample_identical = dense.draws == sparse.draws;
    PrintSampleRecord(first, "dense", m, namespace_size, sample_rounds, dense,
                      sample_identical);
    first = false;
    PrintSampleRecord(false, "sparse", m, namespace_size, sample_rounds,
                      sparse, sample_identical);

    const ReconResult recon_dense =
        TimeReconstruction(tree, query, IntersectKernel::kDense, 1);
    const ReconResult recon_serial =
        TimeReconstruction(tree, query, IntersectKernel::kSparse, 1);
    const ReconResult recon_parallel =
        TimeReconstruction(tree, query, IntersectKernel::kSparse,
                           static_cast<uint32_t>(parallel_threads));
    const bool recon_identical = recon_dense.output == recon_serial.output &&
                                 recon_serial.output == recon_parallel.output;
    PrintReconRecord("dense", m, namespace_size, 1, recon_dense,
                     recon_identical);
    PrintReconRecord("sparse", m, namespace_size, 1, recon_serial,
                     recon_identical);
    PrintReconRecord("sparse", m, namespace_size, parallel_threads,
                     recon_parallel, recon_identical);
  }
  std::printf("\n]\n");
  return 0;
}
