// Microbenchmark for the query hot path, emitting machine-readable JSON so
// BENCH_*.json trajectory tracking can diff runs across PRs.
//
// Output: a JSON array on stdout; one record per configuration:
//   {"bench": "micro_query",
//    "variant": "sample" | "sample_warm" | "batch" | "reconstruct" |
//               "reconstruct_warm",
//    "kernel": "dense" | "sparse", "m": <filter bits>, "namespace": <M>,
//    "threads": <n>, "batch_size": <draws per engine call>,
//    "ns_per_sample" | "ns_per_element": <double>,
//    "dense_intersections": <n>, "sparse_intersections": <n>,
//    "estimate_cache_hits": <n>, ...}
//
// Variants:
//   * sample — the serial baseline: BstSampler::Sample through a
//     NON-caching QueryContext pinned to the dense or the sparse kernel,
//     so every draw re-pays its full descent (the historical cost and the
//     denominator of the batch speedup). The "identical" field records
//     that both kernels drew the same sample sequence.
//   * sample_warm — the same serial draw loop on one caching context:
//     the first descent fills the EstimateCache/leaf cache, every later
//     draw is O(depth) on cached weights. Kernel intersections collapse
//     to the unique nodes touched; the rest surface as cache hits.
//   * batch — SampleBatch: all draws in one level-synchronous descent on
//     counter-based per-draw RNG streams, at query_threads 1 and hardware
//     concurrency. "identical" records that the batch equals the serial
//     per-stream reference draw for draw.
//   * reconstruct — BstReconstructor::Reconstruct (kExact), cold: a fresh
//     context per repetition, at query_threads 1 and hardware concurrency.
//     "identical" records output equality across thread counts and with
//     the serial dense-kernel run.
//   * reconstruct_warm — repeated Reconstruct on one caching context:
//     after the first call every node test and leaf scan is a cache hit.
//
// BSR_BENCH_FULL=1 raises the round counts; the quick default finishes in
// well under a minute.
#include <cinttypes>
#include <cstdio>
#include <optional>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/query_context.h"
#include "src/util/simd.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

constexpr int kReps = 3;

struct SampleResult {
  double ns_per_sample = 0.0;
  std::vector<uint64_t> draws;  // for the cross-kernel identity check
  OpCounters counters;
};

SampleResult TimeSampling(const BloomSampleTree& tree,
                          const BloomFilter& query, IntersectKernel kernel,
                          uint64_t rounds, uint64_t seed, bool cache) {
  const BstSampler sampler(&tree);
  SampleResult result;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    QueryContext ctx(tree, query, kernel, cache);
    Rng rng(seed);  // same seed every rep/kernel: identical descents
    std::vector<uint64_t> draws;
    draws.reserve(rounds);
    OpCounters counters;
    Timer timer;
    for (uint64_t i = 0; i < rounds; ++i) {
      const auto sample = sampler.Sample(&ctx, &rng, &counters);
      draws.push_back(sample.has_value() ? *sample : ~0ULL);
    }
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) {
      best = seconds;
      result.draws = std::move(draws);
      result.counters = counters;
    }
  }
  result.ns_per_sample = best * 1e9 / static_cast<double>(rounds);
  return result;
}

struct BatchResult {
  double ns_per_sample = 0.0;
  std::vector<std::optional<uint64_t>> draws;
  OpCounters counters;
};

BatchResult TimeBatch(BloomSampleTree& tree, const BloomFilter& query,
                      uint64_t rounds, uint64_t seed, uint32_t threads) {
  tree.set_query_threads(threads);
  const BstSampler sampler(&tree);
  BatchResult result;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    QueryContext ctx(tree, query, IntersectKernel::kSparse);  // cold per rep
    OpCounters counters;
    Timer timer;
    auto draws = sampler.SampleBatch(&ctx, rounds, seed, &counters);
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) {
      best = seconds;
      result.draws = std::move(draws);
      result.counters = counters;
    }
  }
  result.ns_per_sample = best * 1e9 / static_cast<double>(rounds);
  return result;
}

struct ReconResult {
  double ns_per_element = 0.0;
  size_t elements = 0;
  std::vector<uint64_t> output;
  OpCounters counters;
};

ReconResult TimeReconstruction(BloomSampleTree& tree,
                               const BloomFilter& query,
                               IntersectKernel kernel, uint32_t threads,
                               bool warm) {
  tree.set_query_threads(threads);
  const BstReconstructor reconstructor(&tree);
  // Warm rows reuse one context (the amortized serving regime: call 1
  // fills the caches, later calls are all hits); cold rows rebuild it per
  // repetition so every rep pays the full per-query cost.
  QueryContext shared_ctx(tree, query, kernel);
  if (warm) {
    (void)reconstructor.Reconstruct(shared_ctx, nullptr,
                                    BstReconstructor::PruningMode::kExact);
  }
  ReconResult result;
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    OpCounters counters;
    Timer timer;
    std::vector<uint64_t> output;
    if (warm) {
      output = reconstructor.Reconstruct(
          shared_ctx, &counters, BstReconstructor::PruningMode::kExact);
    } else {
      QueryContext ctx(tree, query, kernel);
      output = reconstructor.Reconstruct(
          ctx, &counters, BstReconstructor::PruningMode::kExact);
    }
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) {
      best = seconds;
      result.output = std::move(output);
      result.counters = counters;
    }
  }
  result.elements = result.output.size();
  result.ns_per_element =
      best * 1e9 /
      static_cast<double>(result.elements == 0 ? 1 : result.elements);
  return result;
}

void PrintSampleRecord(bool first, const char* variant, const char* kernel,
                       uint64_t m, uint64_t namespace_size, uint64_t threads,
                       uint64_t rounds, uint64_t batch_size, double ns,
                       const OpCounters& counters, bool identical) {
  std::printf(
      "%s  {\"bench\": \"micro_query\", \"variant\": \"%s\", "
      "\"kernel\": \"%s\", \"simd\": \"%s\", \"m\": %" PRIu64
      ", \"namespace\": %" PRIu64 ", \"threads\": %" PRIu64
      ", \"rounds\": %" PRIu64 ", \"batch_size\": %" PRIu64
      ", \"ns_per_sample\": %.1f, \"dense_intersections\": %" PRIu64
      ", \"sparse_intersections\": %" PRIu64
      ", \"intersection_bytes\": %" PRIu64
      ", \"estimate_cache_hits\": %" PRIu64 ", \"identical\": %s}",
      first ? "" : ",\n", variant, kernel,
      simd::LevelName(simd::ActiveLevel()), m, namespace_size, threads,
      rounds, batch_size, ns, counters.dense_intersections,
      counters.sparse_intersections, counters.intersection_bytes,
      counters.estimate_cache_hits, identical ? "true" : "false");
}

void PrintReconRecord(const char* variant, const char* kernel, uint64_t m,
                      uint64_t namespace_size, uint64_t threads,
                      const ReconResult& r, bool identical) {
  std::printf(
      ",\n  {\"bench\": \"micro_query\", \"variant\": \"%s\", "
      "\"kernel\": \"%s\", \"simd\": \"%s\", \"m\": %" PRIu64
      ", \"namespace\": %" PRIu64 ", \"threads\": %" PRIu64
      ", \"batch_size\": 1, \"elements\": %zu"
      ", \"ns_per_element\": %.1f, \"dense_intersections\": %" PRIu64
      ", \"sparse_intersections\": %" PRIu64
      ", \"intersection_bytes\": %" PRIu64
      ", \"estimate_cache_hits\": %" PRIu64 ", \"identical\": %s}",
      variant, kernel, simd::LevelName(simd::ActiveLevel()), m,
      namespace_size, threads, r.elements, r.ns_per_element,
      r.counters.dense_intersections, r.counters.sparse_intersections,
      r.counters.intersection_bytes, r.counters.estimate_cache_hits,
      identical ? "true" : "false");
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  uint64_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  // On a single-core box still drive the parallel paths with 2 lanes: the
  // point of the N-thread rows is the fan-out path (and its
  // output-identity check), not just the speedup. min_parallel_work stays
  // at its default, so these rows also record what the workload gate
  // actually decides on this host.
  const uint64_t parallel_threads = hw > 1 ? hw : 2;

  // The paper's sparse-query regime: a 1000-element query filter against
  // trees with m = 1e6 and m = 1e7 bit filters (the query's ~3k nonzero
  // words fill <2% of the 1e7-bit filters' words).
  const uint64_t namespace_size = 1000000;
  const uint64_t query_size = 1000;
  const uint64_t sample_rounds = env.Rounds(/*quick=*/1000, /*full=*/10000);

  std::printf("[\n");
  bool first = true;
  for (uint64_t m : std::vector<uint64_t>{1000000, 10000000}) {
    TreeConfig config;
    config.namespace_size = namespace_size;
    config.m = m;
    config.k = 3;
    config.hash_kind = HashFamilyKind::kSimple;
    config.seed = env.seed;
    config.depth = 6;  // 127 nodes: 1.25 MB/filter at m=1e7 stays in RAM

    auto tree_result = BloomSampleTree::BuildComplete(config);
    BSR_CHECK(tree_result.ok(), "micro_query: BuildComplete failed");
    BloomSampleTree tree = std::move(tree_result).value();

    Rng rng(env.seed ^ m);
    const std::vector<uint64_t> members = bloomsample::bench::MakeQuerySet(
        namespace_size, query_size, /*clustered=*/false, &rng);
    const BloomFilter query = tree.MakeQueryFilter(members);

    // --- serial sampling: uncached baseline (dense vs sparse kernel) ---
    const SampleResult dense =
        TimeSampling(tree, query, IntersectKernel::kDense, sample_rounds,
                     env.seed, /*cache=*/false);
    const SampleResult sparse =
        TimeSampling(tree, query, IntersectKernel::kSparse, sample_rounds,
                     env.seed, /*cache=*/false);
    const bool sample_identical = dense.draws == sparse.draws;
    PrintSampleRecord(first, "sample", "dense", m, namespace_size, 1,
                      sample_rounds, 1, dense.ns_per_sample, dense.counters,
                      sample_identical);
    first = false;
    PrintSampleRecord(false, "sample", "sparse", m, namespace_size, 1,
                      sample_rounds, 1, sparse.ns_per_sample, sparse.counters,
                      sample_identical);

    // --- serial sampling on a warm (caching) context ---
    const SampleResult warm =
        TimeSampling(tree, query, IntersectKernel::kSparse, sample_rounds,
                     env.seed, /*cache=*/true);
    PrintSampleRecord(false, "sample_warm", "sparse", m, namespace_size, 1,
                      sample_rounds, 1, warm.ns_per_sample, warm.counters,
                      warm.draws == sparse.draws);

    // --- batched multi-draw engine, per-draw RNG streams ---
    // Serial per-stream reference for the identity field.
    const BstSampler sampler(&tree);
    std::vector<std::optional<uint64_t>> stream_reference;
    {
      QueryContext ctx(tree, query, IntersectKernel::kSparse);
      stream_reference.reserve(sample_rounds);
      for (uint64_t i = 0; i < sample_rounds; ++i) {
        Rng draw_rng = Rng::ForStream(env.seed, i);
        stream_reference.push_back(sampler.Sample(&ctx, &draw_rng));
      }
    }
    const BatchResult batch_serial =
        TimeBatch(tree, query, sample_rounds, env.seed, 1);
    const BatchResult batch_parallel = TimeBatch(
        tree, query, sample_rounds, env.seed,
        static_cast<uint32_t>(parallel_threads));
    const bool batch_identical = batch_serial.draws == stream_reference &&
                                 batch_parallel.draws == stream_reference;
    PrintSampleRecord(false, "batch", "sparse", m, namespace_size, 1,
                      sample_rounds, sample_rounds,
                      batch_serial.ns_per_sample, batch_serial.counters,
                      batch_identical);
    PrintSampleRecord(false, "batch", "sparse", m, namespace_size,
                      parallel_threads, sample_rounds, sample_rounds,
                      batch_parallel.ns_per_sample, batch_parallel.counters,
                      batch_identical);

    // --- reconstruction: cold per-query cost, then the warm repeat ---
    const ReconResult recon_dense = TimeReconstruction(
        tree, query, IntersectKernel::kDense, 1, /*warm=*/false);
    const ReconResult recon_serial = TimeReconstruction(
        tree, query, IntersectKernel::kSparse, 1, /*warm=*/false);
    const ReconResult recon_parallel = TimeReconstruction(
        tree, query, IntersectKernel::kSparse,
        static_cast<uint32_t>(parallel_threads), /*warm=*/false);
    const ReconResult recon_warm = TimeReconstruction(
        tree, query, IntersectKernel::kSparse, 1, /*warm=*/true);
    const bool recon_identical = recon_dense.output == recon_serial.output &&
                                 recon_serial.output == recon_parallel.output &&
                                 recon_serial.output == recon_warm.output;
    PrintReconRecord("reconstruct", "dense", m, namespace_size, 1,
                     recon_dense, recon_identical);
    PrintReconRecord("reconstruct", "sparse", m, namespace_size, 1,
                     recon_serial, recon_identical);
    PrintReconRecord("reconstruct", "sparse", m, namespace_size,
                     parallel_threads, recon_parallel, recon_identical);
    PrintReconRecord("reconstruct_warm", "sparse", m, namespace_size, 1,
                     recon_warm, recon_identical);
  }
  std::printf("\n]\n");
  return 0;
}
