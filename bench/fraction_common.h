// Shared setup for the low-occupancy namespace experiments (Section 8,
// Figures 13/14/15): the synthetic Twitter crawl, the per-fraction
// restricted namespaces, and the pruned trees over them.
//
// Following the paper, the tree geometry is fixed (256 leaves over the
// whole id space) rather than cost-model derived, and the Bloom filter
// size is chosen for a desired accuracy of 0.8 over the full namespace —
// Figure 15 then shows the pruned tree beating that target at low
// occupancy.
#ifndef BLOOMSAMPLE_BENCH_FRACTION_COMMON_H_
#define BLOOMSAMPLE_BENCH_FRACTION_COMMON_H_

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/bloom_sample_tree.h"
#include "src/workload/twitter_synth.h"

namespace bloomsample {
namespace bench {

struct FractionSetup {
  TwitterCrawl crawl;          ///< the full synthetic crawl
  TreeConfig tree_config;      ///< fixed-depth config shared by all fractions
  std::vector<double> fractions;
  uint64_t sampling_rounds = 0;
};

/// Builds the crawl and derives the shared tree parameters. Full mode
/// scales user/tweet counts toward the paper's 7.2M-user crawl.
FractionSetup MakeFractionSetup(const Env& env);

struct FractionInstance {
  TwitterCrawl restricted;
  std::unique_ptr<BloomSampleTree> tree;  ///< pruned tree over restricted M′
  double build_seconds = 0.0;
};

/// Restricts the crawl to a namespace fraction (uniform or clustered leaf
/// selection) and builds the pruned tree over the surviving user ids.
FractionInstance MakeFractionInstance(const FractionSetup& setup,
                                      double fraction, SelectionMode mode,
                                      Rng* rng);

}  // namespace bench
}  // namespace bloomsample

#endif  // BLOOMSAMPLE_BENCH_FRACTION_COMMON_H_
