// Microbenchmark for the construction hot path, emitting machine-readable
// JSON so BENCH_*.json trajectory tracking can diff runs across PRs.
//
// Output: a JSON array on stdout; one record per configuration:
//   {"bench": "micro_build", "variant": "...", "m": <filter bits>,
//    "namespace": <M>, "threads": <n>, "ns_per_insert": <double>}
//
// Variants:
//   * build_complete — full BloomSampleTree::BuildComplete wall time over
//     the M leaf insertions, at build_threads 1 and hardware concurrency.
//   * insert_loop / insert_batch — single-threaded BloomFilter::Insert
//     per-key loop vs the batched InsertBatch path (the devirtualized
//     HashBatch + word-mask store pipeline).
//
// BSR_BENCH_FULL=1 raises the namespace to the paper's M = 1e6 build;
// the quick default finishes in a few seconds on one core.
#include <cinttypes>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/bloom/bloom_filter.h"
#include "src/core/bloom_sample_tree.h"
#include "src/util/timer.h"

namespace {

using namespace bloomsample;

void PrintRecord(bool first, const char* variant, uint64_t m,
                 uint64_t namespace_size, uint64_t threads,
                 double ns_per_insert) {
  std::printf("%s  {\"bench\": \"micro_build\", \"variant\": \"%s\", "
              "\"m\": %" PRIu64 ", \"namespace\": %" PRIu64
              ", \"threads\": %" PRIu64 ", \"ns_per_insert\": %.3f}",
              first ? "" : ",\n", variant, m, namespace_size, threads,
              ns_per_insert);
}

// Each measurement repeats kReps times and keeps the fastest run: on a
// shared machine the minimum is the least noise-contaminated estimate of
// the true cost.
constexpr int kReps = 3;

double TimeBuild(const TreeConfig& config) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    auto tree = BloomSampleTree::BuildComplete(config);
    BSR_CHECK(tree.ok(), "micro_build: BuildComplete failed");
    const double seconds = timer.ElapsedSeconds();
    BSR_CHECK(tree.value().node_count() == config.CompleteNodeCount(),
              "micro_build: unexpected node count");
    if (seconds < best) best = seconds;
  }
  return best;
}

template <typename Fn>
double TimeInserts(const Fn& fill) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    Timer timer;
    fill();
    const double seconds = timer.ElapsedSeconds();
    if (seconds < best) best = seconds;
  }
  return best;
}

}  // namespace

int main() {
  using bloomsample::bench::Env;
  const Env env = Env::FromEnv();

  const uint64_t namespace_size = env.full ? 1000000 : 200000;
  TreeConfig config;
  config.namespace_size = namespace_size;
  config.m = 8 * 1024;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = env.seed;
  config.depth = 10;

  uint64_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;

  std::printf("[\n");

  // Tree construction at 1 thread and at hardware concurrency.
  bool first = true;
  for (uint64_t threads : std::vector<uint64_t>{1, hw}) {
    config.build_threads = static_cast<uint32_t>(threads);
    const double seconds = TimeBuild(config);
    PrintRecord(first, "build_complete", config.m, namespace_size, threads,
                seconds * 1e9 / static_cast<double>(namespace_size));
    first = false;
    if (hw == 1) break;  // both rows would be the same measurement
  }

  // Single-threaded insert paths over the same key volume. Murmur3 is the
  // representative "real hash" here; the simple linear family is so cheap
  // that both paths are memory-bound and indistinguishable.
  for (HashFamilyKind kind : {HashFamilyKind::kSimple,
                              HashFamilyKind::kMurmur3}) {
    auto family = MakeHashFamily(kind, 3, config.m, env.seed,
                                 namespace_size).value();
    const char* tag = kind == HashFamilyKind::kSimple ? "simple" : "murmur3";
    BloomFilter filter(family);
    const double loop_s = TimeInserts([&] {
      filter.Clear();
      for (uint64_t x = 0; x < namespace_size; ++x) filter.Insert(x);
    });
    std::string variant = std::string("insert_loop_") + tag;
    PrintRecord(false, variant.c_str(), config.m, namespace_size, 1,
                loop_s * 1e9 / static_cast<double>(namespace_size));
    const double batch_s = TimeInserts([&] {
      filter.Clear();
      filter.InsertRange(0, namespace_size);
    });
    variant = std::string("insert_batch_") + tag;
    PrintRecord(false, variant.c_str(), config.m, namespace_size, 1,
                batch_s * 1e9 / static_cast<double>(namespace_size));
    BSR_CHECK(!filter.IsEmpty(), "micro_build: filter unexpectedly empty");
  }

  std::printf("\n]\n");
  return 0;
}
