// Figure 5 (a, b): average wall-clock time per sample at M = 1e7, BST vs
// DictionaryAttack, uniform and clustered query sets.
//
// Paper shape: BST samples in ~1-10 ms while DA needs hundreds of ms
// (about two orders of magnitude), with BST time growing mildly in
// accuracy (bigger m -> costlier intersections and bigger leaves).
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunSamplingTimeFigure("Figure 5: avg sampling time, M = 1e7", 10000000, env);
  return 0;
}
