// Figure 8 (a, b): reconstruction operation counts at M = 1e5 —
// BloomSampleTree vs HashInvert vs DictionaryAttack, uniform and clustered
// query sets.
//
// Paper shape: HashInvert performs more membership queries than BST but
// fewer than DA; BST trades a few hundred intersections for membership
// counts far below M except when the set covers every leaf.
#include "bench/bench_common.h"

int main() {
  using namespace bloomsample::bench;
  const Env env = Env::FromEnv();
  RunReconstructionOpsFigure("Figure 8: reconstruction op counts, M = 1e5",
                             100000, env);
  return 0;
}
