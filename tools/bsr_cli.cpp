// bsr — command-line front end for the bloomsample library.
//
// Covers the full lifecycle a deployment needs without writing C++:
//
//   bsr build        build a BloomSampleTree and save it to disk
//   bsr info         inspect a saved tree
//   bsr make-set     generate a uniform/clustered id set (workload)
//   bsr store-set    encode an id list as a query Bloom filter
//   bsr sample       draw samples from a stored filter via the tree
//   bsr reconstruct  recover the id set from a stored filter
//   bsr query        membership-test single ids against a filter
//   bsr serve        long-lived daemon speaking the bsrd wire protocol
//   bsr client       drive a running daemon (ping/sample/insert/...)
//
// Ids travel as one-decimal-per-line text files; trees and filters use
// the binary formats of core/tree_io.h and bloom/bloom_io.h.
//
// Example session:
//   bsr build --namespace 1000000 --accuracy 0.9 --set-size 1000 \
//             --out tree.bst
//   bsr make-set --namespace 1000000 --size 1000 --seed 7 --out ids.txt
//   bsr store-set --tree tree.bst --ids ids.txt --out set.bf
//   bsr sample --tree tree.bst --filter set.bf --count 10
//   bsr reconstruct --tree tree.bst --filter set.bf --exact --out back.txt
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/baselines/dictionary_attack.h"
#include "src/bloom/bloom_io.h"
#include "src/bloom/bloom_params.h"
#include "src/core/bloom_sample_forest.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/ingest_pipeline.h"
#include "src/core/scrubber.h"
#include "src/core/tree_io.h"
#include "src/core/wal.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/util/timer.h"
#include "src/workload/set_generators.h"

namespace bloomsample {
namespace cli {

// ---------------------------------------------------------------------------
// Flag parsing: --name value pairs plus boolean --name switches.
// ---------------------------------------------------------------------------

class Flags {
 public:
  static Result<Flags> Parse(int argc, char** argv, int first,
                             const std::vector<std::string>& value_flags,
                             const std::vector<std::string>& bool_flags) {
    Flags flags;
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        return Status::InvalidArgument("unexpected argument '" + arg + "'");
      }
      arg = arg.substr(2);
      const bool is_bool =
          std::find(bool_flags.begin(), bool_flags.end(), arg) !=
          bool_flags.end();
      const bool is_value =
          std::find(value_flags.begin(), value_flags.end(), arg) !=
          value_flags.end();
      if (is_bool) {
        flags.bools_[arg] = true;
        continue;
      }
      if (!is_value) {
        return Status::InvalidArgument("unknown flag '--" + arg + "'");
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag '--" + arg + "' needs a value");
      }
      flags.values_[arg] = argv[++i];
    }
    return flags;
  }

  std::optional<std::string> Get(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  Result<std::string> Require(const std::string& name) const {
    const auto value = Get(name);
    if (!value.has_value()) {
      return Status::InvalidArgument("missing required flag '--" + name + "'");
    }
    return *value;
  }

  Result<uint64_t> GetU64(const std::string& name, uint64_t fallback) const {
    const auto value = Get(name);
    if (!value.has_value()) return fallback;
    char* end = nullptr;
    const uint64_t parsed = std::strtoull(value->c_str(), &end, 10);
    if (end == value->c_str() || *end != '\0') {
      return Status::InvalidArgument("flag '--" + name +
                                     "' is not an integer: " + *value);
    }
    return parsed;
  }

  Result<uint64_t> RequireU64(const std::string& name) const {
    const Result<std::string> raw = Require(name);
    if (!raw.ok()) return raw.status();
    return GetU64(name, 0);
  }

  Result<double> GetDouble(const std::string& name, double fallback) const {
    const auto value = Get(name);
    if (!value.has_value()) return fallback;
    char* end = nullptr;
    const double parsed = std::strtod(value->c_str(), &end);
    if (end == value->c_str() || *end != '\0') {
      return Status::InvalidArgument("flag '--" + name +
                                     "' is not a number: " + *value);
    }
    return parsed;
  }

  bool GetBool(const std::string& name) const {
    const auto it = bools_.find(name);
    return it != bools_.end() && it->second;
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> bools_;
};

// ---------------------------------------------------------------------------
// Id-file helpers (one decimal id per line; '#' comments allowed).
// ---------------------------------------------------------------------------

Result<std::vector<uint64_t>> ReadIdFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open id file '" + path + "'");
  }
  std::vector<uint64_t> ids;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    char* end = nullptr;
    const uint64_t id = std::strtoull(line.c_str() + start, &end, 10);
    if (end == line.c_str() + start) {
      return Status::InvalidArgument("bad id at " + path + ":" +
                                     std::to_string(line_number));
    }
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

Status WriteIdFile(const std::string& path, const std::vector<uint64_t>& ids) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  for (uint64_t id : ids) out << id << "\n";
  return out.good() ? Status::OK() : Status::Internal("write failed");
}

Result<BloomFilter> LoadFilterWith(
    const std::shared_ptr<const HashFamily>& family, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open filter file '" + path + "'");
  }
  return DeserializeBloomFilter(&in, family);
}

Result<BloomFilter> LoadFilterFor(const BloomSampleTree& tree,
                                  const std::string& path) {
  return LoadFilterWith(tree.family_ptr(), path);
}

// ---------------------------------------------------------------------------
// Exit codes. ONE authority: Main()'s status mapping and the table
// PrintUsage prints both come from here, so scripts and --help can never
// drift apart.
// ---------------------------------------------------------------------------
enum ExitCode : int {
  kExitOk = 0,
  kExitFailed = 1,
  kExitUsage = 2,
  kExitSnapshotMissing = 3,
  kExitSnapshotCorrupt = 4,
  kExitWalRecovered = 5,
  kExitReadOnly = 6,
  kExitQuarantined = 7,
  kExitServerFailure = 8,
};

struct ExitCodeRow {
  ExitCode code;
  const char* meaning;
};

constexpr ExitCodeRow kExitCodeTable[] = {
    {kExitOk, "success"},
    {kExitFailed, "command failed"},
    {kExitUsage, "usage error"},
    {kExitSnapshotMissing, "snapshot file missing"},
    {kExitSnapshotCorrupt, "snapshot file exists but is corrupt/unreadable"},
    {kExitWalRecovered,
     "success, but wal replay amputated a corrupt log tail (records\n"
     "        before the tear were recovered; `bsr compact` folds them in\n"
     "        and clears the log)"},
    {kExitReadOnly,
     "writer latched read-only (an fsync/append failure exhausted the\n"
     "        repair budget; acknowledged records are safe in the log,\n"
     "        reads still serve)"},
    {kExitQuarantined,
     "quarantined (a .quarantine marker is present: scrub found\n"
     "        unrepairable corruption; the image is refused until the file\n"
     "        is restored and the marker cleared)"},
    {kExitServerFailure,
     "server/daemon failure (bsrd could not start, crashed, or a\n"
     "        `bsr client` request failed at the transport or serving\n"
     "        layer)"},
};

int g_snapshot_exit_hint = 0;    // 3 or 4, set by the load helpers
bool g_wal_recovered = false;    // turns a successful run's 0 into 5
bool g_server_failure = false;   // turns a failing run's 1 into 8

void NoteWalReplay(const char* what, uint64_t replayed, bool recovered) {
  std::fprintf(stderr, "# replayed %llu wal records into the %s%s\n",
               static_cast<unsigned long long>(replayed), what,
               recovered ? " (corrupt tail amputated)" : "");
  if (recovered) g_wal_recovered = true;
}

/// Loads a tree honoring --mmap/--heap/--prewarm (else the BSR_LOAD env
/// defaults) and prints the load-time summary line every tree-consuming
/// command shares. `info_out` (optional) receives the load info — insert
/// and compact need its WAL replay count to seed sequence numbers.
Result<BloomSampleTree> LoadTreeForCli(const Flags& flags,
                                       const std::string& path,
                                       TreeLoadInfo* info_out = nullptr) {
  LoadOptions options = LoadOptions::FromEnv();
  if (flags.GetBool("mmap")) options.mode = LoadMode::kMmap;
  if (flags.GetBool("heap")) options.mode = LoadMode::kHeap;
  if (flags.GetBool("prewarm")) options.prewarm = true;
  TreeLoadInfo info;
  Timer timer;
  Result<BloomSampleTree> tree = LoadTreeFromFile(path, options, &info);
  if (tree.ok()) {
    std::fprintf(stderr,
                 "# loaded tree in %.2f ms via %s (v%u, %s layout, "
                 "%.2f MB mapped)\n",
                 timer.ElapsedMillis(), TreeLoadMethodName(info.method),
                 info.version, NodeLayoutName(info.layout),
                 static_cast<double>(info.mapped_bytes) / 1e6);
    if (info.wal_present) {
      NoteWalReplay("tree", info.wal_records_replayed,
                    info.wal_recovered_corruption);
    }
  } else {
    g_snapshot_exit_hint =
        tree.status().code() == Status::Code::kNotFound ? 3 : 4;
  }
  if (info_out != nullptr) *info_out = info;
  return tree;
}

/// Forest twin of LoadTreeForCli: the load-summary line reports every
/// shard's mapping mode, since a single forest open can mix them (e.g.
/// heap fallback on one shard image while the rest mmap).
Result<BloomSampleForest> LoadForestForCli(const Flags& flags,
                                           const std::string& path,
                                           ForestLoadInfo* info_out = nullptr) {
  LoadOptions options = LoadOptions::FromEnv();
  if (flags.GetBool("mmap")) options.mode = LoadMode::kMmap;
  if (flags.GetBool("heap")) options.mode = LoadMode::kHeap;
  if (flags.GetBool("prewarm")) options.prewarm = true;
  ForestLoadInfo info;
  Timer timer;
  Result<BloomSampleForest> forest = LoadForestFromFile(path, options, &info);
  if (forest.ok()) {
    std::string modes;
    uint64_t mapped_bytes = 0;
    uint64_t replayed = 0;
    bool wal_present = false;
    bool recovered = false;
    for (size_t s = 0; s < info.shards.size(); ++s) {
      if (s != 0) modes += ", ";
      modes += TreeLoadMethodName(info.shards[s].method);
      mapped_bytes += info.shards[s].mapped_bytes;
      replayed += info.shards[s].wal_records_replayed;
      wal_present = wal_present || info.shards[s].wal_present;
      recovered = recovered || info.shards[s].wal_recovered_corruption;
    }
    std::fprintf(stderr,
                 "# loaded %u-shard forest in %.2f ms (per-shard mapping: "
                 "%s; %.2f MB mapped)\n",
                 forest.value().shard_count(), timer.ElapsedMillis(),
                 modes.c_str(), static_cast<double>(mapped_bytes) / 1e6);
    if (wal_present) NoteWalReplay("forest shards", replayed, recovered);
  } else {
    g_snapshot_exit_hint =
        forest.status().code() == Status::Code::kNotFound ? 3 : 4;
  }
  if (info_out != nullptr) *info_out = info;
  return forest;
}

/// `--shards` on a forest-consuming command is an assertion, not a
/// request: the snapshot fixes the shard count, so a mismatch is an error.
Status CheckShardFlag(const Flags& flags, uint32_t actual) {
  auto shards = flags.GetU64("shards", 0);
  if (!shards.ok()) return shards.status();
  if (shards.value() != 0 && shards.value() != actual) {
    return Status::InvalidArgument(
        "--shards " + std::to_string(shards.value()) +
        " does not match the snapshot's " + std::to_string(actual) +
        " shards");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Subcommands.
// ---------------------------------------------------------------------------

Status CmdBuild(const Flags& flags) {
  auto namespace_size = flags.RequireU64("namespace");
  if (!namespace_size.ok()) return namespace_size.status();
  auto out_path = flags.Require("out");
  if (!out_path.ok()) return out_path.status();
  auto accuracy = flags.GetDouble("accuracy", 0.9);
  if (!accuracy.ok()) return accuracy.status();
  auto set_size = flags.GetU64("set-size", 1000);
  if (!set_size.ok()) return set_size.status();
  auto k = flags.GetU64("k", 3);
  if (!k.ok()) return k.status();
  auto seed = flags.GetU64("seed", 42);
  if (!seed.ok()) return seed.status();
  auto kind = ParseHashFamilyKind(flags.Get("hash").value_or("simple"));
  if (!kind.ok()) return kind.status();
  auto threads = flags.GetU64("threads", 0);  // 0 = hardware concurrency
  if (!threads.ok()) return threads.status();
  auto shards = flags.GetU64("shards", 1);
  if (!shards.ok()) return shards.status();
  SaveOptions save_options;
  const std::string layout = flags.Get("layout").value_or("descent");
  if (layout == "id") {
    save_options.layout = NodeLayout::kIdOrder;
  } else if (layout != "descent") {
    return Status::InvalidArgument("--layout must be 'id' or 'descent'");
  }
  const std::string format = flags.Get("format").value_or("v2");
  if (format == "v1") {
    save_options.version = 1;
  } else if (format != "v2") {
    return Status::InvalidArgument("--format must be 'v1' or 'v2'");
  }

  Result<TreeConfig> config = MakeConfigForAccuracy(
      accuracy.value(), set_size.value(), k.value(), namespace_size.value(),
      kind.value(), seed.value());
  if (!config.ok()) return config.status();
  config.value().build_threads = static_cast<uint32_t>(threads.value());

  Timer timer;
  const auto occupied_path = flags.Get("occupied");
  if (shards.value() > 1) {
    // Sharded build: partition the namespace into a forest and write the
    // manifest + per-shard v2 images.
    if (save_options.version == 1) {
      return Status::InvalidArgument(
          "--shards needs the v2 snapshot format (forest manifests have no "
          "v1 encoding)");
    }
    ForestConfig forest_config;
    forest_config.tree = config.value();
    forest_config.shards = static_cast<uint32_t>(shards.value());
    Result<BloomSampleForest> forest = [&]() -> Result<BloomSampleForest> {
      if (occupied_path.has_value()) {
        auto occupied = ReadIdFile(*occupied_path);
        if (!occupied.ok()) return occupied.status();
        return BloomSampleForest::BuildPruned(forest_config,
                                              std::move(occupied).value());
      }
      return BloomSampleForest::BuildComplete(forest_config);
    }();
    if (!forest.ok()) return forest.status();
    const Status saved =
        SaveForestToFile(forest.value(), out_path.value(), save_options);
    if (!saved.ok()) return saved;
    std::printf(
        "built %s forest: %u shards (width %llu), m=%llu bits, depth=%u, "
        "%zu nodes, %.2f MB, %.2f s -> %s (+ %u shard images, %s layout)\n",
        forest.value().pruned() ? "pruned" : "complete",
        forest.value().shard_count(),
        static_cast<unsigned long long>(forest.value().shard_width()),
        static_cast<unsigned long long>(config.value().m),
        config.value().depth, forest.value().node_count(),
        static_cast<double>(forest.value().MemoryBytes()) / (1 << 20),
        timer.ElapsedSeconds(), out_path.value().c_str(),
        forest.value().shard_count(), NodeLayoutName(save_options.layout));
    return Status::OK();
  }
  Result<BloomSampleTree> tree = [&]() -> Result<BloomSampleTree> {
    if (occupied_path.has_value()) {
      auto occupied = ReadIdFile(*occupied_path);
      if (!occupied.ok()) return occupied.status();
      return BloomSampleTree::BuildPruned(config.value(),
                                          std::move(occupied).value());
    }
    return BloomSampleTree::BuildComplete(config.value());
  }();
  if (!tree.ok()) return tree.status();

  const Status saved = SaveTreeToFile(tree.value(), out_path.value(),
                                      save_options);
  if (!saved.ok()) return saved;
  std::printf("built %s tree: m=%llu bits, depth=%u, %zu nodes, %.2f MB, "
              "%.2f s -> %s (%s, %s layout)\n",
              tree.value().pruned() ? "pruned" : "complete",
              static_cast<unsigned long long>(config.value().m),
              config.value().depth, tree.value().node_count(),
              static_cast<double>(tree.value().MemoryBytes()) / (1 << 20),
              timer.ElapsedSeconds(), out_path.value().c_str(),
              save_options.version == 1 ? "stream-v1" : "snapshot-v2",
              save_options.version == 1
                  ? "id-order"
                  : NodeLayoutName(save_options.layout));
  return Status::OK();
}

Status ForestInfo(const Flags& flags, const std::string& path) {
  Result<BloomSampleForest> forest = LoadForestForCli(flags, path);
  if (!forest.ok()) return forest.status();
  const BloomSampleForest& f = forest.value();
  const TreeConfig& config = f.config().tree;
  std::printf("forest: %s\n", path.c_str());
  std::printf("  kind:        %s forest\n",
              f.pruned() ? "pruned" : "complete");
  std::printf("  shards:      %u (width %llu)\n", f.shard_count(),
              static_cast<unsigned long long>(f.shard_width()));
  std::printf("  namespace:   %llu\n",
              static_cast<unsigned long long>(config.namespace_size));
  std::printf("  m:           %llu bits\n",
              static_cast<unsigned long long>(config.m));
  std::printf("  k:           %llu (%s)\n",
              static_cast<unsigned long long>(config.k),
              HashFamilyKindName(config.hash_kind).c_str());
  std::printf("  seed:        %llu\n",
              static_cast<unsigned long long>(config.seed));
  std::printf("  depth:       %u (leaf range %llu)\n", config.depth,
              static_cast<unsigned long long>(config.LeafRangeSize()));
  std::printf("  nodes:       %zu total (%.2f MB)\n", f.node_count(),
              static_cast<double>(f.MemoryBytes()) / (1 << 20));
  if (f.pruned()) {
    std::printf("  occupied:    %llu ids total\n",
                static_cast<unsigned long long>(f.occupied_count()));
  }
  for (uint32_t s = 0; s < f.shard_count(); ++s) {
    std::printf("  shard %-2u     [%llu, %llu): %zu nodes, %zu occupied\n",
                s, static_cast<unsigned long long>(f.ShardLo(s)),
                static_cast<unsigned long long>(f.ShardHi(s)),
                f.shard(s).node_count(), f.shard(s).occupied().size());
  }
  std::printf("  design accuracy at n=1000: %.3f\n",
              SamplingAccuracy(config.m, 1000, config.k,
                               config.namespace_size));
  return Status::OK();
}

Status CmdInfo(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  if (IsForestManifest(tree_path.value())) {
    return ForestInfo(flags, tree_path.value());
  }
  Result<BloomSampleTree> tree = LoadTreeForCli(flags, tree_path.value());
  if (!tree.ok()) return tree.status();
  const TreeConfig& config = tree.value().config();
  std::printf("tree: %s\n", tree_path.value().c_str());
  std::printf("  kind:        %s\n",
              tree.value().pruned() ? "pruned" : "complete");
  std::printf("  namespace:   %llu\n",
              static_cast<unsigned long long>(config.namespace_size));
  std::printf("  m:           %llu bits\n",
              static_cast<unsigned long long>(config.m));
  std::printf("  k:           %llu (%s)\n",
              static_cast<unsigned long long>(config.k),
              HashFamilyKindName(config.hash_kind).c_str());
  std::printf("  seed:        %llu\n",
              static_cast<unsigned long long>(config.seed));
  std::printf("  depth:       %u (leaf range %llu)\n", config.depth,
              static_cast<unsigned long long>(config.LeafRangeSize()));
  std::printf("  nodes:       %zu (%.2f MB)\n", tree.value().node_count(),
              static_cast<double>(tree.value().MemoryBytes()) / (1 << 20));
  std::printf("  layout:      %s\n",
              NodeLayoutName(tree.value().node_layout()));
  if (tree.value().pruned()) {
    std::printf("  occupied:    %zu ids\n", tree.value().occupied().size());
  }
  std::printf("  design accuracy at n=1000: %.3f\n",
              SamplingAccuracy(config.m, 1000, config.k,
                               config.namespace_size));
  return Status::OK();
}

Status CmdMakeSet(const Flags& flags) {
  auto namespace_size = flags.RequireU64("namespace");
  if (!namespace_size.ok()) return namespace_size.status();
  auto size = flags.RequireU64("size");
  if (!size.ok()) return size.status();
  auto out_path = flags.Require("out");
  if (!out_path.ok()) return out_path.status();
  auto seed = flags.GetU64("seed", 42);
  if (!seed.ok()) return seed.status();

  Rng rng(seed.value());
  Result<std::vector<uint64_t>> ids =
      flags.GetBool("clustered")
          ? GenerateClusteredSet(namespace_size.value(), size.value(), &rng)
          : GenerateUniformSet(namespace_size.value(), size.value(), &rng);
  if (!ids.ok()) return ids.status();
  const Status written = WriteIdFile(out_path.value(), ids.value());
  if (!written.ok()) return written;
  std::printf("wrote %zu ids -> %s\n", ids.value().size(),
              out_path.value().c_str());
  return Status::OK();
}

Status CmdStoreSet(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto ids_path = flags.Require("ids");
  if (!ids_path.ok()) return ids_path.status();
  auto out_path = flags.Require("out");
  if (!out_path.ok()) return out_path.status();

  // Trees and forests share the filter format: only the family (and the
  // namespace bound) comes from the snapshot.
  std::optional<BloomSampleTree> tree;
  std::optional<BloomSampleForest> forest;
  uint64_t namespace_size = 0;
  if (IsForestManifest(tree_path.value())) {
    auto loaded = LoadForestForCli(flags, tree_path.value());
    if (!loaded.ok()) return loaded.status();
    namespace_size = loaded.value().config().tree.namespace_size;
    forest.emplace(std::move(loaded).value());
  } else {
    auto loaded = LoadTreeForCli(flags, tree_path.value());
    if (!loaded.ok()) return loaded.status();
    namespace_size = loaded.value().config().namespace_size;
    tree.emplace(std::move(loaded).value());
  }
  auto ids = ReadIdFile(ids_path.value());
  if (!ids.ok()) return ids.status();
  for (uint64_t id : ids.value()) {
    if (id >= namespace_size) {
      return Status::OutOfRange("id " + std::to_string(id) +
                                " is outside the tree's namespace");
    }
  }
  const BloomFilter filter = forest.has_value()
                                 ? forest->MakeQueryFilter(ids.value())
                                 : tree->MakeQueryFilter(ids.value());
  std::ofstream out(out_path.value(), std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return Status::NotFound("cannot open '" + out_path.value() + "'");
  }
  const Status saved = SerializeBloomFilter(filter, &out);
  if (!saved.ok()) return saved;
  std::printf("stored %zu ids as a %zu-byte filter (fill %.3f) -> %s\n",
              ids.value().size(), filter.MemoryBytes(),
              filter.FillFraction(), out_path.value().c_str());
  return Status::OK();
}

Status CmdSample(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto filter_path = flags.Require("filter");
  if (!filter_path.ok()) return filter_path.status();
  auto count = flags.GetU64("count", 1);
  if (!count.ok()) return count.status();
  auto seed = flags.GetU64("seed", 42);
  if (!seed.ok()) return seed.status();
  auto threads = flags.GetU64("threads", 0);  // 0 = hardware concurrency
  if (!threads.ok()) return threads.status();

  if (IsForestManifest(tree_path.value())) {
    // Forest snapshots always sample through the batched cross-shard
    // engine: draw i rides Rng::ForStream(seed, i), so the output is
    // independent of --threads and identical to serial draws (draws are
    // independent, i.e. with replacement, by construction).
    Result<BloomSampleForest> forest =
        LoadForestForCli(flags, tree_path.value());
    if (!forest.ok()) return forest.status();
    const Status shard_check =
        CheckShardFlag(flags, forest.value().shard_count());
    if (!shard_check.ok()) return shard_check;
    Result<BloomFilter> filter =
        LoadFilterWith(forest.value().family_ptr(), filter_path.value());
    if (!filter.ok()) return filter.status();
    forest.value().set_query_threads(static_cast<uint32_t>(threads.value()));

    ForestSampler sampler(&forest.value());
    ForestQueryContext ctx(forest.value(), filter.value());
    OpCounters counters;
    Timer timer;
    const auto draws =
        sampler.SampleBatch(&ctx, count.value(), seed.value(), &counters);
    const double ms = timer.ElapsedMillis();
    size_t produced = 0;
    for (const auto& draw : draws) {
      if (draw.has_value()) {
        std::printf("%llu\n", static_cast<unsigned long long>(*draw));
        ++produced;
      } else {
        std::printf("null\n");
      }
    }
    std::fprintf(stderr,
                 "# %zu/%zu cross-shard draws over %u shards in %.3f ms "
                 "(%llu kernel intersections + %llu cache hits, %.2f MB "
                 "read, %llu membership queries)\n",
                 produced, draws.size(), forest.value().shard_count(), ms,
                 static_cast<unsigned long long>(counters.intersections),
                 static_cast<unsigned long long>(counters.estimate_cache_hits),
                 static_cast<double>(counters.intersection_bytes) / 1e6,
                 static_cast<unsigned long long>(counters.membership_queries));
    return Status::OK();
  }

  Result<BloomSampleTree> tree = LoadTreeForCli(flags, tree_path.value());
  if (!tree.ok()) return tree.status();
  Result<BloomFilter> filter = LoadFilterFor(tree.value(), filter_path.value());
  if (!filter.ok()) return filter.status();
  tree.value().set_query_threads(static_cast<uint32_t>(threads.value()));

  BstSampler sampler(&tree.value());
  QueryContext ctx(tree.value(), filter.value());
  OpCounters counters;
  Timer timer;
  size_t produced = 0;
  if (flags.GetBool("batch")) {
    // Batched multi-draw engine: per-draw RNG streams, estimates and leaf
    // scans shared through the context, draws fanned across --threads.
    // Output is bit-identical to --count serial draws on the same seed.
    const auto draws =
        sampler.SampleBatch(&ctx, count.value(), seed.value(), &counters);
    const double ms = timer.ElapsedMillis();
    for (const auto& draw : draws) {
      if (draw.has_value()) {
        std::printf("%llu\n", static_cast<unsigned long long>(*draw));
        ++produced;
      } else {
        std::printf("null\n");
      }
    }
    std::fprintf(stderr,
                 "# %zu/%zu batched draws in %.3f ms (%llu kernel "
                 "intersections + %llu cache hits, %.2f MB read, %llu "
                 "membership queries)\n",
                 produced, draws.size(), ms,
                 static_cast<unsigned long long>(counters.intersections),
                 static_cast<unsigned long long>(counters.estimate_cache_hits),
                 static_cast<double>(counters.intersection_bytes) / 1e6,
                 static_cast<unsigned long long>(counters.membership_queries));
    return Status::OK();
  }

  Rng rng(seed.value());
  const std::vector<uint64_t> samples =
      sampler.SampleMany(&ctx, count.value(), &rng,
                         /*with_replacement=*/flags.GetBool("with-replacement"),
                         &counters);
  const double ms = timer.ElapsedMillis();
  for (uint64_t sample : samples) {
    std::printf("%llu\n", static_cast<unsigned long long>(sample));
  }
  std::fprintf(stderr,
               "# %zu samples in %.3f ms (%llu kernel intersections + %llu "
               "cache hits, %.2f MB read, %llu membership queries)\n",
               samples.size(), ms,
               static_cast<unsigned long long>(counters.intersections),
               static_cast<unsigned long long>(counters.estimate_cache_hits),
               static_cast<double>(counters.intersection_bytes) / 1e6,
               static_cast<unsigned long long>(counters.membership_queries));
  return Status::OK();
}

Status CmdReconstruct(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto filter_path = flags.Require("filter");
  if (!filter_path.ok()) return filter_path.status();
  auto threads = flags.GetU64("threads", 0);  // 0 = hardware concurrency
  if (!threads.ok()) return threads.status();

  const BstReconstructor::PruningMode mode =
      flags.GetBool("exact") ? BstReconstructor::PruningMode::kExact
                             : BstReconstructor::PruningMode::kThresholded;
  OpCounters counters;
  std::vector<uint64_t> ids;
  double ms = 0.0;
  if (IsForestManifest(tree_path.value())) {
    Result<BloomSampleForest> forest =
        LoadForestForCli(flags, tree_path.value());
    if (!forest.ok()) return forest.status();
    const Status shard_check =
        CheckShardFlag(flags, forest.value().shard_count());
    if (!shard_check.ok()) return shard_check;
    Result<BloomFilter> filter =
        LoadFilterWith(forest.value().family_ptr(), filter_path.value());
    if (!filter.ok()) return filter.status();
    forest.value().set_query_threads(static_cast<uint32_t>(threads.value()));

    ForestReconstructor reconstructor(&forest.value());
    ForestQueryContext ctx(forest.value(), filter.value());
    Timer timer;
    ids = reconstructor.Reconstruct(ctx, &counters, mode);
    ms = timer.ElapsedMillis();
  } else {
    Result<BloomSampleTree> tree = LoadTreeForCli(flags, tree_path.value());
    if (!tree.ok()) return tree.status();
    Result<BloomFilter> filter =
        LoadFilterFor(tree.value(), filter_path.value());
    if (!filter.ok()) return filter.status();
    tree.value().set_query_threads(static_cast<uint32_t>(threads.value()));

    BstReconstructor reconstructor(&tree.value());
    Timer timer;
    ids = reconstructor.Reconstruct(filter.value(), &counters, mode);
    ms = timer.ElapsedMillis();
  }

  const auto out_path = flags.Get("out");
  if (out_path.has_value()) {
    const Status written = WriteIdFile(*out_path, ids);
    if (!written.ok()) return written;
  } else {
    for (uint64_t id : ids) {
      std::printf("%llu\n", static_cast<unsigned long long>(id));
    }
  }
  std::fprintf(stderr,
               "# reconstructed %zu ids in %.2f ms (%llu kernel "
               "intersections + %llu cache hits, %.2f MB read, %llu "
               "membership queries, mode=%s)\n",
               ids.size(), ms,
               static_cast<unsigned long long>(counters.intersections),
               static_cast<unsigned long long>(counters.estimate_cache_hits),
               static_cast<double>(counters.intersection_bytes) / 1e6,
               static_cast<unsigned long long>(counters.membership_queries),
               flags.GetBool("exact") ? "exact" : "thresholded");
  return Status::OK();
}

Status CmdQuery(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto filter_path = flags.Require("filter");
  if (!filter_path.ok()) return filter_path.status();
  auto id = flags.RequireU64("id");
  if (!id.ok()) return id.status();

  std::shared_ptr<const HashFamily> family;
  if (IsForestManifest(tree_path.value())) {
    Result<BloomSampleForest> forest =
        LoadForestForCli(flags, tree_path.value());
    if (!forest.ok()) return forest.status();
    family = forest.value().family_ptr();
  } else {
    Result<BloomSampleTree> tree = LoadTreeForCli(flags, tree_path.value());
    if (!tree.ok()) return tree.status();
    family = tree.value().family_ptr();
  }
  Result<BloomFilter> filter = LoadFilterWith(family, filter_path.value());
  if (!filter.ok()) return filter.status();
  std::printf("%s\n",
              filter.value().Contains(id.value()) ? "positive" : "negative");
  return Status::OK();
}

Result<WalOptions> ParseWalFlags(const Flags& flags) {
  WalOptions options;
  const std::string sync = flags.Get("sync").value_or("every");
  if (sync == "every") {
    options.policy = WalSyncPolicy::kEveryRecord;
  } else if (sync == "interval") {
    options.policy = WalSyncPolicy::kInterval;
  } else if (sync == "none") {
    options.policy = WalSyncPolicy::kNone;
  } else {
    return Status::InvalidArgument(
        "--sync must be 'every', 'interval', or 'none'");
  }
  auto interval = flags.GetU64("interval", options.sync_interval);
  if (!interval.ok()) return interval.status();
  if (interval.value() == 0) {
    return Status::InvalidArgument("--interval must be positive");
  }
  options.sync_interval = interval.value();
  return options;
}

/// `# lane status` diagnostic lines — the CLI surface of
/// IngestPipelineStats::lanes (latch reason + errno, recovery progress).
void PrintLaneStatusLines(const IngestPipelineStats& stats) {
  for (const LaneStatusInfo& lane : stats.lanes) {
    if (lane.quarantined) {
      std::fprintf(stderr, "# lane %u status: quarantined\n", lane.lane);
      continue;
    }
    if (!lane.read_only) {
      std::fprintf(stderr,
                   "# lane %u status: healthy (%llu recovery probes, %llu "
                   "latches cleared)\n",
                   lane.lane,
                   static_cast<unsigned long long>(lane.recover_attempts),
                   static_cast<unsigned long long>(lane.recover_successes));
      continue;
    }
    std::fprintf(stderr,
                 "# lane %u status: read-only — %s (errno %d)%s; %llu "
                 "recovery probes, %llu latches cleared\n",
                 lane.lane, lane.latch_message.c_str(), lane.latch_errno,
                 lane.recovery_gave_up ? "; recovery gave up" : "",
                 static_cast<unsigned long long>(lane.recover_attempts),
                 static_cast<unsigned long long>(lane.recover_successes));
  }
}

/// Concurrent ingest through the IngestPipeline: `threads` writers share
/// fsyncs via leader–follower group commit, so `--sync every` keeps its
/// per-record durability guarantee at a fraction of the fsync count. Used
/// by `bsr insert --threads T` (T > 1).
Status RunPipelineInsert(IngestPipeline* pipeline,
                         const std::vector<uint64_t>& ids, uint64_t threads) {
  std::mutex mu;
  Status first;
  std::vector<std::thread> writers;
  for (uint64_t t = 0; t < threads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = t; i < ids.size(); i += threads) {
        const Status st = pipeline->Insert(ids[i]);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first.ok()) first = st;
          return;
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  return first;
}

Status CmdInsert(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto ids_path = flags.Require("ids");
  if (!ids_path.ok()) return ids_path.status();
  auto wal_options = ParseWalFlags(flags);
  if (!wal_options.ok()) return wal_options.status();
  auto threads = flags.GetU64("threads", 1);
  if (!threads.ok()) return threads.status();
  if (threads.value() == 0) {
    threads = static_cast<uint64_t>(std::thread::hardware_concurrency());
  }
  auto ids = ReadIdFile(ids_path.value());
  if (!ids.ok()) return ids.status();

  // The snapshot image is left untouched: every insert is acknowledged
  // only once its record is in the sidecar log (per --sync policy), and
  // the next open replays the log. `bsr compact` folds the log back in.
  Timer timer;
  uint64_t before = 0;
  uint64_t after = 0;
  if (threads.value() > 1) {
    // Concurrent path: writer threads share fsyncs through group commit.
    IngestPipelineOptions options;
    options.wal = wal_options.value();
    IngestPipelineStats stats;
    if (IsForestManifest(tree_path.value())) {
      ForestLoadInfo info;
      auto forest = LoadForestForCli(flags, tree_path.value(), &info);
      if (!forest.ok()) return forest.status();
      auto pipeline = IngestPipeline::OpenForest(&forest.value(),
                                                 tree_path.value(), options,
                                                 &info);
      if (!pipeline.ok()) return pipeline.status();
      before = forest.value().occupied_count();
      const Status ran = RunPipelineInsert(pipeline.value().get(),
                                           ids.value(), threads.value());
      stats = pipeline.value()->Stats();
      PrintLaneStatusLines(stats);
      const Status closed = pipeline.value()->Close();
      if (!ran.ok()) return ran;
      if (!closed.ok()) return closed;
      after = forest.value().occupied_count();
    } else {
      TreeLoadInfo info;
      auto loaded = LoadTreeForCli(flags, tree_path.value(), &info);
      if (!loaded.ok()) return loaded.status();
      auto tree =
          std::make_shared<BloomSampleTree>(std::move(loaded).value());
      before = tree->occupied().size();
      auto pipeline = IngestPipeline::OpenTree(
          tree, tree_path.value(), options, info.wal_records_replayed + 1);
      if (!pipeline.ok()) return pipeline.status();
      const Status ran = RunPipelineInsert(pipeline.value().get(),
                                           ids.value(), threads.value());
      stats = pipeline.value()->Stats();
      PrintLaneStatusLines(stats);
      const Status closed = pipeline.value()->Close();
      if (!ran.ok()) return ran;
      if (!closed.ok()) return closed;
      after = pipeline.value()->tree_handle()->occupied().size();
    }
    std::printf(
        "ingested %zu ids (%llu new, %llu already present) in %.2f ms via "
        "%llu writers (sync=%s, %llu commit groups, %llu fsyncs) -> %s\n",
        ids.value().size(), static_cast<unsigned long long>(after - before),
        static_cast<unsigned long long>(ids.value().size() -
                                        (after - before)),
        timer.ElapsedMillis(),
        static_cast<unsigned long long>(threads.value()),
        WalSyncPolicyName(wal_options.value().policy),
        static_cast<unsigned long long>(stats.commit_groups),
        static_cast<unsigned long long>(stats.fsyncs),
        tree_path.value().c_str());
    return Status::OK();
  }
  if (IsForestManifest(tree_path.value())) {
    ForestLoadInfo info;
    auto forest = LoadForestForCli(flags, tree_path.value(), &info);
    if (!forest.ok()) return forest.status();
    const Status attached = AttachForestWals(&forest.value(), tree_path.value(),
                                             wal_options.value(), &info);
    if (!attached.ok()) return attached;
    before = forest.value().occupied_count();
    for (uint64_t id : ids.value()) {
      const Status inserted = forest.value().Insert(id);
      if (!inserted.ok()) return inserted;
    }
    after = forest.value().occupied_count();
    // kInterval/kNone buffer in the page cache; one final fsync per shard
    // makes the whole batch durable before the command reports success.
    for (uint32_t s = 0; s < forest.value().shard_count(); ++s) {
      BloomSampleTree* shard = forest.value().mutable_shard(s);
      if (shard->wal() != nullptr) {
        const Status synced = shard->wal()->Sync();
        if (!synced.ok()) return synced;
      }
    }
  } else {
    TreeLoadInfo info;
    auto tree = LoadTreeForCli(flags, tree_path.value(), &info);
    if (!tree.ok()) return tree.status();
    const Status attached = AttachTreeWal(&tree.value(), tree_path.value(),
                                          wal_options.value(), &info);
    if (!attached.ok()) return attached;
    before = tree.value().occupied().size();
    for (uint64_t id : ids.value()) {
      const Status inserted = tree.value().Insert(id);
      if (!inserted.ok()) return inserted;
    }
    after = tree.value().occupied().size();
    const Status synced = tree.value().wal()->Sync();
    if (!synced.ok()) return synced;
  }
  std::printf("ingested %zu ids (%llu new, %llu already present) in %.2f ms "
              "via wal (sync=%s) -> %s\n",
              ids.value().size(),
              static_cast<unsigned long long>(after - before),
              static_cast<unsigned long long>(ids.value().size() -
                                              (after - before)),
              timer.ElapsedMillis(),
              WalSyncPolicyName(wal_options.value().policy),
              tree_path.value().c_str());
  return Status::OK();
}

Status CmdRemove(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto ids_path = flags.Require("ids");
  if (!ids_path.ok()) return ids_path.status();
  auto wal_options = ParseWalFlags(flags);
  if (!wal_options.ok()) return wal_options.status();
  auto ids = ReadIdFile(ids_path.value());
  if (!ids.ok()) return ids.status();

  // Plain Bloom filters cannot unset bits, so removes need the counting-
  // bloom leaf backend. Snapshots do not persist it; enabling it here
  // rebuilds exact per-leaf counters from the occupied set, and replay
  // auto-enables it again when it meets the first kRemove record.
  Timer timer;
  uint64_t before = 0;
  uint64_t after = 0;
  if (IsForestManifest(tree_path.value())) {
    ForestLoadInfo info;
    auto forest = LoadForestForCli(flags, tree_path.value(), &info);
    if (!forest.ok()) return forest.status();
    const Status attached = AttachForestWals(&forest.value(),
                                             tree_path.value(),
                                             wal_options.value(), &info);
    if (!attached.ok()) return attached;
    const Status counting = forest.value().EnableCountingLeaves();
    if (!counting.ok()) return counting;
    before = forest.value().occupied_count();
    for (uint64_t id : ids.value()) {
      const Status removed = forest.value().Remove(id);
      if (!removed.ok()) return removed;
    }
    after = forest.value().occupied_count();
    for (uint32_t s = 0; s < forest.value().shard_count(); ++s) {
      BloomSampleTree* shard = forest.value().mutable_shard(s);
      if (shard->wal() != nullptr) {
        const Status synced = shard->wal()->Sync();
        if (!synced.ok()) return synced;
      }
    }
  } else {
    TreeLoadInfo info;
    auto tree = LoadTreeForCli(flags, tree_path.value(), &info);
    if (!tree.ok()) return tree.status();
    const Status attached = AttachTreeWal(&tree.value(), tree_path.value(),
                                          wal_options.value(), &info);
    if (!attached.ok()) return attached;
    const Status counting = tree.value().EnableCountingLeaves();
    if (!counting.ok()) return counting;
    before = tree.value().occupied().size();
    for (uint64_t id : ids.value()) {
      const Status removed = tree.value().Remove(id);
      if (!removed.ok()) return removed;
    }
    after = tree.value().occupied().size();
    const Status synced = tree.value().wal()->Sync();
    if (!synced.ok()) return synced;
  }
  std::printf("removed %llu of %zu ids (%llu were absent) in %.2f ms via "
              "wal (sync=%s, counting-bloom leaves) -> %s\n",
              static_cast<unsigned long long>(before - after),
              ids.value().size(),
              static_cast<unsigned long long>(ids.value().size() -
                                              (before - after)),
              timer.ElapsedMillis(),
              WalSyncPolicyName(wal_options.value().policy),
              tree_path.value().c_str());
  return Status::OK();
}

Status VerifyOneSnapshot(const std::string& path) {
  uint64_t bad_chunk = ~0ull;
  Timer timer;
  const Status verified = VerifySnapshotFile(path, nullptr, &bad_chunk);
  if (verified.ok()) {
    std::printf("%s: ok (%.2f ms)\n", path.c_str(), timer.ElapsedMillis());
  } else if (bad_chunk != ~0ull) {
    std::fprintf(stderr, "# %s: first bad slab chunk = %llu\n", path.c_str(),
                 static_cast<unsigned long long>(bad_chunk));
  }
  return verified;
}

Status CmdVerify(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();

  Status first = Status::OK();
  if (IsForestManifest(tree_path.value())) {
    // Walk the shard images the manifest implies; a quarantined shard's
    // image may be gone while its marker remains, so either file counts
    // as "shard s exists".
    FileSystem* fs = FileSystem::Default();
    uint32_t shards = 0;
    for (uint32_t s = 0;; ++s) {
      const std::string shard = ForestShardPath(tree_path.value(), s);
      if (!fs->FileExists(shard) &&
          !fs->FileExists(QuarantinePathFor(shard))) {
        break;
      }
      ++shards;
      const Status st = VerifyOneSnapshot(shard);
      if (!st.ok() && first.ok()) first = st;
    }
    if (shards == 0) {
      first = Status::NotFound("no shard images next to manifest '" +
                               tree_path.value() + "'");
    }
  } else {
    first = VerifyOneSnapshot(tree_path.value());
  }
  if (!first.ok() && first.code() != Status::Code::kQuarantined) {
    g_snapshot_exit_hint =
        first.code() == Status::Code::kNotFound ? 3 : 4;
  }
  return first;
}

Status CmdCompact(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();

  Timer timer;
  uint64_t replayed = 0;
  if (IsForestManifest(tree_path.value())) {
    ForestLoadInfo info;
    auto forest = LoadForestForCli(flags, tree_path.value(), &info);
    if (!forest.ok()) return forest.status();
    const Status attached = AttachForestWals(&forest.value(), tree_path.value(),
                                             WalOptions(), &info);
    if (!attached.ok()) return attached;
    const Status compacted = CompactForest(&forest.value(), tree_path.value());
    if (!compacted.ok()) return compacted;
    for (const TreeLoadInfo& shard : info.shards) {
      replayed += shard.wal_records_replayed;
    }
  } else {
    TreeLoadInfo info;
    auto tree = LoadTreeForCli(flags, tree_path.value(), &info);
    if (!tree.ok()) return tree.status();
    const Status attached = AttachTreeWal(&tree.value(), tree_path.value(),
                                          WalOptions(), &info);
    if (!attached.ok()) return attached;
    const Status compacted = CompactTree(&tree.value(), tree_path.value());
    if (!compacted.ok()) return compacted;
    replayed = info.wal_records_replayed;
  }
  std::printf("compacted %s: folded %llu wal records into the image in "
              "%.2f ms; log is empty\n",
              tree_path.value().c_str(),
              static_cast<unsigned long long>(replayed),
              timer.ElapsedMillis());
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed on " + path);
  return bytes;
}

Status CmdServe(const Flags& flags) {
  auto tree_path = flags.Require("tree");
  if (!tree_path.ok()) return tree_path.status();
  auto wal_options = ParseWalFlags(flags);
  if (!wal_options.ok()) return wal_options.status();
  auto workers = flags.GetU64("workers", 2);
  if (!workers.ok()) return workers.status();
  auto queue = flags.GetU64("queue", 256);
  if (!queue.ok()) return queue.status();
  auto drain_ms = flags.GetU64("drain-ms", 5000);
  if (!drain_ms.ok()) return drain_ms.status();
  auto idle_ms = flags.GetU64("idle-ms", 60000);
  if (!idle_ms.ok()) return idle_ms.status();
  auto read_ms = flags.GetU64("read-ms", 5000);
  if (!read_ms.ok()) return read_ms.status();
  if (IsForestManifest(tree_path.value())) {
    return Status::Unsupported(
        "bsr serve is single-tree only for now; forest serving is a "
        "ROADMAP item");
  }

  TreeLoadInfo info;
  auto loaded = LoadTreeForCli(flags, tree_path.value(), &info);
  if (!loaded.ok()) return loaded.status();
  auto tree = std::make_shared<BloomSampleTree>(std::move(loaded).value());

  // Past this point every failure is the daemon's fault: exit 8.
  g_server_failure = true;

  IngestPipelineOptions poptions;
  poptions.wal = wal_options.value();
  auto pipeline = IngestPipeline::OpenTree(tree, tree_path.value(), poptions,
                                           info.wal_records_replayed + 1);
  if (!pipeline.ok()) return pipeline.status();

  std::unique_ptr<Scrubber> scrubber;
  if (flags.GetBool("scrub")) {
    ScrubOptions scrub_options;
    scrubber = std::make_unique<Scrubber>(pipeline.value().get(),
                                          scrub_options);
    scrubber->Start();
  }

  server::ServerOptions soptions;
  soptions.listen = flags.Get("listen").value_or("127.0.0.1:0");
  soptions.workers = static_cast<size_t>(workers.value());
  soptions.queue_capacity = static_cast<size_t>(queue.value());
  soptions.drain_budget = std::chrono::milliseconds(drain_ms.value());
  soptions.idle_timeout = std::chrono::milliseconds(idle_ms.value());
  soptions.read_timeout = std::chrono::milliseconds(read_ms.value());
  auto server = server::BsrServer::Start(pipeline.value().get(), soptions);
  if (!server.ok()) return server.status();
  if (scrubber != nullptr) server.value()->set_scrubber(scrubber.get());
  server::InstallSignalHandlers(server.value().get());

  // The ready line: scripts (and the CI smoke leg) wait for it on stdout
  // before connecting — the address is authoritative because :0 binds an
  // ephemeral port.
  std::printf("bsrd serving on %s (pid %d; SIGTERM drains, SIGHUP swaps)\n",
              server.value()->address().c_str(),
              static_cast<int>(getpid()));
  std::fflush(stdout);

  const Status served = server.value()->Wait();
  server::RestoreSignalHandlers();
  server.value().reset();
  if (scrubber != nullptr) scrubber->Stop();
  PrintLaneStatusLines(pipeline.value()->Stats());
  const Status closed = pipeline.value()->Close();
  if (!served.ok()) return served;
  if (!closed.ok()) return closed;
  g_server_failure = false;
  std::printf("bsrd: drained and stopped cleanly\n");
  return Status::OK();
}

Status CmdClient(const std::string& op, const Flags& flags) {
  auto addr = flags.Require("addr");
  if (!addr.ok()) return addr.status();
  auto timeout_ms = flags.GetU64("timeout-ms", 5000);
  if (!timeout_ms.ok()) return timeout_ms.status();
  auto retries = flags.GetU64("retries", 3);
  if (!retries.ok()) return retries.status();
  auto deadline_ms = flags.GetU64("deadline-ms", 0);
  if (!deadline_ms.ok()) return deadline_ms.status();

  server::ClientOptions coptions;
  coptions.request_timeout = std::chrono::milliseconds(timeout_ms.value());
  coptions.max_retries = static_cast<uint32_t>(retries.value());
  coptions.deadline_ms = static_cast<uint32_t>(deadline_ms.value());

  // A client op that reaches the wire and fails is a serving failure:
  // exit 8, distinguishable from local mistakes like a bad flag.
  g_server_failure = true;
  auto client = server::BsrClient::Connect(addr.value(), coptions);
  if (!client.ok()) return client.status();

  Timer timer;
  if (op == "ping") {
    const Status st = client.value()->Ping();
    if (!st.ok()) return st;
    std::printf("pong in %.2f ms\n", timer.ElapsedMillis());
  } else if (op == "stats") {
    auto text = client.value()->Stats();
    if (!text.ok()) return text.status();
    std::fputs(text.value().c_str(), stdout);
  } else if (op == "sample") {
    auto filter_path = flags.Require("filter");
    if (!filter_path.ok()) return filter_path.status();
    auto count = flags.GetU64("count", 1);
    if (!count.ok()) return count.status();
    auto seed = flags.GetU64("seed", 0);
    if (!seed.ok()) return seed.status();
    auto filter = ReadFileBytes(filter_path.value());
    if (!filter.ok()) return filter.status();
    auto draws = client.value()->Sample(filter.value(),
                                        static_cast<uint32_t>(count.value()),
                                        seed.value());
    if (!draws.ok()) return draws.status();
    for (const auto& draw : draws.value()) {
      if (draw.has_value()) {
        std::printf("%llu\n", static_cast<unsigned long long>(*draw));
      } else {
        std::printf("null\n");
      }
    }
  } else if (op == "reconstruct") {
    auto filter_path = flags.Require("filter");
    if (!filter_path.ok()) return filter_path.status();
    auto filter = ReadFileBytes(filter_path.value());
    if (!filter.ok()) return filter.status();
    auto ids = client.value()->Reconstruct(filter.value(),
                                           flags.GetBool("exact"));
    if (!ids.ok()) return ids.status();
    for (uint64_t id : ids.value()) {
      std::printf("%llu\n", static_cast<unsigned long long>(id));
    }
  } else if (op == "insert" || op == "remove") {
    auto ids_path = flags.Require("ids");
    if (!ids_path.ok()) return ids_path.status();
    auto ids = ReadIdFile(ids_path.value());
    if (!ids.ok()) return ids.status();
    const Status st = op == "insert" ? client.value()->Insert(ids.value())
                                     : client.value()->Remove(ids.value());
    if (!st.ok()) return st;
    std::printf("%sed %zu ids in %.2f ms\n",
                op == "insert" ? "insert" : "remov", ids.value().size(),
                timer.ElapsedMillis());
  } else {
    g_server_failure = false;
    return Status::InvalidArgument(
        "unknown client op '" + op +
        "' (ping|sample|reconstruct|insert|remove|stats)");
  }
  if (client.value()->retry_count() > 0) {
    std::fprintf(stderr, "# %llu retries\n",
                 static_cast<unsigned long long>(
                     client.value()->retry_count()));
  }
  g_server_failure = false;
  return Status::OK();
}

void PrintUsage() {
  std::fprintf(stderr, R"(bsr — sampling and reconstruction from Bloom filters

usage: bsr <command> [flags]

commands:
  build        --namespace M --out T.bst [--accuracy A] [--set-size N]
               [--k K] [--hash simple|murmur3|md5] [--seed S]
               [--occupied ids.txt]     (pruned tree over occupied ids)
               [--threads T]            (build threads; 0 = all cores)
               [--layout id|descent]    (v2 slab block order; default
                                         descent: BFS top + vEB subtrees)
               [--format v1|v2]         (v2 = mmap-able flat snapshot,
                                         v1 = legacy portable stream)
               [--shards S]             (S > 1: sharded forest — manifest
                                         at --out plus S shard images)
  info         --tree T.bst             (forest manifests auto-detected)
  make-set     --namespace M --size N --out ids.txt [--clustered] [--seed S]
  store-set    --tree T.bst --ids ids.txt --out set.bf
  sample       --tree T.bst --filter set.bf [--count R] [--seed S]
               [--with-replacement]
               [--batch]                (batched multi-draw engine: R
                                         independent draws on per-draw RNG
                                         streams; "null" = dead path)
               [--threads T]            (batch fan-out; 0 = all cores)
               [--shards S]             (forests: assert the shard count)
  reconstruct  --tree T.bst --filter set.bf [--exact] [--out ids.txt]
               [--threads T]            (traversal fan-out; 0 = all cores)
               [--shards S]             (forests: assert the shard count)
  query        --tree T.bst --filter set.bf --id X
  insert       --tree T.bst --ids ids.txt
               [--sync every|interval|none]  (wal fsync policy; default
                                         every: each insert durable before
                                         it is acknowledged)
               [--interval N]           (records per fsync for --sync
                                         interval; default 64)
               [--threads T]            (T > 1: concurrent writers through
                                         the ingest pipeline — group
                                         commit shares fsyncs, so --sync
                                         every keeps per-record durability
                                         at a fraction of the fsync count;
                                         0 = all cores)
               Appends to the sidecar write-ahead log (T.bst.wal); the
               snapshot image is untouched and the next open replays the
               log. Works on forest manifests (per-shard logs).
  remove       --tree T.bst --ids ids.txt
               [--sync every|interval|none] [--interval N]
               Logs kRemove records and deletes through the counting-bloom
               leaf backend (enabled on load: exact counters rebuilt from
               the occupied set; plain Bloom leaves cannot unset bits).
  compact      --tree T.bst             (fold the wal into the image
                                         atomically and empty the log)
  verify       --tree T.bst             (offline integrity walk: metadata
                                         digests, then the slab chunk by
                                         chunk; forest manifests verify
                                         every shard image; reports the
                                         first bad chunk on stderr)
  serve        --tree T.bst [--listen unix:/path | host:port]
               [--workers N] [--queue N]     (admission queue bound;
                                         beyond it requests are shed with
                                         OVERLOADED + retry-after)
               [--drain-ms N]           (SIGTERM drain budget)
               [--idle-ms N] [--read-ms N]  (idle / slow-loris timeouts)
               [--scrub]                (online integrity scrubber)
               [--sync every|interval|none] [--interval N]
               Long-lived daemon speaking the bsrd wire protocol (see
               docs/PROTOCOL.md). SIGTERM drains gracefully; SIGHUP
               hot-swaps the snapshot from disk under live readers.
  client <op>  --addr unix:/path|host:port
               ops: ping | stats | sample --filter F [--count R] [--seed S]
               | reconstruct --filter F [--exact] | insert --ids ids.txt
               | remove --ids ids.txt
               [--deadline-ms N]        (carried in the frame; the server
                                         answers DEADLINE_EXCEEDED rather
                                         than serve a stale reply)
               [--timeout-ms N] [--retries N]  (bounded exponential
                                         backoff; mutations retry only on
                                         explicit refusals, never on
                                         ambiguous transport failures)
)");
  std::fprintf(stderr, "\nexit codes:\n");
  for (const ExitCodeRow& row : kExitCodeTable) {
    std::fprintf(stderr, "  %d     %s\n", static_cast<int>(row.code),
                 row.meaning);
  }
  std::fprintf(stderr, R"(
tree-loading flags (info/store-set/sample/reconstruct/query/insert/compact):
  --mmap      zero-copy mmap the snapshot slab (v2 files; O(ms) open)
  --heap      read the slab onto the heap (portable fallback)
  --prewarm   fault the whole mapping in at open (MAP_POPULATE)
  default: BSR_LOAD env (heap|mmap), else mmap where available
Every tree-consuming command accepts a forest manifest for --tree: the
format is sniffed, the load-summary line reports each shard's mapping
mode, and sampling/reconstruction run the cross-shard engines.
)");
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  const std::string command = argv[1];
  Status status = Status::OK();
  const auto run = [&](const std::vector<std::string>& value_flags,
                       const std::vector<std::string>& bool_flags,
                       Status (*handler)(const Flags&)) {
    Result<Flags> flags = Flags::Parse(argc, argv, 2, value_flags, bool_flags);
    if (!flags.ok()) return flags.status();
    return handler(flags.value());
  };

  const std::vector<std::string> load_flags = {"mmap", "heap", "prewarm"};
  const auto with_load_flags = [&load_flags](std::vector<std::string> flags) {
    flags.insert(flags.end(), load_flags.begin(), load_flags.end());
    return flags;
  };
  if (command == "build") {
    status = run({"namespace", "out", "accuracy", "set-size", "k", "hash",
                  "seed", "occupied", "threads", "layout", "format",
                  "shards"},
                 {}, CmdBuild);
  } else if (command == "info") {
    status = run({"tree"}, load_flags, CmdInfo);
  } else if (command == "make-set") {
    status = run({"namespace", "size", "out", "seed"}, {"clustered"},
                 CmdMakeSet);
  } else if (command == "store-set") {
    status = run({"tree", "ids", "out"}, load_flags, CmdStoreSet);
  } else if (command == "sample") {
    status = run({"tree", "filter", "count", "seed", "threads", "shards"},
                 with_load_flags({"with-replacement", "batch"}), CmdSample);
  } else if (command == "reconstruct") {
    status = run({"tree", "filter", "out", "threads", "shards"},
                 with_load_flags({"exact"}), CmdReconstruct);
  } else if (command == "query") {
    status = run({"tree", "filter", "id"}, load_flags, CmdQuery);
  } else if (command == "insert") {
    status = run({"tree", "ids", "sync", "interval", "threads"}, load_flags,
                 CmdInsert);
  } else if (command == "remove") {
    status = run({"tree", "ids", "sync", "interval"}, load_flags, CmdRemove);
  } else if (command == "compact") {
    status = run({"tree"}, load_flags, CmdCompact);
  } else if (command == "verify") {
    status = run({"tree"}, {}, CmdVerify);
  } else if (command == "serve") {
    status = run({"tree", "listen", "workers", "queue", "drain-ms",
                  "idle-ms", "read-ms", "sync", "interval"},
                 with_load_flags({"scrub"}), CmdServe);
  } else if (command == "client") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: bsr client <op> --addr ADDR [flags]\n");
      return kExitUsage;
    }
    Result<Flags> flags = Flags::Parse(
        argc, argv, 3,
        {"addr", "filter", "count", "seed", "ids", "deadline-ms",
         "timeout-ms", "retries"},
        {"exact"});
    status = flags.ok() ? CmdClient(argv[2], flags.value()) : flags.status();
  } else if (command == "--help" || command == "-h" || command == "help") {
    PrintUsage();
    return kExitOk;
  } else {
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    PrintUsage();
    return kExitUsage;
  }

  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    if (status.code() == Status::Code::kQuarantined) return kExitQuarantined;
    if (status.code() == Status::Code::kReadOnly) return kExitReadOnly;
    if (g_snapshot_exit_hint != 0) return g_snapshot_exit_hint;
    return g_server_failure ? kExitServerFailure : kExitFailed;
  }
  return g_wal_recovered ? kExitWalRecovered : kExitOk;
}

}  // namespace cli
}  // namespace bloomsample

int main(int argc, char** argv) {
  // Process-wide: a client hanging up mid-response (or a closed pager on
  // the other end of stdout) must surface as an EPIPE write error, not
  // kill the daemon with SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  return bloomsample::cli::Main(argc, argv);
}
