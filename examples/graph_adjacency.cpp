// Graph database scenario (Section 3.2 names adjacency lists as a natural
// collection of sets): store every vertex's out-neighbour list as a Bloom
// filter and run a random walk by *sampling* a neighbour at each step —
// the operation Bloom filters famously could not support before this
// paper.
//
// The graph is a synthetic power-law web graph whose neighbour ids
// cluster (the observation the paper's clustered generator models).
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "src/core/set_store.h"
#include "src/workload/set_generators.h"
#include "src/workload/zipf.h"

using namespace bloomsample;

int main() {
  constexpr uint64_t kVertices = 200000;
  constexpr int kStoredVertices = 500;  // hub vertices we store filters for

  BloomSetStore::Options options;
  options.accuracy = 0.95;
  options.expected_set_size = 300;
  options.seed = 11;
  BloomSetStore store = BloomSetStore::Create(kVertices, options).value();

  // Build adjacency lists for the hub vertices: out-degree is Zipf, and
  // neighbour ids are clustered runs (web-graph locality).
  Rng rng(171);
  ZipfSampler degree_dist(1000, 0.8);
  std::unordered_map<uint64_t, std::vector<uint64_t>> adjacency;
  for (int v = 0; v < kStoredVertices; ++v) {
    const uint64_t degree = 20 + degree_dist.Sample(&rng);
    const std::vector<uint64_t> neighbors =
        GenerateClusteredSet(kVertices, degree, &rng).value();
    adjacency[v] = neighbors;
    store.AddSet("adj-" + std::to_string(v), neighbors);
  }
  std::printf("stored %d adjacency filters over a %llu-vertex namespace "
              "(%.2f MB filters, %.2f MB tree)\n",
              kStoredVertices, static_cast<unsigned long long>(kVertices),
              static_cast<double>(store.SetMemoryBytes()) / (1024 * 1024),
              static_cast<double>(store.TreeMemoryBytes()) / (1024 * 1024));

  // Random walk over the compressed graph: at a stored vertex, sample one
  // neighbour from its filter; if the walk leaves the stored hub set,
  // restart at vertex 0 (standard PageRank-style teleport).
  uint64_t current = 0;
  int steps = 0;
  int teleports = 0;
  OpCounters counters;
  Rng walk_rng(999);
  std::printf("random walk:");
  for (int i = 0; i < 12; ++i) {
    const std::string name = "adj-" + std::to_string(current);
    if (!store.HasSet(name)) {
      current = 0;
      ++teleports;
      std::printf(" [teleport]");
      continue;
    }
    const Result<uint64_t> next = store.Sample(name, &walk_rng, &counters);
    if (!next.ok()) {
      current = 0;
      ++teleports;
      continue;
    }
    current = next.value();
    ++steps;
    std::printf(" ->%llu", static_cast<unsigned long long>(current));
  }
  std::printf("\nwalked %d steps (%d teleports) using %llu intersections and "
              "%llu membership queries\n",
              steps, teleports,
              static_cast<unsigned long long>(counters.intersections),
              static_cast<unsigned long long>(counters.membership_queries));

  // Sanity: verify a sampled neighbour really is (or is a Bloom false
  // positive of) the stored adjacency of vertex 0.
  const Result<uint64_t> probe = store.Sample("adj-0", &walk_rng);
  const auto& truth = adjacency[0];
  const bool is_true_neighbor =
      std::binary_search(truth.begin(), truth.end(), probe.value());
  std::printf("sampled neighbour %llu of vertex 0 is a %s\n",
              static_cast<unsigned long long>(probe.value()),
              is_true_neighbor ? "true neighbour" : "Bloom false positive");
  return 0;
}
