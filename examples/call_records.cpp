// Crime-investigation scenario (the paper's §1 motivation, citing the use
// of mobile-phone evidence): each cell tower keeps the set of phone
// numbers observed near it, stored only as a Bloom filter for space and
// privacy reasons. An investigator later reconstructs the candidate set
// for towers around a crime scene and intersects them — entirely from the
// filters.
//
// Also demonstrates the HashInvert baseline: with the invertible "simple"
// hash family the filters can be reconstructed without any tree at all,
// at a different cost point (Section 4).
#include <algorithm>
#include <cstdio>

#include "src/baselines/hash_invert.h"
#include "src/core/set_store.h"
#include "src/workload/set_generators.h"

using namespace bloomsample;

int main() {
  // Phone-number namespace: 10^7 possible subscriber ids.
  constexpr uint64_t kNamespace = 10000000;
  constexpr int kTowers = 12;

  BloomSetStore::Options options;
  options.accuracy = 0.95;
  options.expected_set_size = 2000;
  BloomSetStore store = BloomSetStore::Create(kNamespace, options).value();

  // Simulate per-tower observations. Tower t sees ~2000 subscribers;
  // towers 3 and 7 are near the crime scene and share a culprit set.
  Rng rng(4711);
  std::vector<std::vector<uint64_t>> tower_logs(kTowers);
  const std::vector<uint64_t> culprits =
      GenerateUniformSet(kNamespace, 5, &rng).value();
  for (int t = 0; t < kTowers; ++t) {
    tower_logs[t] = GenerateUniformSet(kNamespace, 2000, &rng).value();
    if (t == 3 || t == 7) {
      tower_logs[t].insert(tower_logs[t].end(), culprits.begin(),
                           culprits.end());
      std::sort(tower_logs[t].begin(), tower_logs[t].end());
      tower_logs[t].erase(
          std::unique(tower_logs[t].begin(), tower_logs[t].end()),
          tower_logs[t].end());
    }
    store.AddSet("tower-" + std::to_string(t), tower_logs[t]);
  }
  std::printf("stored %d tower logs (~2000 numbers each) in %.2f MB of "
              "filters + %.2f MB shared tree\n",
              kTowers,
              static_cast<double>(store.SetMemoryBytes()) / (1024 * 1024),
              static_cast<double>(store.TreeMemoryBytes()) / (1024 * 1024));

  // Investigation: reconstruct the two towers near the scene and intersect.
  // Forensics demands completeness, so use the exact pruning mode — it
  // costs DictionaryAttack-level membership queries but can never miss a
  // number (kThresholded, the fast default, is for analytics workloads).
  OpCounters counters;
  const std::vector<uint64_t> near_a =
      store.Reconstruct("tower-3", &counters,
                        BstReconstructor::PruningMode::kExact)
          .value();
  const std::vector<uint64_t> near_b =
      store.Reconstruct("tower-7", &counters,
                        BstReconstructor::PruningMode::kExact)
          .value();
  std::vector<uint64_t> common;
  std::set_intersection(near_a.begin(), near_a.end(), near_b.begin(),
                        near_b.end(), std::back_inserter(common));
  std::printf("tower-3 -> %zu candidates, tower-7 -> %zu candidates, "
              "intersection -> %zu numbers "
              "(%llu intersections, %llu membership queries total)\n",
              near_a.size(), near_b.size(), common.size(),
              static_cast<unsigned long long>(counters.intersections),
              static_cast<unsigned long long>(counters.membership_queries));

  size_t found = 0;
  for (uint64_t c : culprits) {
    found += std::binary_search(common.begin(), common.end(), c);
  }
  std::printf("all %zu planted culprit numbers recovered: %s\n",
              culprits.size(), found == culprits.size() ? "yes" : "NO");

  // Cross-check with the tree-free HashInvert baseline (invertible hashes).
  HashInvert inverter(kNamespace);
  OpCounters hi_counters;
  const std::vector<uint64_t> hi_result =
      inverter.Reconstruct(*store.GetFilter("tower-3"),
                           HashInvert::ReconstructMode::kAuto, &hi_counters)
          .value();
  std::printf("HashInvert reconstruction of tower-3 agrees with the tree: %s "
              "(%llu bit inversions, %llu membership queries)\n",
              hi_result == near_a ? "yes" : "NO",
              static_cast<unsigned long long>(hi_counters.inversions),
              static_cast<unsigned long long>(hi_counters.membership_queries));
  return 0;
}
