// Social-network communities (the paper's motivating application §1):
// store a large number of dynamic online communities as Bloom filters and
// later sample members — e.g. to pick users for an ad campaign — without
// ever materializing the communities.
//
// Uses the synthetic Twitter crawl substrate: user ids sparsely occupy a
// 2^26 namespace, communities are per-hashtag user sets, and the store is
// backed by a Pruned-BloomSampleTree over the occupied ids.
#include <algorithm>
#include <cstdio>

#include "src/core/set_store.h"
#include "src/workload/twitter_synth.h"

using namespace bloomsample;

int main() {
  TwitterCrawlConfig crawl_config;
  crawl_config.namespace_size = 1ULL << 26;
  crawl_config.num_users = 50000;
  crawl_config.num_hashtags = 400;
  crawl_config.num_tweets = 400000;
  crawl_config.seed = 99;
  const TwitterCrawl crawl = GenerateTwitterCrawl(crawl_config).value();
  std::printf("synthetic crawl: %zu users in a %llu-wide namespace, "
              "%zu hashtag communities\n",
              crawl.user_ids.size(),
              static_cast<unsigned long long>(crawl_config.namespace_size),
              crawl.hashtag_users.size());

  // Pruned store: the tree only covers occupied ids, so leaf scans check
  // real users instead of the whole id range (Section 5.2 / 8).
  BloomSetStore::Options options;
  options.accuracy = 0.8;
  options.expected_set_size = 200;
  BloomSetStore store =
      BloomSetStore::CreateWithOccupied(crawl_config.namespace_size,
                                        crawl.user_ids, options)
          .value();
  std::printf("pruned tree: %.2f MB for depth %u\n",
              static_cast<double>(store.TreeMemoryBytes()) / (1024 * 1024),
              store.tree_config().depth);

  for (size_t i = 0; i < crawl.hashtag_users.size(); ++i) {
    store.AddSet("community-" + std::to_string(i), crawl.hashtag_users[i]);
  }
  std::printf("stored %zu communities; filter memory total %.2f MB\n",
              crawl.hashtag_users.size(),
              static_cast<double>(store.SetMemoryBytes()) / (1024 * 1024));

  // Campaign: draw 20 candidate users from the three biggest communities.
  std::vector<size_t> order(crawl.hashtag_users.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&crawl](size_t a, size_t b) {
    return crawl.hashtag_users[a].size() > crawl.hashtag_users[b].size();
  });

  Rng rng(2024);
  for (size_t rank = 0; rank < 3 && rank < order.size(); ++rank) {
    const size_t community = order[rank];
    const std::string name = "community-" + std::to_string(community);
    const std::vector<uint64_t> picks =
        store.SampleMany(name, 20, &rng).value();
    size_t true_members = 0;
    const auto& truth = crawl.hashtag_users[community];
    for (uint64_t user : picks) {
      true_members += std::binary_search(truth.begin(), truth.end(), user);
    }
    std::printf("%s (%zu members): sampled %zu candidates, %zu verified "
                "members; first ids:",
                name.c_str(), truth.size(), picks.size(), true_members);
    for (size_t i = 0; i < std::min<size_t>(picks.size(), 5); ++i) {
      std::printf(" %llu", static_cast<unsigned long long>(picks[i]));
    }
    std::printf("\n");
  }

  // Communities are dynamic: a new user joins the network and a community.
  const uint64_t new_user = crawl_config.namespace_size - 1;
  store.AddOccupied(new_user);
  store.AddToSet("community-" + std::to_string(order[0]), new_user);
  const std::vector<uint64_t> members =
      store.Reconstruct("community-" + std::to_string(order[0])).value();
  std::printf("after a join event, reconstruction finds the new user: %s\n",
              std::binary_search(members.begin(), members.end(), new_user)
                  ? "yes"
                  : "no");
  return 0;
}
