// Quickstart: store a set as a Bloom filter, then sample from it and
// reconstruct it through the BloomSampleTree.
//
//   $ ./build/examples/quickstart
//
// Walks through the three core operations of the library on a small
// namespace so everything runs in milliseconds.
#include <algorithm>
#include <cstdio>

#include "src/core/set_store.h"
#include "src/workload/set_generators.h"

using namespace bloomsample;

int main() {
  // A namespace of 1M ids; Bloom filters sized for 90% sampling accuracy
  // assuming sets of around 1000 elements (the paper's defaults).
  BloomSetStore::Options options;
  options.accuracy = 0.9;
  options.expected_set_size = 1000;

  Result<BloomSetStore> store_result = BloomSetStore::Create(1000000, options);
  if (!store_result.ok()) {
    std::fprintf(stderr, "store creation failed: %s\n",
                 store_result.status().ToString().c_str());
    return 1;
  }
  BloomSetStore store = std::move(store_result).value();
  std::printf("BloomSampleTree: m = %llu bits, depth = %u, memory = %.2f MB\n",
              static_cast<unsigned long long>(store.tree_config().m),
              store.tree_config().depth,
              static_cast<double>(store.TreeMemoryBytes()) / (1024 * 1024));

  // Store a random set of 1000 ids. After this point the library only ever
  // touches the Bloom filter — the vector below is used for verification.
  Rng rng(7);
  const std::vector<uint64_t> members =
      GenerateUniformSet(1000000, 1000, &rng).value();
  store.AddSet("demo", members);
  std::printf("stored 'demo' with %zu members as a %zu-byte Bloom filter\n",
              members.size(), store.GetFilter("demo")->MemoryBytes());

  // Sampling: near-uniform over the set plus its Bloom false positives.
  std::printf("five samples:");
  for (int i = 0; i < 5; ++i) {
    const Result<uint64_t> sample = store.Sample("demo", &rng);
    std::printf(" %llu", static_cast<unsigned long long>(sample.value()));
  }
  std::printf("\n");

  // Multi-sampling: one tree descent for many samples.
  const std::vector<uint64_t> batch = store.SampleMany("demo", 10, &rng).value();
  std::printf("batch of %zu samples in one pass\n", batch.size());

  // Reconstruction: recover the full set (true members + false positives).
  OpCounters counters;
  const std::vector<uint64_t> recovered =
      store.Reconstruct("demo", &counters).value();
  size_t true_members = 0;
  for (uint64_t x : recovered) {
    true_members += std::binary_search(members.begin(), members.end(), x);
  }
  std::printf("reconstructed %zu ids (%zu true members, %zu false positives) "
              "using %llu intersections + %llu membership queries\n",
              recovered.size(), true_members, recovered.size() - true_members,
              static_cast<unsigned long long>(counters.intersections),
              static_cast<unsigned long long>(counters.membership_queries));
  std::printf("dictionary attack would have needed %d membership queries\n",
              1000000);
  return 0;
}
