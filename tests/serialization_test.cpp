#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "src/bloom/bloom_io.h"
#include "src/core/bst_reconstructor.h"
#include "src/core/bst_sampler.h"
#include "src/core/tree_io.h"
#include "src/util/serialize.h"
#include "src/workload/set_generators.h"

namespace bloomsample {
namespace {

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(0xdeadbeefu);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteI64(-42);
  writer.WriteDouble(3.14159);
  writer.WriteU64Vector({1, 2, 3});
  ASSERT_TRUE(writer.ok());

  BinaryReader reader(&stream);
  EXPECT_EQ(reader.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.14159);
  EXPECT_EQ(reader.ReadU64Vector(10).value(),
            (std::vector<uint64_t>{1, 2, 3}));
}

TEST(BinaryIoTest, TruncationIsDetected) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU32(7);
  BinaryReader reader(&stream);
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU64().ok());
}

TEST(BinaryIoTest, VectorSanityBound) {
  std::stringstream stream;
  BinaryWriter writer(&stream);
  writer.WriteU64Vector({1, 2, 3, 4, 5});
  BinaryReader reader(&stream);
  EXPECT_EQ(reader.ReadU64Vector(4).status().code(),
            Status::Code::kOutOfRange);
}

TEST(BloomIoTest, FilterRoundTrips) {
  auto family =
      MakeHashFamily(HashFamilyKind::kSimple, 3, 9000, 42, 100000).value();
  BloomFilter filter(family);
  Rng rng(1);
  for (int i = 0; i < 400; ++i) filter.Insert(rng.Below(100000));

  std::stringstream stream;
  ASSERT_TRUE(SerializeBloomFilter(filter, &stream).ok());
  const auto loaded = DeserializeBloomFilter(&stream, family);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), filter);
}

TEST(BloomIoTest, FingerprintMismatchRejected) {
  auto family =
      MakeHashFamily(HashFamilyKind::kSimple, 3, 9000, 42, 100000).value();
  BloomFilter filter(family);
  filter.Insert(5);
  std::stringstream stream;
  ASSERT_TRUE(SerializeBloomFilter(filter, &stream).ok());

  // Wrong m.
  auto other_m =
      MakeHashFamily(HashFamilyKind::kSimple, 3, 9001, 42, 100000).value();
  EXPECT_FALSE(DeserializeBloomFilter(&stream, other_m).ok());

  // Wrong seed.
  stream.clear();
  stream.seekg(0);
  auto other_seed =
      MakeHashFamily(HashFamilyKind::kSimple, 3, 9000, 43, 100000).value();
  EXPECT_FALSE(DeserializeBloomFilter(&stream, other_seed).ok());

  // Wrong family kind.
  stream.clear();
  stream.seekg(0);
  auto other_kind =
      MakeHashFamily(HashFamilyKind::kMurmur3, 3, 9000, 42, 100000).value();
  EXPECT_FALSE(DeserializeBloomFilter(&stream, other_kind).ok());
}

TEST(BloomIoTest, GarbageStreamRejected) {
  std::stringstream stream("this is not a filter");
  auto family =
      MakeHashFamily(HashFamilyKind::kSimple, 3, 9000, 42, 100000).value();
  EXPECT_FALSE(DeserializeBloomFilter(&stream, family).ok());
}

TreeConfig IoConfig(uint64_t M = 4096, uint64_t m = 6000, uint32_t depth = 4) {
  TreeConfig config;
  config.namespace_size = M;
  config.m = m;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = 42;
  config.depth = depth;
  return config;
}

TEST(TreeIoTest, CompleteTreeRoundTrips) {
  const auto tree = BloomSampleTree::BuildComplete(IoConfig()).value();
  std::stringstream stream;
  ASSERT_TRUE(SerializeTree(tree, &stream).ok());
  const auto loaded = DeserializeTree(&stream);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ(loaded.value().node_count(), tree.node_count());
  EXPECT_EQ(loaded.value().pruned(), tree.pruned());
  EXPECT_EQ(loaded.value().config().m, tree.config().m);
  for (size_t id = 0; id < tree.node_count(); ++id) {
    const auto& a = tree.node(static_cast<int64_t>(id));
    const auto& b = loaded.value().node(static_cast<int64_t>(id));
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.left, b.left);
    EXPECT_EQ(a.right, b.right);
    EXPECT_EQ(a.set_bits, b.set_bits);
    EXPECT_EQ(a.filter.bits(), b.filter.bits());
  }
}

TEST(TreeIoTest, PrunedTreeRoundTripsWithOccupancy) {
  Rng rng(2);
  const auto occupied = GenerateUniformSet(4096, 150, &rng).value();
  const auto tree = BloomSampleTree::BuildPruned(IoConfig(), occupied).value();
  std::stringstream stream;
  ASSERT_TRUE(SerializeTree(tree, &stream).ok());
  auto loaded = DeserializeTree(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().pruned());
  EXPECT_EQ(loaded.value().occupied(), occupied);
  // The loaded tree remains dynamic.
  EXPECT_TRUE(loaded.value().Insert(occupied.back() - 1).ok() ||
              true /* id may already be occupied */);
}

TEST(TreeIoTest, LoadedTreeAnswersIdenticallyToOriginal) {
  const auto tree = BloomSampleTree::BuildComplete(IoConfig()).value();
  std::stringstream stream;
  ASSERT_TRUE(SerializeTree(tree, &stream).ok());
  const auto loaded = DeserializeTree(&stream);
  ASSERT_TRUE(loaded.ok());

  Rng rng(3);
  const auto members = GenerateUniformSet(4096, 60, &rng).value();
  const BloomFilter query_original = tree.MakeQueryFilter(members);
  const BloomFilter query_loaded = loaded.value().MakeQueryFilter(members);

  BstReconstructor original(&tree);
  BstReconstructor reloaded(&loaded.value());
  EXPECT_EQ(original.Reconstruct(query_original, nullptr,
                                 BstReconstructor::PruningMode::kExact),
            reloaded.Reconstruct(query_loaded, nullptr,
                                 BstReconstructor::PruningMode::kExact));
}

TEST(TreeIoTest, FilterSavedAgainstTreeFamilyReloads) {
  const auto tree = BloomSampleTree::BuildComplete(IoConfig()).value();
  const BloomFilter query = tree.MakeQueryFilter({1, 2, 3});
  std::stringstream stream;
  ASSERT_TRUE(SerializeBloomFilter(query, &stream).ok());
  const auto loaded = DeserializeBloomFilter(&stream, tree.family_ptr());
  ASSERT_TRUE(loaded.ok());
  // The loaded filter is a first-class query filter for the tree.
  BstSampler sampler(&tree);
  Rng rng(4);
  const auto sample = sampler.Sample(loaded.value(), &rng);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(query.Contains(*sample));
}

TEST(TreeIoTest, FileRoundTrip) {
  const auto tree = BloomSampleTree::BuildComplete(IoConfig()).value();
  const std::string path = ::testing::TempDir() + "/bsr_tree_io_test.bst";
  ASSERT_TRUE(SaveTreeToFile(tree, path).ok());
  const auto loaded = LoadTreeFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().node_count(), tree.node_count());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadTreeFromFile(path).ok());
}

TEST(TreeIoTest, CorruptStreamsRejected) {
  std::stringstream garbage("BSTRgarbagegarbagegarbage");
  EXPECT_FALSE(DeserializeTree(&garbage).ok());
  std::stringstream wrong_tag("XXXX");
  EXPECT_FALSE(DeserializeTree(&wrong_tag).ok());
  std::stringstream empty;
  EXPECT_FALSE(DeserializeTree(&empty).ok());
}

TEST(TreeIoTest, TruncatedTreeRejected) {
  const auto tree = BloomSampleTree::BuildComplete(IoConfig()).value();
  std::stringstream stream;
  ASSERT_TRUE(SerializeTree(tree, &stream).ok());
  const std::string full = stream.str();
  // Chop at several points: every prefix must be cleanly rejected.
  for (size_t cut : {size_t{5}, size_t{20}, size_t{60}, full.size() / 2,
                     full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(DeserializeTree(&truncated).ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace bloomsample
