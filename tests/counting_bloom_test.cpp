#include "src/bloom/counting_bloom.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/bloom_sample_tree.h"
#include "src/core/bst_reconstructor.h"
#include "src/workload/set_generators.h"

namespace bloomsample {
namespace {

std::shared_ptr<const HashFamily> Family(uint64_t m = 8000,
                                         uint64_t universe = 100000) {
  return MakeHashFamily(HashFamilyKind::kSimple, 3, m, 42, universe).value();
}

TEST(CountingBloomTest, StartsEmpty) {
  CountingBloomFilter filter(Family());
  EXPECT_TRUE(filter.IsEmpty());
  EXPECT_EQ(filter.PositiveCounters(), 0u);
  EXPECT_FALSE(filter.Contains(5));
}

TEST(CountingBloomTest, InsertThenContains) {
  CountingBloomFilter filter(Family());
  filter.Insert(123);
  EXPECT_TRUE(filter.Contains(123));
  EXPECT_FALSE(filter.IsEmpty());
}

TEST(CountingBloomTest, RemoveUndoesInsert) {
  CountingBloomFilter filter(Family());
  filter.Insert(123);
  ASSERT_TRUE(filter.Remove(123).ok());
  EXPECT_TRUE(filter.IsEmpty());
  EXPECT_FALSE(filter.Contains(123));
}

TEST(CountingBloomTest, RemoveKeepsOverlappingKeysAlive) {
  CountingBloomFilter filter(Family());
  Rng rng(1);
  const auto keys = GenerateUniformSet(100000, 500, &rng).value();
  for (uint64_t key : keys) filter.Insert(key);
  // Remove every other key; the survivors must all still answer positive
  // (no false negatives from shared counters).
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(filter.Remove(keys[i]).ok()) << keys[i];
  }
  for (size_t i = 1; i < keys.size(); i += 2) {
    EXPECT_TRUE(filter.Contains(keys[i])) << keys[i];
  }
}

TEST(CountingBloomTest, RemoveOfAbsentKeyFailsAndLeavesStateIntact) {
  CountingBloomFilter filter(Family());
  filter.Insert(10);
  const auto before = filter.PositiveCounters();
  // A key whose counters are all zero is definitely absent.
  uint64_t absent = 11;
  while (filter.Contains(absent)) ++absent;
  EXPECT_EQ(filter.Remove(absent).code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(filter.PositiveCounters(), before);
  EXPECT_TRUE(filter.Contains(10));
}

TEST(CountingBloomTest, MultisetSemantics) {
  CountingBloomFilter filter(Family());
  filter.Insert(77);
  filter.Insert(77);
  ASSERT_TRUE(filter.Remove(77).ok());
  EXPECT_TRUE(filter.Contains(77));  // one copy left
  ASSERT_TRUE(filter.Remove(77).ok());
  EXPECT_FALSE(filter.Contains(77));
}

TEST(CountingBloomTest, SaturatedCountersNeverDecrement) {
  CountingBloomFilter filter(Family(64, 1000));  // tiny m forces collisions
  // Saturate: insert one key far more often than kMaxCount.
  for (int i = 0; i < 40; ++i) filter.Insert(5);
  for (int i = 0; i < 40; ++i) {
    if (!filter.Remove(5).ok()) break;
  }
  // The counters hit saturation and must stay positive forever.
  EXPECT_TRUE(filter.Contains(5));
}

TEST(CountingBloomTest, ToBloomFilterMatchesPlainInsertion) {
  auto family = Family();
  CountingBloomFilter counting(family);
  BloomFilter plain(family);
  Rng rng(2);
  const auto keys = GenerateUniformSet(100000, 300, &rng).value();
  for (uint64_t key : keys) {
    counting.Insert(key);
    plain.Insert(key);
  }
  EXPECT_EQ(counting.ToBloomFilter(), plain);
  EXPECT_EQ(counting.PositiveCounters(), plain.SetBitCount());
}

TEST(CountingBloomTest, ExportAfterChurnEqualsFreshFilter) {
  // Insert a set, churn half of it away, and compare the export against a
  // plain filter of the survivors — the headline deletion capability.
  auto family = Family();
  CountingBloomFilter counting(family);
  Rng rng(3);
  const auto keys = GenerateUniformSet(100000, 400, &rng).value();
  for (uint64_t key : keys) counting.Insert(key);
  std::vector<uint64_t> survivors;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(counting.Remove(keys[i]).ok());
    } else {
      survivors.push_back(keys[i]);
    }
  }
  const BloomFilter fresh = MakeFilter(family, survivors);
  EXPECT_EQ(counting.ToBloomFilter(), fresh);
}

TEST(CountingBloomTest, ExportedFilterWorksWithTheTree) {
  // End-to-end: maintain a dynamic set in a counting filter, export, and
  // reconstruct through a BloomSampleTree sharing the family.
  TreeConfig config;
  config.namespace_size = 20000;
  config.m = 9000;
  config.k = 3;
  config.hash_kind = HashFamilyKind::kSimple;
  config.seed = 42;
  config.depth = 4;
  const auto tree = BloomSampleTree::BuildComplete(config).value();

  CountingBloomFilter counting(tree.family_ptr());
  Rng rng(4);
  const auto keys = GenerateUniformSet(20000, 200, &rng).value();
  for (uint64_t key : keys) counting.Insert(key);
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(counting.Remove(keys[i]).ok());
  }

  BstReconstructor reconstructor(&tree);
  const auto result =
      reconstructor.Reconstruct(counting.ToBloomFilter(), nullptr,
                                BstReconstructor::PruningMode::kExact);
  for (size_t i = 100; i < keys.size(); ++i) {
    EXPECT_TRUE(std::binary_search(result.begin(), result.end(), keys[i]));
  }
}

TEST(CountingBloomTest, MemoryIsOneBytePerSlot) {
  CountingBloomFilter filter(Family(5000, 100000));
  EXPECT_EQ(filter.MemoryBytes(), 5000u);
}

}  // namespace
}  // namespace bloomsample
